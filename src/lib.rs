//! # arrayflow
//!
//! A facade over the `arrayflow` workspace: a practical data flow framework
//! for array reference analysis and the loop optimizations it enables, after
//! Duesterwald, Gupta and Soffa (PLDI 1993).
//!
//! The individual subsystems live in their own crates and are re-exported
//! here under stable module names:
//!
//! * [`ir`] — the loop intermediate representation, DSL parser, normalizer
//!   and reference interpreter;
//! * [`graph`] — loop flow graphs with summary nodes and reverse postorder;
//! * [`core`] — the distance lattice, (G, K)-parameterized flow functions
//!   and the three-pass fixed point solver (the paper's contribution);
//! * [`analyses`] — framework instances: must-reaching definitions,
//!   δ-available values, δ-busy stores, δ-reaching references, live ranges;
//! * [`opt`] — register pipelining, redundant load/store elimination and
//!   controlled loop unrolling;
//! * [`machine`] — a three-address virtual machine, code generator and cost
//!   simulator used to measure the optimizations;
//! * [`baselines`] — conventional dependence tests and the comparison
//!   analyses/optimizations the paper discusses;
//! * [`workloads`] — deterministic loop generators for tests and benches;
//! * [`engine`] — the concurrent, memoizing batch analysis engine
//!   (canonical loop fingerprints, sharded memo cache with second-chance
//!   eviction, worker pool);
//! * [`store`] — crash-safe disk persistence for analysis reports: an
//!   in-crate binary codec, a CRC-framed append-only segment log with
//!   skip-and-count recovery and compaction, and the async writer tier
//!   that slots under the engine's cache;
//! * [`service`] — the zero-dependency analysis server exposing the
//!   engine over TCP and stdio (newline-framed JSON protocol, bounded
//!   queue, structured errors, graceful shutdown, optional persistent
//!   store with warm start);
//! * [`obs`] — the in-crate observability layer shared by the layers
//!   above: metrics registry (counters, gauges, histograms, Prometheus
//!   text exposition) and per-request tracing spans;
//! * [`resilience`] — fault-tolerance primitives wired through the
//!   serving stack: deterministic seeded fault injection behind the
//!   `FaultSurface` trait, the store write-path circuit breaker, and
//!   the jittered backoff the resilient client retries with;
//! * [`cluster`] — the scale-out layer: a consistent-hash ring over the
//!   canonical fingerprint, the static cluster topology with designated
//!   replicas, the segment-log replicator behind `serve --replicate-to`,
//!   and cross-node Prometheus exposition merging (the router itself is
//!   `serve --router` in [`service`]).
//!
//! # Quickstart
//!
//! ```
//! use arrayflow::prelude::*;
//!
//! let program = parse_program(
//!     "do i = 1, 100
//!        A[i+2] := A[i] + x;
//!      end",
//! ).unwrap();
//! let analysis = analyze_loop(&program).unwrap();
//! let reuses = analysis.reuse_pairs();
//! assert_eq!(reuses.len(), 1);
//! assert_eq!(reuses[0].distance, 2);
//! ```

pub use arrayflow_analyses as analyses;
pub use arrayflow_baselines as baselines;
pub use arrayflow_cluster as cluster;
pub use arrayflow_core as core;
pub use arrayflow_engine as engine;
pub use arrayflow_graph as graph;
pub use arrayflow_incremental as incremental;
pub use arrayflow_ir as ir;
pub use arrayflow_machine as machine;
pub use arrayflow_obs as obs;
pub use arrayflow_opt as opt;
pub use arrayflow_resilience as resilience;
pub use arrayflow_service as service;
pub use arrayflow_store as store;
pub use arrayflow_wire as wire;
pub use arrayflow_workloads as workloads;

/// Commonly used items, re-exported for one-line imports.
pub mod prelude {
    pub use arrayflow_analyses::{analyze_loop, LoopAnalysis};
    pub use arrayflow_cluster::{Ring, Topology};
    pub use arrayflow_core::{CustomSpec, Direction, Dist, Mode};
    pub use arrayflow_engine::{Engine, EngineConfig};
    pub use arrayflow_ir::{parse_program, Fingerprint, LoopBuilder, Program};
    pub use arrayflow_resilience::{CircuitBreaker, FaultPlan, FaultSurface};
    pub use arrayflow_service::{Client, ClientConfig, Server, Service, ServiceConfig};
    pub use arrayflow_store::{Store, StoreConfig};

    pub use crate::{fingerprint, prepare};
}

/// Computes the canonical 128-bit fingerprint of a single-loop DSL
/// program — the exact cache identity the engine and service key reports
/// by, as little-endian bytes ready for the binary protocol's
/// fingerprint-first fast path
/// ([`Client::analyze_fingerprint`](arrayflow_service::Client::analyze_fingerprint)).
///
/// Mirrors the engine's keying precisely: normalize, renumber, then
/// fingerprint the sole outermost loop. Errors if the program does not
/// parse or does not consist of exactly one top-level loop.
///
/// ```
/// use arrayflow::prelude::*;
///
/// let fp = fingerprint("do i = 1, 100 A[i+2] := A[i] + x; end").unwrap();
/// // Alpha-equivalent loops share a fingerprint:
/// let fp2 = fingerprint("do j = 1, 100 B[j+2] := B[j] + y; end").unwrap();
/// assert_eq!(fp, fp2);
/// ```
pub fn fingerprint(source: &str) -> Result<[u8; 16], String> {
    let mut program = ir::parse_program(source).map_err(|e| e.to_string())?;
    ir::normalize(&mut program);
    program.renumber();
    let l = program
        .sole_loop()
        .ok_or_else(|| "program must consist of exactly one top-level loop".to_string())?;
    Ok(ir::fingerprint_loop(l, &program.symbols).0.to_le_bytes())
}

/// The front-end preparation pipeline the paper assumes has already run
/// (§1): normalize every loop to `do i = 1, UB` step 1 and rewrite
/// non-basic induction variables into affine functions of the loop
/// induction variable. Returns how many loops were normalized and which
/// variables were removed.
///
/// ```
/// use arrayflow::prelude::*;
///
/// let mut p = parse_program(
///     "t := 0;
///      do i = 2, 200, 2
///        t := t + 1;
///        A[t + 1] := A[t] + 1;
///      end",
/// ).unwrap();
/// let (normalized, removed) = prepare(&mut p);
/// assert_eq!(normalized, 1);
/// assert_eq!(removed.len(), 1);
/// ```
pub fn prepare(program: &mut ir::Program) -> (usize, Vec<ir::VarId>) {
    let normalized = ir::normalize(program);
    let removed = ir::remove_induction_variables(program).removed;
    (normalized, removed)
}
