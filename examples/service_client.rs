//! A complete client session against the analysis service, through the
//! resilient [`Client`].
//!
//! Starts an in-process server on an ephemeral loopback port, then talks
//! to it exactly as an external program would — over TCP with
//! newline-framed JSON, but with the client's fault-tolerance envelope:
//! transparent reconnect, per-request deadlines, and jittered
//! exponential backoff retries for transport failures and `overloaded`
//! responses. The session walks through every verb: `ping`, two
//! `analyze` calls (alpha-equivalent programs, so the second is a cache
//! hit), a raw problem-selected `analyze`, a structured error, `stats`,
//! and finally `shutdown`, which drains the server and stops it.
//!
//! Run with `cargo run --example service_client`.
//!
//! [`Client`]: arrayflow_service::Client

use arrayflow::prelude::*;
use arrayflow::service::ClientError;

fn main() -> std::io::Result<()> {
    // Server side: bind an ephemeral port and serve in the background.
    // (In production you would run the `serve` binary instead.)
    let server = Server::bind("127.0.0.1:0", ServiceConfig::default())?;
    let addr = server.local_addr()?;
    let server_thread = std::thread::spawn(move || server.run());
    println!("server on {addr}\n");

    // Client side: deadlines and retries come from the config; the
    // constructor's ping proves the server is reachable end to end.
    let mut client =
        Client::connect(addr.to_string(), ClientConfig::default()).expect("server reachable");

    // Two alpha-equivalent stencils: the engine fingerprints them
    // identically, so the second answer comes from the memo cache.
    let a = client
        .analyze("do i = 1, 100 A[i+2] := A[i] + x; end")
        .expect("analyze");
    let b = client
        .analyze("do j = 1, 100 B[j+2] := B[j] + y; end")
        .expect("analyze");
    println!("← {a}");
    println!("← {b}");
    assert!(a.contains("reuse use_site"), "expected a reuse pair");
    // The reports are byte-identical; only the per-request cache stats
    // differ (the first request is a miss, the second a hit).
    let loops = |s: &str| s[s.find("\"loops\"").unwrap()..s.find("\"stats\"").unwrap()].to_string();
    assert_eq!(
        loops(&a),
        loops(&b),
        "alpha-equivalent programs: identical reports"
    );
    assert!(b.contains("\"cache_hits\":1"), "expected a cache hit");

    // Pre-encoded frames still work for anything the typed helpers do
    // not cover — here, problem selection (only δ-busy stores).
    let busy = client
        .request(
            r#"{"id": 100, "verb": "analyze", "program": "do i = 1, 50 A[i] := 0; A[i] := B[i]; end", "problems": ["busy"]}"#,
        )
        .expect("problem-selected analyze");
    println!("← {busy}");

    // Errors come back structured — a parse error is a fact about the
    // request, so the client surfaces it without retrying, and the
    // connection stays usable.
    match client.analyze("do do do") {
        Err(ClientError::Service { kind, message }) => {
            println!("← structured error: kind={kind:?} message={message}");
        }
        other => panic!("expected a parse error, got {other:?}"),
    }

    let stats = client.stats().expect("stats");
    println!("← {stats}");
    assert!(stats.contains("hit rate"));

    client.shutdown().expect("shutdown");
    server_thread.join().expect("server thread")?;
    println!(
        "\nserver drained and stopped ({} connection(s), {} retrie(s))",
        client.connects(),
        client.retries()
    );
    Ok(())
}
