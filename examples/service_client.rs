//! A complete client session against the analysis service, through the
//! resilient [`Client`].
//!
//! Starts an in-process server on an ephemeral loopback port, then talks
//! to it exactly as an external program would — over TCP with
//! newline-framed JSON, but with the client's fault-tolerance envelope:
//! transparent reconnect, per-request deadlines, and jittered
//! exponential backoff retries for transport failures and `overloaded`
//! responses. The session walks through every verb: `ping`, two
//! `analyze` calls (alpha-equivalent programs, so the second is a cache
//! hit), a raw problem-selected `analyze`, a structured error, `stats`,
//! and finally `shutdown`, which drains the server and stops it.
//!
//! Run with `cargo run --example service_client`. With `--fingerprint`
//! (unix only) the session instead runs against the event-driven server
//! and demonstrates the binary protocol's fingerprint-first fast path:
//! the client computes the canonical fingerprint locally
//! ([`arrayflow::fingerprint`]) and the server answers from its cache
//! without parsing anything.
//!
//! [`Client`]: arrayflow_service::Client

use arrayflow::prelude::*;
use arrayflow::service::ClientError;

fn main() -> std::io::Result<()> {
    if std::env::args().any(|a| a == "--fingerprint") {
        return fingerprint_session();
    }
    // Server side: bind an ephemeral port and serve in the background.
    // (In production you would run the `serve` binary instead.)
    let server = Server::bind("127.0.0.1:0", ServiceConfig::default())?;
    let addr = server.local_addr()?;
    let server_thread = std::thread::spawn(move || server.run());
    println!("server on {addr}\n");

    // Client side: deadlines and retries come from the config; the
    // constructor's ping proves the server is reachable end to end.
    let mut client =
        Client::connect(addr.to_string(), ClientConfig::default()).expect("server reachable");

    // Two alpha-equivalent stencils: the engine fingerprints them
    // identically, so the second answer comes from the memo cache.
    let a = client
        .analyze("do i = 1, 100 A[i+2] := A[i] + x; end")
        .expect("analyze");
    let b = client
        .analyze("do j = 1, 100 B[j+2] := B[j] + y; end")
        .expect("analyze");
    println!("← {a}");
    println!("← {b}");
    assert!(a.contains("reuse use_site"), "expected a reuse pair");
    // The reports are byte-identical; only the per-request cache stats
    // differ (the first request is a miss, the second a hit).
    let loops = |s: &str| s[s.find("\"loops\"").unwrap()..s.find("\"stats\"").unwrap()].to_string();
    assert_eq!(
        loops(&a),
        loops(&b),
        "alpha-equivalent programs: identical reports"
    );
    assert!(b.contains("\"cache_hits\":1"), "expected a cache hit");

    // Pre-encoded frames still work for anything the typed helpers do
    // not cover — here, problem selection (only δ-busy stores).
    let busy = client
        .request(
            r#"{"id": 100, "verb": "analyze", "program": "do i = 1, 50 A[i] := 0; A[i] := B[i]; end", "problems": ["busy"]}"#,
        )
        .expect("problem-selected analyze");
    println!("← {busy}");

    // Errors come back structured — a parse error is a fact about the
    // request, so the client surfaces it without retrying, and the
    // connection stays usable.
    match client.analyze("do do do") {
        Err(ClientError::Service { kind, message }) => {
            println!("← structured error: kind={kind:?} message={message}");
        }
        other => panic!("expected a parse error, got {other:?}"),
    }

    let stats = client.stats().expect("stats");
    println!("← {stats}");
    assert!(stats.contains("hit rate"));

    client.shutdown().expect("shutdown");
    server_thread.join().expect("server thread")?;
    println!(
        "\nserver drained and stopped ({} connection(s), {} retrie(s))",
        client.connects(),
        client.retries()
    );
    Ok(())
}

/// The `--fingerprint` walkthrough: binary protocol against the
/// event-driven server, with the client precomputing the canonical
/// fingerprint so repeat requests skip the parser entirely.
#[cfg(unix)]
fn fingerprint_session() -> std::io::Result<()> {
    use arrayflow::service::{EventServer, ProtoMode};

    let service = arrayflow::service::Service::start(ServiceConfig::default())?;
    let listener = std::net::TcpListener::bind("127.0.0.1:0")?;
    let addr = listener.local_addr()?;
    let server = EventServer::attach(listener, service);
    let server_thread = std::thread::spawn(move || server.run(ProtoMode::Auto));
    println!("event server on {addr} (binary protocol)\n");

    let src = "do i = 1, 100 A[i+2] := A[i] + x; end";
    // The client computes the exact cache identity the server keys
    // reports by — no round trip needed to learn it.
    let fp = fingerprint(src).expect("single-loop program");
    println!("client-side fingerprint: {:032x}", u128::from_le_bytes(fp));

    let mut client =
        Client::connect(addr.to_string(), ClientConfig::default()).expect("server reachable");

    // First contact: the server has never seen this loop, so the bare
    // fingerprint probe misses — but the same request carries the source
    // as a fallback and analyzes in full.
    let warm = client
        .analyze_fingerprint(fp, Some(src))
        .expect("fingerprint analyze with source fallback");
    assert_eq!(warm.cache_misses, 1);
    println!("← full analysis: {} loop(s), cache miss", warm.loops.len());

    // Second contact: fingerprint only, no source shipped at all. The
    // server answers from its cache without parsing anything.
    let hit = client
        .analyze_fingerprint(fp, None)
        .expect("fingerprint fast path");
    assert_eq!(hit.cache_hits, 1);
    assert_eq!(
        hit.loops[0].report, warm.loops[0].report,
        "fast path ships the very same report bytes"
    );
    println!("← fast path: cache hit, report byte-identical");

    let metrics = client.metrics_prometheus().expect("metrics");
    let fast_hits = metrics
        .lines()
        .find(|l| l.starts_with("arrayflow_fingerprint_fast_hits_total"))
        .expect("fast-hit counter");
    println!("← {fast_hits}");

    client.shutdown().expect("shutdown");
    server_thread.join().expect("server thread")?;
    println!("\nserver drained and stopped");
    Ok(())
}

#[cfg(not(unix))]
fn fingerprint_session() -> std::io::Result<()> {
    eprintln!("--fingerprint needs the event server, which requires unix (poll)");
    std::process::exit(2)
}
