//! A complete client session against the analysis service.
//!
//! Starts an in-process server on an ephemeral loopback port, then talks
//! to it exactly as an external client would — over a plain `TcpStream`
//! with newline-framed JSON — walking through every verb: `ping`, two
//! `analyze` calls (alpha-equivalent programs, so the second is a cache
//! hit), a problem-selected `analyze`, an error response, `stats`, and
//! finally `shutdown`, which drains the server and stops it.
//!
//! Run with `cargo run --example service_client`.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

use arrayflow::prelude::*;

fn main() -> std::io::Result<()> {
    // Server side: bind an ephemeral port and serve in the background.
    // (In production you would run the `serve` binary instead.)
    let server = Server::bind("127.0.0.1:0", ServiceConfig::default())?;
    let addr = server.local_addr()?;
    let server_thread = std::thread::spawn(move || server.run());
    println!("server on {addr}\n");

    // Client side: one connection, requests pipelined one per line.
    let stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut rpc = move |request: &str| -> std::io::Result<String> {
        println!("→ {request}");
        let mut w = &stream;
        w.write_all(request.as_bytes())?;
        w.write_all(b"\n")?;
        let mut line = String::new();
        reader.read_line(&mut line)?;
        print!("← {line}");
        Ok(line)
    };

    rpc(r#"{"id": 1, "verb": "ping"}"#)?;

    // Two alpha-equivalent stencils: the engine fingerprints them
    // identically, so the second answer comes from the memo cache.
    let a =
        rpc(r#"{"id": 2, "verb": "analyze", "program": "do i = 1, 100 A[i+2] := A[i] + x; end"}"#)?;
    let b =
        rpc(r#"{"id": 3, "verb": "analyze", "program": "do j = 1, 100 B[j+2] := B[j] + y; end"}"#)?;
    assert!(a.contains("reuse use_site"), "expected a reuse pair");
    // The reports are byte-identical; only the per-request cache stats
    // differ (the first request is a miss, the second a hit).
    let loops = |s: &str| s[s.find("\"loops\"").unwrap()..s.find("\"stats\"").unwrap()].to_string();
    assert_eq!(
        loops(&a),
        loops(&b),
        "alpha-equivalent programs: identical reports"
    );
    assert!(b.contains("\"cache_hits\":1"), "expected a cache hit");

    // Problem selection: only the backward must-problem (δ-busy stores).
    rpc(
        r#"{"id": 4, "verb": "analyze", "program": "do i = 1, 50 A[i] := 0; A[i] := B[i]; end", "problems": ["busy"]}"#,
    )?;

    // Errors come back structured; the connection stays usable.
    let err = rpc(r#"{"id": 5, "verb": "analyze", "program": "do do do"}"#)?;
    assert!(err.contains(r#""kind":"parse""#));

    let stats = rpc(r#"{"id": 6, "verb": "stats"}"#)?;
    assert!(stats.contains("hit rate"));

    rpc(r#"{"id": 7, "verb": "shutdown"}"#)?;
    server_thread.join().expect("server thread")?;
    println!("\nserver drained and stopped");
    Ok(())
}
