//! Quickstart: parse a loop, run the analyses, inspect the results.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use arrayflow::analyses::analyze_loop;
use arrayflow::ir::parse_program;

fn main() {
    // A Fortran-like DO loop in the crate's text format. Array subscripts
    // are affine in the induction variable; conditionals are allowed (and
    // are exactly where this framework beats dependence-based methods).
    let program = parse_program(
        "do i = 1, 1000
           A[i+2] := A[i] + x;
           if A[i+2] > 100 then B[i] := A[i+1]; end
         end",
    )
    .expect("well-formed source");

    // One call runs all four framework instances: must-reaching
    // definitions, δ-available values, δ-busy stores and δ-reaching
    // references.
    let analysis = analyze_loop(&program).expect("single normalized loop");

    println!("guaranteed value reuses (δ-available values):");
    for r in analysis.reuse_pairs() {
        println!(
            "  {} reuses the value of {} from {} iteration(s) earlier ({})",
            analysis.site_text(r.use_site),
            analysis.site_text(r.gen_site),
            r.distance,
            if r.gen_is_def {
                "stored value"
            } else {
                "loaded value"
            },
        );
    }

    println!("\npotential loop-carried dependences (δ-reaching references):");
    for d in analysis.dependences(4) {
        println!(
            "  {:?} dependence {} -> {} at distance {}",
            d.kind,
            analysis.site_text(d.src_site),
            analysis.site_text(d.dst_site),
            d.distance
        );
    }

    println!("\nsolver effort (the paper's three-pass bound):");
    for (name, inst) in [
        ("must-reaching  ", &analysis.reaching),
        ("δ-available    ", &analysis.available),
        ("δ-busy (bwd)   ", &analysis.busy),
        ("δ-reaching may ", &analysis.reaching_refs),
    ] {
        println!(
            "  {name} {}",
            arrayflow::analyses::report::render_stats(inst, &analysis.graph)
        );
    }
}
