//! Batch analysis with the concurrent, memoizing engine.
//!
//! Builds a stream of programs in which many loops are alpha-equivalent
//! (same structure, different variable and array names), fans it across
//! the worker pool, and prints what the cache saved.
//!
//! Run with `cargo run --example engine_batch`.

use arrayflow::prelude::*;
use arrayflow::workloads::{random_loop, LoopShape};

fn main() {
    // Two hand-written programs that differ only in names: the engine
    // fingerprints them identically, so the second is a cache hit.
    let stencil_i = parse_program(
        "do i = 1, 100
           A[i+2] := A[i] + x;
         end",
    )
    .unwrap();
    let stencil_j = parse_program(
        "do j = 1, 100
           dst[j+2] := dst[j] + scale;
         end",
    )
    .unwrap();

    // Plus a seeded random stream where every structure appears four
    // times — the duplication a compiler or autotuner actually produces.
    let mut batch = vec![stencil_i, stencil_j];
    let shape = LoopShape::default();
    for seed in 0..40u64 {
        batch.push(random_loop(&shape, seed % 10));
    }

    let engine = Engine::new(EngineConfig {
        workers: 4,
        ..EngineConfig::default()
    });
    let results = engine.analyze_batch(&batch);

    println!("batch of {} programs, 4 workers\n", batch.len());
    for r in results.iter().take(4) {
        let loop0 = &r.loops[0];
        println!(
            "program {:>2}: fp={} sites={} reuses={} deps={} ({})",
            r.index,
            loop0.fingerprint,
            loop0.report.sites,
            loop0.report.reuses.len(),
            loop0.report.dependences.len(),
            if r.stats.cache_hits > 0 {
                "cache hit"
            } else {
                "solved"
            }
        );
    }
    println!("...");

    let stats = engine.stats();
    println!("\nengine: {stats}");
    println!("cache:  {}", stats.cache);

    // The two hand-written stencils share one fingerprint. (The hit rate
    // can fall a few hits short of the duplication rate: workers racing on
    // the same structure each solve it once — benignly, the reports are
    // byte-identical.)
    assert_eq!(
        results[0].loops[0].fingerprint,
        results[1].loops[0].fingerprint
    );
    assert!(stats.hit_rate() > 0.5);
}
