//! Custom-problem smoke against an already-running `serve` process.
//!
//! Connects to the address given as the first argument (default
//! `127.0.0.1:7433`) and solves a user-specified (G, K) problem over
//! both protocols: live array elements (`gu-kd-bwd-may`) as a JSON
//! `custom` request, then the same spec over the binary protocol
//! (tag 0x0B) with a bare fingerprint probe that must hit the
//! spec-extended cache key byte-identically. Prints the server's
//! Prometheus exposition (so callers can grep
//! `arrayflow_custom_requests_total`) and shuts the server down.
//!
//! ```text
//! serve --listen 127.0.0.1:7433 &
//! cargo run --example custom_problem -- 127.0.0.1:7433
//! ```

use arrayflow::prelude::*;

fn main() -> std::io::Result<()> {
    let addr = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "127.0.0.1:7433".to_string());
    let mut client = Client::connect(&addr, ClientConfig::default())
        .map_err(|e| std::io::Error::other(format!("cannot reach {addr}: {e}")))?;

    // Live array elements: uses generate, definitions kill, backward/may.
    let live = CustomSpec {
        gen_defs: false,
        gen_uses: true,
        kill_defs: true,
        kill_uses: false,
        direction: Direction::Backward,
        mode: Mode::May,
    };
    let src = "do i = 1, 80 A[i+3] := A[i] + s; end";

    // JSON protocol: the rendered report names the spec it solved.
    let line = client
        .custom(src, live)
        .map_err(|e| std::io::Error::other(format!("json custom failed: {e}")))?;
    assert!(
        line.contains("custom spec=gu-kd-bwd-may"),
        "json custom report must carry the spec label: {line}"
    );
    eprintln!("custom_problem: json custom ok (spec {live})");

    // Binary protocol: solve by source, then probe by bare fingerprint
    // under the same spec — must hit and ship identical report bytes.
    let warm = client
        .custom_binary(src, live)
        .map_err(|e| std::io::Error::other(format!("binary custom failed: {e}")))?;
    assert_eq!(warm.loops.len(), 1, "one loop analyzed");
    let fp = fingerprint(src).expect("single-loop program");
    let hit = client
        .custom_fingerprint(fp, live, None)
        .map_err(|e| std::io::Error::other(format!("custom fast path failed: {e}")))?;
    assert_eq!(hit.cache_hits, 1, "bare fingerprint probe must hit");
    assert_eq!(
        hit.loops[0].report, warm.loops[0].report,
        "custom fast path must ship byte-identical report bytes"
    );
    eprintln!("custom_problem: binary custom + fingerprint hit, byte-identical");

    // The exposition goes to stdout for the caller to grep.
    let metrics = client
        .metrics_prometheus()
        .map_err(|e| std::io::Error::other(format!("metrics failed: {e}")))?;
    print!("{metrics}");

    client
        .shutdown()
        .map_err(|e| std::io::Error::other(format!("shutdown failed: {e}")))?;
    eprintln!("custom_problem: ok");
    Ok(())
}
