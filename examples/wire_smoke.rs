//! Binary-protocol smoke against an already-running `serve` process.
//!
//! Connects to the address given as the first argument (default
//! `127.0.0.1:7433`), exercises the fingerprint-first fast path end to
//! end — full analysis with source fallback, then a bare fingerprint
//! probe that must hit — verifies the fast path ships byte-identical
//! report bytes, prints the server's Prometheus exposition (so callers
//! can grep `arrayflow_fingerprint_fast_hits_total`), and shuts the
//! server down. CI runs this against the release `serve` binary.
//!
//! ```text
//! serve --listen 127.0.0.1:7433 &
//! cargo run --example wire_smoke -- 127.0.0.1:7433
//! ```

use arrayflow::prelude::*;

fn main() -> std::io::Result<()> {
    let addr = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "127.0.0.1:7433".to_string());
    let mut client = Client::connect(&addr, ClientConfig::default())
        .map_err(|e| std::io::Error::other(format!("cannot reach {addr}: {e}")))?;

    let src = "do i = 1, 80 A[i+3] := A[i] + s; end";
    let fp = fingerprint(src).expect("single-loop program");
    eprintln!(
        "wire_smoke: fingerprint {:032x} -> {addr}",
        u128::from_le_bytes(fp)
    );

    // First request may miss (fresh server) or hit (warm store); either
    // way the shipped source guarantees a full report comes back.
    let warm = client
        .analyze_fingerprint(fp, Some(src))
        .map_err(|e| std::io::Error::other(format!("analyze failed: {e}")))?;
    assert_eq!(warm.loops.len(), 1, "one loop analyzed");

    // Bare probe: no source on the wire at all. Must be a cache hit with
    // the very same report bytes.
    let hit = client
        .analyze_fingerprint(fp, None)
        .map_err(|e| std::io::Error::other(format!("fast path failed: {e}")))?;
    assert_eq!(hit.cache_hits, 1, "bare fingerprint probe must hit");
    assert_eq!(
        hit.loops[0].report, warm.loops[0].report,
        "fast path must ship byte-identical report bytes"
    );
    eprintln!("wire_smoke: fast path hit, report byte-identical");

    // The exposition goes to stdout for the caller to grep.
    let metrics = client
        .metrics_prometheus()
        .map_err(|e| std::io::Error::other(format!("metrics failed: {e}")))?;
    print!("{metrics}");

    client
        .shutdown()
        .map_err(|e| std::io::Error::other(format!("shutdown failed: {e}")))?;
    eprintln!("wire_smoke: ok");
    Ok(())
}
