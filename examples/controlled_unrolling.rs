//! Controlled loop unrolling (paper §4.3): predict the unrolled critical
//! path from dependence distances before transforming anything, then unroll
//! only when the prediction shows a parallelism gain.
//!
//! ```text
//! cargo run --example controlled_unrolling
//! ```

use arrayflow::analyses::analyze_loop;
use arrayflow::opt::{controlled_unroll, dep_graph, UnrollConfig};
use arrayflow::workloads::{map_scale, recurrence, smooth3};

fn main() {
    let cfg = UnrollConfig {
        threshold: 1.2,
        max_factor: 8,
    };
    for (name, p) in [
        ("map_scale (parallel)", map_scale(1000)),
        ("recurrence (serial)", recurrence(1000)),
        ("smooth3 (mixed)", smooth3(1000)),
    ] {
        let analysis = analyze_loop(&p).unwrap();
        let g = dep_graph(&analysis, cfg.max_factor);
        println!("{name}: body critical path l = {}", g.critical_path(1));
        for f in [2u64, 4, 8] {
            println!(
                "  predicted l_unroll({f}) = {} (per-iteration {:.2})",
                g.critical_path(f),
                g.critical_path(f) as f64 / f as f64
            );
        }
        let decision = controlled_unroll(&p, &cfg).unwrap();
        println!(
            "  controller chose factor {} (history: {:?})\n",
            decision.factor,
            decision
                .history
                .iter()
                .map(|s| (s.factor, s.predicted_path))
                .collect::<Vec<_>>()
        );
    }
}
