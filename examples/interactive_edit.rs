//! An interactive editing session against the analysis service: open
//! once, then re-analyze each keystroke-sized edit incrementally.
//!
//! Starts an in-process server on an ephemeral loopback port, opens an
//! analysis session with the `open` verb (the server parses, normalizes
//! and fully analyzes the loop, then retains the converged lattice
//! state), and replays a chain of single-statement edits with the
//! `delta` verb. Each delta re-converges from the cached fixed point,
//! seeding the worklist with only the dirtied lattice columns — the
//! response reports how much of the loop actually had to be re-solved.
//! A structural edit (replacing an assignment with a conditional)
//! demonstrates the recorded fallback to a full re-analysis.
//!
//! Every delta report is byte-identical to what a fresh `analyze` of the
//! edited source would return — the example checks this at each step.
//!
//! Run with `cargo run --example interactive_edit`.

use arrayflow::prelude::*;
use arrayflow::service::Json;

fn main() -> std::io::Result<()> {
    // Server side: bind an ephemeral port and serve in the background.
    // (In production you would run the `serve` binary instead.)
    let server = Server::bind("127.0.0.1:0", ServiceConfig::default())?;
    let addr = server.local_addr()?;
    let server_thread = std::thread::spawn(move || server.run());
    println!("server on {addr}\n");

    let mut client =
        Client::connect(addr.to_string(), ClientConfig::default()).expect("server reachable");

    // Open a session. The response carries the session id, the loop's
    // canonical fingerprint — the session's shard key when a cluster
    // router sits in between — and the initial full report.
    let base = "do i = 1, 100 A[i+2] := A[i] + x; B[i] := A[i+1]; end";
    let opened = client.open_session(base).expect("open");
    println!(
        "session {} fingerprint {}",
        opened.session, opened.fingerprint
    );

    // Each step names an assignment by its renumbered id (0 and 1 in
    // source order here), supplies replacement text, and — for the
    // byte-identity check only — the full source the edit produces.
    let edits: &[(u64, &str, &str)] = &[
        (
            1,
            "B[i] := A[i-3] * 2;",
            "do i = 1, 100 A[i+2] := A[i] + x; B[i] := A[i-3] * 2; end",
        ),
        (
            1,
            "B[i+1] := A[i] + y;",
            "do i = 1, 100 A[i+2] := A[i] + x; B[i+1] := A[i] + y; end",
        ),
        (
            0,
            "A[i+2] := A[i] + B[i];",
            "do i = 1, 100 A[i+2] := A[i] + B[i]; B[i+1] := A[i] + y; end",
        ),
    ];

    for (step, &(stmt, text, edited)) in edits.iter().enumerate() {
        // Every delta carries the fingerprint `open` returned: that is
        // the session's routing key for its whole lifetime.
        let line = client
            .delta(opened.session, &opened.fingerprint, stmt, text)
            .expect("delta");
        let resp = Json::parse(line.as_bytes()).expect("framed JSON");
        let result = resp.get("result").expect("ok response");
        let dirty = result.get("dirty_columns").and_then(Json::as_u64).unwrap();
        let total = result.get("total_columns").and_then(Json::as_u64).unwrap();
        let fallback = result.get("fallback").and_then(Json::as_bool).unwrap();
        println!(
            "edit {step}: stmt {stmt} := {text:?} -> re-solved {dirty}/{total} columns{}",
            if fallback { " (full fallback)" } else { "" }
        );
        assert!(
            !fallback,
            "assignment-for-assignment edits take the fast path"
        );

        // The delta report must match a fresh analysis of the edited
        // source byte for byte.
        let fresh = client.analyze(edited).expect("analyze edited source");
        let fresh = Json::parse(fresh.as_bytes()).unwrap();
        let loops = fresh
            .get("result")
            .and_then(|r| r.get("loops"))
            .and_then(Json::as_arr)
            .unwrap();
        assert_eq!(
            loops[0].get("report").and_then(Json::as_str),
            result.get("report").and_then(Json::as_str),
            "delta and fresh analysis must agree byte-for-byte"
        );
    }

    // A structural edit — the replacement is a conditional, so the flow
    // graph changes and the server falls back to a full re-analysis,
    // recording the fallback in its stats.
    let line = client
        .delta(
            opened.session,
            &opened.fingerprint,
            0,
            "if x > 0 then A[i+2] := A[i]; end",
        )
        .expect("structural delta");
    let resp = Json::parse(line.as_bytes()).unwrap();
    let result = resp.get("result").expect("ok response");
    assert_eq!(result.get("fallback").and_then(Json::as_bool), Some(true));
    println!("structural edit -> full re-analysis fallback (still correct)\n");

    // The session counters are part of the service stats.
    let stats = client.stats().expect("stats");
    let stats = Json::parse(stats.as_bytes()).unwrap();
    let sessions = stats
        .get("result")
        .and_then(|r| r.get("sessions"))
        .expect("sessions section");
    println!("sessions: {sessions}");

    client.shutdown().expect("shutdown");
    server_thread.join().expect("server thread")?;
    Ok(())
}
