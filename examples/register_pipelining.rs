//! The paper's Fig. 5, end to end: analyze `A[i+2] := A[i] + x`, allocate a
//! three-stage register pipeline, generate both conventional and pipelined
//! machine code, and measure the memory traffic on the simulator.
//!
//! ```text
//! cargo run --example register_pipelining
//! ```

use arrayflow::analyses::analyze_loop;
use arrayflow::machine::{compile, compile_with, CostModel, Machine};
use arrayflow::opt::{allocate, PipelineConfig};
use arrayflow::workloads::fig5;

fn main() {
    let program = fig5(1000);
    println!(
        "source:\n{}",
        arrayflow::ir::pretty::print_program(&program)
    );

    let analysis = analyze_loop(&program).unwrap();
    let alloc = allocate(&analysis, &PipelineConfig::default());
    println!(
        "allocated {} pipeline(s); registers used: {}",
        alloc.plan.ranges.len(),
        alloc.registers_used
    );
    for range in &alloc.plan.ranges {
        println!(
            "  pipeline of depth {} for a generator with {} reuse point(s)",
            range.depth,
            range.reuse_points.len()
        );
    }

    let conventional = compile(&program).unwrap();
    let pipelined = compile_with(&program, &alloc.plan).unwrap();

    println!("\nconventional code (paper Fig. 5 (ii)):");
    print!("{}", conventional.code.listing(&program.symbols));
    println!("\npipelined code (paper Fig. 5 (iii)):");
    print!("{}", pipelined.code.listing(&program.symbols));

    // Run both and compare.
    let a = program.symbols.lookup_array("A").unwrap();
    let x = program.symbols.lookup_var("x").unwrap();
    let cost = CostModel::default();
    let mut results = Vec::new();
    for (name, compiled) in [("conventional", &conventional), ("pipelined", &pipelined)] {
        let mut m = Machine::new();
        m.set_mem(a, 1, 10);
        m.set_mem(a, 2, 20);
        m.set_reg(compiled.scalar_regs[&x], 7);
        m.run(&compiled.code).unwrap();
        println!(
            "\n{name}: loads={} stores={} moves={} alu={} cycles={}",
            m.stats.loads,
            m.stats.stores,
            m.stats.moves,
            m.stats.alu,
            m.stats.cycles(&cost)
        );
        results.push(m);
    }
    assert_eq!(
        results[0].memory(),
        results[1].memory(),
        "identical final memory"
    );
    println!(
        "\nmemory images identical; loads {} -> {} ({}x reduction inside the loop)",
        results[0].stats.loads,
        results[1].stats.loads,
        results[0].stats.loads / results[1].stats.loads.max(1)
    );
}
