//! Deadline-storm smoke against an already-running `serve` process.
//!
//! Connects to the address given as the first argument (default
//! `127.0.0.1:7433`), floods the server with analyze requests carrying a
//! 1 ms deadline budget — dead on arrival once they queue — and then
//! proves the server shed the storm instead of drowning in it: a live
//! un-budgeted request answers normally, the `cancelled` counters moved,
//! and the latency histogram never saw the doomed jobs. Prints the
//! server's Prometheus exposition on stdout (so callers can grep
//! `arrayflow_cancelled_jobs_total`) and shuts the server down. CI runs
//! this against the release `serve` binary under a hard timeout.
//!
//! ```text
//! serve --listen 127.0.0.1:7433 &
//! cargo run --example deadline_storm -- 127.0.0.1:7433
//! ```

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use arrayflow::prelude::*;

const STORM: usize = 800;

fn main() -> std::io::Result<()> {
    let addr = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "127.0.0.1:7433".to_string());

    // The storm: one pipelined burst of budgeted requests. Every frame
    // carries `deadline_ms: 1`, so by the time a worker dequeues one the
    // budget is long gone and the job is shed without a solver pass.
    eprintln!("deadline_storm: flooding {STORM} requests with a 1 ms budget -> {addr}");
    let stream = TcpStream::connect(&addr)?;
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(Duration::from_secs(30)))?;
    let mut writer = stream.try_clone()?;
    let mut burst = String::new();
    for k in 0..STORM {
        burst.push_str(&format!(
            "{{\"id\": {k}, \"verb\": \"analyze\", \"program\": \"do i = 1, {} S[i+1] := S[i] + z; end\", \"deadline_ms\": 1}}\n",
            100 + k
        ));
    }
    writer.write_all(burst.as_bytes())?;
    let (mut cancelled, mut ok, mut other) = (0u64, 0u64, 0u64);
    let mut lines = BufReader::new(stream).lines();
    for _ in 0..STORM {
        let line = lines.next().expect("storm response")?;
        if line.contains("\"kind\":\"cancelled\"") {
            cancelled += 1;
        } else if line.contains("\"ok\":true") {
            ok += 1;
        } else {
            other += 1;
        }
    }
    eprintln!("deadline_storm: {STORM} answered: {cancelled} cancelled, {ok} ok, {other} other");
    assert!(cancelled > 0, "the storm must be shed, not served");

    // Live traffic afterwards: an un-budgeted request on a fresh
    // connection must answer normally — the storm left no dead weight.
    let mut client = Client::connect(&addr, ClientConfig::default())
        .map_err(|e| std::io::Error::other(format!("cannot reach {addr}: {e}")))?;
    let started = Instant::now();
    let live = client
        .analyze("do i = 1, 60 A[i+2] := A[i] + x; end")
        .map_err(|e| std::io::Error::other(format!("live analyze failed: {e}")))?;
    assert!(live.contains("\"ok\":true"), "live request must succeed");
    eprintln!(
        "deadline_storm: live un-budgeted analyze answered ok in {:.1} ms",
        started.elapsed().as_secs_f64() * 1e3
    );

    // The exposition goes to stdout for the caller to grep; pull the
    // shed accounting out for the human-readable summary.
    let metrics = client
        .metrics_prometheus()
        .map_err(|e| std::io::Error::other(format!("metrics failed: {e}")))?;
    let counter = |needle: &str| -> u64 {
        metrics
            .lines()
            .filter(|l| l.starts_with(needle))
            .filter_map(|l| l.rsplit(' ').next()?.parse::<u64>().ok())
            .sum()
    };
    eprintln!(
        "deadline_storm: server counted {} cancelled (expired {}, disconnect {}), {} budgeted frames, latency histogram holds {} timed requests",
        counter("arrayflow_cancelled_jobs_total"),
        counter("arrayflow_cancelled_jobs_total{reason=\"expired\"}"),
        counter("arrayflow_cancelled_jobs_total{reason=\"disconnect\"}"),
        counter("arrayflow_deadline_propagated_total"),
        counter("arrayflow_request_latency_us_count"),
    );
    print!("{metrics}");

    client
        .shutdown()
        .map_err(|e| std::io::Error::other(format!("shutdown failed: {e}")))?;
    eprintln!("deadline_storm: ok");
    Ok(())
}
