//! The paper's Fig. 6 and Fig. 7: redundant store elimination with loop
//! unpeeling, and redundant load elimination with scalar temporaries.
//!
//! ```text
//! cargo run --example redundancy_elimination
//! ```

use arrayflow::ir::interp::run_with;
use arrayflow::ir::{Env, Program};
use arrayflow::opt::{eliminate_redundant_loads, eliminate_redundant_stores};
use arrayflow::workloads::{fig6, fig7};

fn measure(p: &Program) -> (u64, u64) {
    let env = run_with(p, |e: &mut Env| {
        for a in p.symbols.array_ids() {
            for k in -8..1100 {
                e.set_elem(a, vec![k], k % 13);
            }
        }
        for v in p.symbols.var_ids() {
            e.set_scalar(v, 1);
        }
    })
    .unwrap();
    (env.stats.array_reads, env.stats.array_writes)
}

fn main() {
    // ---- Fig. 6: the conditional store A[i+1] is overwritten by A[i] one
    // iteration later, so it is removed from all but the final iteration.
    let p6 = fig6(1000);
    println!(
        "Fig. 6 input:\n{}",
        arrayflow::ir::pretty::print_program(&p6)
    );
    let se = eliminate_redundant_stores(&p6).unwrap();
    println!(
        "removed {} store(s), unpeeled the final {} iteration(s):\n{}",
        se.removed.len(),
        se.unpeeled,
        arrayflow::ir::pretty::print_program(&se.program)
    );
    let (_, w_before) = measure(&p6);
    let (_, w_after) = measure(&se.program);
    println!("array writes: {w_before} -> {w_after}\n");

    // ---- Fig. 7: the conditional read A[i] loads the value A[i+1] stored
    // one iteration earlier; a scalar temporary chain carries it instead.
    let p7 = fig7(1000);
    println!(
        "Fig. 7 input:\n{}",
        arrayflow::ir::pretty::print_program(&p7)
    );
    let le = eliminate_redundant_loads(&p7).unwrap();
    println!(
        "replaced {} load(s) via {} temporary chain(s):\n{}",
        le.replaced_uses,
        le.chains,
        arrayflow::ir::pretty::print_program(&le.program)
    );
    let (r_before, _) = measure(&p7);
    let (r_after, _) = measure(&le.program);
    println!("array reads: {r_before} -> {r_after}");
}
