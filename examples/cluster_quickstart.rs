//! Three-node cluster smoke against already-running `serve` processes.
//!
//! Expects a router address as the first argument (default
//! `127.0.0.1:7500`), fronting nodes started along these lines:
//!
//! ```text
//! serve --listen 127.0.0.1:7501 --node-id n1 --store /tmp/af-n1 \
//!       --replicate-to 127.0.0.1:7502 &
//! serve --listen 127.0.0.1:7502 --node-id n2 --store /tmp/af-n2 \
//!       --replicate-to 127.0.0.1:7503 &
//! serve --listen 127.0.0.1:7503 --node-id n3 --store /tmp/af-n3 \
//!       --replicate-to 127.0.0.1:7501 &
//! serve --listen 127.0.0.1:7500 \
//!       --router n1=127.0.0.1:7501,n2=127.0.0.1:7502,n3=127.0.0.1:7503 &
//! cargo run --example cluster_quickstart -- 127.0.0.1:7500
//! ```
//!
//! Demonstrates that routing is by canonical fingerprint: a warm analyze
//! followed by a bare fingerprint probe lands on the same shard and hits
//! its cache, and the merged metrics exposition carries per-node series
//! (`node="n1"` ... plus the router's own `node="router"` counters).

use arrayflow::prelude::*;

fn main() -> std::io::Result<()> {
    let addr = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "127.0.0.1:7500".to_string());
    fn fail(what: &str) -> impl Fn(arrayflow::service::ClientError) -> std::io::Error + '_ {
        move |e| std::io::Error::other(format!("{what}: {e}"))
    }
    let mut client = Client::connect(&addr, ClientConfig::default())
        .map_err(|e| std::io::Error::other(format!("cannot reach router at {addr}: {e}")))?;

    // A handful of distinct loops spread across the shards.
    let programs: Vec<String> = (1..=6)
        .map(|d| format!("do i = 1, 100 A[i+{d}] := A[i] + x; end"))
        .collect();
    for src in &programs {
        let fp = fingerprint(src).expect("single-loop program");
        let warm = client
            .analyze_fingerprint(fp, Some(src))
            .map_err(fail("analyze via router"))?;
        // Bare probe: routed by the same fingerprint, so it must land on
        // the node that just cached the report.
        let hit = client
            .analyze_fingerprint(fp, None)
            .map_err(fail("fingerprint probe via router"))?;
        assert_eq!(hit.cache_hits, 1, "probe must hit the owning shard");
        assert_eq!(
            hit.loops[0].report, warm.loops[0].report,
            "shard must ship byte-identical report bytes"
        );
    }
    eprintln!(
        "cluster_quickstart: {} loops analyzed and re-probed warm",
        programs.len()
    );

    // The merged exposition: per-node series plus router counters.
    let metrics = client
        .metrics_prometheus()
        .map_err(fail("merged metrics"))?;
    assert!(
        metrics.contains("arrayflow_router_forwards_total"),
        "router counters missing from merged exposition"
    );
    assert!(
        metrics.contains("node=\""),
        "per-node labels missing from merged exposition"
    );
    print!("{metrics}");
    eprintln!("cluster_quickstart: ok");
    Ok(())
}
