//! Regenerates the paper's Table 1: the must-reaching-definitions tuples
//! for the Fig. 1 loop, pass by pass.
//!
//! ```text
//! cargo run --example paper_table1
//! ```

use arrayflow::analyses::report::render_table1;
use arrayflow::workloads::fig1;

fn main() {
    let program = fig1(None);
    println!(
        "Fig. 1 loop:\n{}",
        arrayflow::ir::pretty::print_program(&program)
    );
    println!("Table 1 — data flow tuples for must-reaching definitions:");
    println!("{}", render_table1(&program).unwrap());
    println!(
        "(n1..n5 correspond to the paper's nodes 1–4 and exit; n0 is the \
         virtual entry and n3 the explicit branch test.)"
    );
}
