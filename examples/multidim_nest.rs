//! The paper's Fig. 4: recurrent access patterns in a loop nest with
//! multi-dimensional arrays, found by linearization and hierarchical
//! (innermost-first) analysis.
//!
//! ```text
//! cargo run --example multidim_nest
//! ```

use arrayflow::analyses::{analyze_nest, nest_distance_vectors, nest_sites};
use arrayflow::workloads::fig4;

fn main() {
    let program = fig4();
    println!(
        "Fig. 4 nest:\n{}",
        arrayflow::ir::pretty::print_program(&program)
    );

    // Innermost first: analyses[0] is the i-loop (the j-loop summarizes it
    // in analyses[1]).
    let analyses = analyze_nest(&program).unwrap();
    for a in &analyses {
        let iv = a.symbols.var_name(a.graph.iv);
        println!("--- analysis with respect to `{iv}` ---");
        let reuses = a.reuse_pairs();
        if reuses.is_empty() {
            println!("  (no constant-distance recurrence in `{iv}` alone)");
        }
        for r in reuses {
            println!(
                "  {} reuses {} at distance {} in `{iv}`",
                a.site_text(r.use_site),
                a.site_text(r.gen_site),
                r.distance
            );
        }
    }
    println!(
        "\nStatement (1) recurs at distance 1 in `i`, statement (2) at \
         distance 2 in `j`; statement (3)'s diagonal recurrence needs both \
         induction variables simultaneously and is beyond a single-loop \
         distance — exactly the paper's §3.6 discussion."
    );

    // The §6 "future work" extension: distance *vectors* over the whole
    // nest recover statement (3) too.
    let (ivs, sites) = nest_sites(&program).unwrap();
    let iv_names: Vec<&str> = ivs.iter().map(|&v| program.symbols.var_name(v)).collect();
    println!("\ndistance vectors over ({}):", iv_names.join(", "));
    for d in nest_distance_vectors(&program).unwrap() {
        if sites[d.src].is_def {
            println!(
                "  {} -> {}: {:?}",
                arrayflow_ir::pretty::ref_to_string(&program.symbols, &sites[d.src].aref),
                arrayflow_ir::pretty::ref_to_string(&program.symbols, &sites[d.dst].aref),
                d.distances
            );
        }
    }
}
