//! Persisting analysis reports across process restarts.
//!
//! Runs the engine twice over the same program stream with a disk store
//! underneath the memo cache: the first "process" solves everything and
//! persists each report through the async writer tier; the second
//! warm-starts its cache from the recovered store and answers the whole
//! stream without solving anything.
//!
//! Run with `cargo run --example persistent_cache`.

use std::sync::Arc;

use arrayflow::prelude::*;
use arrayflow::store::PersistentTier;
use arrayflow::workloads::{random_loop, LoopShape};

fn main() {
    let dir = std::env::temp_dir().join(format!("arrayflow-example-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let shape = LoopShape::default();
    let batch: Vec<_> = (0..20u64).map(|seed| random_loop(&shape, seed)).collect();

    // "Process" one: solve and persist.
    {
        let store = Arc::new(Store::open(StoreConfig::at(&dir)).expect("open store"));
        let tier = PersistentTier::new(Arc::clone(&store), 1024);
        let mut engine = Engine::new(EngineConfig::default());
        engine.set_second_tier(tier.clone());
        engine.analyze_batch(&batch);
        // Graceful shutdown: wait for the writer thread to land every
        // queued append before "exiting".
        tier.flush();
        println!("first run : {}", engine.stats().cache);
        println!("store     : {}", store.stats());
    }

    // "Process" two: recover, warm-start, replay.
    {
        let store = Arc::new(Store::open(StoreConfig::at(&dir)).expect("recover store"));
        let recovery = store.recovery();
        println!(
            "\nrecovered : {} record(s) from {} segment(s), {} skipped",
            recovery.live_records, recovery.segments, recovery.skipped
        );

        let engine = Engine::new(EngineConfig::default());
        let loaded = store.for_each_live(|key, report| engine.preload(key, Arc::new(report)));
        engine.analyze_batch(&batch);
        let stats = engine.stats();
        println!("second run: {} ({loaded} preloaded)", stats.cache);

        assert_eq!(stats.cache.misses, 0, "warm cache answers everything");
        assert_eq!(stats.cache.hits, batch.len() as u64);
    }

    let _ = std::fs::remove_dir_all(&dir);
}
