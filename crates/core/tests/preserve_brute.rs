#![cfg(feature = "proptest")]

//! Ground-truth validation of the preserve-constant derivation: for small
//! integer subscript pairs, compare the closed-form `p` of
//! `preserve_constant_with_pr` against a brute-force enumeration of every
//! (iteration, distance) kill over the concrete iteration space.
//!
//! Soundness (must-mode): the computed `p` never exceeds the true maximal
//! preserved distance. For may-mode the dual holds: the computed `p` never
//! *underestimates* what may survive a definite kill.

use arrayflow_core::preserve::preserve_constant_with_pr;
use arrayflow_core::{Direction, Dist, GenRef, KillKind, KillSite, RefId};
use arrayflow_graph::NodeId;
use arrayflow_ir::{AffineSub, ArrayRef, Expr};
use proptest::prelude::*;

fn gen_of(a: i64, b: i64) -> GenRef {
    GenRef {
        id: RefId(0),
        node: NodeId(1),
        aref: ArrayRef::new(arrayflow_ir::ArrayId(0), Expr::Const(0)),
        sub: AffineSub::simple(a, b),
        is_def: true,
        stmt: None,
        origin: Some(0),
    }
}

fn kill_of(a: i64, b: i64) -> KillSite {
    KillSite {
        node: NodeId(2),
        array: arrayflow_ir::ArrayId(0),
        kind: KillKind::Exact(AffineSub::simple(a, b)),
        is_def: true,
        origin: Some(1),
    }
}

/// Brute-force "true" preserve constant: the largest δ (≤ UB − 1) such
/// that no killer execution destroys an existing generator instance at any
/// distance δ' with pr ≤ δ' ≤ δ. Returns `Dist::Bottom` when even δ = pr
/// fails (matching the paper's convention that δ < pr never matters).
fn brute_force(
    (a1, b1): (i64, i64),
    (a2, b2): (i64, i64),
    pr: u64,
    ub: i64,
    direction: Direction,
) -> Dist {
    let killed = |delta: i64| -> bool {
        for i in 1..=ub {
            // Killer at iteration i touches f2(i); the generator instance
            // at distance delta (relative to i, in flow direction) sits at
            // f1(source) where source must be a real iteration.
            let source = match direction {
                Direction::Forward => i - delta,
                Direction::Backward => i + delta,
            };
            if source < 1 || source > ub {
                continue;
            }
            if a2 * i + b2 == a1 * source + b1 {
                return true;
            }
        }
        false
    };
    let mut best: Option<i64> = None;
    for delta in pr as i64..=(ub - 1) {
        if killed(delta) {
            break;
        }
        best = Some(delta);
    }
    match best {
        None => Dist::Bottom,
        Some(d) if d >= ub - 1 => Dist::Top,
        Some(d) => Dist::Fin(d as u64),
    }
}

fn check(a1: i64, b1: i64, a2: i64, b2: i64, pr: u64, ub: i64, direction: Direction) {
    let gen = gen_of(a1, b1);
    let kill = kill_of(a2, b2);
    let computed = preserve_constant_with_pr(
        &gen,
        &kill,
        Some(ub),
        direction,
        arrayflow_core::Mode::Must,
        pr,
    )
    .normalize(Some(ub));
    let truth = brute_force((a1, b1), (a2, b2), pr, ub, direction);
    assert!(
        computed <= truth,
        "unsound: gen {a1}*i+{b1}, kill {a2}*i+{b2}, pr={pr}, ub={ub}, {direction:?}: \
         computed {computed} > true {truth}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2000))]

    #[test]
    fn must_constants_are_sound_forward(
        a1 in -3i64..=3,
        b1 in -6i64..=6,
        a2 in -3i64..=3,
        b2 in -6i64..=6,
        pr in 0u64..=1,
        ub in 2i64..=12,
    ) {
        check(a1, b1, a2, b2, pr, ub, Direction::Forward);
    }

    #[test]
    fn must_constants_are_sound_backward(
        a1 in -3i64..=3,
        b1 in -6i64..=6,
        a2 in -3i64..=3,
        b2 in -6i64..=6,
        pr in 0u64..=1,
        ub in 2i64..=12,
    ) {
        check(a1, b1, a2, b2, pr, ub, Direction::Backward);
    }

    #[test]
    fn may_constants_dominate_must(
        a1 in -3i64..=3,
        b1 in -6i64..=6,
        a2 in -3i64..=3,
        b2 in -6i64..=6,
        pr in 0u64..=1,
        ub in 2i64..=12,
    ) {
        // A may-problem overestimates: its preserve constant must be at
        // least the must-problem's (fewer definite kills than possible
        // kills).
        let gen = gen_of(a1, b1);
        let kill = kill_of(a2, b2);
        let must = preserve_constant_with_pr(
            &gen, &kill, Some(ub), Direction::Forward,
            arrayflow_core::Mode::Must, pr);
        let may = preserve_constant_with_pr(
            &gen, &kill, Some(ub), Direction::Forward,
            arrayflow_core::Mode::May, pr);
        prop_assert!(may >= must, "may {may} < must {must}");
    }
}

#[test]
fn exactness_on_equal_coefficient_pairs() {
    // For equal non-zero coefficients (the overwhelmingly common case) the
    // derivation is exact, not just sound.
    for a in [1i64, 2, -1] {
        for b1 in -4i64..=4 {
            for b2 in -4i64..=4 {
                for pr in 0u64..=1 {
                    let ub = 10;
                    let gen = gen_of(a, b1);
                    let kill = kill_of(a, b2);
                    let computed = preserve_constant_with_pr(
                        &gen,
                        &kill,
                        Some(ub),
                        Direction::Forward,
                        arrayflow_core::Mode::Must,
                        pr,
                    )
                    .normalize(Some(ub));
                    let truth = brute_force((a, b1), (a, b2), pr, ub, Direction::Forward);
                    assert_eq!(
                        computed, truth,
                        "a={a} b1={b1} b2={b2} pr={pr}: computed {computed}, true {truth}"
                    );
                }
            }
        }
    }
}
