//! Derivation of preserve constants (paper §3.1.2, §3.3, §3.4).
//!
//! For a generating reference `d = X[f₁(i)]` and a killing site
//! `d' = X[f₂(i)] ∈ K[n]`, the preserve function at node `n` is
//! `f(x) = min(x, p)` where the constant `p` bounds the previous instances
//! of `d` that `d'` can never redefine. With `f₁(i) = a₁·i + b₁` and
//! `f₂(i) = a₂·i + b₂`, a kill at distance `δ` requires `f₂(i) = f₁(i − δ)`,
//! i.e. `δ = k(i) = ((a₁ − a₂)·i + (b₁ − b₂)) / a₁` — so the shape of the
//! (rational, linear) function `k` over the iteration space `I = [1, UB]`
//! decides `p`:
//!
//! * `k ≡ pr(d, n)` — every instance is killed: `p = ⊥`;
//! * `k < pr` on all of `I` — nothing is killed: `p = ⊤`;
//! * otherwise `p = ⌈min{k(i) | i ∈ I, k(i) > pr}⌉ − 1`.
//!
//! `pr(d, n) = 0` iff `d`'s node precedes `n` within the iteration, else 1.
//! May-problems use the *definite kill* rule instead, and backward problems
//! negate `k`'s numerator. Everything here is exact integer/rational
//! arithmetic; symbolic coefficients are resolved through
//! [`LinExpr::ratio`](arrayflow_ir::LinExpr::ratio), and undecidable cases
//! fall back to the sound side of the respective mode.

use arrayflow_graph::LoopGraph;

use crate::lattice::Dist;
use crate::problem::{Direction, GenRef, KillKind, KillSite, Mode};

/// The `pr(d, n)` predicate: 0 if `d` occurs in a node that precedes `n`
/// in the direction of information flow, 1 otherwise (paper §3.1.2).
pub fn pr(
    gen: &GenRef,
    kill_node: arrayflow_graph::NodeId,
    graph: &LoopGraph,
    direction: Direction,
) -> u64 {
    let before = match direction {
        Direction::Forward => graph.precedes(gen.node, kill_node),
        Direction::Backward => graph.precedes(kill_node, gen.node),
    };
    u64::from(!before)
}

/// Computes the preserve constant `p` for one (generator, kill site) pair.
///
/// Returns `⊤` when the kill site concerns a different array.
pub fn preserve_constant(
    gen: &GenRef,
    kill: &KillSite,
    graph: &LoopGraph,
    direction: Direction,
    mode: Mode,
) -> Dist {
    let pr = pr(gen, kill.node, graph, direction);
    preserve_constant_with_pr(gen, kill, graph.ub, direction, mode, pr)
}

/// [`preserve_constant`] with an explicit `pr`. The post-generate kills of
/// [`node_post_preserve`] force `pr = 0`: a killer executing *after* the
/// generator within the same node can destroy even the instance created
/// this iteration.
pub fn preserve_constant_with_pr(
    gen: &GenRef,
    kill: &KillSite,
    ub: Option<i64>,
    direction: Direction,
    mode: Mode,
    pr: u64,
) -> Dist {
    if kill.array != gen.aref.array {
        return Dist::Top;
    }
    let kill_sub = match &kill.kind {
        KillKind::AllOfArray => {
            // Summary nodes / non-affine definitions: assume the worst for
            // must-information, the best (nothing definitely killed) for
            // may-information (paper §3.2, §3.3).
            return match mode {
                Mode::Must => Dist::Bottom,
                Mode::May => Dist::Top,
            };
        }
        KillKind::Exact(sub) => sub,
    };

    // Numerator of k(i): forward (a₁−a₂)·i + (b₁−b₂); backward negated.
    let (da, db) = match direction {
        Direction::Forward => (
            gen.sub.coef.clone() - kill_sub.coef.clone(),
            gen.sub.rest.clone() - kill_sub.rest.clone(),
        ),
        Direction::Backward => (
            kill_sub.coef.clone() - gen.sub.coef.clone(),
            kill_sub.rest.clone() - gen.sub.rest.clone(),
        ),
    };
    let denom = &gen.sub.coef;

    if denom.is_zero() {
        return invariant_generator(gen, kill_sub, pr, ub, mode);
    }

    // k(i) = qa·i + qb with qa = Δa/a₁ and qb = Δb/a₁, both exact rationals
    // when they exist at all (symbolic parts must cancel).
    let (Some(qa), Some(qb)) = (da.ratio(denom), db.ratio(denom)) else {
        return undecidable(mode);
    };

    match mode {
        Mode::May => definite_kill(qa, qb, pr, ub),
        Mode::Must => must_constant(qa, qb, pr, ub, direction),
    }
}

/// Sound fallback when the subscript relation cannot be decided.
fn undecidable(mode: Mode) -> Dist {
    match mode {
        Mode::Must => Dist::Bottom,
        Mode::May => Dist::Top,
    }
}

/// The generator is loop-invariant (`a₁ = 0`): all its instances share one
/// location, so any killer that can touch that location destroys them all.
fn invariant_generator(
    gen: &GenRef,
    kill_sub: &arrayflow_ir::AffineSub,
    pr: u64,
    ub: Option<i64>,
    mode: Mode,
) -> Dist {
    let diff = kill_sub.rest.clone() - gen.sub.rest.clone();
    if kill_sub.coef.is_zero() {
        // Invariant vs invariant: overlap iff b₂ = b₁.
        if diff.is_zero() {
            // Same location rewritten every iteration.
            return match (mode, pr) {
                (Mode::Must, _) => Dist::Bottom,
                (Mode::May, 0) => Dist::Bottom,
                (Mode::May, _) => Dist::Top, // δ < pr instances are unaffected
            };
        }
        if let Some(c) = diff.as_constant() {
            debug_assert!(c != 0);
            return Dist::Top; // provably disjoint locations
        }
        return undecidable(mode);
    }
    // Invariant generator vs a sweeping killer a₂·i + b₂: the killer hits
    // the location when a₂·i = b₁ − b₂ for some i ∈ I.
    match mode {
        Mode::May => Dist::Top, // never a definite per-distance kill
        Mode::Must => {
            let (Some(a2), Some(d)) = (kill_sub.coef.as_constant(), (-diff).as_constant()) else {
                return Dist::Bottom;
            };
            if a2 != 0 && d % a2 == 0 {
                let i0 = d / a2;
                let hit = i0 >= 1 && ub.is_none_or(|ub| i0 <= ub);
                if hit {
                    return Dist::Bottom;
                }
            }
            Dist::Top
        }
    }
}

/// Must-mode constant for `k(i) = qa·i + qb` (rationals as reduced
/// `(num, den)` pairs with positive denominators).
///
/// A kill at distance `δ = k(i)` is only real when the killed instance
/// *exists*: the generator must have run at iteration `i − δ ≥ 1`
/// (forward), resp. will run at `i + δ ≤ UB` (backward). The paper's
/// derivation leaves this implicit ("the range of previous instances");
/// making it explicit is both necessary for precision (an invariant
/// `X[3]` never kills instances of `X[i+4]`, because `i = −1` is outside
/// the loop) and keeps the subsumption property over the dependence-based
/// baseline.
fn must_constant(
    qa: (i64, i64),
    qb: (i64, i64),
    pr: u64,
    ub: Option<i64>,
    direction: Direction,
) -> Dist {
    let pr = pr as i128;
    if qa.0 == 0 {
        // k is the constant qb.
        let (n, d) = (qb.0 as i128, qb.1 as i128);
        if n < pr * d {
            return Dist::Top; // k < pr: no instance killed
        }
        if d != 1 && n != pr * d {
            // Non-integer constant: a kill would need an integer distance,
            // so none ever occurs. (Slightly sharper than the paper's
            // ⌈k⌉ − 1 approximation, and exact.)
            return Dist::Top;
        }
        // Integer constant c ≥ pr: a kill at distance c needs a valid
        // source iteration, i.e. the loop must run at least c + 1 times.
        let c = n / d;
        if let Some(ub) = ub {
            if (ub as i128) < c + 1 {
                return Dist::Top;
            }
        }
        return if n == pr * d {
            Dist::Bottom // k ≡ pr: every instance killed
        } else {
            Dist::Fin((c - 1) as u64) // c > pr: p = c − 1
        };
    }

    // Common denominator: k(i) = (A·i + B) / Dn with Dn > 0.
    let a = qa.0 as i128 * qb.1 as i128;
    let b = qb.0 as i128 * qa.1 as i128;
    let dn = qa.1 as i128 * qb.1 as i128;
    debug_assert!(dn > 0);

    // Feasible killing iterations satisfy, simultaneously:
    //   1 ≤ i ≤ UB                              (iteration space)
    //   instance existence (see above)
    //   A·i + B ≥ pr·Dn (+1 for strict)         (kill depth)
    // All are linear in i; intersect them into [lo, hi].
    let mut lo: i128 = 1;
    let mut hi: i128 = ub.map_or(i128::MAX / 4, |u| u as i128);
    let add = |e: i128, f: i128, lo: &mut i128, hi: &mut i128, feasible: &mut bool| {
        // constraint e·i ≥ f
        match e.cmp(&0) {
            std::cmp::Ordering::Greater => *lo = (*lo).max(ceil_div(f, e)),
            std::cmp::Ordering::Less => *hi = (*hi).min(floor_div(f, e)),
            std::cmp::Ordering::Equal => {
                if f > 0 {
                    *feasible = false;
                }
            }
        }
    };
    let mut feasible = true;
    match direction {
        // i − k(i) ≥ 1  ⟺  (Dn − A)·i ≥ B + Dn
        Direction::Forward => add(dn - a, b + dn, &mut lo, &mut hi, &mut feasible),
        // i + k(i) ≤ UB ⟺ −(Dn + A)·i ≥ B − UB·Dn (only with a known UB)
        Direction::Backward => {
            if let Some(u) = ub {
                add(
                    -(dn + a),
                    b - u as i128 * dn,
                    &mut lo,
                    &mut hi,
                    &mut feasible,
                );
            }
        }
    }

    // Exact hit at distance pr within the feasible range → ⊥ (the paper's
    // case-1 answer extended to non-constant k; its ⌈min k > pr⌉ − 1
    // approximation alone would be unsound here).
    let c0 = pr * dn - b; // A·i == c0 ⟺ k(i) == pr
    if feasible && c0 % a == 0 {
        let i0 = c0 / a;
        if i0 >= lo && i0 <= hi {
            return Dist::Bottom;
        }
    }

    // Strictly-above-pr kills: add A·i ≥ pr·Dn − B + 1 and take the minimum
    // k over the interval (at the lo end when k increases, hi when it
    // decreases).
    add(a, pr * dn - b + 1, &mut lo, &mut hi, &mut feasible);
    if !feasible || lo > hi {
        return Dist::Top;
    }
    let i_star = if a > 0 { lo } else { hi };
    let k_num = a * i_star + b;
    debug_assert!(k_num > pr * dn);
    let p = ceil_div(k_num, dn) - 1;
    debug_assert!(p >= 0);
    Dist::Fin(p as u64)
}

/// May-mode *definite kill* rule (paper §3.3): only a killer of the form
/// `X[f(i) + c]` (constant k) definitely destroys instances — and only
/// when the loop runs long enough (`UB ≥ c + 1`) for a killed instance to
/// exist at all.
fn definite_kill(qa: (i64, i64), qb: (i64, i64), pr: u64, ub: Option<i64>) -> Dist {
    if qa.0 != 0 {
        return Dist::Top;
    }
    let (n, d) = (qb.0 as i128, qb.1 as i128);
    let pr = pr as i128;
    if d == 1 && n >= pr {
        let c = n;
        if let Some(ub) = ub {
            if (ub as i128) < c + 1 {
                return Dist::Top;
            }
        }
        if c == pr {
            return Dist::Bottom; // kills every instance it can ever see
        }
        return Dist::Fin((c - 1) as u64);
    }
    Dist::Top
}

fn ceil_div(a: i128, b: i128) -> i128 {
    debug_assert!(b != 0);
    let q = a / b;
    if (a % b != 0) && ((a < 0) == (b < 0)) {
        q + 1
    } else {
        q
    }
}

fn floor_div(a: i128, b: i128) -> i128 {
    debug_assert!(b != 0);
    let q = a / b;
    if (a % b != 0) && ((a < 0) != (b < 0)) {
        q - 1
    } else {
        q
    }
}

/// Combines the preserve constants of every kill site in a node that applies
/// to `gen`: composition of `min`s is `min` of the constants.
pub fn node_preserve(
    gen: &GenRef,
    node: arrayflow_graph::NodeId,
    kills: &[KillSite],
    graph: &LoopGraph,
    direction: Direction,
    mode: Mode,
) -> Dist {
    let mut p = Dist::Top;
    for kill in kills.iter().filter(|k| k.node == node) {
        p = p.min(preserve_constant(gen, kill, graph, direction, mode));
    }
    p
}

/// The *post-generate* preserve constant for a reference generated in
/// `node`: kills from sites in the same node that execute **after** the
/// generating reference in the direction of flow. Such a killer can destroy
/// the distance-0 instance the node just created — a case the paper's
/// `pr = 1` same-node convention does not cover (e.g. in
/// `A[2i−1] := A[i+2] + 2`, the definition overwrites the element the use
/// just read whenever `2i−1 = i+2`).
///
/// Within an assignment, uses execute before the definition; so forward
/// problems post-kill use-generators by the statement's definition, and
/// backward problems post-kill the definition by the statement's uses.
/// Summary nodes have unknown internal order, so every non-self kill site
/// applies. A kill site that *is* the generator never post-kills it.
pub fn node_post_preserve(
    gen: &GenRef,
    node: arrayflow_graph::NodeId,
    kills: &[KillSite],
    graph: &LoopGraph,
    direction: Direction,
    mode: Mode,
) -> Dist {
    let is_summary = graph.node(node).is_summary();
    let mut p = Dist::Top;
    for kill in kills.iter().filter(|k| k.node == node) {
        let self_site = match (gen.origin, kill.origin) {
            (Some(a), Some(b)) => a == b,
            // Hand-built specs without origins: a def kill with the
            // generator's own subscript in the generator's node is the
            // generator.
            _ => {
                gen.is_def == kill.is_def
                    && matches!(&kill.kind, KillKind::Exact(s) if *s == gen.sub)
            }
        };
        if self_site {
            continue;
        }
        let applies = if is_summary {
            true
        } else {
            match direction {
                Direction::Forward => kill.is_def && !gen.is_def,
                Direction::Backward => !kill.is_def && gen.is_def,
            }
        };
        if !applies {
            continue;
        }
        p = p.min(preserve_constant_with_pr(
            gen, kill, graph.ub, direction, mode, 0,
        ));
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use arrayflow_graph::{build_loop_graph, NodeId};
    use arrayflow_ir::{parse_program, AffineSub};

    /// Builds a two-statement loop `X[<gen>] := 0; X[<kill>] := 0;` and
    /// returns the preserve constant of the *gen* (first statement) with
    /// respect to the kill site in the *second* statement — i.e. pr = 0.
    fn p_of(gen_sub: AffineSub, kill_sub: AffineSub, ub: Option<i64>, mode: Mode) -> Dist {
        let ub_txt = ub.map_or("UB".to_string(), |u| u.to_string());
        let prog =
            parse_program(&format!("do i = 1, {ub_txt} X[i] := 0; X[i+1] := 0; end")).unwrap();
        let graph = build_loop_graph(prog.sole_loop().unwrap());
        // Nodes: 0 = entry, 1 = first assign, 2 = second assign, 3 = exit.
        let gen = GenRef {
            id: crate::problem::RefId(0),
            node: NodeId(1),
            aref: arrayflow_ir::ArrayRef::new(
                prog.symbols.lookup_array("X").unwrap(),
                arrayflow_ir::Expr::Const(0),
            ),
            sub: gen_sub,
            is_def: true,
            stmt: None,
            origin: None,
        };
        let kill = KillSite {
            node: NodeId(2),
            array: prog.symbols.lookup_array("X").unwrap(),
            kind: KillKind::Exact(kill_sub),
            is_def: true,
            origin: None,
        };
        preserve_constant(&gen, &kill, &graph, Direction::Forward, mode)
    }

    #[test]
    fn identical_references_kill_everything() {
        // d = X[i], d' = X[i] in a later node: k ≡ 0 = pr → ⊥.
        let p = p_of(
            AffineSub::simple(1, 0),
            AffineSub::simple(1, 0),
            None,
            Mode::Must,
        );
        assert_eq!(p, Dist::Bottom);
    }

    #[test]
    fn paper_case_no_kill() {
        // d = X[i], d' = X[i+2]: k ≡ −2 < pr → ⊤ (the paper's example).
        let p = p_of(
            AffineSub::simple(1, 0),
            AffineSub::simple(1, 2),
            None,
            Mode::Must,
        );
        assert_eq!(p, Dist::Top);
    }

    #[test]
    fn paper_case_constant_distance() {
        // d = X[i+2], d' = X[i]: k ≡ 2 → p = 1 (the f₃ component of Fig. 3).
        let p = p_of(
            AffineSub::simple(1, 2),
            AffineSub::simple(1, 0),
            None,
            Mode::Must,
        );
        assert_eq!(p, Dist::Fin(1));
    }

    #[test]
    fn paper_case_fractional_slope() {
        // d = X[2i], d' = X[i]: k(i) = i/2; min above 0 is k(1) = ½ → p = 0
        // (the f₄ component of Fig. 3).
        let p = p_of(
            AffineSub::simple(2, 0),
            AffineSub::simple(1, 0),
            None,
            Mode::Must,
        );
        assert_eq!(p, Dist::Fin(0));
    }

    #[test]
    fn decreasing_k_with_unknown_bound() {
        // d = X[i], d' = X[2i]: k(i) = −i < 0 everywhere → ⊤.
        let p = p_of(
            AffineSub::simple(1, 0),
            AffineSub::simple(2, 0),
            None,
            Mode::Must,
        );
        assert_eq!(p, Dist::Top);
    }

    #[test]
    fn k_crossing_pr_kills_everything() {
        // d = X[i], d' = X[4 − i]: k(i) = 2i − 4 hits pr = 0 at i = 2 — the
        // killer overwrites the *current* instance there, so nothing is
        // preserved (the ⌈min k > pr⌉ − 1 shortcut alone would unsoundly
        // report 1).
        let p = p_of(
            AffineSub::simple(1, 0),
            AffineSub::simple(-1, 4),
            Some(10),
            Mode::Must,
        );
        assert_eq!(p, Dist::Bottom);
    }

    #[test]
    fn k_missing_pr_by_parity_uses_min_above() {
        // d = X[i], d' = X[5 − i]: k(i) = 2i − 5 is always odd, never 0;
        // smallest qualifying value is k(3) = 1 → p = 0.
        let p = p_of(
            AffineSub::simple(1, 0),
            AffineSub::simple(-1, 5),
            Some(10),
            Mode::Must,
        );
        assert_eq!(p, Dist::Fin(0));
    }

    #[test]
    fn kills_of_preloop_instances_do_not_count() {
        // d = X[i+100], d' = X[2i] with UB = 10: k(i) = 100 − i suggests
        // kills at huge distances, but the "killed" instances would have
        // been generated before iteration 1 — the killer only ever writes
        // locations ≤ 20 while the generator writes ≥ 101. No kill: ⊤.
        let p = p_of(
            AffineSub::simple(1, 100),
            AffineSub::simple(2, 0),
            Some(10),
            Mode::Must,
        );
        assert_eq!(p, Dist::Top);
        // A genuine in-range kill: d = X[i], d' = X[2i−3], UB = 10:
        // k(i) = 3 − i hits distance 0 at i = 3 (the killer rewrites the
        // element the generator just wrote) → ⊥.
        let p = p_of(
            AffineSub::simple(1, 0),
            AffineSub::simple(2, -3),
            Some(10),
            Mode::Must,
        );
        assert_eq!(p, Dist::Bottom);
        // Clamp UB to 2: the distance-0 hit at i = 3 is outside the loop;
        // the only real kill is δ = 1 at i = 2 (source iteration 1) → p = 0.
        let p = p_of(
            AffineSub::simple(1, 0),
            AffineSub::simple(2, -3),
            Some(2),
            Mode::Must,
        );
        assert_eq!(p, Dist::Fin(0));
    }

    #[test]
    fn non_integer_constant_k_never_kills() {
        // d = X[2i+1], d' = X[2i]: k ≡ ((2−2)i + 1)/2 = ½ → no integer
        // distance ever matches → ⊤ (odd vs even locations).
        let p = p_of(
            AffineSub::simple(2, 1),
            AffineSub::simple(2, 0),
            None,
            Mode::Must,
        );
        assert_eq!(p, Dist::Top);
    }

    #[test]
    fn may_mode_definite_kill() {
        // d = X[i], d' = X[i+3]: k ≡ … wait for may we need the killer to
        // overwrite *previous* instances: d = X[i+3], d' = X[i] gives
        // k ≡ 3 > pr → p = 2.
        let p = p_of(
            AffineSub::simple(1, 3),
            AffineSub::simple(1, 0),
            None,
            Mode::May,
        );
        assert_eq!(p, Dist::Fin(2));
        // Identical refs: definite kill of everything.
        let p = p_of(
            AffineSub::simple(1, 0),
            AffineSub::simple(1, 0),
            None,
            Mode::May,
        );
        assert_eq!(p, Dist::Bottom);
        // Different slopes: never definite → all preserved.
        let p = p_of(
            AffineSub::simple(2, 0),
            AffineSub::simple(1, 0),
            None,
            Mode::May,
        );
        assert_eq!(p, Dist::Top);
    }

    #[test]
    fn invariant_generator_cases() {
        // X[5] vs X[5]: same location every iteration → ⊥ (must & may).
        let p = p_of(
            AffineSub::simple(0, 5),
            AffineSub::simple(0, 5),
            None,
            Mode::Must,
        );
        assert_eq!(p, Dist::Bottom);
        let p = p_of(
            AffineSub::simple(0, 5),
            AffineSub::simple(0, 5),
            None,
            Mode::May,
        );
        assert_eq!(p, Dist::Bottom);
        // X[5] vs X[7]: disjoint → ⊤.
        let p = p_of(
            AffineSub::simple(0, 5),
            AffineSub::simple(0, 7),
            None,
            Mode::Must,
        );
        assert_eq!(p, Dist::Top);
        // X[5] vs X[i]: the sweep hits location 5 at i = 5 → ⊥ (must).
        let p = p_of(
            AffineSub::simple(0, 5),
            AffineSub::simple(1, 0),
            Some(10),
            Mode::Must,
        );
        assert_eq!(p, Dist::Bottom);
        // X[5] vs X[i] with UB = 3: never reaches 5 → ⊤.
        let p = p_of(
            AffineSub::simple(0, 5),
            AffineSub::simple(1, 0),
            Some(3),
            Mode::Must,
        );
        assert_eq!(p, Dist::Top);
        // X[5] vs X[2i]: 5 is odd → ⊤.
        let p = p_of(
            AffineSub::simple(0, 5),
            AffineSub::simple(2, 0),
            Some(10),
            Mode::Must,
        );
        assert_eq!(p, Dist::Top);
        // May-mode sweeping killer: never definite → ⊤.
        let p = p_of(
            AffineSub::simple(0, 5),
            AffineSub::simple(1, 0),
            Some(10),
            Mode::May,
        );
        assert_eq!(p, Dist::Top);
    }

    #[test]
    fn all_of_array_kills() {
        let prog = parse_program("do i = 1, 10 X[i] := 0; X[i+1] := 0; end").unwrap();
        let graph = build_loop_graph(prog.sole_loop().unwrap());
        let x = prog.symbols.lookup_array("X").unwrap();
        let gen = GenRef {
            id: crate::problem::RefId(0),
            node: NodeId(1),
            aref: arrayflow_ir::ArrayRef::new(x, arrayflow_ir::Expr::Const(0)),
            sub: AffineSub::simple(1, 0),
            is_def: true,
            stmt: None,
            origin: None,
        };
        let kill = KillSite {
            node: NodeId(2),
            array: x,
            kind: KillKind::AllOfArray,
            is_def: true,
            origin: None,
        };
        assert_eq!(
            preserve_constant(&gen, &kill, &graph, Direction::Forward, Mode::Must),
            Dist::Bottom
        );
        assert_eq!(
            preserve_constant(&gen, &kill, &graph, Direction::Forward, Mode::May),
            Dist::Top
        );
    }

    #[test]
    fn other_array_is_ignored() {
        let prog = parse_program("do i = 1, 10 X[i] := 0; Y[i] := 0; end").unwrap();
        let graph = build_loop_graph(prog.sole_loop().unwrap());
        let gen = GenRef {
            id: crate::problem::RefId(0),
            node: NodeId(1),
            aref: arrayflow_ir::ArrayRef::new(
                prog.symbols.lookup_array("X").unwrap(),
                arrayflow_ir::Expr::Const(0),
            ),
            sub: AffineSub::simple(1, 0),
            is_def: true,
            stmt: None,
            origin: None,
        };
        let kill = KillSite {
            node: NodeId(2),
            array: prog.symbols.lookup_array("Y").unwrap(),
            kind: KillKind::Exact(AffineSub::simple(1, 0)),
            is_def: true,
            origin: None,
        };
        assert_eq!(
            preserve_constant(&gen, &kill, &graph, Direction::Forward, Mode::Must),
            Dist::Top
        );
    }

    #[test]
    fn backward_direction_negates_k() {
        // Backward (e.g. δ-busy stores): gen d = X[i], kill d' = X[i+1]
        // *below* it. Backward k(i) = ((a₂−a₁)i + (b₂−b₁))/a₁ = 1 → p = 0
        // … with pr: in backward flow the kill node (2) precedes the gen
        // node (1)?? Information flows upward; gen at node 1, killer at
        // node 2: node 2 does NOT precede node 1 in backward flow
        // (backward order is 2 before 1 → precedes). So pr = 0 and k ≡ 1 >
        // 0 → p = 0.
        let p = p_of(
            AffineSub::simple(1, 0),
            AffineSub::simple(1, 1),
            None,
            Mode::Must,
        );
        // forward control: gen in node 1, kill in node 2; backward flow
        // visits node 2 first, so the kill site *precedes* the generator.
        let prog = parse_program("do i = 1, 10 X[i] := 0; X[i+1] := 0; end").unwrap();
        let graph = build_loop_graph(prog.sole_loop().unwrap());
        let x = prog.symbols.lookup_array("X").unwrap();
        // Generator is the *second* statement (node 2) for a backward
        // problem; killer is the first (node 1).
        let gen = GenRef {
            id: crate::problem::RefId(0),
            node: NodeId(2),
            aref: arrayflow_ir::ArrayRef::new(x, arrayflow_ir::Expr::Const(0)),
            sub: AffineSub::simple(1, 0),
            is_def: true,
            stmt: None,
            origin: None,
        };
        let kill = KillSite {
            node: NodeId(1),
            array: x,
            kind: KillKind::Exact(AffineSub::simple(1, 1)),
            is_def: true,
            origin: None,
        };
        let pb = preserve_constant(&gen, &kill, &graph, Direction::Backward, Mode::Must);
        // Backward k ≡ ((1−1)i + (1−0))/1 = 1 > pr = 0 → p = 0.
        assert_eq!(pb, Dist::Fin(0));
        let _ = p;
    }

    #[test]
    fn div_helpers() {
        assert_eq!(ceil_div(7, 2), 4);
        assert_eq!(ceil_div(-7, 2), -3);
        assert_eq!(ceil_div(7, -2), -3);
        assert_eq!(floor_div(7, 2), 3);
        assert_eq!(floor_div(-7, 2), -4);
        assert_eq!(floor_div(7, -2), -4);
        assert_eq!(floor_div(6, 3), 2);
        assert_eq!(ceil_div(6, 3), 2);
    }
}
