//! Problem specifications: the (G, K) parameterization of the framework.
//!
//! A data flow problem over a loop flow graph is fully determined by
//! (paper §3.1):
//!
//! * the set **G** of *generating* references — each becomes one lattice
//!   component tracked through the loop;
//! * the set **K** of *killing* sites — each contributes preserve constants
//!   to the flow functions of its node;
//! * a [`Direction`] (forward or backward, §3.4);
//! * a [`Mode`] (must/all-paths or may/any-path, §3.3).
//!
//! The analyses crate constructs [`ProblemSpec`]s from IR loops; the solver
//! in this crate consumes them.

use arrayflow_graph::NodeId;
use arrayflow_ir::stmt::StmtId;
use arrayflow_ir::{AffineSub, ArrayId, ArrayRef};

/// Index of a generating reference within a [`ProblemSpec`] (a component of
/// the tuple lattice `Lᵐ`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RefId(pub u32);

impl RefId {
    /// The index as a usize.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Propagation direction (paper §3.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Information flows from control predecessors to successors and from
    /// earlier to later iterations.
    Forward,
    /// Information flows from successors to predecessors and from later to
    /// earlier iterations (e.g. δ-busy stores, live variables).
    Backward,
}

/// All-paths vs any-path interpretation (paper §3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mode {
    /// Must-information: an *underestimate*; meet is `min`; requires the
    /// initialization pass; fixed point after `3·N` node visits.
    Must,
    /// May-information: an *overestimate*; meet is `max`; only *definite*
    /// kills lower preserve constants; fixed point after `2·N` node visits.
    May,
}

/// One generating reference (an element of G).
#[derive(Debug, Clone)]
pub struct GenRef {
    /// Component index in the solution tuples.
    pub id: RefId,
    /// Node the reference occurs in.
    pub node: NodeId,
    /// The textual reference (after linearization for multi-dimensional
    /// arrays).
    pub aref: ArrayRef,
    /// Affine form of the (linearized) subscript with respect to the
    /// analyzed loop's induction variable.
    pub sub: AffineSub,
    /// True if the site writes the element.
    pub is_def: bool,
    /// Owning assignment, when there is one.
    pub stmt: Option<StmtId>,
    /// Identity of the originating site (set by the spec builder); used to
    /// recognize a kill site that *is* this reference, so a definition is
    /// never treated as destroying the instance it just created.
    pub origin: Option<u32>,
}

/// How a kill site kills.
#[derive(Debug, Clone)]
pub enum KillKind {
    /// An ordinary affine definition site: kills instances per the preserve
    /// constant derivation of §3.1.2.
    Exact(AffineSub),
    /// Kills every instance of the array (used for summary nodes — §3.2 —
    /// and for non-affine subscripts, where nothing better can be proven).
    AllOfArray,
}

/// One killing site (an element of K).
#[derive(Debug, Clone)]
pub struct KillSite {
    /// Node the kill occurs in.
    pub node: NodeId,
    /// Array whose instances are killed.
    pub array: ArrayId,
    /// Kill precision.
    pub kind: KillKind,
    /// True if the site writes (definition sites); uses can kill too (e.g.
    /// δ-busy stores) but execute before their statement's definition.
    pub is_def: bool,
    /// Identity of the originating site (see [`GenRef::origin`]).
    pub origin: Option<u32>,
}

/// A wire-expressible problem selection: which site roles generate (G),
/// which kill (K), the [`Direction`] and the [`Mode`] — everything a
/// client must say to name a framework instance over a program it
/// submits. Six bits total, canonically encoded by [`CustomSpec::bits`]
/// so memo caches, persistent stores and cluster routers all agree on
/// the identity of a custom instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CustomSpec {
    /// Definition sites generate.
    pub gen_defs: bool,
    /// Use sites generate.
    pub gen_uses: bool,
    /// Definition sites kill.
    pub kill_defs: bool,
    /// Use sites kill.
    pub kill_uses: bool,
    /// Propagation direction.
    pub direction: Direction,
    /// Must or may interpretation.
    pub mode: Mode,
}

impl CustomSpec {
    /// Largest dependence-distance bound a custom request may carry.
    /// Decoders on untrusted paths reject anything above it: the bound
    /// sizes a linear scan in dependence extraction, so an attacker's
    /// `u64::MAX` must not become a near-infinite loop.
    pub const MAX_DISTANCE_BOUND: u64 = 1_000_000;

    /// Canonical 6-bit encoding: bit 0 `gen_defs`, bit 1 `gen_uses`,
    /// bit 2 `kill_defs`, bit 3 `kill_uses`, bit 4 backward, bit 5 may.
    pub fn bits(self) -> u8 {
        (self.gen_defs as u8)
            | (self.gen_uses as u8) << 1
            | (self.kill_defs as u8) << 2
            | (self.kill_uses as u8) << 3
            | ((self.direction == Direction::Backward) as u8) << 4
            | ((self.mode == Mode::May) as u8) << 5
    }

    /// Inverse of [`CustomSpec::bits`]; `None` on stray high bits or an
    /// empty generating set. An empty G is contradictory — the instance
    /// would track nothing — and rejecting it here keeps that validation
    /// in one place for every untrusted decoder (JSON, binary, store).
    pub fn from_bits(bits: u8) -> Option<CustomSpec> {
        if bits & !0b11_1111 != 0 || bits & 0b11 == 0 {
            return None;
        }
        Some(CustomSpec {
            gen_defs: bits & 0b0001 != 0,
            gen_uses: bits & 0b0010 != 0,
            kill_defs: bits & 0b0100 != 0,
            kill_uses: bits & 0b1000 != 0,
            direction: if bits & 0b1_0000 != 0 {
                Direction::Backward
            } else {
                Direction::Forward
            },
            mode: if bits & 0b10_0000 != 0 {
                Mode::May
            } else {
                Mode::Must
            },
        })
    }

    /// A short, stable, label-safe name, e.g. `gdu-kd-fwd-may`: the
    /// generating roles, the killing roles (`k0` when nothing kills),
    /// direction and mode. Used as the per-spec metric label value and
    /// in renderings; stable by contract.
    pub fn label(self) -> String {
        let mut s = String::with_capacity(16);
        s.push('g');
        if self.gen_defs {
            s.push('d');
        }
        if self.gen_uses {
            s.push('u');
        }
        s.push_str("-k");
        if !self.kill_defs && !self.kill_uses {
            s.push('0');
        }
        if self.kill_defs {
            s.push('d');
        }
        if self.kill_uses {
            s.push('u');
        }
        s.push('-');
        s.push_str(match self.direction {
            Direction::Forward => "fwd",
            Direction::Backward => "bwd",
        });
        s.push('-');
        s.push_str(match self.mode {
            Mode::Must => "must",
            Mode::May => "may",
        });
        s
    }
}

impl std::fmt::Display for CustomSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label())
    }
}

/// A complete problem instance over one loop flow graph.
#[derive(Debug, Clone)]
pub struct ProblemSpec {
    /// Propagation direction.
    pub direction: Direction,
    /// Must or may interpretation.
    pub mode: Mode,
    /// The generating references, indexed by [`RefId`].
    pub gens: Vec<GenRef>,
    /// The killing sites.
    pub kills: Vec<KillSite>,
}

impl ProblemSpec {
    /// Creates an empty spec with the given direction and mode.
    pub fn new(direction: Direction, mode: Mode) -> Self {
        Self {
            direction,
            mode,
            gens: Vec::new(),
            kills: Vec::new(),
        }
    }

    /// Adds a generating reference, returning its component index.
    pub fn add_gen(
        &mut self,
        node: NodeId,
        aref: ArrayRef,
        sub: AffineSub,
        is_def: bool,
        stmt: Option<StmtId>,
    ) -> RefId {
        let id = RefId(self.gens.len() as u32);
        self.gens.push(GenRef {
            id,
            node,
            aref,
            sub,
            is_def,
            stmt,
            origin: None,
        });
        id
    }

    /// Adds a killing site (assumed to be a definition; set
    /// [`KillSite::is_def`] afterwards for use-kills).
    pub fn add_kill(&mut self, node: NodeId, array: ArrayId, kind: KillKind) {
        self.kills.push(KillSite {
            node,
            array,
            kind,
            is_def: true,
            origin: None,
        });
    }

    /// Number of tracked components (`m = |G|`).
    pub fn width(&self) -> usize {
        self.gens.len()
    }

    /// The generating references located in `node`.
    pub fn gens_in(&self, node: NodeId) -> impl Iterator<Item = &GenRef> {
        self.gens.iter().filter(move |g| g.node == node)
    }

    /// The killing sites located in `node`.
    pub fn kills_in(&self, node: NodeId) -> impl Iterator<Item = &KillSite> {
        self.kills.iter().filter(move |k| k.node == node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn custom_spec_bits_round_trip() {
        for bits in 0u8..=0b11_1111 {
            match CustomSpec::from_bits(bits) {
                Some(spec) => assert_eq!(spec.bits(), bits),
                None => assert_eq!(bits & 0b11, 0, "only empty-G bits are rejected"),
            }
        }
        for bits in 0b100_0000u8..=0xFF {
            assert_eq!(CustomSpec::from_bits(bits), None, "high bits rejected");
        }
    }

    #[test]
    fn custom_spec_labels_are_distinct_and_stable() {
        let reaching = CustomSpec {
            gen_defs: true,
            gen_uses: false,
            kill_defs: true,
            kill_uses: false,
            direction: Direction::Forward,
            mode: Mode::Must,
        };
        assert_eq!(reaching.label(), "gd-kd-fwd-must");
        let live = CustomSpec {
            gen_defs: false,
            gen_uses: true,
            kill_defs: true,
            kill_uses: false,
            direction: Direction::Backward,
            mode: Mode::May,
        };
        assert_eq!(live.label(), "gu-kd-bwd-may");
        let mut seen = std::collections::HashSet::new();
        for bits in 0u8..=0b11_1111 {
            if let Some(spec) = CustomSpec::from_bits(bits) {
                assert!(seen.insert(spec.label()), "duplicate label for {bits:#b}");
            }
        }
    }
}
