//! Worklist-driven fixed point solver (the incremental counterpart of
//! [`solve`](crate::solver::solve)).
//!
//! The round-robin solver of [`crate::solver`] visits every node on every
//! pass. Because the statement flow functions are monotone and act
//! componentwise, a node's `(IN, OUT)` tuple can only change when the `OUT`
//! of one of its flow predecessors changed since the node was last computed
//! — so most visits of a pass recompute values that cannot have moved.
//! [`solve_worklist`] exploits this with *pending node sets* in the style of
//! MIR's `solve_dataflow`: pass 1 seeds every node, and each subsequent pass
//! visits only the flow successors of nodes that changed.
//!
//! The scheduling is deliberately **pass-emulating**: pending nodes are
//! visited in the same flow order as the round-robin passes, a change at a
//! node schedules its later-in-order successors for the *current* pass and
//! its back-edge target for the *next* pass. Under this schedule the state
//! after worklist pass `p` is identical to the state after round-robin pass
//! `p` (skipped nodes would have recomputed their current values), so the
//! solver produces byte-identical [`Solution`]s — including the
//! instrumentation, which reports the round-robin–equivalent visit counts.
//! The visits actually spent (and saved) are returned separately in
//! [`WorklistStats`].
//!
//! [`solve_profiled`] additionally records, per tracked reference, the last
//! pass in which that component changed. Component columns evolve
//! independently (meet and the flow functions are componentwise), which is
//! what lets an incremental re-analysis re-solve only *dirtied* columns and
//! splice the rest from a cached fixed point while still reconstructing the
//! exact round-robin statistics.

use arrayflow_graph::LoopGraph;

use crate::flow::FlowTable;
use crate::lattice::{Dist, DistVec};
use crate::problem::{Direction, Mode, ProblemSpec};
use crate::solver::{
    meet_of_preds, solve_traced, solve_traced_ctrl, Snapshot, Solution, SolveStats, StopCheck,
    Stopped, View,
};

/// The visits a worklist run actually performed, next to the round-robin
/// schedule it replaced. The `Solution` it accompanies reports the
/// round-robin numbers (for byte-identity); this is the economy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorklistStats {
    /// Node visits in the initialization pass (must-problems visit every
    /// node exactly as the round-robin solver does).
    pub init_visits: usize,
    /// Node visits across all iteration passes — only pending nodes.
    pub iter_visits: usize,
    /// Iteration passes executed (equals the round-robin pass count).
    pub passes: usize,
    /// Visits the round-robin schedule would have spent on the same
    /// iteration passes (`passes × nodes`).
    pub round_robin_visits: usize,
}

impl WorklistStats {
    /// Iteration-pass visits the worklist skipped.
    pub fn saved_visits(&self) -> usize {
        self.round_robin_visits.saturating_sub(self.iter_visits)
    }
}

/// Per-component convergence profile: for each tracked reference, the last
/// iteration pass (1-based) in which its column changed anywhere, or 0 if
/// it never moved after initialization. `max(profile) ==
/// stats.changing_passes` by construction.
pub type ColumnProfile = Vec<u32>;

/// One worklist solve: the fixed point, the per-component convergence
/// profile, and the visit economy.
#[derive(Debug, Clone)]
pub struct WorklistRun {
    /// The fixed point, byte-identical to [`solve`](crate::solver::solve)'s
    /// — values and statistics.
    pub solution: Solution,
    /// Last changing pass per component (see [`ColumnProfile`]).
    pub profile: ColumnProfile,
    /// The visits actually spent.
    pub stats: WorklistStats,
}

/// Solves `spec` over `graph` with the pass-emulating worklist schedule.
///
/// # Panics
///
/// Panics if the fixed point is not reached within the same generous pass
/// budget as the round-robin solver.
pub fn solve_worklist(graph: &LoopGraph, spec: &ProblemSpec) -> WorklistRun {
    solve_worklist_ctrl(graph, spec, None).expect("no stop check installed")
}

/// Like [`solve_worklist`], but polls `should_stop` between worklist
/// passes and yields [`Stopped`] (with the passes spent so far) as soon
/// as it returns `true`. With `None` the check is one branch per pass and
/// the run is identical to [`solve_worklist`].
pub fn solve_worklist_ctrl(
    graph: &LoopGraph,
    spec: &ProblemSpec,
    should_stop: Option<StopCheck<'_>>,
) -> Result<WorklistRun, Stopped> {
    let m = spec.width();
    let n = graph.len();
    let table = FlowTable::build(graph, spec);
    let view = View::new(graph, spec.direction);
    let mut actual = WorklistStats::default();

    let mut before: Vec<DistVec> = vec![vec![Dist::Bottom; m]; n];
    let mut after: Vec<DistVec> = vec![vec![Dist::Bottom; m]; n];

    match spec.mode {
        Mode::Must => {
            for &node in &view.order {
                actual.init_visits += 1;
                let inp = if node == view.first() {
                    vec![Dist::Bottom; m]
                } else {
                    meet_of_preds(&view, node, spec, &after, Mode::Must, m)
                };
                let row = table.row(node);
                let out = inp
                    .iter()
                    .enumerate()
                    .map(|(d, &x)| if row.generate[d] { Dist::Top } else { x })
                    .collect::<Vec<_>>();
                before[node.index()] = inp;
                after[node.index()] = out;
            }
        }
        Mode::May => {
            for v in before.iter_mut().chain(after.iter_mut()) {
                v.fill(Dist::Top);
            }
        }
    }

    // Position of each node in flow order: successors earlier in order are
    // back-edge targets and belong to the *next* pass.
    let mut pos = vec![0usize; n];
    for (i, &node) in view.order.iter().enumerate() {
        pos[node.index()] = i;
    }

    let hard_cap = 64;
    let mut pending = vec![true; n];
    let mut pending_next = vec![false; n];
    let mut pass = 0;
    let mut changing_passes = 0;
    let mut profile = vec![0u32; m];
    while pending.iter().any(|&p| p) {
        if let Some(stop) = should_stop {
            if stop() {
                return Err(Stopped {
                    passes_completed: pass,
                });
            }
        }
        pass += 1;
        assert!(
            pass <= hard_cap,
            "fixed point not reached within {hard_cap} passes — non-structured graph?"
        );
        let mut changed = false;
        for i in 0..view.order.len() {
            let node = view.order[i];
            if !pending[node.index()] {
                continue;
            }
            pending[node.index()] = false;
            actual.iter_visits += 1;
            let inp = if node == view.first() {
                // Only the back edge feeds the first node in flow order.
                after[view.last().index()].clone()
            } else {
                meet_of_preds(&view, node, spec, &after, spec.mode, m)
            };
            let mut out = Vec::with_capacity(m);
            table.apply(node, &inp, &mut out);
            let mut node_changed = false;
            for d in 0..m {
                if before[node.index()][d] != inp[d] || after[node.index()][d] != out[d] {
                    profile[d] = pass as u32;
                    node_changed = true;
                }
            }
            if node_changed {
                before[node.index()] = inp;
                after[node.index()] = out;
            }
            if node_changed {
                changed = true;
                // Flow successors: later in order → this pass, earlier →
                // next pass. The back edge is implicit in the graph (the
                // first node reads `after[last]` directly), so a change at
                // the last node schedules the first for the next pass.
                let succs = match spec.direction {
                    Direction::Forward => graph.succs(node),
                    Direction::Backward => graph.preds(node),
                };
                for &s in succs {
                    if pos[s.index()] > i {
                        pending[s.index()] = true;
                    } else {
                        pending_next[s.index()] = true;
                    }
                }
                if node == view.last() {
                    pending_next[view.first().index()] = true;
                }
            }
        }
        if changed {
            changing_passes = pass;
        }
        std::mem::swap(&mut pending, &mut pending_next);
        pending_next.fill(false);
    }
    // The round-robin solver always ends on a confirming pass in which
    // nothing changes, so it runs changing_passes + 1 passes. The worklist
    // may prove convergence without it (an empty pending set IS the
    // proof), hence the equivalent schedule is derived from the last
    // changing pass, not from the passes actually executed.
    actual.passes = pass;
    let rr_passes = changing_passes + 1;
    actual.round_robin_visits = rr_passes * n;

    let stats = SolveStats {
        init_visits: actual.init_visits,
        iter_visits: rr_passes * n,
        passes: rr_passes,
        changing_passes,
    };
    Ok(WorklistRun {
        solution: Solution {
            before,
            after,
            stats,
        },
        profile,
        stats: actual,
    })
}

/// Solves `spec` with the round-robin schedule, additionally recording the
/// per-component [`ColumnProfile`]. The `Solution` is exactly
/// [`solve`](crate::solver::solve)'s.
pub fn solve_profiled(graph: &LoopGraph, spec: &ProblemSpec) -> (Solution, ColumnProfile) {
    let (sol, snaps) = solve_traced(graph, spec);
    profile_of(sol, snaps, spec, graph)
}

/// [`solve_profiled`] with a cooperative stop check (see
/// [`solve_worklist_ctrl`]): yields [`Stopped`] between round-robin
/// passes instead of running to the fixed point.
pub fn solve_profiled_ctrl(
    graph: &LoopGraph,
    spec: &ProblemSpec,
    should_stop: Option<StopCheck<'_>>,
) -> Result<(Solution, ColumnProfile), Stopped> {
    let (sol, snaps) = solve_traced_ctrl(graph, spec, should_stop)?;
    Ok(profile_of(sol, snaps, spec, graph))
}

fn profile_of(
    sol: Solution,
    snaps: Vec<Snapshot>,
    spec: &ProblemSpec,
    graph: &LoopGraph,
) -> (Solution, ColumnProfile) {
    let m = spec.width();
    let n = graph.len();
    let mut profile = vec![0u32; m];
    // snaps[0] is the state entering pass 1; snaps[p] the state after pass
    // p. Each node is written at most once per pass, so "column d changed
    // in pass p" is exactly a snapshot difference in column d.
    for p in 1..snaps.len() {
        let (pb, pa) = &snaps[p];
        let (qb, qa) = &snaps[p - 1];
        for d in 0..m {
            if (0..n).any(|i| pb[i][d] != qb[i][d] || pa[i][d] != qa[i][d]) {
                profile[d] = p as u32;
            }
        }
    }
    debug_assert_eq!(
        profile.iter().copied().max().unwrap_or(0) as usize,
        sol.stats.changing_passes
    );
    (sol, profile)
}

/// Reconstructs the round-robin [`SolveStats`] from a component profile, as
/// the incremental engine does after splicing cached and re-solved columns:
/// the round-robin solver runs `max(profile) + 1` passes of `nodes` visits
/// each, plus the initialization pass for must-problems.
pub fn stats_from_profile(profile: &[u32], nodes: usize, mode: Mode) -> SolveStats {
    let changing = profile.iter().copied().max().unwrap_or(0) as usize;
    let passes = changing + 1;
    SolveStats {
        init_visits: match mode {
            Mode::Must => nodes,
            Mode::May => 0,
        },
        iter_visits: passes * nodes,
        passes,
        changing_passes: changing,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{KillKind, ProblemSpec};
    use crate::solver::solve;
    use arrayflow_graph::{build_loop_graph, NodeId};
    use arrayflow_ir::{parse_program, AffineSub, ArrayRef, Expr};

    fn fig3(mode: Mode) -> (arrayflow_ir::Program, ProblemSpec) {
        let p = parse_program(
            "do i = 1, UB
               C[i+2] := C[i] * 2;
               B[2*i] := C[i] + x;
               if C[i] == 0 then C[i] := B[i-1]; end
               B[i] := C[i+1];
             end",
        )
        .unwrap();
        let c = p.symbols.lookup_array("C").unwrap();
        let b = p.symbols.lookup_array("B").unwrap();
        let mut spec = ProblemSpec::new(Direction::Forward, mode);
        for (node, array, sub) in [
            (NodeId(1), c, AffineSub::simple(1, 2)),
            (NodeId(2), b, AffineSub::simple(2, 0)),
            (NodeId(4), c, AffineSub::simple(1, 0)),
            (NodeId(5), b, AffineSub::simple(1, 0)),
        ] {
            spec.add_gen(
                node,
                ArrayRef::new(array, Expr::Const(0)),
                sub.clone(),
                true,
                None,
            );
            spec.add_kill(node, array, KillKind::Exact(sub));
        }
        (p, spec)
    }

    fn assert_identical(sol: &Solution, wl: &Solution) {
        assert_eq!(sol.before, wl.before);
        assert_eq!(sol.after, wl.after);
        assert_eq!(sol.stats, wl.stats);
    }

    #[test]
    fn worklist_matches_round_robin_must() {
        let (p, spec) = fig3(Mode::Must);
        let graph = build_loop_graph(p.sole_loop().unwrap());
        let sol = solve(&graph, &spec);
        let run = solve_worklist(&graph, &spec);
        assert_identical(&sol, &run.solution);
        assert!(run.stats.iter_visits <= run.stats.round_robin_visits);
    }

    #[test]
    fn worklist_matches_round_robin_may() {
        let (p, mut spec) = fig3(Mode::May);
        spec.mode = Mode::May;
        let graph = build_loop_graph(p.sole_loop().unwrap());
        let sol = solve(&graph, &spec);
        let run = solve_worklist(&graph, &spec);
        assert_identical(&sol, &run.solution);
    }

    #[test]
    fn worklist_skips_visits_after_pass_one() {
        let (p, spec) = fig3(Mode::Must);
        let graph = build_loop_graph(p.sole_loop().unwrap());
        let run = solve_worklist(&graph, &spec);
        // Pass 1 visits everything; later passes must not.
        assert!(run.stats.passes >= 2);
        assert!(
            run.stats.saved_visits() > 0,
            "worklist saved nothing: {:?}",
            run.stats
        );
    }

    #[test]
    fn worklist_profile_matches_round_robin_profile() {
        for mode in [Mode::Must, Mode::May] {
            let (p, mut spec) = fig3(Mode::Must);
            spec.mode = mode;
            let graph = build_loop_graph(p.sole_loop().unwrap());
            let (_, profile) = solve_profiled(&graph, &spec);
            let run = solve_worklist(&graph, &spec);
            assert_eq!(profile, run.profile, "profiles diverge for {mode:?}");
        }
    }

    #[test]
    fn worklist_ctrl_stops_between_passes() {
        use std::cell::Cell;
        let (p, spec) = fig3(Mode::Must);
        let graph = build_loop_graph(p.sole_loop().unwrap());
        let stop_now = || true;
        let err = solve_worklist_ctrl(&graph, &spec, Some(&stop_now)).unwrap_err();
        assert_eq!(err.passes_completed, 0);
        let polls = Cell::new(0usize);
        let stop_later = || {
            polls.set(polls.get() + 1);
            polls.get() > 1
        };
        let err = solve_worklist_ctrl(&graph, &spec, Some(&stop_later)).unwrap_err();
        assert_eq!(err.passes_completed, 1);
        // And with no check installed the run matches the plain entry point.
        let run = solve_worklist_ctrl(&graph, &spec, None).unwrap();
        assert_identical(&solve(&graph, &spec), &run.solution);
    }

    #[test]
    fn empty_spec_is_trivial_for_the_worklist_too() {
        let p = parse_program("do i = 1, 10 A[i] := 0; end").unwrap();
        let graph = build_loop_graph(p.sole_loop().unwrap());
        let spec = ProblemSpec::new(Direction::Forward, Mode::Must);
        let sol = solve(&graph, &spec);
        let run = solve_worklist(&graph, &spec);
        assert_identical(&sol, &run.solution);
    }

    #[test]
    fn profile_reconstructs_round_robin_stats() {
        for mode in [Mode::Must, Mode::May] {
            let (p, mut spec) = fig3(Mode::Must);
            spec.mode = mode;
            let graph = build_loop_graph(p.sole_loop().unwrap());
            let sol = solve(&graph, &spec);
            let (psol, profile) = solve_profiled(&graph, &spec);
            assert_identical(&sol, &psol);
            assert_eq!(
                stats_from_profile(&profile, graph.len(), mode),
                sol.stats,
                "derived stats diverge for {mode:?}"
            );
        }
    }

    #[test]
    fn backward_problems_schedule_over_reversed_order() {
        let (p, mut spec) = fig3(Mode::Must);
        spec.direction = Direction::Backward;
        let graph = build_loop_graph(p.sole_loop().unwrap());
        let sol = solve(&graph, &spec);
        let run = solve_worklist(&graph, &spec);
        assert_identical(&sol, &run.solution);
    }
}
