//! Flow function tables.
//!
//! For a fixed problem spec, every node's flow function over `Lᵐ` is fully
//! determined by compile-time constants (paper §3.1): per tracked reference
//! `d`, a node either *preserves* (`min(x, p)`), *generates after
//! preserving* (`max(min(x, p), 0)` — the composition coincides with the
//! paper's plain `max(x, 0)` whenever `p = ⊤`, which is every case the
//! paper enumerates), or — for the increment node — applies `x⁺⁺`.
//! [`FlowTable`] precomputes these constants once so the solver's passes are
//! pure lattice arithmetic.

use arrayflow_graph::{LoopGraph, NodeId};

use crate::lattice::{Dist, DistVec};
use crate::preserve::node_preserve;
use crate::problem::{Direction, ProblemSpec};

/// Per-node flow function data.
#[derive(Debug, Clone)]
pub struct NodeFlow {
    /// Preserve constant per tracked reference (`⊤` = identity).
    pub preserve: Vec<Dist>,
    /// Whether the node generates each tracked reference.
    pub generate: Vec<bool>,
    /// Post-generate preserve constant per tracked reference: kills from
    /// same-node sites that execute after the generator (see
    /// [`crate::preserve::node_post_preserve`]). `⊤` when inapplicable.
    pub post: Vec<Dist>,
    /// True for the node that carries the `i := i + 1` increment in the
    /// direction of flow.
    pub increment: bool,
}

/// Precomputed flow functions for every node of a graph.
#[derive(Debug, Clone)]
pub struct FlowTable {
    rows: Vec<NodeFlow>,
    ub: Option<i64>,
}

impl FlowTable {
    /// Builds the table for `spec` over `graph`.
    pub fn build(graph: &LoopGraph, spec: &ProblemSpec) -> Self {
        let m = spec.width();
        let increment_node = match spec.direction {
            Direction::Forward => graph.exit(),
            Direction::Backward => graph.entry(),
        };
        let rows = graph
            .node_ids()
            .map(|node| {
                let increment = node == increment_node;
                let mut preserve = vec![Dist::Top; m];
                let mut generate = vec![false; m];
                let mut post = vec![Dist::Top; m];
                if !increment {
                    for (d, gen) in spec.gens.iter().enumerate() {
                        preserve[d] =
                            node_preserve(gen, node, &spec.kills, graph, spec.direction, spec.mode);
                        generate[d] = gen.node == node;
                        if generate[d] {
                            post[d] = crate::preserve::node_post_preserve(
                                gen,
                                node,
                                &spec.kills,
                                graph,
                                spec.direction,
                                spec.mode,
                            );
                        }
                    }
                }
                NodeFlow {
                    preserve,
                    generate,
                    post,
                    increment,
                }
            })
            .collect();
        Self { rows, ub: graph.ub }
    }

    /// The flow data for one node.
    pub fn row(&self, node: NodeId) -> &NodeFlow {
        &self.rows[node.index()]
    }

    /// Applies node `n`'s flow function: `out = fₙ(inp)`.
    pub fn apply(&self, node: NodeId, inp: &[Dist], out: &mut DistVec) {
        let row = &self.rows[node.index()];
        out.clear();
        if row.increment {
            out.extend(inp.iter().map(|x| x.incr().normalize(self.ub)));
            return;
        }
        for (d, &x) in inp.iter().enumerate() {
            let mut v = x.min(row.preserve[d]);
            if row.generate[d] {
                v = v.max(Dist::Fin(0)).min(row.post[d]);
            }
            out.push(v.normalize(self.ub));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{KillKind, Mode, ProblemSpec};
    use arrayflow_graph::build_loop_graph;
    use arrayflow_ir::{parse_program, AffineSub, ArrayRef, Expr};

    #[test]
    fn table_matches_paper_fig3_functions() {
        // The loop of Fig. 1; check the five flow functions of §3.5.
        let p = parse_program(
            "do i = 1, UB
               C[i+2] := C[i] * 2;
               B[2*i] := C[i] + x;
               if C[i] == 0 then C[i] := B[i-1]; end
               B[i] := C[i+1];
             end",
        )
        .unwrap();
        let graph = build_loop_graph(p.sole_loop().unwrap());
        let c = p.symbols.lookup_array("C").unwrap();
        let b = p.symbols.lookup_array("B").unwrap();
        // Nodes: 0 entry, 1 C[i+2]:=, 2 B[2i]:=, 3 test, 4 C[i]:=, 5 B[i]:=, 6 exit.
        let mut spec = ProblemSpec::new(Direction::Forward, Mode::Must);
        let defs = [
            (NodeId(1), c, AffineSub::simple(1, 2)),
            (NodeId(2), b, AffineSub::simple(2, 0)),
            (NodeId(4), c, AffineSub::simple(1, 0)),
            (NodeId(5), b, AffineSub::simple(1, 0)),
        ];
        for (node, array, sub) in &defs {
            spec.add_gen(
                *node,
                ArrayRef::new(*array, Expr::Const(0)),
                sub.clone(),
                true,
                None,
            );
            spec.add_kill(*node, *array, KillKind::Exact(sub.clone()));
        }
        let table = FlowTable::build(&graph, &spec);

        // f₁ = (max(x₁,0), x₂, x₃, x₄)
        let r1 = table.row(NodeId(1));
        assert_eq!(r1.generate, vec![true, false, false, false]);
        assert_eq!(r1.preserve, vec![Dist::Top; 4]);
        // f₂ = (x₁, max(x₂,0), x₃, x₄)
        let r2 = table.row(NodeId(2));
        assert_eq!(r2.generate, vec![false, true, false, false]);
        assert_eq!(r2.preserve, vec![Dist::Top; 4]);
        // f₄ (paper node 3) = (min(x₁,1), x₂, max(x₃,0), x₄)
        let r4 = table.row(NodeId(4));
        assert_eq!(r4.generate, vec![false, false, true, false]);
        assert_eq!(
            r4.preserve,
            vec![Dist::Fin(1), Dist::Top, Dist::Top, Dist::Top]
        );
        // f₅ (paper node 4) = (x₁, min(x₂,0), x₃, max(x₄,0))
        let r5 = table.row(NodeId(5));
        assert_eq!(r5.generate, vec![false, false, false, true]);
        assert_eq!(
            r5.preserve,
            vec![Dist::Top, Dist::Fin(0), Dist::Top, Dist::Top]
        );
        // exit applies ++
        assert!(table.row(graph.exit()).increment);
        let mut out = Vec::new();
        table.apply(
            graph.exit(),
            &[Dist::Fin(1), Dist::Fin(0), Dist::Bottom, Dist::Top],
            &mut out,
        );
        assert_eq!(
            out,
            vec![Dist::Fin(2), Dist::Fin(1), Dist::Bottom, Dist::Top]
        );
    }
}
