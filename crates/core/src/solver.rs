//! The fixed point solver (paper §3.2, §3.3).
//!
//! Must-problems run an *initialization pass* (reverse postorder over the
//! acyclic body, ignoring the back edge, seeding `⊤` at generate sites)
//! followed by iteration passes of the equation system
//!
//! ```text
//! IN[n]  = ⨅ { OUT[m] | m ∈ pred(n) }          (pred(entry) ∋ exit)
//! OUT[n] = fₙ(IN[n])
//! ```
//!
//! Because the body is acyclic, the statement flow functions are idempotent
//! and `f ∘ f_exit ∘ f` is weakly idempotent, the greatest fixed point is
//! reached after **two** iteration passes — `3·N` node visits in total.
//! May-problems start from "all instances" instead and converge after two
//! passes (`2·N` visits) with the dual meet. The solver iterates to an
//! observed fixed point, records how many passes actually changed values,
//! and [`solve_bounded`] runs exactly the paper's schedule so the bound can
//! be validated against the general solver.

use arrayflow_graph::{LoopGraph, NodeId};

use crate::flow::FlowTable;
use crate::lattice::{meet_max, meet_min, Dist, DistVec};
use crate::problem::{Direction, Mode, ProblemSpec};

/// Solver instrumentation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolveStats {
    /// Node visits in the initialization pass (0 for may-problems).
    pub init_visits: usize,
    /// Node visits across all iteration passes.
    pub iter_visits: usize,
    /// Iteration passes executed (including the final, unchanged one when
    /// running to an observed fixed point).
    pub passes: usize,
    /// Iteration passes that changed at least one value.
    pub changing_passes: usize,
}

impl SolveStats {
    /// Total node visits (the paper's `3·N` / `2·N` metric counts only the
    /// visits needed to *reach* the fixed point, i.e. init + changing
    /// passes).
    pub fn visits_to_fix(&self, nodes: usize) -> usize {
        self.init_visits + self.changing_passes * nodes
    }
}

/// The fixed point: one tuple per node on each side of its flow function.
///
/// Tuples are oriented in the direction of information flow: for a forward
/// problem `before[n]` is the solution at node entry and `after[n]` at node
/// exit; for a backward problem `before[n]` is at node *exit* (the paper's
/// `IN` for backward problems) and `after[n]` at node entry.
#[derive(Debug, Clone)]
pub struct Solution {
    /// Flow-order input of each node, indexed by node.
    pub before: Vec<DistVec>,
    /// Flow-order output of each node.
    pub after: Vec<DistVec>,
    /// Instrumentation.
    pub stats: SolveStats,
}

impl Solution {
    /// The solution component for reference `d` flowing into `node`.
    pub fn before_at(&self, node: NodeId, d: crate::problem::RefId) -> Dist {
        self.before[node.index()][d.index()]
    }

    /// The solution component for reference `d` flowing out of `node`.
    pub fn after_at(&self, node: NodeId, d: crate::problem::RefId) -> Dist {
        self.after[node.index()][d.index()]
    }
}

pub(crate) struct View<'g> {
    graph: &'g LoopGraph,
    pub(crate) order: Vec<NodeId>,
}

impl<'g> View<'g> {
    pub(crate) fn new(graph: &'g LoopGraph, direction: Direction) -> Self {
        let order = match direction {
            Direction::Forward => graph.rpo().to_vec(),
            Direction::Backward => graph.rpo().iter().rev().copied().collect(),
        };
        Self { graph, order }
    }

    pub(crate) fn first(&self) -> NodeId {
        self.order[0]
    }

    pub(crate) fn last(&self) -> NodeId {
        *self.order.last().expect("graphs are non-empty")
    }

    pub(crate) fn preds(&self, node: NodeId, direction: Direction) -> &[NodeId] {
        match direction {
            Direction::Forward => self.graph.preds(node),
            Direction::Backward => self.graph.succs(node),
        }
    }
}

/// A cooperative stop request observed between iteration passes: the
/// caller's `should_stop` closure returned `true` before the fixed point
/// was reached. Carries how many iteration passes completed before the
/// solver yielded — the *wasted work* a cancelled request actually cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Stopped {
    /// Iteration passes fully executed before the stop was observed.
    pub passes_completed: usize,
}

impl std::fmt::Display for Stopped {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "solve stopped after {} passes", self.passes_completed)
    }
}

impl std::error::Error for Stopped {}

/// A cooperative stop check, polled by the solver between iteration
/// passes. `None` costs a single branch per pass — the same dormant-seam
/// contract as the fault surface.
pub type StopCheck<'a> = &'a (dyn Fn() -> bool + 'a);

/// Solves `spec` over `graph`, iterating to an observed fixed point.
///
/// # Panics
///
/// Panics if the fixed point is not reached within a generous pass budget —
/// impossible for graphs produced by `arrayflow-graph`, whose bodies are
/// acyclic.
pub fn solve(graph: &LoopGraph, spec: &ProblemSpec) -> Solution {
    solve_with_passes(graph, spec, usize::MAX)
}

/// Like [`solve`], but polls `should_stop` between iteration passes and
/// yields [`Stopped`] (with the pass count spent so far) as soon as it
/// returns `true` — the cooperative-cancellation entry point the serving
/// stack uses so an already-dead request costs at most one pass. With
/// `None` the check is a single branch per pass and the result is
/// identical to [`solve`].
pub fn solve_ctrl(
    graph: &LoopGraph,
    spec: &ProblemSpec,
    should_stop: Option<StopCheck<'_>>,
) -> Result<Solution, Stopped> {
    solve_impl(graph, spec, usize::MAX, None, should_stop)
}

/// [`solve_traced`] with a cooperative stop check (see [`solve_ctrl`]).
pub fn solve_traced_ctrl(
    graph: &LoopGraph,
    spec: &ProblemSpec,
    should_stop: Option<StopCheck<'_>>,
) -> Result<(Solution, Vec<Snapshot>), Stopped> {
    let mut snapshots = Vec::new();
    let sol = solve_impl(graph, spec, usize::MAX, Some(&mut snapshots), should_stop)?;
    Ok((sol, snapshots))
}

/// Runs exactly the paper's schedule: the initialization pass (must) plus
/// two iteration passes, without checking for convergence. The result
/// equals [`solve`] on structured loop graphs — asserted throughout the
/// test suite — which is precisely the paper's efficiency theorem.
pub fn solve_bounded(graph: &LoopGraph, spec: &ProblemSpec) -> Solution {
    solve_with_passes(graph, spec, 2)
}

/// One snapshot of the equation system's state: `(before, after)` tuples
/// per node.
pub type Snapshot = (Vec<DistVec>, Vec<DistVec>);

/// Like [`solve`], additionally recording a [`Snapshot`] after the
/// initialization pass (must-problems) and after every iteration pass —
/// this regenerates the paper's Table 1 column by column.
pub fn solve_traced(graph: &LoopGraph, spec: &ProblemSpec) -> (Solution, Vec<Snapshot>) {
    let mut snapshots = Vec::new();
    let sol = solve_impl(graph, spec, usize::MAX, Some(&mut snapshots), None)
        .expect("no stop check installed");
    (sol, snapshots)
}

fn solve_with_passes(graph: &LoopGraph, spec: &ProblemSpec, max_passes: usize) -> Solution {
    solve_impl(graph, spec, max_passes, None, None).expect("no stop check installed")
}

fn solve_impl(
    graph: &LoopGraph,
    spec: &ProblemSpec,
    max_passes: usize,
    mut trace: Option<&mut Vec<Snapshot>>,
    should_stop: Option<StopCheck<'_>>,
) -> Result<Solution, Stopped> {
    let m = spec.width();
    let n = graph.len();
    let table = FlowTable::build(graph, spec);
    let view = View::new(graph, spec.direction);
    let mut stats = SolveStats::default();

    let mut before: Vec<DistVec> = vec![vec![Dist::Bottom; m]; n];
    let mut after: Vec<DistVec> = vec![vec![Dist::Bottom; m]; n];

    match spec.mode {
        Mode::Must => {
            // Initialization pass: visits in flow order over the acyclic
            // body; OUT⁰ = ⊤ at generate sites, IN⁰ propagated, kills
            // ignored (paper §3.2).
            for &node in &view.order {
                stats.init_visits += 1;
                let inp = if node == view.first() {
                    vec![Dist::Bottom; m]
                } else {
                    meet_of_preds(&view, node, spec, &after, Mode::Must, m)
                };
                let row = table.row(node);
                let out = inp
                    .iter()
                    .enumerate()
                    .map(|(d, &x)| if row.generate[d] { Dist::Top } else { x })
                    .collect::<Vec<_>>();
                before[node.index()] = inp;
                after[node.index()] = out;
            }
        }
        Mode::May => {
            // Start from "all instances"; the preserve functions lower the
            // values to the greatest fixed point within two passes (§3.3).
            for v in before.iter_mut().chain(after.iter_mut()) {
                v.fill(Dist::Top);
            }
        }
    }
    if let Some(trace) = trace.as_deref_mut() {
        trace.push((before.clone(), after.clone()));
    }

    let hard_cap = 64;
    let mut pass = 0;
    loop {
        if let Some(stop) = should_stop {
            if stop() {
                return Err(Stopped {
                    passes_completed: pass,
                });
            }
        }
        pass += 1;
        let mut changed = false;
        for &node in &view.order {
            stats.iter_visits += 1;
            let inp = if node == view.first() {
                // Only the back edge feeds the first node in flow order.
                after[view.last().index()].clone()
            } else {
                meet_of_preds(&view, node, spec, &after, spec.mode, m)
            };
            let mut out = Vec::with_capacity(m);
            table.apply(node, &inp, &mut out);
            if before[node.index()] != inp {
                before[node.index()] = inp;
                changed = true;
            }
            if after[node.index()] != out {
                after[node.index()] = out;
                changed = true;
            }
        }
        stats.passes = pass;
        if changed {
            stats.changing_passes = pass;
        }
        if let Some(trace) = trace.as_deref_mut() {
            trace.push((before.clone(), after.clone()));
        }
        if pass >= max_passes || (!changed && max_passes == usize::MAX) {
            break;
        }
        assert!(
            pass < hard_cap,
            "fixed point not reached within {hard_cap} passes — non-structured graph?"
        );
    }

    Ok(Solution {
        before,
        after,
        stats,
    })
}

pub(crate) fn meet_of_preds(
    view: &View<'_>,
    node: NodeId,
    spec: &ProblemSpec,
    after: &[DistVec],
    mode: Mode,
    m: usize,
) -> DistVec {
    let preds = view.preds(node, spec.direction);
    let mut acc = match mode {
        Mode::Must => vec![Dist::Top; m],
        Mode::May => vec![Dist::Bottom; m],
    };
    for &p in preds {
        match mode {
            Mode::Must => meet_min(&mut acc, &after[p.index()]),
            Mode::May => meet_max(&mut acc, &after[p.index()]),
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{KillKind, RefId};
    use arrayflow_graph::build_loop_graph;
    use arrayflow_ir::{parse_program, AffineSub, ArrayRef, Expr};

    /// Builds the must-reaching-definitions spec for the paper's Fig. 1 loop
    /// by hand (the analyses crate automates this).
    fn fig3_spec() -> (arrayflow_ir::Program, ProblemSpec) {
        let p = parse_program(
            "do i = 1, UB
               C[i+2] := C[i] * 2;
               B[2*i] := C[i] + x;
               if C[i] == 0 then C[i] := B[i-1]; end
               B[i] := C[i+1];
             end",
        )
        .unwrap();
        let c = p.symbols.lookup_array("C").unwrap();
        let b = p.symbols.lookup_array("B").unwrap();
        let mut spec = ProblemSpec::new(Direction::Forward, Mode::Must);
        for (node, array, sub) in [
            (NodeId(1), c, AffineSub::simple(1, 2)),
            (NodeId(2), b, AffineSub::simple(2, 0)),
            (NodeId(4), c, AffineSub::simple(1, 0)),
            (NodeId(5), b, AffineSub::simple(1, 0)),
        ] {
            spec.add_gen(
                node,
                ArrayRef::new(array, Expr::Const(0)),
                sub.clone(),
                true,
                None,
            );
            spec.add_kill(node, array, KillKind::Exact(sub));
        }
        (p, spec)
    }

    fn tup(v: &[Dist]) -> Vec<Dist> {
        v.to_vec()
    }

    #[test]
    fn reproduces_paper_table1_fixed_point() {
        use Dist::{Bottom as B, Fin, Top as T};
        let (p, spec) = fig3_spec();
        let graph = build_loop_graph(p.sole_loop().unwrap());
        let sol = solve(&graph, &spec);

        // Paper node 1 (= our node 1): IN = (2, 1, ⊥, ⊤)
        assert_eq!(sol.before[1], tup(&[Fin(2), Fin(1), B, T]));
        assert_eq!(sol.after[1], tup(&[Fin(2), Fin(1), B, T]));
        // Paper node 2: same IN, OUT
        assert_eq!(sol.before[2], tup(&[Fin(2), Fin(1), B, T]));
        assert_eq!(sol.after[2], tup(&[Fin(2), Fin(1), B, T]));
        // Paper node 3 (guarded assign, our node 4): IN = (2,1,⊥,⊤), OUT = (1,1,0,⊤)
        assert_eq!(sol.before[4], tup(&[Fin(2), Fin(1), B, T]));
        assert_eq!(sol.after[4], tup(&[Fin(1), Fin(1), Fin(0), T]));
        // Paper node 4 (our node 5): IN = (1,1,⊥,⊤), OUT = (1,0,⊥,⊤)
        assert_eq!(sol.before[5], tup(&[Fin(1), Fin(1), B, T]));
        assert_eq!(sol.after[5], tup(&[Fin(1), Fin(0), B, T]));
        // Paper node 5 (exit, our node 6): IN = (1,0,⊥,⊤), OUT = (2,1,⊥,⊤)
        assert_eq!(sol.before[6], tup(&[Fin(1), Fin(0), B, T]));
        assert_eq!(sol.after[6], tup(&[Fin(2), Fin(1), B, T]));
    }

    #[test]
    fn must_fixed_point_within_two_passes() {
        let (p, spec) = fig3_spec();
        let graph = build_loop_graph(p.sole_loop().unwrap());
        let sol = solve(&graph, &spec);
        assert!(
            sol.stats.changing_passes <= 2,
            "paper bound violated: {:?}",
            sol.stats
        );
        let bounded = solve_bounded(&graph, &spec);
        assert_eq!(sol.before, bounded.before);
        assert_eq!(sol.after, bounded.after);
    }

    #[test]
    fn may_mode_converges_from_top() {
        let (p, mut spec) = fig3_spec();
        spec.mode = Mode::May;
        let graph = build_loop_graph(p.sole_loop().unwrap());
        let sol = solve(&graph, &spec);
        assert!(sol.stats.changing_passes <= 2, "{:?}", sol.stats);
        assert_eq!(sol.stats.init_visits, 0);
        // May-reaching: along the path avoiding the guarded kill, instances
        // of C[i+2] survive, so the may solution at node 5 covers at least
        // what the must solution covers.
        let must = solve(&graph, &fig3_spec().1);
        for n in 0..graph.len() {
            for d in 0..spec.width() {
                assert!(
                    sol.before[n][d] >= must.before[n][d],
                    "may must dominate must at node {n} ref {d}"
                );
            }
        }
    }

    #[test]
    fn may_reaching_sees_through_the_conditional() {
        use Dist::Top as T;
        let (p, mut spec) = fig3_spec();
        spec.mode = Mode::May;
        let graph = build_loop_graph(p.sole_loop().unwrap());
        let sol = solve(&graph, &spec);
        // C[i+2] instances *may* survive the conditional kill in node 4
        // (the else path), so all instances may reach node 5.
        assert_eq!(sol.before_at(NodeId(5), RefId(0)), T);
    }

    #[test]
    fn solution_respects_ub_normalization() {
        // Same loop with UB = 3: distances clamp at ⊤ = UB − 1 = 2.
        let src = "do i = 1, 3
               C[i+2] := C[i] * 2;
               B[2*i] := C[i] + x;
               if C[i] == 0 then C[i] := B[i-1]; end
               B[i] := C[i+1];
             end";
        let p = parse_program(src).unwrap();
        let c = p.symbols.lookup_array("C").unwrap();
        let b = p.symbols.lookup_array("B").unwrap();
        let mut spec = ProblemSpec::new(Direction::Forward, Mode::Must);
        for (node, array, sub) in [
            (NodeId(1), c, AffineSub::simple(1, 2)),
            (NodeId(2), b, AffineSub::simple(2, 0)),
            (NodeId(4), c, AffineSub::simple(1, 0)),
            (NodeId(5), b, AffineSub::simple(1, 0)),
        ] {
            spec.add_gen(
                node,
                ArrayRef::new(array, Expr::Const(0)),
                sub.clone(),
                true,
                None,
            );
            spec.add_kill(node, array, KillKind::Exact(sub));
        }
        let graph = build_loop_graph(p.sole_loop().unwrap());
        let sol = solve(&graph, &spec);
        // IN[1] first component was 2 = UB − 1 → ⊤ after normalization.
        assert_eq!(sol.before[1][0], Dist::Top);
    }

    #[test]
    fn solve_ctrl_without_stop_check_matches_solve() {
        let (p, spec) = fig3_spec();
        let graph = build_loop_graph(p.sole_loop().unwrap());
        let sol = solve(&graph, &spec);
        let ctrl = solve_ctrl(&graph, &spec, None).unwrap();
        assert_eq!(sol.before, ctrl.before);
        assert_eq!(sol.after, ctrl.after);
        assert_eq!(sol.stats, ctrl.stats);
    }

    #[test]
    fn solve_ctrl_stops_before_the_first_pass() {
        let (p, spec) = fig3_spec();
        let graph = build_loop_graph(p.sole_loop().unwrap());
        let stop = || true;
        let err = solve_ctrl(&graph, &spec, Some(&stop)).unwrap_err();
        assert_eq!(err.passes_completed, 0);
    }

    #[test]
    fn solve_ctrl_stop_after_one_pass_reports_one_wasted_pass() {
        use std::cell::Cell;
        let (p, spec) = fig3_spec();
        let graph = build_loop_graph(p.sole_loop().unwrap());
        let polls = Cell::new(0usize);
        let stop = || {
            let n = polls.get() + 1;
            polls.set(n);
            n > 1 // allow exactly one pass, stop on the second poll
        };
        let err = solve_ctrl(&graph, &spec, Some(&stop)).unwrap_err();
        assert_eq!(err.passes_completed, 1);
    }

    #[test]
    fn empty_spec_solves_trivially() {
        let p = parse_program("do i = 1, 10 A[i] := 0; end").unwrap();
        let graph = build_loop_graph(p.sole_loop().unwrap());
        let spec = ProblemSpec::new(Direction::Forward, Mode::Must);
        let sol = solve(&graph, &spec);
        assert!(sol.before.iter().all(|v| v.is_empty()));
        assert!(sol.stats.changing_passes <= 1);
    }
}
