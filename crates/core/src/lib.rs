#![warn(missing_docs)]
//! The array reference data flow framework of Duesterwald, Gupta and Soffa
//! (PLDI 1993) — the paper's primary contribution.
//!
//! The framework extends classical scalar data flow analysis to subscripted
//! variables by replacing the binary lattice with a chain lattice of
//! *iteration distances* ([`Dist`]): the fixed point at a program point
//! records, per tracked reference, the maximal distance `δ` for which the
//! data flow fact holds (e.g. "the latest δ instances of this definition
//! must reach here").
//!
//! A concrete analysis is an instance of [`ProblemSpec`]: a set **G** of
//! generating references, a set **K** of killing sites, a [`Direction`] and
//! a [`Mode`]. Flow functions come in exactly two statement shapes —
//! generate `max(x, 0)` and preserve `min(x, p)` with compile-time constant
//! `p` (derived in [`preserve`]) — plus the increment `x⁺⁺` at the loop
//! `exit` node. [`solve`] computes the fixed point in at most three passes
//! over the loop body for must-problems and two for may-problems;
//! [`solve_bounded`] runs exactly that schedule so the bound itself is
//! testable.
//!
//! ```
//! use arrayflow_core::{solve, Direction, Mode, ProblemSpec, KillKind, Dist};
//! use arrayflow_graph::build_loop_graph;
//! use arrayflow_ir::{parse_program, AffineSub, ArrayRef, Expr};
//!
//! // do i = 1, UB { A[i+1] := A[i]; } — must-reaching definitions of A[i+1].
//! let p = parse_program("do i = 1, 100 A[i+1] := A[i]; end").unwrap();
//! let g = build_loop_graph(p.sole_loop().unwrap());
//! let a = p.symbols.lookup_array("A").unwrap();
//! let mut spec = ProblemSpec::new(Direction::Forward, Mode::Must);
//! let d = spec.add_gen(
//!     arrayflow_graph::NodeId(1),
//!     ArrayRef::new(a, Expr::Const(0)),
//!     AffineSub::simple(1, 1),
//!     true,
//!     None,
//! );
//! spec.add_kill(arrayflow_graph::NodeId(1), a, KillKind::Exact(AffineSub::simple(1, 1)));
//! let sol = solve(&g, &spec);
//! // Every previous instance of A[i+1] reaches the top of the body.
//! assert_eq!(sol.before_at(arrayflow_graph::NodeId(1), d), Dist::Top);
//! ```

pub mod flow;
pub mod lattice;
pub mod preserve;
pub mod problem;
pub mod solver;
pub mod worklist;

pub use flow::{FlowTable, NodeFlow};
pub use lattice::{meet_max, meet_min, Dist, DistVec};
pub use preserve::{node_preserve, preserve_constant};
pub use problem::{CustomSpec, Direction, GenRef, KillKind, KillSite, Mode, ProblemSpec, RefId};
pub use solver::{
    solve, solve_bounded, solve_ctrl, solve_traced, solve_traced_ctrl, Snapshot, Solution,
    SolveStats, StopCheck, Stopped,
};
pub use worklist::{
    solve_profiled, solve_profiled_ctrl, solve_worklist, solve_worklist_ctrl, stats_from_profile,
    ColumnProfile, WorklistRun, WorklistStats,
};
