//! The chain lattice of iteration distances (paper §3, Fig. 2).
//!
//! A lattice value for a subscripted reference `r` denotes the range of the
//! latest `x` *instances* of `r`: `⊥` means no instance, a finite `x` means
//! instances up to maximal iteration distance `x`, and `⊤` means all
//! instances (equivalently distance `UB − 1` in a loop with `UB` iterations).
//!
//! Must-problems use the meet `min`; may-problems use the dual `max`
//! (paper §3.3 phrases this as reversing the lattice — we keep concrete
//! distances and swap the operator, which is the same thing).

use std::cmp::Ordering;
use std::fmt;

/// A maximal iteration distance: an element of the chain
/// `⊥ < 0 < 1 < 2 < … < ⊤`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dist {
    /// No instance (`⊥`).
    Bottom,
    /// Instances up to this maximal iteration distance.
    Fin(u64),
    /// All instances (`⊤`, i.e. distance `UB − 1`).
    Top,
}

impl Dist {
    /// The paper's `min` (meet of the must-lattice): `min(x, ⊥) = ⊥`,
    /// `min(x, ⊤) = x`.
    pub fn min(self, other: Dist) -> Dist {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// The paper's dual `max` (meet of the may-lattice): `max(x, ⊥) = x`,
    /// `max(x, ⊤) = ⊤`.
    pub fn max(self, other: Dist) -> Dist {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// The increment `x⁺⁺` applied by the `exit` node: `⊤⁺⁺ = ⊤`,
    /// `⊥⁺⁺ = ⊥`, otherwise `x + 1` (paper §3.1.3).
    pub fn incr(self) -> Dist {
        match self {
            Dist::Bottom => Dist::Bottom,
            Dist::Fin(x) => Dist::Fin(x + 1),
            Dist::Top => Dist::Top,
        }
    }

    /// Canonicalizes with respect to a known trip count: every distance
    /// `≥ UB − 1` covers all instances and collapses to `⊤`.
    pub fn normalize(self, ub: Option<i64>) -> Dist {
        match (self, ub) {
            (Dist::Fin(x), Some(ub)) if ub >= 1 && x as i128 >= (ub - 1) as i128 => Dist::Top,
            _ => self,
        }
    }

    /// True iff at least the instance at distance `d` is covered.
    pub fn covers(self, d: u64) -> bool {
        match self {
            Dist::Bottom => false,
            Dist::Fin(x) => d <= x,
            Dist::Top => true,
        }
    }

    /// The finite distance, if this value is finite.
    pub fn finite(self) -> Option<u64> {
        match self {
            Dist::Fin(x) => Some(x),
            _ => None,
        }
    }

    /// True for `⊥`.
    pub fn is_bottom(self) -> bool {
        self == Dist::Bottom
    }

    /// True for `⊤`.
    pub fn is_top(self) -> bool {
        self == Dist::Top
    }
}

impl PartialOrd for Dist {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Dist {
    fn cmp(&self, other: &Self) -> Ordering {
        use Dist::*;
        match (self, other) {
            (Bottom, Bottom) | (Top, Top) => Ordering::Equal,
            (Bottom, _) => Ordering::Less,
            (_, Bottom) => Ordering::Greater,
            (Top, _) => Ordering::Greater,
            (_, Top) => Ordering::Less,
            (Fin(a), Fin(b)) => a.cmp(b),
        }
    }
}

impl fmt::Display for Dist {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Dist::Bottom => write!(f, "⊥"),
            Dist::Fin(x) => write!(f, "{x}"),
            Dist::Top => write!(f, "⊤"),
        }
    }
}

impl From<u64> for Dist {
    fn from(x: u64) -> Self {
        Dist::Fin(x)
    }
}

/// A tuple of lattice values, one per generating reference (an element of
/// `Lᵐ` in the paper).
pub type DistVec = Vec<Dist>;

/// Component-wise must-meet of two tuples.
pub fn meet_min(a: &mut DistVec, b: &[Dist]) {
    for (x, &y) in a.iter_mut().zip(b) {
        *x = (*x).min(y);
    }
}

/// Component-wise may-meet of two tuples.
pub fn meet_max(a: &mut DistVec, b: &[Dist]) {
    for (x, &y) in a.iter_mut().zip(b) {
        *x = (*x).max(y);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_order() {
        assert!(Dist::Bottom < Dist::Fin(0));
        assert!(Dist::Fin(0) < Dist::Fin(1));
        assert!(Dist::Fin(1000) < Dist::Top);
        assert!(Dist::Bottom < Dist::Top);
    }

    #[test]
    fn paper_min_max_identities() {
        // ∀x: min(x, ⊥) = ⊥ and min(x, ⊤) = x
        for x in [Dist::Bottom, Dist::Fin(3), Dist::Top] {
            assert_eq!(x.min(Dist::Bottom), Dist::Bottom);
            assert_eq!(x.min(Dist::Top), x);
            // ∀x: max(x, ⊥) = x and max(x, ⊤) = ⊤
            assert_eq!(x.max(Dist::Bottom), x);
            assert_eq!(x.max(Dist::Top), Dist::Top);
        }
    }

    #[test]
    fn incr_fixes_extremes() {
        assert_eq!(Dist::Bottom.incr(), Dist::Bottom);
        assert_eq!(Dist::Top.incr(), Dist::Top);
        assert_eq!(Dist::Fin(4).incr(), Dist::Fin(5));
    }

    #[test]
    fn normalize_clamps_to_trip_count() {
        assert_eq!(Dist::Fin(9).normalize(Some(10)), Dist::Top);
        assert_eq!(Dist::Fin(8).normalize(Some(10)), Dist::Fin(8));
        assert_eq!(Dist::Fin(9).normalize(None), Dist::Fin(9));
        assert_eq!(Dist::Bottom.normalize(Some(2)), Dist::Bottom);
    }

    #[test]
    fn covers_semantics() {
        assert!(!Dist::Bottom.covers(0));
        assert!(Dist::Fin(2).covers(0));
        assert!(Dist::Fin(2).covers(2));
        assert!(!Dist::Fin(2).covers(3));
        assert!(Dist::Top.covers(u64::MAX));
    }

    #[test]
    fn lattice_laws_on_exhaustive_small_domain() {
        // The lattice-law checks formerly run under proptest, here over an
        // exhaustive small chain (⊥, 0..8, ⊤) — exhaustiveness on a chain
        // lattice subsumes random sampling of the same laws.
        let dom: Vec<Dist> = std::iter::once(Dist::Bottom)
            .chain((0u64..8).map(Dist::Fin))
            .chain(std::iter::once(Dist::Top))
            .collect();
        for &a in &dom {
            assert_eq!(a.min(a), a);
            assert_eq!(a.max(a), a);
            for &b in &dom {
                assert_eq!(a.min(b), b.min(a));
                assert_eq!(a.max(b), b.max(a));
                assert!(a.min(b) <= a && a.min(b) <= b);
                assert!(a.max(b) >= a && a.max(b) >= b);
                assert_eq!(a.min(a.max(b)), a);
                assert_eq!(a.max(a.min(b)), a);
                if a <= b {
                    assert!(a.incr() <= b.incr());
                }
                for &c in &dom {
                    assert_eq!(a.min(b).min(c), a.min(b.min(c)));
                }
            }
        }
    }
}

/// Property-test versions of the lattice laws; compiled only when the
/// default-off `proptest` feature is enabled (requires re-adding the
/// `proptest` dev-dependency — the workspace builds offline without it).
#[cfg(all(test, feature = "proptest"))]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_dist() -> impl Strategy<Value = Dist> {
        prop_oneof![
            Just(Dist::Bottom),
            (0u64..100).prop_map(Dist::Fin),
            Just(Dist::Top),
        ]
    }

    proptest! {
        #[test]
        fn min_is_meet(a in arb_dist(), b in arb_dist(), c in arb_dist()) {
            // Commutative, associative, idempotent, and a lower bound.
            prop_assert_eq!(a.min(b), b.min(a));
            prop_assert_eq!(a.min(b).min(c), a.min(b.min(c)));
            prop_assert_eq!(a.min(a), a);
            prop_assert!(a.min(b) <= a && a.min(b) <= b);
        }

        #[test]
        fn max_is_join(a in arb_dist(), b in arb_dist()) {
            prop_assert_eq!(a.max(b), b.max(a));
            prop_assert_eq!(a.max(a), a);
            prop_assert!(a.max(b) >= a && a.max(b) >= b);
        }

        #[test]
        fn incr_is_monotone(a in arb_dist(), b in arb_dist()) {
            if a <= b {
                prop_assert!(a.incr() <= b.incr());
            }
        }

        #[test]
        fn absorption(a in arb_dist(), b in arb_dist()) {
            prop_assert_eq!(a.min(a.max(b)), a);
            prop_assert_eq!(a.max(a.min(b)), a);
        }
    }
}
