//! Enumeration and classification of the reference sites of a loop.
//!
//! Before any problem can be specified, every array reference in the loop
//! body must be located, its subscript put into affine normal form with
//! respect to the analyzed induction variable (linearizing multi-dimensional
//! references, paper §3.6), and its eligibility decided:
//!
//! * a site whose (linearized) subscript is affine in the loop IV — with
//!   every other scalar a genuine symbolic constant — can generate and can
//!   kill exactly;
//! * a definition site that fails the test can still *kill*, but only
//!   conservatively (all instances of its array);
//! * references inside summary nodes may treat the *inner loop induction
//!   variables* as symbolic constants (the paper's Fig. 4 treatment), since
//!   a recurrence with respect to the outer IV relates instances at the
//!   same inner iteration.

use std::collections::HashSet;

use arrayflow_graph::{LoopGraph, NodeId, NodeKind};
use arrayflow_ir::stmt::StmtId;
use arrayflow_ir::visit::modified_scalars;
use arrayflow_ir::{AffineSub, ArrayRef, Block, LinExpr, Loop, Stmt, SymbolTable, VarId};

/// One array reference site in the loop, with its analysis classification.
#[derive(Debug, Clone)]
pub struct Site {
    /// Node the site occurs in.
    pub node: NodeId,
    /// The reference as written.
    pub aref: ArrayRef,
    /// Linearized affine subscript, when the site is analyzable.
    pub sub: Option<AffineSub>,
    /// True if the site writes the element.
    pub is_def: bool,
    /// Owning assignment.
    pub stmt: Option<StmtId>,
    /// True if the site lives inside a summary (nested-loop) node.
    pub in_summary: bool,
}

impl Site {
    /// True if the site can act as a generating reference.
    pub fn is_analyzable(&self) -> bool {
        self.sub.is_some()
    }
}

/// Linearizes multi-dimensional subscripts, inventing a symbolic stride per
/// array dimension whose extent is unknown (paper §3.6 uses `N`, the
/// dimension size, the same way).
///
/// Products of two symbolic constants — e.g. the paper's `N·i` when the
/// inner induction variable `i` acts as a constant during the analysis of
/// an outer loop — are kept linear by introducing memoized *product
/// symbols*: `N·i` becomes the single symbol `N*i`, with its constituents
/// remembered for the loop-invariance check.
#[derive(Debug)]
pub struct Linearizer {
    /// Symbol table extended with the invented stride symbols; use it to
    /// print analysis results.
    pub symbols: SymbolTable,
    products: std::collections::HashMap<(VarId, VarId), VarId>,
    constituents: std::collections::HashMap<VarId, Vec<VarId>>,
}

impl Linearizer {
    /// Creates a linearizer over a copy of the program's symbol table.
    pub fn new(symbols: &SymbolTable) -> Self {
        Self {
            symbols: symbols.clone(),
            products: Default::default(),
            constituents: Default::default(),
        }
    }

    /// The memoized symbol standing for `x·y`.
    fn product_symbol(&mut self, x: VarId, y: VarId) -> VarId {
        let key = if x <= y { (x, y) } else { (y, x) };
        if let Some(&p) = self.products.get(&key) {
            return p;
        }
        let name = format!(
            "{}*{}",
            self.symbols.var_name(key.0).to_owned(),
            self.symbols.var_name(key.1)
        );
        let p = self.symbols.var(&name);
        let mut parts = self.expand(key.0);
        parts.extend(self.expand(key.1));
        self.products.insert(key, p);
        self.constituents.insert(p, parts);
        p
    }

    /// The ground symbols a (possibly product) symbol is built from.
    fn expand(&self, s: VarId) -> Vec<VarId> {
        match self.constituents.get(&s) {
            Some(parts) => parts.clone(),
            None => vec![s],
        }
    }

    /// `a · s` for a symbolic `a`, distributing over `a`'s terms.
    fn mul_by_symbol(&mut self, a: &LinExpr, s: VarId) -> LinExpr {
        let mut acc = LinExpr::term(s, a.constant_part());
        for (sj, c) in a.iter_terms().collect::<Vec<_>>() {
            let p = self.product_symbol(sj, s);
            acc = acc + LinExpr::term(p, c);
        }
        acc
    }

    /// Exact product of two loop-invariant linear expressions over the
    /// extended (product-symbol) space.
    fn mul(&mut self, a: &LinExpr, b: &LinExpr) -> LinExpr {
        if let Some(k) = a.as_constant() {
            return b.scaled(k);
        }
        if let Some(k) = b.as_constant() {
            return a.scaled(k);
        }
        let mut acc = a.scaled(b.constant_part());
        for (s, c) in b.iter_terms().collect::<Vec<_>>() {
            let prod = self.mul_by_symbol(a, s);
            acc = acc + prod.scaled(c);
        }
        acc
    }

    /// True if every ground symbol in `sub` is loop-invariant (or allowed).
    pub fn sound(&self, sub: &AffineSub, env: &ScalarEnv, allowed: &HashSet<VarId>) -> bool {
        sub.coef
            .iter_terms()
            .chain(sub.rest.iter_terms())
            .flat_map(|(s, _)| self.expand(s))
            .all(|s| s == env.iv || !env.modified.contains(&s) || allowed.contains(&s))
    }

    /// Stride of dimension `dim` (0-based) of `array`: the product of the
    /// extents of all later dimensions, as a linear expression. Unknown
    /// extents become named symbols; a product of two unknowns becomes a
    /// single fresh symbol so the result stays linear.
    fn stride(&mut self, array: arrayflow_ir::ArrayId, dim: usize) -> LinExpr {
        let info = self.symbols.array_info(array).clone();
        let mut known: i64 = 1;
        let mut unknown: Vec<usize> = Vec::new();
        for d in (dim + 1)..info.rank {
            match info.extents[d] {
                Some(e) => known = known.saturating_mul(e),
                None => unknown.push(d),
            }
        }
        match unknown.len() {
            0 => LinExpr::constant(known),
            1 => {
                let name = format!("{}#dim{}", info.name, unknown[0]);
                let sym = self.symbols.var(&name);
                LinExpr::term(sym, known)
            }
            _ => {
                // Collapse the whole product into one symbol.
                let name = format!("{}#stride{}", info.name, dim);
                let sym = self.symbols.var(&name);
                LinExpr::term(sym, known)
            }
        }
    }

    /// Linearizes `aref` into a single affine subscript in `iv`, or `None`
    /// if any dimension is non-affine or the combination is non-linear.
    pub fn linearize(&mut self, aref: &ArrayRef, iv: VarId) -> Option<AffineSub> {
        let mut total = AffineSub {
            coef: LinExpr::zero(),
            rest: LinExpr::zero(),
        };
        for (dim, sub_expr) in aref.subs.iter().enumerate() {
            let dim_sub = AffineSub::from_expr(sub_expr, iv)?;
            let stride = self.stride(aref.array, dim);
            // dim_sub · stride, exact over the product-symbol space. The
            // coefficient of the IV must stay linear: a symbolic coefficient
            // times a symbolic stride is fine (→ product symbol), the IV
            // itself never appears inside either factor.
            total.coef = total.coef + self.mul(&dim_sub.coef, &stride);
            total.rest = total.rest + self.mul(&dim_sub.rest, &stride);
        }
        Some(total)
    }
}

/// Scalars that may vary during an iteration of the analyzed loop, and the
/// inner induction variables that are nevertheless admissible as symbolic
/// constants inside their own summary node.
#[derive(Debug)]
pub struct ScalarEnv {
    modified: HashSet<VarId>,
    iv: VarId,
}

impl ScalarEnv {
    /// Builds the environment for analyzing `l`.
    pub fn new(l: &Loop) -> Self {
        Self {
            modified: modified_scalars(&l.body),
            iv: l.iv,
        }
    }
}

/// Induction variables of every loop nested inside a block (recursively).
fn inner_ivs(block: &Block) -> HashSet<VarId> {
    let mut out = HashSet::new();
    fn walk(block: &Block, out: &mut HashSet<VarId>) {
        for stmt in block {
            match stmt {
                Stmt::Assign(_) => {}
                Stmt::If {
                    then_blk, else_blk, ..
                } => {
                    walk(then_blk, out);
                    walk(else_blk, out);
                }
                Stmt::Do(l) => {
                    out.insert(l.iv);
                    walk(&l.body, out);
                }
            }
        }
    }
    walk(block, &mut out);
    out
}

/// Enumerates every reference site of the loop `l` through its graph,
/// classifying each per the rules above. Returns the sites and the
/// linearizer (whose symbol table knows the invented stride names).
pub fn enumerate_sites(
    l: &Loop,
    graph: &LoopGraph,
    symbols: &SymbolTable,
) -> (Vec<Site>, Linearizer) {
    let mut lin = Linearizer::new(symbols);
    let env = ScalarEnv::new(l);
    let empty = HashSet::new();
    let mut sites = Vec::new();
    for node_id in graph.node_ids() {
        let node = graph.node(node_id);
        let (in_summary, allowed) = match &node.kind {
            NodeKind::Summary { inner } => {
                let mut ivs = inner_ivs(&inner.body);
                ivs.insert(inner.iv);
                (true, ivs)
            }
            _ => (false, empty.clone()),
        };
        for site in &node.refs {
            let sub = lin
                .linearize(&site.aref, l.iv)
                .filter(|s| lin.sound(s, &env, &allowed));
            sites.push(Site {
                node: node_id,
                aref: site.aref.clone(),
                sub,
                is_def: site.is_def,
                stmt: site.stmt,
                in_summary,
            });
        }
    }
    (sites, lin)
}

/// The constant iteration distance `δ` such that `gen` generated `δ`
/// iterations ago refers to the same element `use_sub` refers to now:
/// `f_g(i − δ) = f_u(i)` for all `i`, which requires equal coefficients and
/// `δ = (rest_g − rest_u) / coef` to be a non-negative integer.
pub fn constant_distance(gen_sub: &AffineSub, use_sub: &AffineSub) -> Option<u64> {
    if gen_sub.coef != use_sub.coef {
        return None;
    }
    if gen_sub.coef.is_zero() {
        // Invariant references: same location iff rests are equal; the
        // distance is then arbitrary — report 0 overlap only on equality.
        return (gen_sub.rest == use_sub.rest).then_some(0);
    }
    let diff = gen_sub.rest.clone() - use_sub.rest.clone();
    let (n, d) = diff.ratio(&gen_sub.coef)?;
    if d != 1 || n < 0 {
        return None;
    }
    Some(n as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use arrayflow_graph::build_loop_graph;
    use arrayflow_ir::parse_program;
    use arrayflow_ir::Expr;

    fn sites_of(src: &str) -> (arrayflow_ir::Program, Vec<Site>, Linearizer) {
        let p = parse_program(src).unwrap();
        let l = p.sole_loop().unwrap();
        let g = build_loop_graph(l);
        let (s, lin) = enumerate_sites(l, &g, &p.symbols);
        (p, s, lin)
    }

    #[test]
    fn classifies_simple_stencil() {
        let (_, sites, _) = sites_of("do i = 1, 10 A[i+2] := A[i] + x; end");
        assert_eq!(sites.len(), 2);
        let def = sites.iter().find(|s| s.is_def).unwrap();
        assert_eq!(def.sub, Some(AffineSub::simple(1, 2)));
        let usx = sites.iter().find(|s| !s.is_def).unwrap();
        assert_eq!(usx.sub, Some(AffineSub::simple(1, 0)));
    }

    #[test]
    fn nonaffine_subscript_is_kill_only() {
        let (_, sites, _) = sites_of("do i = 1, 10 A[i*i] := A[i]; end");
        let def = sites.iter().find(|s| s.is_def).unwrap();
        assert!(def.sub.is_none());
        assert!(!def.is_analyzable());
    }

    #[test]
    fn modified_scalar_in_subscript_is_rejected() {
        let (_, sites, _) = sites_of(
            "do i = 1, 10
               t := t + 1;
               A[t] := A[i];
             end",
        );
        let def = sites.iter().find(|s| s.is_def).unwrap();
        assert!(def.sub.is_none(), "t varies inside the loop");
        // But the loop-invariant read A[i] is fine.
        let usx = sites.iter().find(|s| !s.is_def && s.sub.is_some()).unwrap();
        assert_eq!(usx.sub, Some(AffineSub::simple(1, 0)));
    }

    #[test]
    fn multidim_linearization_matches_paper_fig4() {
        // Analyzing the inner i-loop of Fig. 4: X[i+1, j] vs X[i, j].
        let p = parse_program(
            "do j = 1, M
               do i = 1, N
                 X[i+1, j] := X[i, j];
               end
             end",
        )
        .unwrap();
        let outer = p.sole_loop().unwrap();
        let inner = match &outer.body[0] {
            arrayflow_ir::Stmt::Do(l) => l,
            _ => panic!(),
        };
        let g = build_loop_graph(inner);
        let (sites, lin) = enumerate_sites(inner, &g, &p.symbols);
        let def = sites
            .iter()
            .find(|s| s.is_def)
            .unwrap()
            .sub
            .clone()
            .unwrap();
        let usx = sites
            .iter()
            .find(|s| !s.is_def)
            .unwrap()
            .sub
            .clone()
            .unwrap();
        // Linearized with symbolic stride S = X#dim1: def = S·i + (S + j),
        // use = S·i + j — distance 1, exactly the paper's N·i + (N+j) form.
        assert_eq!(constant_distance(&def, &usx), Some(1));
        // The stride symbol is printable.
        let s = lin.symbols.lookup_var("X#dim1").unwrap();
        assert!(def.coef.mentions(s));
    }

    #[test]
    fn summary_sites_allow_inner_iv_as_symbol() {
        // Analyzing the outer j-loop of Fig. 4 statement (2):
        // Y[i, j+1] := Y[i, j-1] — recurrence distance 2 in j.
        let p = parse_program(
            "do j = 1, M
               do i = 1, N
                 Y[i, j+1] := Y[i, j-1];
               end
             end",
        )
        .unwrap();
        let outer = p.sole_loop().unwrap();
        let g = build_loop_graph(outer);
        let (sites, _) = enumerate_sites(outer, &g, &p.symbols);
        assert!(sites.iter().all(|s| s.in_summary));
        let def = sites
            .iter()
            .find(|s| s.is_def)
            .unwrap()
            .sub
            .clone()
            .unwrap();
        let usx = sites
            .iter()
            .find(|s| !s.is_def)
            .unwrap()
            .sub
            .clone()
            .unwrap();
        assert_eq!(constant_distance(&def, &usx), Some(2));
    }

    #[test]
    fn diagonal_recurrence_is_not_constant_distance() {
        // Fig. 4 statement (3): Z[i+1, j] := Z[i, j-1] — the recurrence
        // needs both IVs simultaneously; no constant distance in j alone.
        let p = parse_program(
            "do j = 1, M
               do i = 1, N
                 Z[i+1, j] := Z[i, j-1];
               end
             end",
        )
        .unwrap();
        let outer = p.sole_loop().unwrap();
        let g = build_loop_graph(outer);
        let (sites, _) = enumerate_sites(outer, &g, &p.symbols);
        let def = sites
            .iter()
            .find(|s| s.is_def)
            .unwrap()
            .sub
            .clone()
            .unwrap();
        let usx = sites
            .iter()
            .find(|s| !s.is_def)
            .unwrap()
            .sub
            .clone()
            .unwrap();
        assert_eq!(constant_distance(&def, &usx), None);
    }

    #[test]
    fn known_extents_use_constant_strides() {
        let p = parse_program("do i = 1, 10 X[i, 1] := X[i, 2]; end").unwrap();
        // Declare X as 10×4 so strides are constant.
        let x = p.symbols.lookup_array("X").unwrap();
        // Rebuild symbol table info by re-interning is not possible; instead
        // exercise the Linearizer directly with a fresh table.
        let mut t = SymbolTable::new();
        let i = t.var("i");
        let x2 = t.array_with("X", 2, vec![Some(10), Some(4)]);
        let mut lin = Linearizer::new(&t);
        let aref = ArrayRef::multi(x2, vec![Expr::Scalar(i), Expr::Const(2)]);
        let sub = lin.linearize(&aref, i).unwrap();
        // stride(dim 0) = extent(dim 1) = 4 → 4·i + 2.
        assert_eq!(sub, AffineSub::simple(4, 2));
        let _ = x;
    }

    #[test]
    fn constant_distance_edge_cases() {
        // Different coefficients → no constant distance.
        assert_eq!(
            constant_distance(&AffineSub::simple(2, 0), &AffineSub::simple(1, 0)),
            None
        );
        // Negative distance (use is *ahead* of the generator) → None.
        assert_eq!(
            constant_distance(&AffineSub::simple(1, 0), &AffineSub::simple(1, 2)),
            None
        );
        // Fractional → None.
        assert_eq!(
            constant_distance(&AffineSub::simple(2, 1), &AffineSub::simple(2, 0)),
            None
        );
        // Invariant equal / unequal.
        assert_eq!(
            constant_distance(&AffineSub::simple(0, 3), &AffineSub::simple(0, 3)),
            Some(0)
        );
        assert_eq!(
            constant_distance(&AffineSub::simple(0, 3), &AffineSub::simple(0, 4)),
            None
        );
        // The paper's Fig. 1 case: C[i+2] generated, C[i+1] used → δ = 1.
        assert_eq!(
            constant_distance(&AffineSub::simple(1, 2), &AffineSub::simple(1, 1)),
            Some(1)
        );
    }
}
