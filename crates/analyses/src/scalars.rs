//! Conventional scalar data flow over the loop flow graph.
//!
//! The paper's integrated register allocation (§4.1.1) assumes "live ranges
//! of scalar variables are determined using conventional methods \[ASU86\]".
//! This module supplies them: classical backward liveness over the same
//! loop flow graph the array framework uses (with the `exit → entry` back
//! edge), plus live-range extraction with occurrence counts, so scalar and
//! subscripted live ranges can compete in one interference graph.

use std::collections::{BTreeMap, BTreeSet};

use arrayflow_graph::{LoopGraph, NodeId, NodeKind};
use arrayflow_ir::{Expr, LValue, VarId};

/// Per-node scalar uses and definitions.
#[derive(Debug, Clone, Default)]
pub struct UseDef {
    /// Scalars read by the node (before any definition it makes).
    pub uses: BTreeSet<VarId>,
    /// Scalars written by the node.
    pub defs: BTreeSet<VarId>,
}

fn scalars_in_expr(e: &Expr, out: &mut BTreeSet<VarId>) {
    match e {
        Expr::Const(_) => {}
        Expr::Scalar(v) => {
            out.insert(*v);
        }
        Expr::Elem(r) => {
            for s in &r.subs {
                scalars_in_expr(s, out);
            }
        }
        Expr::Bin(_, l, r) => {
            scalars_in_expr(l, out);
            scalars_in_expr(r, out);
        }
    }
}

/// Computes each node's scalar USE/DEF sets.
pub fn use_def(graph: &LoopGraph) -> Vec<UseDef> {
    graph
        .node_ids()
        .map(|id| {
            let mut ud = UseDef::default();
            match &graph.node(id).kind {
                NodeKind::Entry => {}
                NodeKind::Assign { assign, .. } => {
                    scalars_in_expr(&assign.rhs, &mut ud.uses);
                    match &assign.lhs {
                        LValue::Scalar(v) => {
                            ud.defs.insert(*v);
                        }
                        LValue::Elem(r) => {
                            for s in &r.subs {
                                scalars_in_expr(s, &mut ud.uses);
                            }
                        }
                    }
                }
                NodeKind::Test { cond } => {
                    scalars_in_expr(&cond.lhs, &mut ud.uses);
                    scalars_in_expr(&cond.rhs, &mut ud.uses);
                }
                NodeKind::Summary { inner } => {
                    // Conservative: everything the inner loop touches is
                    // both used and defined at the summary node.
                    collect_block(&inner.body, &mut ud);
                    ud.uses.insert(inner.iv);
                    ud.defs.insert(inner.iv);
                    let bounds = [inner.lower.to_expr(), inner.upper.to_expr()];
                    for b in &bounds {
                        scalars_in_expr(b, &mut ud.uses);
                    }
                }
                NodeKind::Exit => {
                    // i := i + 1
                    ud.uses.insert(graph.iv);
                    ud.defs.insert(graph.iv);
                }
            }
            ud
        })
        .collect()
}

fn collect_block(block: &[arrayflow_ir::Stmt], ud: &mut UseDef) {
    use arrayflow_ir::Stmt;
    for stmt in block {
        match stmt {
            Stmt::Assign(a) => {
                scalars_in_expr(&a.rhs, &mut ud.uses);
                match &a.lhs {
                    LValue::Scalar(v) => {
                        ud.defs.insert(*v);
                    }
                    LValue::Elem(r) => {
                        for s in &r.subs {
                            scalars_in_expr(s, &mut ud.uses);
                        }
                    }
                }
            }
            Stmt::If {
                cond,
                then_blk,
                else_blk,
            } => {
                scalars_in_expr(&cond.lhs, &mut ud.uses);
                scalars_in_expr(&cond.rhs, &mut ud.uses);
                collect_block(then_blk, ud);
                collect_block(else_blk, ud);
            }
            Stmt::Do(l) => {
                ud.uses.insert(l.iv);
                ud.defs.insert(l.iv);
                collect_block(&l.body, ud);
            }
        }
    }
}

/// Classical backward liveness: `live_in[n] = uses[n] ∪ (live_out[n] −
/// defs[n])`, `live_out[n] = ⋃ live_in[succ]`, with the loop back edge
/// `exit → entry` included (a scalar live at the loop top is live across
/// the back edge).
#[derive(Debug, Clone)]
pub struct ScalarLiveness {
    /// Live-in set per node (indexed by node).
    pub live_in: Vec<BTreeSet<VarId>>,
    /// Live-out set per node.
    pub live_out: Vec<BTreeSet<VarId>>,
    /// USE/DEF sets per node.
    pub use_def: Vec<UseDef>,
}

/// Runs liveness to a fixed point (the graph is a single natural loop, so
/// two backward passes suffice; we iterate to convergence regardless).
pub fn scalar_liveness(graph: &LoopGraph) -> ScalarLiveness {
    let ud = use_def(graph);
    let n = graph.len();
    let mut live_in: Vec<BTreeSet<VarId>> = vec![BTreeSet::new(); n];
    let mut live_out: Vec<BTreeSet<VarId>> = vec![BTreeSet::new(); n];
    loop {
        let mut changed = false;
        for &node in graph.rpo().iter().rev() {
            let mut out = BTreeSet::new();
            for &s in graph.succs(node) {
                out.extend(live_in[s.index()].iter().copied());
            }
            if node == graph.exit() {
                out.extend(live_in[graph.entry().index()].iter().copied());
            }
            let mut inp: BTreeSet<VarId> = ud[node.index()].uses.clone();
            inp.extend(out.difference(&ud[node.index()].defs).copied());
            if out != live_out[node.index()] || inp != live_in[node.index()] {
                live_out[node.index()] = out;
                live_in[node.index()] = inp;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    ScalarLiveness {
        live_in,
        live_out,
        use_def: ud,
    }
}

/// A scalar live range: where the variable is live and how often it is
/// touched — the inputs to the IRIG priority function (§4.1.2).
#[derive(Debug, Clone)]
pub struct ScalarRange {
    /// The variable.
    pub var: VarId,
    /// Nodes where the variable is live on entry.
    pub live_nodes: Vec<NodeId>,
    /// Number of textual occurrences (uses + defs).
    pub accesses: usize,
    /// True if the range crosses the loop back edge (live at the loop top).
    pub crosses_back_edge: bool,
}

impl ScalarRange {
    /// Range length `|l|` in nodes.
    pub fn len(&self) -> usize {
        self.live_nodes.len().max(1)
    }

    /// True when the range is empty (a dead variable).
    pub fn is_empty(&self) -> bool {
        self.live_nodes.is_empty()
    }

    /// True if this range overlaps another (both live at some node).
    pub fn interferes(&self, other: &ScalarRange) -> bool {
        let a: BTreeSet<_> = self.live_nodes.iter().collect();
        other.live_nodes.iter().any(|n| a.contains(n))
    }
}

/// Extracts the live range of every scalar occurring in the loop
/// (excluding the induction variable, which is reserved).
pub fn scalar_live_ranges(graph: &LoopGraph) -> Vec<ScalarRange> {
    let lv = scalar_liveness(graph);
    let mut vars: BTreeMap<VarId, (Vec<NodeId>, usize)> = BTreeMap::new();
    for node in graph.node_ids() {
        let ud = &lv.use_def[node.index()];
        for &v in ud.uses.iter().chain(ud.defs.iter()) {
            vars.entry(v).or_default().1 += 1;
        }
    }
    for node in graph.node_ids() {
        for &v in &lv.live_in[node.index()] {
            vars.entry(v).or_default().0.push(node);
        }
    }
    vars.into_iter()
        .filter(|&(v, _)| v != graph.iv)
        .map(|(var, (live_nodes, accesses))| {
            let crosses = lv.live_in[graph.entry().index()].contains(&var);
            ScalarRange {
                var,
                live_nodes,
                accesses,
                crosses_back_edge: crosses,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use arrayflow_graph::build_loop_graph;
    use arrayflow_ir::parse_program;

    fn ranges(src: &str) -> (arrayflow_ir::Program, Vec<ScalarRange>) {
        let p = parse_program(src).unwrap();
        let g = build_loop_graph(p.sole_loop().unwrap());
        let r = scalar_live_ranges(&g);
        (p, r)
    }

    fn range_of<'a>(
        p: &arrayflow_ir::Program,
        rs: &'a [ScalarRange],
        name: &str,
    ) -> &'a ScalarRange {
        let v = p.symbols.lookup_var(name).unwrap();
        rs.iter().find(|r| r.var == v).unwrap()
    }

    #[test]
    fn accumulator_is_live_across_the_back_edge() {
        let (p, rs) = ranges("do i = 1, 10 s := s + A[i]; end");
        let s = range_of(&p, &rs, "s");
        assert!(s.crosses_back_edge);
        assert!(!s.is_empty());
        assert_eq!(s.accesses, 2);
    }

    #[test]
    fn local_temporary_is_short_lived() {
        let (p, rs) = ranges(
            "do i = 1, 10
               t := A[i] * 2;
               B[i] := t + 1;
               u := B[i];
               C[i] := u;
             end",
        );
        let t = range_of(&p, &rs, "t");
        let u = range_of(&p, &rs, "u");
        assert!(!t.crosses_back_edge, "t is dead after its use");
        assert!(!u.crosses_back_edge);
        // t is live only between its def and its use; u likewise — and the
        // two ranges do not overlap (t dies before u is born).
        assert!(!t.interferes(u), "t: {t:?}, u: {u:?}");
    }

    #[test]
    fn simultaneously_live_temporaries_interfere() {
        let (p, rs) = ranges(
            "do i = 1, 10
               t := A[i];
               u := B[i];
               C[i] := t + u;
             end",
        );
        let t = range_of(&p, &rs, "t");
        let u = range_of(&p, &rs, "u");
        assert!(t.interferes(u));
    }

    #[test]
    fn read_only_symbol_is_live_everywhere() {
        let (p, rs) = ranges("do i = 1, 10 A[i] := A[i] + x; end");
        let x = range_of(&p, &rs, "x");
        assert!(x.crosses_back_edge);
        // Live at every node of the body.
        let g = build_loop_graph(p.sole_loop().unwrap());
        assert_eq!(x.live_nodes.len(), g.len());
    }

    #[test]
    fn conditional_uses_keep_values_alive_on_both_paths() {
        let (p, rs) = ranges(
            "do i = 1, 10
               t := A[i];
               if x > 0 then B[i] := t; end
             end",
        );
        let t = range_of(&p, &rs, "t");
        assert!(!t.crosses_back_edge);
        assert!(t.accesses >= 2);
    }

    #[test]
    fn summary_nodes_are_conservative() {
        let p = parse_program(
            "do j = 1, 10
               s := 0;
               do i = 1, 5 s := s + A[i]; end
               B[j] := s;
             end",
        )
        .unwrap();
        let g = build_loop_graph(p.sole_loop().unwrap());
        let rs = scalar_live_ranges(&g);
        let s = range_of(&p, &rs, "s");
        assert!(s.accesses >= 3, "summary contributes uses and defs");
        assert!(!s.is_empty());
    }
}
