//! Human-readable rendering of analysis results — used by the benchmark
//! harness to regenerate the paper's Table 1 and by diagnostics.

use std::fmt::Write;

use arrayflow_core::Dist;
use arrayflow_graph::{LoopGraph, NodeKind};
use arrayflow_ir::SymbolTable;

use crate::instances::Instance;

/// Renders the fixed point of an instance as a Table-1-style grid: one row
/// per node (`IN`/`OUT` pairs), one column per tracked reference.
pub fn render_solution(inst: &Instance, graph: &LoopGraph, symbols: &SymbolTable) -> String {
    let mut out = String::new();
    let headers: Vec<String> = inst
        .built
        .spec
        .gens
        .iter()
        .map(|g| arrayflow_ir::pretty::ref_to_string(symbols, &g.aref))
        .collect();
    let _ = writeln!(out, "        tuples ({})", headers.join(", "));
    for node in graph.node_ids() {
        let label = match &graph.node(node).kind {
            NodeKind::Entry => "entry".to_string(),
            NodeKind::Exit => "exit ".to_string(),
            _ => format!("{node}   "),
        };
        let fmt_tuple = |v: &[Dist]| {
            let cells: Vec<String> = v.iter().map(|d| d.to_string()).collect();
            format!("({})", cells.join(", "))
        };
        let _ = writeln!(
            out,
            "IN [{label}] {}",
            fmt_tuple(&inst.sol.before[node.index()])
        );
        let _ = writeln!(
            out,
            "OUT[{label}] {}",
            fmt_tuple(&inst.sol.after[node.index()])
        );
    }
    out
}

/// Regenerates the paper's **Table 1** for a loop: the data flow tuples of
/// must-reaching definitions after the initialization pass and after each
/// iteration pass, at every node.
///
/// # Errors
///
/// Returns [`crate::AnalyzeError`] if the program is not a single
/// normalized loop.
pub fn render_table1(program: &arrayflow_ir::Program) -> Result<String, crate::AnalyzeError> {
    use arrayflow_core::{solve_traced, Direction, Mode};

    let l = program
        .sole_loop()
        .ok_or(crate::AnalyzeError::NotASingleLoop)?;
    if !l.is_normalized() {
        return Err(crate::AnalyzeError::NotNormalized);
    }
    let graph = arrayflow_graph::build_loop_graph(l);
    let (sites, lin) = crate::sites::enumerate_sites(l, &graph, &program.symbols);
    let built = crate::spec::build_spec(
        &sites,
        crate::spec::GK::REACHING_DEFS,
        Direction::Forward,
        Mode::Must,
    );
    let (_, snapshots) = solve_traced(&graph, &built.spec);

    let headers: Vec<String> = built
        .spec
        .gens
        .iter()
        .map(|g| arrayflow_ir::pretty::ref_to_string(&lin.symbols, &g.aref))
        .collect();
    let mut out = String::new();
    let _ = writeln!(out, "tuples ({})", headers.join(", "));
    for (k, (ins, outs)) in snapshots.iter().enumerate() {
        let title = if k == 0 {
            "(i) initialization pass".to_string()
        } else {
            format!("(ii) pass {k}")
        };
        let _ = writeln!(out, "--- {title} ---");
        for node in graph.node_ids() {
            let label = graph.node(node).label(&lin.symbols);
            let fmt_tuple = |v: &[Dist]| {
                let cells: Vec<String> = v.iter().map(|d| d.to_string()).collect();
                format!("({})", cells.join(", "))
            };
            let _ = writeln!(
                out,
                "IN [{node}] {:<22} OUT[{node}] {:<22} {label}",
                fmt_tuple(&ins[node.index()]),
                fmt_tuple(&outs[node.index()]),
            );
        }
    }
    Ok(out)
}

/// One-line summary of solver effort, e.g. `visits=21 (3 passes, N=7)`.
pub fn render_stats(inst: &Instance, graph: &LoopGraph) -> String {
    let s = &inst.sol.stats;
    format!(
        "init_visits={} iter_visits={} changing_passes={} visits_to_fix={} (N={})",
        s.init_visits,
        s.iter_visits,
        s.changing_passes,
        s.visits_to_fix(graph.len()),
        graph.len()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_solution_lists_every_node_and_reference() {
        let p = arrayflow_ir::parse_program("do i = 1, 10 A[i+1] := A[i] + 1; end").unwrap();
        let a = crate::analyze_loop(&p).unwrap();
        let txt = render_solution(&a.reaching, &a.graph, &a.symbols);
        assert!(txt.contains("tuples (A[i + 1])"), "{txt}");
        assert!(txt.contains("IN [entry]"), "{txt}");
        assert!(txt.contains("OUT[exit "), "{txt}");
        // One IN and one OUT line per node.
        assert_eq!(txt.matches("IN [").count(), a.graph.len(), "{txt}");
        assert_eq!(txt.matches("OUT[").count(), a.graph.len(), "{txt}");
    }

    #[test]
    fn render_table1_errors_on_non_loops() {
        let p = arrayflow_ir::parse_program("x := 1;").unwrap();
        assert!(render_table1(&p).is_err());
        let p2 = arrayflow_ir::parse_program("do i = 2, 9 A[i] := 0; end").unwrap();
        assert_eq!(
            render_table1(&p2).unwrap_err(),
            crate::AnalyzeError::NotNormalized
        );
    }
}
