//! One-call analysis drivers.

use std::fmt;

use arrayflow_core::{CustomSpec, Direction, Mode};
use arrayflow_graph::{build_loop_graph, LoopGraph};
use arrayflow_ir::{Loop, Program, Stmt, SymbolTable};

use crate::instances::{
    dependences, redundant_stores, reuse_pairs, Dep, Instance, RedundantStore, Reuse,
};
use crate::sites::{enumerate_sites, Site};
use crate::spec::GK;

/// Errors from the analysis drivers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AnalyzeError {
    /// The program body is not a single `do` loop.
    NotASingleLoop,
    /// The target loop is not in normalized form (`do i = 1, UB` step 1);
    /// run [`arrayflow_ir::normalize()`] first.
    NotNormalized,
    /// A cooperative stop check fired mid-analysis (cancelled or expired
    /// request). Carries the solver passes completed across all instances
    /// before the analysis yielded — the wasted work.
    Stopped {
        /// Iteration passes executed before the stop was observed.
        passes: u64,
    },
}

impl fmt::Display for AnalyzeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalyzeError::NotASingleLoop => {
                write!(f, "program body is not a single do-loop")
            }
            AnalyzeError::NotNormalized => {
                write!(f, "loop is not normalized (lower bound 1, step 1)")
            }
            AnalyzeError::Stopped { passes } => {
                write!(f, "analysis stopped after {passes} solver passes")
            }
        }
    }
}

impl std::error::Error for AnalyzeError {}

/// The complete analysis of one loop level: the flow graph, the classified
/// reference sites, and all four solved framework instances.
#[derive(Debug, Clone)]
pub struct LoopAnalysis {
    /// Symbol table extended with linearization stride symbols.
    pub symbols: SymbolTable,
    /// The loop flow graph.
    pub graph: LoopGraph,
    /// Classified reference sites.
    pub sites: Vec<Site>,
    /// Must-reaching definitions (§3.5).
    pub reaching: Instance,
    /// δ-available values (§4.1.1).
    pub available: Instance,
    /// δ-busy stores — backward must (§4.2.1).
    pub busy: Instance,
    /// δ-reaching references — may (§4.3).
    pub reaching_refs: Instance,
}

impl LoopAnalysis {
    /// Analyzes one normalized loop.
    pub fn of_loop(l: &Loop, symbols: &SymbolTable) -> Result<Self, AnalyzeError> {
        Self::of_loop_ctrl(l, symbols, None)
    }

    /// Like [`LoopAnalysis::of_loop`], but polls `should_stop` between
    /// solver passes of each of the four instances and yields
    /// [`AnalyzeError::Stopped`] — carrying the iteration passes already
    /// spent — as soon as it returns `true`. With `None` the result is
    /// identical to [`LoopAnalysis::of_loop`].
    pub fn of_loop_ctrl(
        l: &Loop,
        symbols: &SymbolTable,
        should_stop: Option<arrayflow_core::StopCheck<'_>>,
    ) -> Result<Self, AnalyzeError> {
        if !l.is_normalized() {
            return Err(AnalyzeError::NotNormalized);
        }
        let graph = build_loop_graph(l);
        let (sites, lin) = enumerate_sites(l, &graph, symbols);
        let mut spent: u64 = 0;
        let run = |gk, direction, mode, spent: &mut u64| match Instance::run_ctrl(
            &graph,
            &sites,
            gk,
            direction,
            mode,
            should_stop,
        ) {
            Ok(i) => {
                *spent += i.sol.stats.passes as u64;
                Ok(i)
            }
            Err(s) => Err(AnalyzeError::Stopped {
                passes: *spent + s.passes_completed as u64,
            }),
        };
        let reaching = run(
            GK::REACHING_DEFS,
            Direction::Forward,
            Mode::Must,
            &mut spent,
        )?;
        let available = run(GK::AVAILABLE, Direction::Forward, Mode::Must, &mut spent)?;
        let busy = run(GK::BUSY_STORES, Direction::Backward, Mode::Must, &mut spent)?;
        let reaching_refs = run(GK::REACHING_REFS, Direction::Forward, Mode::May, &mut spent)?;
        Ok(Self {
            symbols: lin.symbols,
            graph,
            sites,
            reaching,
            available,
            busy,
            reaching_refs,
        })
    }

    /// All guaranteed constant-distance reuse pairs (§4.1.1).
    pub fn reuse_pairs(&self) -> Vec<Reuse> {
        reuse_pairs(&self.graph, &self.sites, &self.available)
    }

    /// All δ-redundant stores (§4.2.1).
    pub fn redundant_stores(&self) -> Vec<RedundantStore> {
        redundant_stores(&self.graph, &self.sites, &self.busy)
    }

    /// All potential dependences with distance at most `max_distance`
    /// (§4.3).
    pub fn dependences(&self, max_distance: u64) -> Vec<Dep> {
        dependences(&self.graph, &self.sites, &self.reaching_refs, max_distance)
    }

    /// Renders a site as source text, e.g. `A[i + 2]`.
    pub fn site_text(&self, site: usize) -> String {
        self.site_text_of_ref(&self.sites[site].aref)
    }

    /// Renders an arbitrary array reference with this analysis' symbols.
    pub fn site_text_of_ref(&self, aref: &arrayflow_ir::ArrayRef) -> String {
        arrayflow_ir::pretty::ref_to_string(&self.symbols, aref)
    }

    /// Renders a tracked generating reference.
    pub fn site_text_of(&self, gen: &arrayflow_core::GenRef) -> String {
        self.site_text_of_ref(&gen.aref)
    }
}

/// One solved user-specified (G, K) instance over a normalized loop: the
/// flow graph, the classified site table, and the converged instance —
/// the custom-problem counterpart of [`LoopAnalysis`].
#[derive(Debug, Clone)]
pub struct CustomAnalysis {
    /// The loop flow graph.
    pub graph: LoopGraph,
    /// Classified reference sites.
    pub sites: Vec<Site>,
    /// The solved instance under the requested roles/direction/mode.
    pub instance: Instance,
}

impl CustomAnalysis {
    /// Solves one wire-submitted [`CustomSpec`] over a normalized loop.
    ///
    /// # Errors
    ///
    /// Returns [`AnalyzeError::NotNormalized`] when the loop is not in
    /// `do i = 1, UB` step-1 form.
    pub fn of_loop(
        l: &Loop,
        symbols: &SymbolTable,
        spec: CustomSpec,
    ) -> Result<Self, AnalyzeError> {
        Self::of_loop_ctrl(l, symbols, spec, None)
    }

    /// [`CustomAnalysis::of_loop`] with a cooperative stop check (see
    /// [`LoopAnalysis::of_loop_ctrl`]).
    pub fn of_loop_ctrl(
        l: &Loop,
        symbols: &SymbolTable,
        spec: CustomSpec,
        should_stop: Option<arrayflow_core::StopCheck<'_>>,
    ) -> Result<Self, AnalyzeError> {
        if !l.is_normalized() {
            return Err(AnalyzeError::NotNormalized);
        }
        let graph = build_loop_graph(l);
        let (sites, _) = enumerate_sites(l, &graph, symbols);
        let instance = Instance::run_ctrl(
            &graph,
            &sites,
            spec.into(),
            spec.direction,
            spec.mode,
            should_stop,
        )
        .map_err(|s| AnalyzeError::Stopped {
            passes: s.passes_completed as u64,
        })?;
        Ok(Self {
            graph,
            sites,
            instance,
        })
    }
}

/// Analyzes the outermost loop of a single-loop program.
///
/// # Errors
///
/// Returns [`AnalyzeError::NotASingleLoop`] unless the program body is one
/// `do` loop, and [`AnalyzeError::NotNormalized`] if normalization is
/// needed first.
///
/// # Example
///
/// ```
/// let p = arrayflow_ir::parse_program(
///     "do i = 1, 100 A[i+2] := A[i] + x; end").unwrap();
/// let a = arrayflow_analyses::analyze_loop(&p).unwrap();
/// let reuses = a.reuse_pairs();
/// assert_eq!(reuses.len(), 1);
/// assert_eq!(reuses[0].distance, 2);
/// ```
pub fn analyze_loop(program: &Program) -> Result<LoopAnalysis, AnalyzeError> {
    let l = program.sole_loop().ok_or(AnalyzeError::NotASingleLoop)?;
    LoopAnalysis::of_loop(l, &program.symbols)
}

/// Every loop of a (possibly nested) program, innermost first — the
/// hierarchical analysis order of §3.2. Deeper loops come before the loops
/// enclosing them, so by the time an enclosing loop is analyzed (with its
/// inner loops as summary nodes) the inner results already exist; the batch
/// engine relies on this order to warm its memo cache bottom-up.
pub fn loops_innermost_first(program: &Program) -> Vec<&Loop> {
    let mut loops: Vec<&Loop> = Vec::new();
    fn collect<'a>(body: &'a [Stmt], out: &mut Vec<&'a Loop>) {
        for stmt in body {
            match stmt {
                Stmt::Do(l) => {
                    collect(&l.body, out);
                    out.push(l);
                }
                Stmt::If {
                    then_blk, else_blk, ..
                } => {
                    collect(then_blk, out);
                    collect(else_blk, out);
                }
                Stmt::Assign(_) => {}
            }
        }
    }
    collect(&program.body, &mut loops);
    loops
}

/// Analyzes every loop of a (possibly nested) program, innermost first —
/// the hierarchical scheme of §3.2. Each returned analysis is with respect
/// to that loop's own induction variable, with deeper loops summarized.
pub fn analyze_nest(program: &Program) -> Result<Vec<LoopAnalysis>, AnalyzeError> {
    loops_innermost_first(program)
        .into_iter()
        .map(|l| LoopAnalysis::of_loop(l, &program.symbols))
        .collect()
}
