#![warn(missing_docs)]
//! Framework instances for array reference analysis.
//!
//! This crate instantiates the `arrayflow-core` data flow framework with the
//! (G, K) parameter pairs the paper develops, and interprets the fixed
//! points back in source terms:
//!
//! | Instance | G | K | Direction | Mode | Used for |
//! |---|---|---|---|---|---|
//! | must-reaching definitions | defs | defs | forward | must | guaranteed value reuse (§3.5) |
//! | δ-available values | defs ∪ uses | defs | forward | must | live ranges, register pipelining, load elimination (§4.1, §4.2.2) |
//! | δ-busy stores | defs | uses | backward | must | redundant store elimination (§4.2.1) |
//! | δ-reaching references | defs ∪ uses | defs | forward | may | dependence distances, controlled unrolling (§4.3) |
//!
//! Entry points: [`analyze_loop`] for single loops, [`analyze_nest`] for
//! loop nests (hierarchical, innermost first — §3.2), or [`Instance::run`]
//! for custom (G, K) combinations.

pub mod driver;
pub mod instances;
pub mod nestvec;
pub mod report;
pub mod scalars;
pub mod sites;
pub mod spec;

pub use driver::{
    analyze_loop, analyze_nest, loops_innermost_first, AnalyzeError, CustomAnalysis, LoopAnalysis,
};
pub use instances::{
    best_reuse, dependences, redundant_stores, reuse_pairs, Dep, DepKind, Instance, RedundantStore,
    Reuse,
};
pub use nestvec::{nest_distance_vectors, nest_sites, NestDep, NestError, NestSite};
pub use scalars::{scalar_live_ranges, scalar_liveness, ScalarLiveness, ScalarRange};
pub use sites::{constant_distance, enumerate_sites, Linearizer, Site};
pub use spec::{build_spec, BuiltSpec, GK};
