//! From classified sites to a solver-ready [`ProblemSpec`].

use arrayflow_core::{CustomSpec, Direction, KillKind, Mode, ProblemSpec, RefId};

use crate::sites::Site;

/// Which site roles generate and which kill — the (G, K) parameter pair of
/// the framework (paper §3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GK {
    /// Definitions generate.
    pub gen_defs: bool,
    /// Uses generate.
    pub gen_uses: bool,
    /// Definitions kill.
    pub kill_defs: bool,
    /// Uses kill.
    pub kill_uses: bool,
}

impl GK {
    /// Must-reaching definitions (§3.5): G = defs, K = defs.
    pub const REACHING_DEFS: GK = GK {
        gen_defs: true,
        gen_uses: false,
        kill_defs: true,
        kill_uses: false,
    };
    /// δ-available values (§4.1.1): G = defs ∪ uses, K = defs.
    pub const AVAILABLE: GK = GK {
        gen_defs: true,
        gen_uses: true,
        kill_defs: true,
        kill_uses: false,
    };
    /// δ-busy stores (§4.2.1): G = defs, K = uses.
    pub const BUSY_STORES: GK = GK {
        gen_defs: true,
        gen_uses: false,
        kill_defs: false,
        kill_uses: true,
    };
    /// δ-reaching references (§4.3): G = defs ∪ uses, K = defs.
    pub const REACHING_REFS: GK = GK {
        gen_defs: true,
        gen_uses: true,
        kill_defs: true,
        kill_uses: false,
    };
    /// δ-live array elements — the paper's canonical backward may-problem
    /// (§3.3/§3.4 name live variable analysis as the motivating example):
    /// G = uses, K = defs, run backward in may-mode. `IN[n, u] = x` means
    /// the element `u` reads may still be read up to `x` iterations in the
    /// past relative to its use (i.e. a definition writing that element at
    /// node exit of `n` feeds a use at distance ≤ x).
    pub const LIVE_ELEMENTS: GK = GK {
        gen_defs: false,
        gen_uses: true,
        kill_defs: true,
        kill_uses: false,
    };
}

impl From<CustomSpec> for GK {
    /// The role-selection half of a wire-submitted custom spec (direction
    /// and mode travel separately into [`build_spec`]).
    fn from(spec: CustomSpec) -> GK {
        GK {
            gen_defs: spec.gen_defs,
            gen_uses: spec.gen_uses,
            kill_defs: spec.kill_defs,
            kill_uses: spec.kill_uses,
        }
    }
}

/// A [`ProblemSpec`] together with the mapping from its tracked references
/// back to the site table.
#[derive(Debug, Clone)]
pub struct BuiltSpec {
    /// The solver input.
    pub spec: ProblemSpec,
    /// For each [`RefId`] (by index), the index of its site in the site
    /// table.
    pub gen_site: Vec<usize>,
}

impl BuiltSpec {
    /// The site of a tracked reference.
    pub fn site_of<'a>(&self, id: RefId, sites: &'a [Site]) -> &'a Site {
        &sites[self.gen_site[id.index()]]
    }
}

/// Builds a problem spec from classified sites.
///
/// Analyzable sites in the selected roles become generators; killing-role
/// sites become [`KillKind::Exact`] kills when analyzable and
/// [`KillKind::AllOfArray`] kills otherwise (the sound fallback for
/// non-affine subscripts and summary contents the outer analysis cannot
/// express).
pub fn build_spec(sites: &[Site], gk: GK, direction: Direction, mode: Mode) -> BuiltSpec {
    let mut spec = ProblemSpec::new(direction, mode);
    let mut gen_site = Vec::new();
    for (idx, site) in sites.iter().enumerate() {
        let gen_role = (site.is_def && gk.gen_defs) || (!site.is_def && gk.gen_uses);
        if gen_role {
            if let Some(sub) = &site.sub {
                let id = spec.add_gen(
                    site.node,
                    site.aref.clone(),
                    sub.clone(),
                    site.is_def,
                    site.stmt,
                );
                spec.gens[id.index()].origin = Some(idx as u32);
                gen_site.push(idx);
            }
        }
        let kill_role = (site.is_def && gk.kill_defs) || (!site.is_def && gk.kill_uses);
        if kill_role {
            let kind = match &site.sub {
                Some(sub) => KillKind::Exact(sub.clone()),
                None => KillKind::AllOfArray,
            };
            spec.add_kill(site.node, site.aref.array, kind);
            let k = spec.kills.last_mut().expect("just pushed");
            k.is_def = site.is_def;
            k.origin = Some(idx as u32);
        }
    }
    BuiltSpec { spec, gen_site }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sites::enumerate_sites;
    use arrayflow_graph::build_loop_graph;
    use arrayflow_ir::parse_program;

    fn build(src: &str, gk: GK) -> (Vec<Site>, BuiltSpec) {
        let p = parse_program(src).unwrap();
        let l = p.sole_loop().unwrap();
        let g = build_loop_graph(l);
        let (sites, _) = enumerate_sites(l, &g, &p.symbols);
        let built = build_spec(&sites, gk, Direction::Forward, Mode::Must);
        (sites, built)
    }

    #[test]
    fn reaching_defs_tracks_only_defs() {
        let (_, b) = build("do i = 1, 10 A[i+2] := A[i] + B[i]; end", GK::REACHING_DEFS);
        assert_eq!(b.spec.width(), 1);
        assert_eq!(b.spec.kills.len(), 1);
    }

    #[test]
    fn available_tracks_defs_and_uses() {
        let (_, b) = build("do i = 1, 10 A[i+2] := A[i] + B[i]; end", GK::AVAILABLE);
        assert_eq!(b.spec.width(), 3);
        assert_eq!(b.spec.kills.len(), 1); // only the def kills
    }

    #[test]
    fn busy_stores_kill_by_uses() {
        let (_, b) = build("do i = 1, 10 A[i+2] := A[i] + B[i]; end", GK::BUSY_STORES);
        assert_eq!(b.spec.width(), 1);
        assert_eq!(b.spec.kills.len(), 2); // both uses kill
    }

    #[test]
    fn nonaffine_def_degrades_to_all_of_array_kill() {
        let (_, b) = build("do i = 1, 10 A[i*i] := A[i]; end", GK::REACHING_DEFS);
        assert_eq!(b.spec.width(), 0, "non-affine def cannot generate");
        assert_eq!(b.spec.kills.len(), 1);
        assert!(matches!(b.spec.kills[0].kind, KillKind::AllOfArray));
    }

    #[test]
    fn gen_site_maps_back() {
        let (sites, b) = build("do i = 1, 10 A[i+2] := A[i]; end", GK::AVAILABLE);
        for (k, &s) in b.gen_site.iter().enumerate() {
            let gen = &b.spec.gens[k];
            assert_eq!(gen.node, sites[s].node);
            assert_eq!(gen.is_def, sites[s].is_def);
        }
    }
}
