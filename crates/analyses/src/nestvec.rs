//! Distance vectors for tight loop nests — the extension sketched in the
//! paper's §3.6/§6 ("the distance information … must be expanded to a
//! vector of distance values, one for each induction variable of an
//! enclosing loop").
//!
//! The per-loop framework detects recurrences with respect to a *single*
//! induction variable; Fig. 4's statement (3), `Z[i+1, j] := Z[i, j−1]`,
//! recurs only with respect to `i` and `j` simultaneously. This module
//! handles exactly that case for perfect nests: each pair of references to
//! the same array yields an integer linear system
//! `A·Δ = c₁ − c₂` (one equation per dimension, one unknown per loop), and
//! a unique integer solution is the constant distance *vector*, ordered
//! outermost loop first.

use std::fmt;

use arrayflow_ir::stmt::StmtId;
use arrayflow_ir::{AffineSub, ArrayRef, Loop, Program, Stmt, VarId};

/// A reference site within the innermost body of a perfect nest.
#[derive(Debug, Clone)]
pub struct NestSite {
    /// The reference as written.
    pub aref: ArrayRef,
    /// Owning assignment.
    pub stmt: StmtId,
    /// True for definitions.
    pub is_def: bool,
    /// Row `d` holds the coefficients of each induction variable (outer
    /// first) in dimension `d`'s subscript; `consts[d]` the constant term.
    coeffs: Vec<Vec<i64>>,
    consts: Vec<i64>,
}

/// A constant-distance relation between two references across the whole
/// nest: the source instance at iteration vector `I − Δ` touches the same
/// element as the sink at `I`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NestDep {
    /// Index of the source site (executes `Δ` earlier).
    pub src: usize,
    /// Index of the sink site.
    pub dst: usize,
    /// Distance per induction variable, outermost first.
    pub distances: Vec<i64>,
}

impl NestDep {
    /// True when the vector is lexicographically positive (a loop-carried
    /// forward dependence) or all-zero (loop-independent).
    pub fn is_lexicographically_nonnegative(&self) -> bool {
        for &d in &self.distances {
            if d > 0 {
                return true;
            }
            if d < 0 {
                return false;
            }
        }
        true
    }
}

/// Errors from [`nest_distance_vectors`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NestError {
    /// The program body is not a perfect loop nest (each level exactly one
    /// statement which is the next loop, innermost level all assignments).
    NotAPerfectNest,
}

impl fmt::Display for NestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NestError::NotAPerfectNest => write!(f, "program is not a perfect loop nest"),
        }
    }
}

impl std::error::Error for NestError {}

/// Collects the nest's induction variables (outer first) and the innermost
/// body.
fn nest_of(program: &Program) -> Result<(Vec<VarId>, &[Stmt]), NestError> {
    let mut ivs = Vec::new();
    let mut level: &Loop = match program.body.as_slice() {
        [Stmt::Do(l)] => l,
        _ => return Err(NestError::NotAPerfectNest),
    };
    loop {
        ivs.push(level.iv);
        match level.body.as_slice() {
            [Stmt::Do(inner)] => level = inner,
            body if body.iter().all(|s| matches!(s, Stmt::Assign(_))) && !body.is_empty() => {
                return Ok((ivs, &level.body));
            }
            _ => return Err(NestError::NotAPerfectNest),
        }
    }
}

/// Extracts the multi-affine form of a reference with respect to the nest's
/// induction variables. Returns `None` for non-affine subscripts or stray
/// symbols.
fn multi_affine(aref: &ArrayRef, ivs: &[VarId]) -> Option<(Vec<Vec<i64>>, Vec<i64>)> {
    let mut coeffs = Vec::with_capacity(aref.subs.len());
    let mut consts = Vec::with_capacity(aref.subs.len());
    for sub in &aref.subs {
        let mut row = Vec::with_capacity(ivs.len());
        // Peel induction variables one at a time; what remains must be a
        // plain integer.
        let mut rest = AffineSub::from_expr(sub, *ivs.first()?)?;
        row.push(rest.coef.as_constant()?);
        for &iv in &ivs[1..] {
            let c = rest.rest.coeff(iv);
            row.push(c);
            rest.rest = rest.rest.clone() - arrayflow_ir::LinExpr::term(iv, c);
        }
        let c = rest.rest.as_constant()?;
        coeffs.push(row);
        consts.push(c);
    }
    Some((coeffs, consts))
}

/// Enumerates the analyzable reference sites of a perfect nest.
pub fn nest_sites(program: &Program) -> Result<(Vec<VarId>, Vec<NestSite>), NestError> {
    let (ivs, body) = nest_of(program)?;
    let mut sites = Vec::new();
    for stmt in body {
        let Stmt::Assign(a) = stmt else {
            unreachable!()
        };
        let mut push = |aref: &ArrayRef, is_def: bool| {
            if let Some((coeffs, consts)) = multi_affine(aref, &ivs) {
                sites.push(NestSite {
                    aref: aref.clone(),
                    stmt: a.id,
                    is_def,
                    coeffs,
                    consts,
                });
            }
        };
        for u in arrayflow_ir::visit::assign_uses(a) {
            push(u, false);
        }
        if let Some(d) = arrayflow_ir::visit::assign_def(a) {
            push(d, true);
        }
    }
    Ok((ivs, sites))
}

/// Finds every constant distance *vector* between a definition and another
/// reference of the same array in a perfect nest (the source must be a
/// definition or the sink one — use↔use pairs carry no dependence).
///
/// # Errors
///
/// Returns [`NestError::NotAPerfectNest`] for programs outside the model.
pub fn nest_distance_vectors(program: &Program) -> Result<Vec<NestDep>, NestError> {
    let (ivs, sites) = nest_sites(program)?;
    let n = ivs.len();
    let mut out = Vec::new();
    for (si, src) in sites.iter().enumerate() {
        for (di, dst) in sites.iter().enumerate() {
            if si == di || src.aref.array != dst.aref.array {
                continue;
            }
            if !src.is_def && !dst.is_def {
                continue;
            }
            if src.coeffs.len() != dst.coeffs.len() {
                continue;
            }
            // src(I − Δ) = dst(I) for all I ⟺ per dimension:
            //   Σ a_src,k (i_k − δ_k) + c_src = Σ a_dst,k i_k + c_dst
            // ⟺ coefficients match and Σ a_src,k δ_k = c_src − c_dst.
            if src.coeffs != dst.coeffs {
                continue;
            }
            let rhs: Vec<i64> = src
                .consts
                .iter()
                .zip(&dst.consts)
                .map(|(a, b)| a - b)
                .collect();
            if let Some(delta) = solve_integer(&src.coeffs, &rhs, n) {
                let dep = NestDep {
                    src: si,
                    dst: di,
                    distances: delta,
                };
                // Keep forward (lexicographically positive) vectors, plus
                // zero vectors when the source textually precedes the sink.
                let keep = if dep.distances.iter().all(|&d| d == 0) {
                    src.stmt <= dst.stmt && si != di && (src.is_def || dst.is_def) && si < di
                } else {
                    dep.is_lexicographically_nonnegative()
                };
                if keep {
                    out.push(dep);
                }
            }
        }
    }
    Ok(out)
}

/// Solves `A·x = b` for a unique integer solution via fraction-free
/// Gaussian elimination. Returns `None` when the system is inconsistent,
/// underdetermined, or has a non-integer solution.
fn solve_integer(a: &[Vec<i64>], b: &[i64], n: usize) -> Option<Vec<i64>> {
    let rows = a.len();
    let mut m: Vec<Vec<i128>> = (0..rows)
        .map(|r| {
            let mut row: Vec<i128> = a[r].iter().map(|&v| v as i128).collect();
            row.push(b[r] as i128);
            row
        })
        .collect();
    let mut pivot_row = 0usize;
    let mut pivots: Vec<Option<usize>> = vec![None; n];
    for col in 0..n {
        let Some(p) = (pivot_row..rows).find(|&r| m[r][col] != 0) else {
            continue;
        };
        m.swap(pivot_row, p);
        for r in 0..rows {
            if r != pivot_row && m[r][col] != 0 {
                let (f1, f2) = (m[pivot_row][col], m[r][col]);
                let pivot = m[pivot_row].clone();
                for (cell, &pv) in m[r].iter_mut().zip(pivot.iter()) {
                    *cell = *cell * f1 - pv * f2;
                }
            }
        }
        pivots[col] = Some(pivot_row);
        pivot_row += 1;
    }
    // Inconsistent rows?
    if m.iter().skip(pivot_row).any(|row| row[n] != 0) {
        return None;
    }
    // Unique solution requires a pivot in every column.
    let mut x = vec![0i64; n];
    for col in 0..n {
        let r = pivots[col]?;
        let (num, den) = (m[r][n], m[r][col]);
        if den == 0 || num % den != 0 {
            return None;
        }
        let v = num / den;
        x[col] = i64::try_from(v).ok()?;
    }
    Some(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use arrayflow_ir::parse_program;

    fn fig4() -> Program {
        parse_program(
            "do j = 1, M
               do i = 1, N
                 X[i+1, j] := X[i, j];
                 Y[i, j+1] := Y[i, j-1];
                 Z[i+1, j] := Z[i, j-1];
               end
             end",
        )
        .unwrap()
    }

    fn vec_for(program: &Program, array: &str) -> Vec<Vec<i64>> {
        let (_, sites) = nest_sites(program).unwrap();
        nest_distance_vectors(program)
            .unwrap()
            .into_iter()
            .filter(|d| program.array_name(sites[d.src].aref.array) == array && sites[d.src].is_def)
            .map(|d| d.distances)
            .collect()
    }

    #[test]
    fn fig4_statement_vectors() {
        let p = fig4();
        // Outer-first order is (j, i).
        assert_eq!(vec_for(&p, "X"), vec![vec![0, 1]]);
        assert_eq!(vec_for(&p, "Y"), vec![vec![2, 0]]);
        // Statement (3): the diagonal recurrence the single-loop analysis
        // cannot express — distance vector (1, 1).
        assert_eq!(vec_for(&p, "Z"), vec![vec![1, 1]]);
    }

    #[test]
    fn vectors_are_lexicographically_positive() {
        let p = fig4();
        for d in nest_distance_vectors(&p).unwrap() {
            assert!(d.is_lexicographically_nonnegative(), "{d:?}");
        }
    }

    #[test]
    fn imperfect_nest_is_rejected() {
        let p = parse_program(
            "do j = 1, 10
               A[j] := 0;
               do i = 1, 10 B[i] := A[j]; end
             end",
        )
        .unwrap();
        assert_eq!(
            nest_distance_vectors(&p).unwrap_err(),
            NestError::NotAPerfectNest
        );
    }

    #[test]
    fn three_deep_nest() {
        let p = parse_program(
            "do k = 1, 10
               do j = 1, 10
                 do i = 1, 10
                   T[i+1, j+2, k] := T[i, j, k-1];
                 end
               end
             end",
        )
        .unwrap();
        let v = vec_for(&p, "T");
        // Outer-first (k, j, i): T written at (i+1, j+2, k), read at
        // (i, j, k−1): source (k', j', i') with i'+1 = i, j'+2 = j,
        // k' = k−1 → Δ = (1, 2, 1).
        assert_eq!(v, vec![vec![1, 2, 1]]);
    }

    #[test]
    fn mismatched_coefficients_yield_nothing() {
        let p = parse_program(
            "do j = 1, 10
               do i = 1, 10
                 W[2*i, j] := W[i, j];
               end
             end",
        )
        .unwrap();
        assert!(vec_for(&p, "W").is_empty());
    }

    #[test]
    fn loop_independent_zero_vector() {
        let p = parse_program(
            "do j = 1, 10
               do i = 1, 10
                 V[i, j] := 1;
                 U[i, j] := V[i, j];
               end
             end",
        )
        .unwrap();
        let deps = nest_distance_vectors(&p).unwrap();
        let (_, sites) = nest_sites(&p).unwrap();
        assert!(deps.iter().any(|d| {
            sites[d.src].is_def
                && p.array_name(sites[d.src].aref.array) == "V"
                && d.distances == vec![0, 0]
        }));
    }
}
