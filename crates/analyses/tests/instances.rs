//! Integration tests for the four framework instances, driven from source
//! text through the full pipeline (parse → graph → sites → spec → solve →
//! interpretation).

use arrayflow_analyses::{analyze_loop, best_reuse, DepKind};
use arrayflow_core::Dist;
use arrayflow_ir::parse_program;

fn fig1() -> arrayflow_ir::Program {
    parse_program(
        "do i = 1, UB
           C[i+2] := C[i] * 2;
           B[2*i] := C[i] + x;
           if C[i] == 0 then C[i] := B[i-1]; end
           B[i] := C[i+1];
         end",
    )
    .unwrap()
}

#[test]
fn fig1_reuses_match_section_3_5() {
    let a = analyze_loop(&fig1()).unwrap();
    let reuses = a.reuse_pairs();
    // §3.5 names three guaranteed reuses from must-reaching definitions:
    //   * C[i] in nodes 1 and 2 reuse C[i+2] from two iterations earlier,
    //   * B[i-1] reuses B[i] from one iteration earlier,
    //   * C[i+1] reuses C[i+2] from one iteration earlier.
    let mut found = Vec::new();
    for r in &reuses {
        if r.gen_is_def {
            found.push((a.site_text(r.use_site), a.site_text(r.gen_site), r.distance));
        }
    }
    assert!(
        found.contains(&("C[i]".into(), "C[i + 2]".into(), 2)),
        "{found:?}"
    );
    assert!(
        found.contains(&("B[i - 1]".into(), "B[i]".into(), 1)),
        "{found:?}"
    );
    assert!(
        found.contains(&("C[i + 1]".into(), "C[i + 2]".into(), 1)),
        "{found:?}"
    );
    // And NOT a reuse of C[i] at distance 2 at node 4's successor once the
    // conditional kill has struck… the guarded C[i] def kills instances of
    // C[i+2] beyond distance 1, which the framework models: the use C[i+1]
    // (distance 1) survives, a hypothetical C[i+2]-use at distance 2 after
    // the conditional would not. Verify via the raw solution:
    let c_plus_2 = a
        .available
        .built
        .spec
        .gens
        .iter()
        .find(|g| g.is_def && a.site_text_of(g) == "C[i + 2]")
        .unwrap();
    let final_node = a
        .sites
        .iter()
        .find(|s| a.site_text_of_ref(&s.aref) == "C[i + 1]")
        .unwrap()
        .node;
    assert_eq!(a.available.before(final_node, c_plus_2.id), Dist::Fin(1));
}

#[test]
fn same_iteration_use_use_reuse_is_found() {
    // Both uses of A[i] read the same element; the second can reuse the
    // first's loaded value at distance 0.
    let p = parse_program(
        "do i = 1, 100
           B[i] := A[i] + 1;
           Z[i] := A[i] * 2;
         end",
    )
    .unwrap();
    let a = analyze_loop(&p).unwrap();
    let reuses = a.reuse_pairs();
    let zero = reuses
        .iter()
        .find(|r| r.distance == 0 && !r.gen_is_def)
        .expect("use→use reuse at distance 0");
    assert_eq!(a.site_text(zero.use_site), "A[i]");
}

#[test]
fn conditional_kill_blocks_must_reuse() {
    // The def A[i] under the conditional destroys the guarantee that A[i]'s
    // loaded value equals A[i-1] next iteration — scalar replacement based
    // on dependences alone would miss this.
    let p = parse_program(
        "do i = 1, 100
           B[i] := A[i];
           if x == 0 then A[i] := 0; end
           Z[i] := A[i-1];
         end",
    )
    .unwrap();
    let a = analyze_loop(&p).unwrap();
    let reuses = a.reuse_pairs();
    // The use A[i-1] must NOT be served by the use A[i] of the previous
    // iteration (distance 1), because the conditional def may have
    // intervened.
    assert!(
        !reuses
            .iter()
            .any(|r| a.site_text(r.use_site) == "A[i - 1]" && !r.gen_is_def && r.distance == 1),
        "unsound reuse through a conditional kill: {reuses:?}"
    );
    // With the def unconditional, the reuse is *from the def* (distance 1).
    let p2 = parse_program(
        "do i = 1, 100
           B[i] := A[i];
           A[i] := 0;
           Z[i] := A[i-1];
         end",
    )
    .unwrap();
    let a2 = analyze_loop(&p2).unwrap();
    let reuses2 = a2.reuse_pairs();
    let use_site = a2
        .sites
        .iter()
        .position(|s| !s.is_def && a2.site_text_of_ref(&s.aref) == "A[i - 1]")
        .unwrap();
    let best = best_reuse(&reuses2, use_site).expect("reuse exists");
    assert!(best.gen_is_def, "the def provides the value");
    assert_eq!(best.distance, 1);
}

#[test]
fn fig6_redundant_store_is_detected() {
    // Fig. 6: the conditional store A[i+1] is 1-redundant — the
    // unconditional store A[i] overwrites the same element one iteration
    // later, and nothing reads A in between.
    let p = parse_program(
        "do i = 1, 1000
           A[i] := x;
           if c == 0 then A[i+1] := y; end
         end",
    )
    .unwrap();
    let a = analyze_loop(&p).unwrap();
    let red = a.redundant_stores();
    assert_eq!(red.len(), 1, "{red:?}");
    assert_eq!(a.site_text(red[0].store_site), "A[i + 1]");
    assert_eq!(red[0].distance, 1);
    assert_eq!(a.site_text(red[0].killer_site), "A[i]");
}

#[test]
fn intervening_use_blocks_store_redundancy() {
    let p = parse_program(
        "do i = 1, 1000
           A[i] := x;
           z := A[i-1] + z;
           if c == 0 then A[i+1] := y; end
         end",
    )
    .unwrap();
    let a = analyze_loop(&p).unwrap();
    // A[i-1] reads the element A[i+1] wrote two iterations earlier…
    // actually it reads what A[i] wrote one iteration earlier — and A[i+1]'s
    // element is read by A[i-1] two iterations later *before* A[i]
    // overwrites it? A[i+1] at iteration i writes loc i+1; A[i-1] at
    // iteration i+2 reads loc i+1; A[i] at iteration i+1 *also* writes loc
    // i+1 — the use at distance 2 comes after the kill at distance 1, but
    // busy-ness requires NO preceding use within δ iterations; the use at
    // the top of iteration i+1 (loc i) ≠ loc i+1, so the kill still wins…
    // except the use z := A[i-1] in iteration i+1 reads loc i — fine.
    // The real blocker: the use in iteration i+1 happens *before* A[i]
    // executes? Order: A[i] first, then the use. So A[i] (distance 1) still
    // kills A[i+1] without a preceding use → still redundant!
    let red = a.redundant_stores();
    assert!(
        red.iter().any(|r| a.site_text(r.store_site) == "A[i + 1]"),
        "store remains redundant: the use reads a different element first"
    );

    // Now make the use actually read the element before the overwrite.
    let p2 = parse_program(
        "do i = 1, 1000
           z := A[i] + z;
           A[i] := x;
           if c == 0 then A[i+1] := y; end
         end",
    )
    .unwrap();
    let a2 = analyze_loop(&p2).unwrap();
    let red2 = a2.redundant_stores();
    assert!(
        !red2
            .iter()
            .any(|r| a2.site_text(r.store_site) == "A[i + 1]"),
        "the use A[i] at the top of the next iteration reads A[i+1]'s value first: {red2:?}"
    );
}

#[test]
fn dead_store_within_iteration() {
    let p = parse_program(
        "do i = 1, 100
           A[i] := 1;
           A[i] := 2;
         end",
    )
    .unwrap();
    let a = analyze_loop(&p).unwrap();
    let red = a.redundant_stores();
    assert_eq!(red.len(), 1, "{red:?}");
    assert_eq!(red[0].distance, 0, "dead within its own iteration");
}

#[test]
fn dependences_of_simple_recurrence() {
    let p = parse_program("do i = 1, 100 A[i+1] := A[i]; end").unwrap();
    let a = analyze_loop(&p).unwrap();
    let deps = a.dependences(8);
    assert_eq!(deps.len(), 1, "{deps:?}");
    assert_eq!(deps[0].kind, DepKind::Flow);
    assert_eq!(deps[0].distance, 1);
}

#[test]
fn dependence_kinds_and_distances() {
    let p = parse_program(
        "do i = 1, 100
           A[i] := B[i-2];
           B[i] := A[i-3];
         end",
    )
    .unwrap();
    let a = analyze_loop(&p).unwrap();
    let deps = a.dependences(8);
    // Flow: def A[i] → use A[i-3] at distance 3; def B[i] → use B[i-2] at 2.
    assert!(deps
        .iter()
        .any(|d| d.kind == DepKind::Flow && d.distance == 3 && a.site_text(d.src_site) == "A[i]"));
    assert!(deps
        .iter()
        .any(|d| d.kind == DepKind::Flow && d.distance == 2 && a.site_text(d.src_site) == "B[i]"));
    // No output dependences (each array has one def).
    assert!(!deps.iter().any(|d| d.kind == DepKind::Output));
}

#[test]
fn anti_dependence_is_reported() {
    // use A[i+1] at iteration i reads loc i+1; def A[i] at iteration i+1
    // overwrites it → anti dependence, distance 1.
    let p = parse_program(
        "do i = 1, 100
           B[i] := A[i+1];
           A[i] := x;
         end",
    )
    .unwrap();
    let a = analyze_loop(&p).unwrap();
    let deps = a.dependences(8);
    assert!(
        deps.iter()
            .any(|d| d.kind == DepKind::Anti && d.distance == 1),
        "{deps:?}"
    );
}

#[test]
fn may_reaching_is_flow_sensitive_but_optimistic() {
    // The conditional def kills only on one path: may-reaching keeps the
    // dependence alive (conservative for parallelization), while
    // must-available denies the reuse (conservative for registers).
    let p = parse_program(
        "do i = 1, 100
           B[i] := A[i-1];
           if x == 0 then A[i] := 0; end
         end",
    )
    .unwrap();
    let a = analyze_loop(&p).unwrap();
    let deps = a.dependences(8);
    assert!(
        deps.iter()
            .any(|d| d.kind == DepKind::Flow && d.distance == 1),
        "may-analysis reports the potential flow dep: {deps:?}"
    );
    let reuses = a.reuse_pairs();
    assert!(
        !reuses
            .iter()
            .any(|r| r.gen_is_def && a.site_text(r.use_site) == "A[i - 1]"),
        "must-analysis denies guaranteed reuse from the conditional def"
    );
}

#[test]
fn solver_bounds_hold_for_all_four_instances() {
    let a = analyze_loop(&fig1()).unwrap();
    for (name, inst, bound) in [
        ("reaching", &a.reaching, 2),
        ("available", &a.available, 2),
        ("busy", &a.busy, 2),
        ("reaching_refs", &a.reaching_refs, 2),
    ] {
        assert!(
            inst.sol.stats.changing_passes <= bound,
            "{name}: {:?}",
            inst.sol.stats
        );
    }
    // Must-instances additionally ran the initialization pass.
    assert_eq!(a.reaching.sol.stats.init_visits, a.graph.len());
    assert_eq!(a.reaching_refs.sol.stats.init_visits, 0);
}

mod live_elements {
    use arrayflow_analyses::{enumerate_sites, Instance, GK};
    use arrayflow_core::{Direction, Dist, Mode};
    use arrayflow_graph::build_loop_graph;
    use arrayflow_ir::parse_program;

    fn live_instance(
        src: &str,
    ) -> (
        arrayflow_ir::Program,
        arrayflow_graph::LoopGraph,
        Vec<arrayflow_analyses::Site>,
        Instance,
    ) {
        let p = parse_program(src).unwrap();
        let l = p.sole_loop().unwrap().clone();
        let g = build_loop_graph(&l);
        let (sites, _) = enumerate_sites(&l, &g, &p.symbols);
        let inst = Instance::run(
            &g,
            &sites,
            GK::LIVE_ELEMENTS,
            Direction::Backward,
            Mode::May,
        );
        (p, g, sites, inst)
    }

    #[test]
    fn element_is_live_from_def_to_its_future_use() {
        // A[i+1] written at stmt 1 is read as A[i] one iteration later: at
        // the exit of the def node, the use's element is live at distance 1.
        let (_, g, _, inst) = live_instance(
            "do i = 1, 100
               A[i+1] := x;
               B[i] := A[i];
             end",
        );
        // The use A[i] is the only generator; its backward IN at the def
        // node (node 1) covers distance 1: the def writes an element the
        // use will read next iteration.
        let use_id = arrayflow_core::RefId(0);
        let def_node = arrayflow_graph::NodeId(1);
        assert!(
            inst.before(def_node, use_id).covers(1),
            "{:?}",
            inst.sol.before[def_node.index()]
        );
        let _ = g;
    }

    #[test]
    fn overwrite_kills_liveness_beyond_the_def() {
        // Def first, use after: the use at iteration i + δ reads an element
        // the def of iteration i + δ has *already* rewritten, so at the
        // def's exit only the same-iteration read keeps the element live.
        let (_, _, sites, inst) = live_instance(
            "do i = 1, 100
               A[i] := x;
               B[i] := A[i];
             end",
        );
        let use_site = sites.iter().position(|s| !s.is_def).unwrap();
        let (use_id, _) = inst.gens().find(|&(_, s)| s == use_site).unwrap();
        let def_node = sites.iter().find(|s| s.is_def).unwrap().node;
        // Backward orientation: `before` at the def node is the solution at
        // its control *exit*. Only distance 0 (this iteration's read)
        // survives; every older instance is definitely overwritten first.
        let v = inst.before(def_node, use_id);
        assert!(v <= Dist::Fin(0), "liveness beyond the overwrite: {v}");
        assert!(v.covers(0), "the same-iteration read keeps it live: {v}");
    }

    #[test]
    fn use_before_def_keeps_liveness_unbounded() {
        // Use first: the future read happens before the future overwrite,
        // so the element stays live across iterations (⊤).
        let (_, _, sites, inst) = live_instance(
            "do i = 1, 100
               B[i] := A[i];
               A[i] := x;
             end",
        );
        let use_site = sites.iter().position(|s| !s.is_def).unwrap();
        let (use_id, _) = inst.gens().find(|&(_, s)| s == use_site).unwrap();
        let def_node = sites.iter().find(|s| s.is_def).unwrap().node;
        assert_eq!(inst.before(def_node, use_id), Dist::Top);
    }

    #[test]
    fn may_liveness_survives_conditional_defs() {
        let (_, _, sites, inst) = live_instance(
            "do i = 1, 100
               B[i] := A[i];
               if x > 0 then A[i] := 0; end
             end",
        );
        let use_site = sites.iter().position(|s| !s.is_def).unwrap();
        let (use_id, _) = inst.gens().find(|&(_, s)| s == use_site).unwrap();
        let def_node = sites.iter().find(|s| s.is_def).unwrap().node;
        // The conditional def is not a *definite* kill in may-mode: the
        // element may still be read arbitrarily far in the future (the
        // use sweeps every element eventually).
        assert_eq!(inst.before(def_node, use_id), Dist::Top);
    }

    #[test]
    fn backward_may_respects_pass_bound() {
        let (_, g, _, inst) = live_instance(
            "do i = 1, 100
               A[i+2] := A[i] + x;
               if A[i] > 3 then B[i] := A[i+1]; end
             end",
        );
        assert!(inst.sol.stats.changing_passes <= 2, "{:?}", inst.sol.stats);
        assert_eq!(inst.sol.stats.init_visits, 0);
        let _ = g;
    }
}
