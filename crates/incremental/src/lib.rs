#![warn(missing_docs)]
//! Incremental re-analysis: analysis sessions that re-converge a cached
//! fixed point after single-statement edits.
//!
//! A fresh analysis pays for parsing, normalization, graph construction,
//! site classification, flow-table derivation and the full round-robin
//! solve of all four framework instances — per request, proportional to
//! program size. An interactive client editing one statement at a time
//! invalidates almost none of that work: the flow graph keeps its shape,
//! and because the framework's meet and flow functions act *componentwise*
//! (one column of the tuple lattice per tracked reference), the fixed-point
//! column of every reference whose generator and kill environment the edit
//! did not touch is still exact.
//!
//! [`Session`] exploits this. It retains the normalized IR, the loop flow
//! graph, the classified sites and the converged lattice state of all four
//! instances, plus a per-column *convergence profile* (the last pass in
//! which each column changed). [`Session::apply`] patches the edited
//! assignment into the graph in place, re-enumerates sites, determines the
//! *dirtied columns* — those generated at the edited node or tracking an
//! array the old or new statement references — and re-converges only those
//! with the worklist solver ([`arrayflow_core::solve_worklist`]) over a
//! narrowed problem spec. Clean columns are spliced verbatim from the
//! cached fixed point; the merged statistics are reconstructed from the
//! profiles, so the result is **byte-identical** to a from-scratch analysis
//! of the edited program. Edits that change loop structure (a conditional
//! or nested loop substituted in, a scalar assignment appearing or
//! disappearing, an edit inside a nested loop) fall back to a full
//! re-analysis and record that they did.
//!
//! [`SessionStore`] bounds session memory: capacity-based LRU eviction plus
//! a time-to-live, with counters for the serving layer's `sessions` stats.

pub mod session;
pub mod store;

pub use session::{DeltaError, DeltaOutcome, Session};
pub use store::{SessionStats, SessionStore, StoreConfig};
