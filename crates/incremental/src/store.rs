//! Bounded storage for open analysis sessions.
//!
//! The serving layer keeps one [`Session`] per interactive client. Sessions
//! hold a full converged analysis, so memory must be bounded: the store
//! evicts least-recently-used sessions past a capacity limit and expires
//! sessions idle longer than a time-to-live. Both events are counted for
//! the `sessions` section of the server's stats.

use std::collections::HashMap;
use std::sync::Mutex;
use std::time::{Duration, Instant};

use crate::session::Session;

/// Session store limits.
#[derive(Debug, Clone, Copy)]
pub struct StoreConfig {
    /// Maximum number of simultaneously open sessions; opening one more
    /// evicts the least recently used.
    pub capacity: usize,
    /// Idle time after which a session expires. `None` disables the TTL.
    pub ttl: Option<Duration>,
}

impl Default for StoreConfig {
    fn default() -> Self {
        Self {
            capacity: 64,
            ttl: Some(Duration::from_secs(600)),
        }
    }
}

/// Counters describing the store's lifetime activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Sessions currently open.
    pub open: usize,
    /// Sessions ever opened.
    pub opened_total: u64,
    /// Sessions evicted to respect [`StoreConfig::capacity`].
    pub evicted_capacity: u64,
    /// Sessions expired by the [`StoreConfig::ttl`].
    pub expired_ttl: u64,
    /// Deltas applied through [`SessionStore::with_session`].
    pub deltas_total: u64,
    /// Deltas that fell back to a full re-analysis.
    pub delta_fallbacks: u64,
}

struct Entry {
    session: Session,
    last_used: Instant,
    /// Monotonic touch counter; smallest is the LRU victim.
    touched: u64,
}

struct Inner {
    entries: HashMap<u64, Entry>,
    next_id: u64,
    clock: u64,
    stats: SessionStats,
}

/// A thread-safe, bounded map of session id → [`Session`].
pub struct SessionStore {
    config: StoreConfig,
    inner: Mutex<Inner>,
}

impl SessionStore {
    /// Creates an empty store with the given limits.
    pub fn new(config: StoreConfig) -> Self {
        Self {
            config,
            inner: Mutex::new(Inner {
                entries: HashMap::new(),
                next_id: 1,
                clock: 0,
                stats: SessionStats::default(),
            }),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        // A poisoned lock means a panic mid-insert on another thread; the
        // map itself is still structurally sound, so serving continues.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn sweep(inner: &mut Inner, ttl: Option<Duration>, now: Instant) {
        if let Some(ttl) = ttl {
            let before = inner.entries.len();
            inner
                .entries
                .retain(|_, e| now.duration_since(e.last_used) <= ttl);
            inner.stats.expired_ttl += (before - inner.entries.len()) as u64;
        }
    }

    /// Inserts a freshly opened session, returning its id. Expired sessions
    /// are swept first; if the store is still full, the least recently used
    /// session is evicted.
    pub fn insert(&self, session: Session) -> u64 {
        let now = Instant::now();
        let mut inner = self.lock();
        Self::sweep(&mut inner, self.config.ttl, now);
        while inner.entries.len() >= self.config.capacity.max(1) {
            if let Some((&victim, _)) = inner.entries.iter().min_by_key(|(_, e)| e.touched) {
                inner.entries.remove(&victim);
                inner.stats.evicted_capacity += 1;
            } else {
                break;
            }
        }
        let id = inner.next_id;
        inner.next_id += 1;
        inner.clock += 1;
        let touched = inner.clock;
        inner.entries.insert(
            id,
            Entry {
                session,
                last_used: now,
                touched,
            },
        );
        inner.stats.opened_total += 1;
        inner.stats.open = inner.entries.len();
        id
    }

    /// Runs `f` against the named session, refreshing its recency. Returns
    /// `None` if the session is unknown (never opened, evicted or expired).
    ///
    /// The requested id is refreshed *before* the sweep: a session that is
    /// still inside its TTL at the moment of this call is in active use,
    /// and the sweep this very call triggers must not be the thing that
    /// expires it. Sessions already idle past the TTL still expire — the
    /// touch does not resurrect them.
    pub fn with_session<T>(&self, id: u64, f: impl FnOnce(&mut Session) -> T) -> Option<T> {
        let now = Instant::now();
        let mut inner = self.lock();
        inner.clock += 1;
        let touched = inner.clock;
        let ttl = self.config.ttl;
        let live = match inner.entries.get_mut(&id) {
            Some(entry) => {
                let fresh = ttl.is_none_or(|t| now.duration_since(entry.last_used) <= t);
                if fresh {
                    entry.last_used = now;
                    entry.touched = touched;
                }
                fresh
            }
            None => false,
        };
        Self::sweep(&mut inner, ttl, now);
        if !live {
            inner.stats.open = inner.entries.len();
            return None;
        }
        let entry = inner
            .entries
            .get_mut(&id)
            .expect("the just-refreshed entry survives its own sweep");
        let out = f(&mut entry.session);
        inner.stats.open = inner.entries.len();
        Some(out)
    }

    /// Records the outcome of a delta (hit vs fallback) in the stats.
    pub fn record_delta(&self, fallback: bool) {
        let mut inner = self.lock();
        inner.stats.deltas_total += 1;
        if fallback {
            inner.stats.delta_fallbacks += 1;
        }
    }

    /// Closes a session, returning whether it was open.
    pub fn remove(&self, id: u64) -> bool {
        let mut inner = self.lock();
        let hit = inner.entries.remove(&id).is_some();
        inner.stats.open = inner.entries.len();
        hit
    }

    /// A snapshot of the store's counters (sweeping expired sessions first
    /// so `open` is accurate).
    pub fn stats(&self) -> SessionStats {
        let mut inner = self.lock();
        Self::sweep(&mut inner, self.config.ttl, Instant::now());
        inner.stats.open = inner.entries.len();
        inner.stats
    }
}

impl std::fmt::Debug for SessionStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SessionStore")
            .field("config", &self.config)
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arrayflow_ir::parse_program;

    fn session() -> Session {
        let p = parse_program("do i = 1, 100 A[i+1] := A[i]; end").unwrap();
        Session::open(p).unwrap()
    }

    #[test]
    fn insert_and_reuse() {
        let store = SessionStore::new(StoreConfig::default());
        let id = store.insert(session());
        let fp = store.with_session(id, |s| s.fingerprint()).unwrap();
        assert_eq!(store.with_session(id, |s| s.fingerprint()), Some(fp));
        assert!(store.with_session(id + 1, |_| ()).is_none());
        let stats = store.stats();
        assert_eq!(stats.open, 1);
        assert_eq!(stats.opened_total, 1);
    }

    #[test]
    fn capacity_evicts_lru() {
        let store = SessionStore::new(StoreConfig {
            capacity: 2,
            ttl: None,
        });
        let a = store.insert(session());
        let b = store.insert(session());
        // Touch `a` so `b` becomes the LRU victim.
        store.with_session(a, |_| ()).unwrap();
        let c = store.insert(session());
        assert!(store.with_session(a, |_| ()).is_some());
        assert!(store.with_session(b, |_| ()).is_none());
        assert!(store.with_session(c, |_| ()).is_some());
        let stats = store.stats();
        assert_eq!(stats.open, 2);
        assert_eq!(stats.evicted_capacity, 1);
    }

    #[test]
    fn ttl_expires() {
        let store = SessionStore::new(StoreConfig {
            capacity: 8,
            ttl: Some(Duration::from_millis(0)),
        });
        let id = store.insert(session());
        std::thread::sleep(Duration::from_millis(5));
        assert!(store.with_session(id, |_| ()).is_none());
        let stats = store.stats();
        assert_eq!(stats.open, 0);
        assert_eq!(stats.expired_ttl, 1);
    }

    #[test]
    fn an_actively_touched_session_survives_its_own_sweeps() {
        // Regression: `with_session` swept TTL-expired entries before
        // refreshing the requested id, so a get near the TTL boundary
        // could expire the very session it was using. The touch now
        // lands first; only sessions already idle past the TTL expire.
        let store = SessionStore::new(StoreConfig {
            capacity: 8,
            ttl: Some(Duration::from_millis(500)),
        });
        let a = store.insert(session());
        let b = store.insert(session());
        std::thread::sleep(Duration::from_millis(300));
        // `a` is inside its TTL: this get must refresh it, and the sweep
        // the get itself triggers must not remove it.
        assert!(store.with_session(a, |_| ()).is_some());
        std::thread::sleep(Duration::from_millis(300));
        // `a` was touched 300 ms ago (< ttl); `b` has idled 600 ms (> ttl).
        assert!(store.with_session(a, |_| ()).is_some());
        assert!(store.with_session(b, |_| ()).is_none());
        let stats = store.stats();
        assert_eq!(stats.open, 1);
        assert_eq!(stats.expired_ttl, 1);
    }

    #[test]
    fn remove_closes() {
        let store = SessionStore::new(StoreConfig::default());
        let id = store.insert(session());
        assert!(store.remove(id));
        assert!(!store.remove(id));
        assert_eq!(store.stats().open, 0);
    }
}
