//! One analysis session: cached fixed point plus delta re-convergence.

use std::collections::{HashMap, HashSet};
use std::fmt;

use arrayflow_analyses::instances::Instance;
use arrayflow_analyses::sites::enumerate_sites;
use arrayflow_analyses::spec::{build_spec, GK};
use arrayflow_analyses::{AnalyzeError, LoopAnalysis};
use arrayflow_core::{
    solve_worklist_ctrl, stats_from_profile, ColumnProfile, Direction, Mode, ProblemSpec, Solution,
    StopCheck,
};
use arrayflow_graph::build_loop_graph;
use arrayflow_ir::{
    apply_edit, fingerprint_loop, normalize, Assign, Edit, EditError, EditShape, Fingerprint,
    LValue, Program, Stmt, StmtId,
};

/// The four framework instances in the fixed order the engine reports
/// them: must-reaching, δ-available, δ-busy (backward), δ-reaching (may).
const INSTANCES: [(GK, Direction, Mode); 4] = [
    (GK::REACHING_DEFS, Direction::Forward, Mode::Must),
    (GK::AVAILABLE, Direction::Forward, Mode::Must),
    (GK::BUSY_STORES, Direction::Backward, Mode::Must),
    (GK::REACHING_REFS, Direction::Forward, Mode::May),
];

/// Why a delta could not be applied. The session is left unchanged.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeltaError {
    /// The edit itself was invalid (parse error, unknown statement id).
    Edit(EditError),
    /// The edited program is no longer analyzable.
    Analyze(AnalyzeError),
}

impl fmt::Display for DeltaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeltaError::Edit(e) => write!(f, "{e}"),
            DeltaError::Analyze(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for DeltaError {}

impl From<EditError> for DeltaError {
    fn from(e: EditError) -> Self {
        DeltaError::Edit(e)
    }
}

impl From<AnalyzeError> for DeltaError {
    fn from(e: AnalyzeError) -> Self {
        DeltaError::Analyze(e)
    }
}

/// What one [`Session::apply`] did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeltaOutcome {
    /// True when the edit forced a full re-analysis instead of the
    /// incremental column re-solve.
    pub fallback: bool,
    /// Columns re-solved across the four instances (0 on fallback).
    pub dirty_columns: usize,
    /// Total columns across the four instances after the edit.
    pub total_columns: usize,
    /// Node visits the narrowed worklist solves actually spent.
    pub solver_visits: usize,
    /// Node visits four fresh round-robin solves of the full specs would
    /// have spent (`(init + passes · nodes)` summed over instances).
    pub full_solver_visits: usize,
}

/// An open analysis session: the edited-to-date program and its converged
/// analysis state.
#[derive(Debug, Clone)]
pub struct Session {
    /// The program as submitted plus all applied edits, renumbered.
    raw: Program,
    /// Normalized + renumbered form of `raw`.
    norm: Program,
    /// Canonical fingerprint of the normalized sole loop.
    fingerprint: Fingerprint,
    /// The converged analysis of the normalized loop.
    analysis: LoopAnalysis,
    /// Per-instance convergence profiles (same order as [`INSTANCES`]).
    profiles: [ColumnProfile; 4],
    /// Edits applied so far.
    edits: u64,
    /// Edits that fell back to a full re-analysis.
    fallbacks: u64,
}

fn analyze_norm_ctrl(
    norm: &Program,
    should_stop: Option<StopCheck<'_>>,
) -> Result<(Fingerprint, LoopAnalysis, [ColumnProfile; 4]), AnalyzeError> {
    let l = norm.sole_loop().ok_or(AnalyzeError::NotASingleLoop)?;
    if !l.is_normalized() {
        return Err(AnalyzeError::NotNormalized);
    }
    let fingerprint = fingerprint_loop(l, &norm.symbols);
    let graph = build_loop_graph(l);
    let (sites, lin) = enumerate_sites(l, &graph, &norm.symbols);
    let mut spent: u64 = 0;
    let mut runs = Vec::with_capacity(INSTANCES.len());
    for &(gk, dir, mode) in INSTANCES.iter() {
        match Instance::run_profiled_ctrl(&graph, &sites, gk, dir, mode, should_stop) {
            Ok((i, p)) => {
                spent += i.sol.stats.passes as u64;
                runs.push((i, p));
            }
            Err(s) => {
                return Err(AnalyzeError::Stopped {
                    passes: spent + s.passes_completed as u64,
                })
            }
        }
    }
    let (reaching_refs, p3) = runs.pop().expect("four instances");
    let (busy, p2) = runs.pop().expect("four instances");
    let (available, p1) = runs.pop().expect("four instances");
    let (reaching, p0) = runs.pop().expect("four instances");
    let analysis = LoopAnalysis {
        symbols: lin.symbols,
        graph,
        sites,
        reaching,
        available,
        busy,
        reaching_refs,
    };
    Ok((fingerprint, analysis, [p0, p1, p2, p3]))
}

/// Arrays an assignment's reference sites touch (as generator or kill).
fn touched_arrays(assign: &Assign) -> HashSet<arrayflow_ir::ArrayId> {
    use arrayflow_graph::ref_sites_of;
    ref_sites_of(&Stmt::Assign(assign.clone()))
        .iter()
        .map(|r| r.aref.array)
        .collect()
}

fn find_assign(block: &[Stmt], id: StmtId) -> Option<&Assign> {
    for stmt in block {
        match stmt {
            Stmt::Assign(a) if a.id == id => return Some(a),
            Stmt::Assign(_) => {}
            Stmt::If {
                then_blk, else_blk, ..
            } => {
                if let Some(a) = find_assign(then_blk, id).or_else(|| find_assign(else_blk, id)) {
                    return Some(a);
                }
            }
            Stmt::Do(l) => {
                if let Some(a) = find_assign(&l.body, id) {
                    return Some(a);
                }
            }
        }
    }
    None
}

impl Session {
    /// Opens a session over a parsed program: normalizes, renumbers and
    /// runs the full analysis once.
    pub fn open(program: Program) -> Result<Self, AnalyzeError> {
        Self::open_ctrl(program, None)
    }

    /// Like [`Session::open`], but polls `should_stop` between solver
    /// passes and yields [`AnalyzeError::Stopped`] without constructing
    /// the session — nothing is retained from a cancelled open. With
    /// `None` the result is identical to [`Session::open`].
    pub fn open_ctrl(
        mut program: Program,
        should_stop: Option<StopCheck<'_>>,
    ) -> Result<Self, AnalyzeError> {
        program.renumber();
        let mut norm = program.clone();
        normalize(&mut norm);
        norm.renumber();
        let (fingerprint, analysis, profiles) = analyze_norm_ctrl(&norm, should_stop)?;
        Ok(Self {
            raw: program,
            norm,
            fingerprint,
            analysis,
            profiles,
            edits: 0,
            fallbacks: 0,
        })
    }

    /// The canonical fingerprint of the current (edited-to-date) loop.
    pub fn fingerprint(&self) -> Fingerprint {
        self.fingerprint
    }

    /// The converged analysis of the current loop.
    pub fn analysis(&self) -> &LoopAnalysis {
        &self.analysis
    }

    /// The current normalized program.
    pub fn program(&self) -> &Program {
        &self.norm
    }

    /// The program as submitted plus all applied edits (not normalized).
    pub fn source_program(&self) -> &Program {
        &self.raw
    }

    /// Edits applied so far, and how many of them fell back to a full
    /// re-analysis.
    pub fn edit_counts(&self) -> (u64, u64) {
        (self.edits, self.fallbacks)
    }

    /// Applies one single-statement edit and re-converges.
    ///
    /// On success the session state is byte-identical to what
    /// [`Session::open`] would produce for the edited program; the outcome
    /// says whether the incremental path was taken and how much solver
    /// work it spent. On error the session is unchanged.
    pub fn apply(&mut self, edit: &Edit) -> Result<DeltaOutcome, DeltaError> {
        self.apply_ctrl(edit, None)
    }

    /// Like [`Session::apply`], but polls `should_stop` between solver
    /// passes. A stopped apply yields
    /// [`AnalyzeError::Stopped`] (wrapped in [`DeltaError::Analyze`]) and
    /// leaves the session byte-identical to its pre-edit state — exactly
    /// like any other failed apply.
    pub fn apply_ctrl(
        &mut self,
        edit: &Edit,
        should_stop: Option<StopCheck<'_>>,
    ) -> Result<DeltaOutcome, DeltaError> {
        // Capture what the edit replaces before touching anything.
        let old_node = self.analysis.graph.assign_node(edit.stmt);
        let old_assign = find_assign(&self.norm.body, edit.stmt).cloned();

        let mut raw = self.raw.clone();
        let shape = apply_edit(&mut raw, edit)?;
        let mut norm = raw.clone();
        normalize(&mut norm);
        norm.renumber();

        let fast = shape == EditShape::Assign
            && old_node.is_some()
            && old_assign.is_some()
            && norm.sole_loop().is_some_and(|l| l.is_normalized());
        if !fast {
            return self.rebuild(raw, norm, shape, should_stop);
        }
        let en = old_node.expect("checked");
        let old_assign = old_assign.expect("checked");
        let new_assign = match find_assign(&norm.body, edit.stmt) {
            Some(a) => a.clone(),
            None => return self.rebuild(raw, norm, shape, should_stop),
        };
        // A scalar assignment appearing or disappearing changes the scalar
        // environment that site classification depends on — for *every*
        // site, not just the edited node's. Structure-level fallback.
        if matches!(old_assign.lhs, LValue::Scalar(_))
            || matches!(new_assign.lhs, LValue::Scalar(_))
        {
            return self.rebuild(raw, norm, shape, should_stop);
        }

        // ---- Fast path: patch the graph and re-solve dirty columns. ----
        let mut dirty_arrays = touched_arrays(&old_assign);
        dirty_arrays.extend(touched_arrays(&new_assign));

        // The edited node's sites occupy one contiguous range of the site
        // enumeration; everything after it shifts by the ref-count delta.
        let old_sites = &self.analysis.sites;
        let old_start = old_sites
            .iter()
            .position(|s| s.node == en)
            .unwrap_or(old_sites.len());
        let old_count = old_sites.iter().filter(|s| s.node == en).count();

        let mut graph = self.analysis.graph.clone();
        graph.replace_assign(en, new_assign);
        let l = norm.sole_loop().expect("checked");
        let (sites, lin) = enumerate_sites(l, &graph, &norm.symbols);
        let new_count = sites.iter().filter(|s| s.node == en).count();
        let map_site = |idx: usize| -> Option<usize> {
            if idx < old_start {
                Some(idx)
            } else if idx >= old_start + new_count {
                Some(idx - new_count + old_count)
            } else {
                None
            }
        };

        let n = graph.len();
        let mut outcome = DeltaOutcome::default();
        let mut instances: Vec<(Instance, ColumnProfile)> = Vec::with_capacity(4);
        let mut spent_passes: u64 = 0;
        for (k, &(gk, dir, mode)) in INSTANCES.iter().enumerate() {
            let built = build_spec(&sites, gk, dir, mode);
            let old = [
                &self.analysis.reaching,
                &self.analysis.available,
                &self.analysis.busy,
                &self.analysis.reaching_refs,
            ][k];
            let old_profile = &self.profiles[k];
            // Old column index by old site index.
            let old_col: HashMap<usize, usize> = old
                .built
                .gen_site
                .iter()
                .enumerate()
                .map(|(col, &site)| (site, col))
                .collect();

            let m = built.spec.gens.len();
            outcome.total_columns += m;
            // Classify each new column: clean columns name the old column
            // they splice from, dirty ones are re-solved.
            let mut clean: Vec<Option<usize>> = Vec::with_capacity(m);
            let mut narrow = ProblemSpec::new(dir, mode);
            narrow.kills = built.spec.kills.clone();
            let mut narrow_cols = Vec::new();
            for (col, gen) in built.spec.gens.iter().enumerate() {
                let old_site = gen
                    .origin
                    .and_then(|o| map_site(o as usize))
                    .filter(|_| gen.node != en && !dirty_arrays.contains(&gen.aref.array));
                match old_site.and_then(|s| old_col.get(&s).copied()) {
                    Some(oc) => clean.push(Some(oc)),
                    None => {
                        clean.push(None);
                        let id = narrow.add_gen(
                            gen.node,
                            gen.aref.clone(),
                            gen.sub.clone(),
                            gen.is_def,
                            gen.stmt,
                        );
                        narrow.gens[id.index()].origin = gen.origin;
                        narrow_cols.push(col);
                    }
                }
            }
            outcome.dirty_columns += narrow_cols.len();

            // Re-converge the dirtied columns with the worklist solver and
            // splice the clean ones from the cached fixed point.
            let run = solve_worklist_ctrl(&graph, &narrow, should_stop).map_err(|s| {
                DeltaError::Analyze(AnalyzeError::Stopped {
                    passes: spent_passes + s.passes_completed as u64,
                })
            })?;
            spent_passes += run.stats.passes as u64;
            outcome.solver_visits += run.stats.init_visits + run.stats.iter_visits;
            let mut narrow_pos = vec![usize::MAX; m];
            for (pos, &col) in narrow_cols.iter().enumerate() {
                narrow_pos[col] = pos;
            }
            let mut profile = vec![0u32; m];
            let mut before = vec![Vec::with_capacity(m); n];
            let mut after = vec![Vec::with_capacity(m); n];
            for (col, slot) in clean.iter().enumerate() {
                match slot {
                    Some(oc) => profile[col] = old_profile[*oc],
                    None => profile[col] = run.profile[narrow_pos[col]],
                }
            }
            for i in 0..n {
                for (col, slot) in clean.iter().enumerate() {
                    let (b, a) = match slot {
                        Some(oc) => (old.sol.before[i][*oc], old.sol.after[i][*oc]),
                        None => {
                            let p = narrow_pos[col];
                            (run.solution.before[i][p], run.solution.after[i][p])
                        }
                    };
                    before[i].push(b);
                    after[i].push(a);
                }
            }
            let stats = stats_from_profile(&profile, n, mode);
            outcome.full_solver_visits += stats.init_visits + stats.passes * n;
            let sol = Solution {
                before,
                after,
                stats,
            };
            instances.push((Instance { gk, built, sol }, profile));
        }

        let (p3, i3) = {
            let (i, p) = instances.pop().expect("four");
            (p, i)
        };
        let (p2, i2) = {
            let (i, p) = instances.pop().expect("four");
            (p, i)
        };
        let (p1, i1) = {
            let (i, p) = instances.pop().expect("four");
            (p, i)
        };
        let (p0, i0) = {
            let (i, p) = instances.pop().expect("four");
            (p, i)
        };
        self.fingerprint = fingerprint_loop(l, &norm.symbols);
        self.analysis = LoopAnalysis {
            symbols: lin.symbols,
            graph,
            sites,
            reaching: i0,
            available: i1,
            busy: i2,
            reaching_refs: i3,
        };
        self.profiles = [p0, p1, p2, p3];
        self.raw = raw;
        self.norm = norm;
        self.edits += 1;
        Ok(outcome)
    }

    /// Full re-analysis fallback: rebuild everything from the edited
    /// program, recording that the incremental path was not taken.
    fn rebuild(
        &mut self,
        raw: Program,
        norm: Program,
        _shape: EditShape,
        should_stop: Option<StopCheck<'_>>,
    ) -> Result<DeltaOutcome, DeltaError> {
        let (fingerprint, analysis, profiles) = analyze_norm_ctrl(&norm, should_stop)?;
        let mut outcome = DeltaOutcome {
            fallback: true,
            ..DeltaOutcome::default()
        };
        for (k, (_, _, mode)) in INSTANCES.iter().enumerate() {
            let stats = stats_from_profile(&profiles[k], analysis.graph.len(), *mode);
            outcome.total_columns += profiles[k].len();
            outcome.solver_visits += stats.init_visits + stats.passes * analysis.graph.len();
        }
        outcome.full_solver_visits = outcome.solver_visits;
        self.raw = raw;
        self.norm = norm;
        self.fingerprint = fingerprint;
        self.analysis = analysis;
        self.profiles = profiles;
        self.edits += 1;
        self.fallbacks += 1;
        Ok(outcome)
    }
}
