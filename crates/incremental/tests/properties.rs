//! Property suite for the incremental subsystem.
//!
//! Two equivalences, checked across seeded random structured loops and the
//! built-in kernel programs:
//!
//! 1. the worklist solver reaches a fixed point byte-identical to the
//!    round-robin solver (including reported statistics) and respects the
//!    paper's 3·N must / 2·N may visit bounds, for every framework
//!    instance;
//! 2. a session that re-converges after an edit is byte-identical to a
//!    fresh analysis of the edited program — on the incremental fast path
//!    and on the recorded fallback path alike.

use arrayflow_analyses::{build_spec, enumerate_sites, GK};
use arrayflow_core::{solve, solve_worklist, Direction, Mode};
use arrayflow_graph::build_loop_graph;
use arrayflow_incremental::Session;
use arrayflow_ir::{normalize, parse_program, Edit, Program};
use arrayflow_workloads::{all_kernels, livermore_kernels, random_edit, random_loop, LoopShape};

const INSTANCES: [(GK, Direction, Mode); 4] = [
    (GK::REACHING_DEFS, Direction::Forward, Mode::Must),
    (GK::AVAILABLE, Direction::Forward, Mode::Must),
    (GK::BUSY_STORES, Direction::Backward, Mode::Must),
    (GK::REACHING_REFS, Direction::Forward, Mode::May),
];

fn prepared(mut p: Program) -> Option<Program> {
    p.renumber();
    normalize(&mut p);
    p.renumber();
    let ok = p.sole_loop().is_some_and(|l| l.is_normalized());
    ok.then_some(p)
}

fn check_worklist_matches(p: &Program) {
    let l = p.sole_loop().unwrap();
    let graph = build_loop_graph(l);
    let (sites, _) = enumerate_sites(l, &graph, &p.symbols);
    let n = graph.len();
    for (gk, dir, mode) in INSTANCES {
        let built = build_spec(&sites, gk, dir, mode);
        let rr = solve(&graph, &built.spec);
        let wl = solve_worklist(&graph, &built.spec);
        assert_eq!(
            format!("{:?}", rr),
            format!("{:?}", wl.solution),
            "worklist fixed point diverged for {gk:?}"
        );
        let bound = match mode {
            Mode::Must => 3 * n,
            Mode::May => 2 * n,
        };
        assert!(
            rr.stats.visits_to_fix(n) <= bound,
            "{gk:?}: {} visits exceeds the {bound} bound",
            rr.stats.visits_to_fix(n)
        );
    }
}

#[test]
fn worklist_matches_round_robin_on_random_loops() {
    let shape = LoopShape::default();
    for seed in 0..40 {
        let p = prepared(random_loop(&shape, seed)).unwrap();
        check_worklist_matches(&p);
    }
}

#[test]
fn worklist_matches_round_robin_on_kernels() {
    let mut programs = all_kernels(100);
    programs.extend(livermore_kernels(100));
    let mut checked = 0;
    for (_, p) in programs {
        if let Some(p) = prepared(p) {
            check_worklist_matches(&p);
            checked += 1;
        }
    }
    assert!(checked >= 10, "kernel coverage collapsed: {checked}");
}

/// The session after a chain of edits must be byte-identical to a fresh
/// session opened over the edited source.
fn assert_matches_fresh(session: &Session, context: &str) {
    let fresh = Session::open(session.source_program().clone()).unwrap();
    assert_eq!(
        session.fingerprint(),
        fresh.fingerprint(),
        "fingerprint diverged: {context}"
    );
    let a = session.analysis();
    let b = fresh.analysis();
    for (k, (x, y)) in [
        (&a.reaching, &b.reaching),
        (&a.available, &b.available),
        (&a.busy, &b.busy),
        (&a.reaching_refs, &b.reaching_refs),
    ]
    .iter()
    .enumerate()
    {
        assert_eq!(
            format!("{:?}", x.sol),
            format!("{:?}", y.sol),
            "instance {k} solution diverged: {context}"
        );
        assert_eq!(
            x.built.gen_site, y.built.gen_site,
            "instance {k} site mapping diverged: {context}"
        );
    }
}

#[test]
fn delta_matches_fresh_on_random_edit_chains() {
    let shape = LoopShape::default();
    let mut fast_paths = 0u32;
    for seed in 0..24 {
        let p = prepared(random_loop(&shape, seed)).unwrap();
        let mut session = Session::open(p).unwrap();
        for step in 0..6 {
            let edit = random_edit(session.source_program(), &shape, seed * 1000 + step).unwrap();
            let outcome = session
                .apply(&edit)
                .unwrap_or_else(|e| panic!("seed {seed} step {step}: {e}"));
            if !outcome.fallback {
                fast_paths += 1;
                assert!(outcome.dirty_columns <= outcome.total_columns);
            }
            assert_matches_fresh(&session, &format!("seed {seed} step {step} ({outcome:?})"));
        }
    }
    assert!(
        fast_paths > 50,
        "almost everything fell back ({fast_paths} fast paths) — the incremental path is dead"
    );
}

#[test]
fn delta_matches_fresh_on_kernels() {
    let shape = LoopShape {
        arrays: 2,
        ..LoopShape::default()
    };
    let mut programs = all_kernels(100);
    programs.extend(livermore_kernels(100));
    for (name, p) in programs {
        let Some(p) = prepared(p) else { continue };
        let Ok(mut session) = Session::open(p) else {
            continue;
        };
        for step in 0..3 {
            let Some(edit) = random_edit(session.source_program(), &shape, step) else {
                break;
            };
            if session.apply(&edit).is_err() {
                continue;
            }
            assert_matches_fresh(&session, &format!("kernel {name} step {step}"));
        }
    }
}

#[test]
fn structural_edit_falls_back_and_still_matches() {
    let p = parse_program("do i = 1, 100 A[i+1] := A[i]; B[i] := A[i] + 1; end").unwrap();
    let mut session = Session::open(p).unwrap();
    let ids = arrayflow_workloads::assign_ids(session.source_program());
    let edit = Edit {
        stmt: ids[1],
        text: "if A[i] > 0 then B[i] := A[i] + 2; end".to_string(),
    };
    let outcome = session.apply(&edit).unwrap();
    assert!(outcome.fallback, "structural edit must fall back");
    assert_matches_fresh(&session, "structural edit");
    let (edits, fallbacks) = session.edit_counts();
    assert_eq!((edits, fallbacks), (1, 1));
}

#[test]
fn scalar_lhs_edit_falls_back_and_still_matches() {
    let p = parse_program("do i = 1, 100 A[i+1] := A[i]; B[i] := A[i] + 1; end").unwrap();
    let mut session = Session::open(p).unwrap();
    let ids = arrayflow_workloads::assign_ids(session.source_program());
    let edit = Edit {
        stmt: ids[0],
        text: "s := A[i] + 1;".to_string(),
    };
    let outcome = session.apply(&edit).unwrap();
    assert!(outcome.fallback, "scalar-introducing edit must fall back");
    assert_matches_fresh(&session, "scalar lhs edit");
}

#[test]
fn failed_edit_leaves_session_unchanged() {
    let p = parse_program("do i = 1, 100 A[i+1] := A[i]; end").unwrap();
    let mut session = Session::open(p).unwrap();
    let before = format!("{:?}", session.analysis().reaching.sol);
    let edit = Edit {
        stmt: arrayflow_ir::StmtId(9999),
        text: "A[i] := 1;".to_string(),
    };
    assert!(session.apply(&edit).is_err());
    assert_eq!(before, format!("{:?}", session.analysis().reaching.sol));
    assert_eq!(session.edit_counts(), (0, 0));
}

#[test]
fn delta_outcome_reports_savings() {
    // A five-statement loop over disjoint arrays: editing one statement
    // dirties a small fraction of the columns.
    let p = parse_program(
        "do i = 1, 100 \
           A[i+1] := A[i]; \
           B[i+1] := B[i]; \
           C[i+1] := C[i]; \
           D[i+1] := D[i]; \
           E[i+1] := E[i]; \
         end",
    )
    .unwrap();
    let mut session = Session::open(p).unwrap();
    let ids = arrayflow_workloads::assign_ids(session.source_program());
    let edit = Edit {
        stmt: ids[2],
        text: "C[i+2] := C[i];".to_string(),
    };
    let outcome = session.apply(&edit).unwrap();
    assert!(!outcome.fallback);
    assert!(
        outcome.dirty_columns * 2 <= outcome.total_columns,
        "expected a minority of columns dirty, got {outcome:?}"
    );
    assert!(outcome.solver_visits <= outcome.full_solver_visits);
    assert_matches_fresh(&session, "disjoint arrays edit");
}
