//! CRC-32, re-exported from the shared wire layer.
//!
//! The implementation was born here (PR 3) and moved to
//! [`arrayflow_wire::crc`] in PR 6 so the segment log and the binary
//! wire protocol checksum with one table. This shim keeps the store's
//! public `crc::crc32` path stable; every record in the segment log
//! still carries the CRC of its payload, and recovery treats a mismatch
//! as a torn or corrupted record.

pub use arrayflow_wire::crc::crc32;
