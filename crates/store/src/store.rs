//! The disk-backed report store: an append-only segment log plus an
//! in-memory index from [`CacheKey`] to the latest live record.
//!
//! Invariants the implementation maintains:
//!
//! * **Append-only segments.** Records are only ever appended; segment
//!   ids strictly increase and are never reused, so "later id ⇒ later
//!   write" holds across rotations *and* compactions.
//! * **Last write wins.** Recovery replays segments in id order; a later
//!   `Put` supersedes an earlier one, a `Tombstone` kills the key.
//! * **Reads re-validate.** `get` re-checks the frame CRC and re-decodes
//!   the payload on every disk read — a record is either returned intact
//!   or not at all, never corrupt.
//! * **Recovery never panics.** Torn tails, flipped bytes, bad headers
//!   and deleted segments degrade into counted skips (see
//!   [`RecoveryReport`]); every record whose CRC and decode validate is
//!   returned.
//! * **Compaction preserves bytes.** Live frames are copied verbatim into
//!   fresh segments (re-CRC-checked in transit), then the old files are
//!   deleted; a crash mid-compaction leaves both generations on disk and
//!   recovery's last-write-wins replay still yields the same live set.

use std::collections::HashMap;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::PathBuf;
use std::sync::{Arc, Mutex, RwLock};

use arrayflow_engine::{AnalysisReport, CacheKey};
use arrayflow_obs::{Counter, Gauge, Registry};

use crate::codec::{decode_record, encode_record, Record};
use crate::crc::crc32;
use crate::segment::{
    frame_record, header_bytes, parse_segment_file_name, scan_segment_file, segment_file_name,
    FRAME_LEN, HEADER_LEN, MAX_RECORD_BYTES,
};

/// Store construction parameters.
#[derive(Debug, Clone)]
pub struct StoreConfig {
    /// Directory holding the segment files (created if missing).
    pub dir: PathBuf,
    /// Rotation threshold: when the current segment reaches this many
    /// bytes, the next append opens a fresh segment.
    pub segment_bytes: u64,
    /// Bound of the async writer-thread channel used by
    /// [`PersistentTier`](crate::PersistentTier); appends beyond it are
    /// dropped (and counted) rather than blocking analysis.
    pub writer_queue: usize,
    /// Consecutive failed appends that trip the tier's write-path
    /// circuit breaker open (degrading the cache to memory-only).
    pub breaker_threshold: u32,
    /// How long the tripped breaker refuses appends before admitting a
    /// half-open probe.
    pub breaker_cooldown: std::time::Duration,
}

impl StoreConfig {
    /// A config with default tuning (8 MiB segments, 1024-deep writer
    /// queue, breaker tripping after 8 consecutive failures with a 5 s
    /// cooldown) rooted at `dir`.
    pub fn at(dir: impl Into<PathBuf>) -> Self {
        StoreConfig {
            dir: dir.into(),
            segment_bytes: 8 << 20,
            writer_queue: 1024,
            breaker_threshold: 8,
            breaker_cooldown: std::time::Duration::from_secs(5),
        }
    }
}

/// What [`Store::open`] found on disk.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Segment files scanned.
    pub segments: u64,
    /// Intact records replayed (including superseded ones).
    pub records_replayed: u64,
    /// Records (or torn tails / bad segments) skipped as corrupt.
    pub skipped: u64,
    /// Segments whose header was missing or unreadable.
    pub bad_segments: u64,
    /// Live keys in the index after replay.
    pub live_records: u64,
}

/// Monotonic store counters plus a size snapshot.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Live records in the index.
    pub records: u64,
    /// Segment files currently on disk.
    pub segments: u64,
    /// Total bytes across segment files.
    pub bytes: u64,
    /// `get` calls answered from disk.
    pub disk_hits: u64,
    /// `get` calls that found no live record.
    pub disk_misses: u64,
    /// `get` calls whose disk read failed validation (counted *and*
    /// reported as a miss — a corrupt record is never returned).
    pub read_errors: u64,
    /// Records appended since open (puts and tombstones).
    pub appends: u64,
    /// Corrupt records skipped during recovery.
    pub recovery_skipped: u64,
    /// Compaction passes completed.
    pub compactions: u64,
}

impl std::fmt::Display for StoreStats {
    /// One-line summary, e.g.
    /// `records=31 segments=2 bytes=4096 disk_hits=7 disk_misses=1 appends=31 recovery_skipped=0 compactions=1`.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "records={} segments={} bytes={} disk_hits={} disk_misses={} appends={} recovery_skipped={} compactions={}",
            self.records,
            self.segments,
            self.bytes,
            self.disk_hits,
            self.disk_misses,
            self.appends,
            self.recovery_skipped,
            self.compactions
        )
    }
}

/// The outcome of one compaction pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CompactionReport {
    /// Live records rewritten.
    pub live_records: u64,
    /// Dead records (superseded puts, tombstones) dropped.
    pub dropped: u64,
    /// Store size before, in bytes.
    pub bytes_before: u64,
    /// Store size after, in bytes.
    pub bytes_after: u64,
}

#[derive(Debug, Clone, Copy)]
struct Location {
    segment: u64,
    frame_offset: u64,
    payload_len: u32,
}

struct WriterState {
    /// Open handle of the current segment; `None` until the first append
    /// (or after a rotation), so read-only opens create no files.
    file: Option<File>,
    /// Id of the current segment (valid when `file` is `Some`).
    seg_id: u64,
    /// Bytes written to the current segment so far.
    seg_bytes: u64,
    /// Next segment id to allocate. Strictly increasing, never reused.
    next_seg_id: u64,
    /// Ids of all segments currently on disk.
    segments: Vec<u64>,
}

/// The crash-safe persistent report store. Cheap to share behind an
/// [`Arc`]; reads take the index `RwLock`, writes serialize on one
/// writer mutex.
pub struct Store {
    config: StoreConfig,
    writer: Mutex<WriterState>,
    index: RwLock<HashMap<CacheKey, Location>>,
    recovery: RecoveryReport,
    ins: StoreInstruments,
    faults: RwLock<Option<Arc<dyn arrayflow_resilience::FaultSurface>>>,
}

/// The store's registered instruments. Sizes are gauges (they go down on
/// compaction), everything else is a monotone counter.
#[derive(Debug, Clone)]
struct StoreInstruments {
    /// Total bytes across segment files.
    bytes: Gauge,
    /// Intact records physically on disk (live + superseded + tombstones);
    /// `records_on_disk - live` is what a compaction will drop.
    records_on_disk: Gauge,
    disk_hits: Counter,
    disk_misses: Counter,
    read_errors: Counter,
    appends: Counter,
    compactions: Counter,
}

impl StoreInstruments {
    fn registered(registry: &Registry) -> Self {
        Self {
            bytes: registry.gauge("arrayflow_store_bytes", "total bytes across segment files"),
            records_on_disk: registry.gauge(
                "arrayflow_store_records_on_disk",
                "intact records physically on disk (live + superseded + tombstones)",
            ),
            disk_hits: registry.counter(
                "arrayflow_store_disk_hits_total",
                "store gets answered from disk",
            ),
            disk_misses: registry.counter(
                "arrayflow_store_disk_misses_total",
                "store gets that found no live record",
            ),
            read_errors: registry.counter(
                "arrayflow_store_read_errors_total",
                "disk reads that failed CRC or decode validation",
            ),
            appends: registry.counter(
                "arrayflow_store_appends_total",
                "records appended since open (puts and tombstones)",
            ),
            compactions: registry.counter(
                "arrayflow_store_compactions_total",
                "compaction passes completed",
            ),
        }
    }
}

impl std::fmt::Debug for Store {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Store")
            .field("dir", &self.config.dir)
            .field("stats", &self.stats())
            .finish()
    }
}

impl Store {
    /// Opens (creating the directory if needed) and recovers a store:
    /// every segment is scanned in id order, intact records rebuild the
    /// index last-write-wins, corrupt ones are skipped and counted. The
    /// store's instruments land on a fresh private [`Registry`]; use
    /// [`Store::open_in`] to share one.
    pub fn open(config: StoreConfig) -> io::Result<Store> {
        Self::open_in(config, &Registry::new())
    }

    /// Like [`Store::open`], but registers the store's instruments on
    /// `registry` so one `metrics` scrape covers the persistence layer
    /// too.
    pub fn open_in(config: StoreConfig, registry: &Registry) -> io::Result<Store> {
        fs::create_dir_all(&config.dir)?;
        let mut seg_ids: Vec<u64> = fs::read_dir(&config.dir)?
            .filter_map(|e| e.ok())
            .filter_map(|e| parse_segment_file_name(&e.file_name().to_string_lossy()))
            .collect();
        seg_ids.sort_unstable();

        let mut index: HashMap<CacheKey, Location> = HashMap::new();
        let mut recovery = RecoveryReport::default();
        let mut total_bytes = 0u64;
        for &id in &seg_ids {
            let path = config.dir.join(segment_file_name(id));
            total_bytes += fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
            let stats = scan_segment_file(&path, |scanned| match scanned.record {
                Record::Put { key, .. } => {
                    index.insert(
                        key,
                        Location {
                            segment: id,
                            frame_offset: scanned.frame_offset,
                            payload_len: scanned.payload_len,
                        },
                    );
                }
                Record::Tombstone { key } => {
                    index.remove(&key);
                }
            });
            recovery.segments += 1;
            recovery.records_replayed += stats.records;
            recovery.skipped += stats.skipped;
            recovery.bad_segments += stats.bad_header as u64;
        }
        recovery.live_records = index.len() as u64;

        let next_seg_id = seg_ids.last().copied().unwrap_or(0) + 1;
        let ins = StoreInstruments::registered(registry);
        ins.bytes.set(total_bytes);
        ins.records_on_disk.set(recovery.records_replayed);
        Ok(Store {
            writer: Mutex::new(WriterState {
                file: None,
                seg_id: 0,
                seg_bytes: 0,
                next_seg_id,
                segments: seg_ids,
            }),
            index: RwLock::new(index),
            recovery,
            ins,
            config,
            faults: RwLock::new(None),
        })
    }

    /// The configuration the store was opened with.
    pub fn config(&self) -> &StoreConfig {
        &self.config
    }

    /// Installs a fault surface on the append path: before any real I/O,
    /// each append asks the surface for an injected error. Intended for
    /// chaos drills and breaker tests; with no surface installed the seam
    /// costs one uncontended read-lock check.
    pub fn set_fault_surface(&self, faults: Arc<dyn arrayflow_resilience::FaultSurface>) {
        *self.faults.write().unwrap() = Some(faults);
    }

    /// What recovery found when this store was opened.
    pub fn recovery(&self) -> RecoveryReport {
        self.recovery
    }

    /// Number of live records.
    pub fn len(&self) -> usize {
        self.index.read().unwrap().len()
    }

    /// True when no live records exist.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of the counters.
    pub fn stats(&self) -> StoreStats {
        let (segments, records) = {
            let w = self.writer.lock().unwrap();
            let ix = self.index.read().unwrap();
            (w.segments.len() as u64, ix.len() as u64)
        };
        StoreStats {
            records,
            segments,
            bytes: self.ins.bytes.get(),
            disk_hits: self.ins.disk_hits.get(),
            disk_misses: self.ins.disk_misses.get(),
            read_errors: self.ins.read_errors.get(),
            appends: self.ins.appends.get(),
            recovery_skipped: self.recovery.skipped,
            compactions: self.ins.compactions.get(),
        }
    }

    fn read_location(&self, loc: Location) -> Option<Record> {
        let path = self.config.dir.join(segment_file_name(loc.segment));
        let mut file = File::open(path).ok()?;
        file.seek(SeekFrom::Start(loc.frame_offset)).ok()?;
        let mut frame = vec![0u8; FRAME_LEN + loc.payload_len as usize];
        file.read_exact(&mut frame).ok()?;
        let len = u32::from_le_bytes([frame[0], frame[1], frame[2], frame[3]]) as usize;
        let crc = u32::from_le_bytes([frame[4], frame[5], frame[6], frame[7]]);
        if len != loc.payload_len as usize || len > MAX_RECORD_BYTES {
            return None;
        }
        let payload = &frame[FRAME_LEN..];
        if crc32(payload) != crc {
            return None;
        }
        decode_record(payload).ok()
    }

    /// Fetches the live report for `key`, re-validating CRC and decode on
    /// the way — returns `None` (never a corrupt report) when anything
    /// fails.
    pub fn get(&self, key: &CacheKey) -> Option<AnalysisReport> {
        let loc = {
            let ix = self.index.read().unwrap();
            match ix.get(key) {
                Some(loc) => *loc,
                None => {
                    self.ins.disk_misses.inc();
                    return None;
                }
            }
        };
        match self.read_location(loc) {
            Some(Record::Put { report, .. }) => {
                self.ins.disk_hits.inc();
                Some(*report)
            }
            _ => {
                // Validation failed (or the segment vanished under a
                // concurrent compaction): report a miss, never bad data.
                self.ins.read_errors.inc();
                self.ins.disk_misses.inc();
                None
            }
        }
    }

    fn append_frame(&self, w: &mut WriterState, frame: &[u8]) -> io::Result<(u64, u64)> {
        if w.file.is_none() {
            let id = w.next_seg_id;
            w.next_seg_id += 1;
            let path = self.config.dir.join(segment_file_name(id));
            let mut file = OpenOptions::new().create_new(true).write(true).open(path)?;
            file.write_all(&header_bytes())?;
            w.file = Some(file);
            w.seg_id = id;
            w.seg_bytes = HEADER_LEN as u64;
            w.segments.push(id);
            self.ins.bytes.add(HEADER_LEN as u64);
        }
        let offset = w.seg_bytes;
        w.file.as_mut().expect("opened above").write_all(frame)?;
        w.seg_bytes += frame.len() as u64;
        self.ins.bytes.add(frame.len() as u64);
        let seg_id = w.seg_id;
        if w.seg_bytes >= self.config.segment_bytes {
            // Rotate: sync the finished segment, next append opens a new
            // one.
            if let Some(file) = w.file.take() {
                let _ = file.sync_data();
            }
        }
        Ok((seg_id, offset))
    }

    /// Appends one record and updates the index. Rotation happens
    /// transparently when the current segment crosses the size cap.
    pub fn append(&self, record: &Record) -> io::Result<()> {
        if let Some(faults) = self.faults.read().unwrap().as_ref() {
            if let Some(e) = faults.store_io() {
                return Err(e);
            }
        }
        let payload = encode_record(record);
        let frame = frame_record(&payload);
        let mut w = self.writer.lock().unwrap();
        let (segment, frame_offset) = self.append_frame(&mut w, &frame)?;
        // Update the index while still holding the writer lock so index
        // order matches log order.
        let mut ix = self.index.write().unwrap();
        match record {
            Record::Put { key, .. } => {
                ix.insert(
                    *key,
                    Location {
                        segment,
                        frame_offset,
                        payload_len: payload.len() as u32,
                    },
                );
            }
            Record::Tombstone { key } => {
                ix.remove(key);
            }
        }
        drop(ix);
        drop(w);
        self.ins.appends.inc();
        self.ins.records_on_disk.add(1);
        Ok(())
    }

    /// Persists a report under its key.
    pub fn put(&self, key: CacheKey, report: AnalysisReport) -> io::Result<()> {
        self.append(&Record::Put {
            key,
            report: Box::new(report),
        })
    }

    /// Writes a tombstone: the key is dead and the next compaction drops
    /// its records.
    pub fn remove(&self, key: CacheKey) -> io::Result<()> {
        self.append(&Record::Tombstone { key })
    }

    /// Visits every live record (reading and re-validating each from
    /// disk) — the warm-start path. Records failing validation are
    /// counted as read errors and skipped. Returns how many were
    /// delivered.
    pub fn for_each_live(&self, mut f: impl FnMut(CacheKey, AnalysisReport)) -> u64 {
        let snapshot: Vec<(CacheKey, Location)> = {
            let ix = self.index.read().unwrap();
            ix.iter().map(|(k, v)| (*k, *v)).collect()
        };
        let mut delivered = 0;
        for (key, loc) in snapshot {
            match self.read_location(loc) {
                Some(Record::Put { report, .. }) => {
                    f(key, *report);
                    delivered += 1;
                }
                _ => {
                    self.ins.read_errors.inc();
                }
            }
        }
        delivered
    }

    /// Serializes every live record into the segment log's frame format
    /// (`len | crc32 | payload`, no segment header) — the replication
    /// batch format. Each record is read and re-validated from disk; ones
    /// failing validation are counted as read errors and skipped. The
    /// result can be shipped over the `replicate` wire verb and applied
    /// with [`Store::import_frames`].
    pub fn export_live(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.for_each_live(|key, report| {
            let payload = encode_record(&Record::Put {
                key,
                report: Box::new(report),
            });
            out.extend_from_slice(&frame_record(&payload));
        });
        out
    }

    /// Applies a batch of record frames (the [`Store::export_live`] /
    /// replication format): each frame is CRC-checked and decoded, then
    /// appended — except `Put`s whose key is already live, which are
    /// skipped (reports are deterministic functions of their key, so a
    /// present key already holds identical bytes). Corrupt or truncated
    /// frames abort the batch with `InvalidData`; everything applied
    /// before the bad frame stays applied (appends are idempotent under
    /// replay, so the sender can simply re-ship). Returns the number of
    /// records applied.
    pub fn import_frames(&self, batch: &[u8]) -> io::Result<u64> {
        let bad = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg);
        let mut applied = 0u64;
        let mut off = 0usize;
        while off < batch.len() {
            if batch.len() - off < FRAME_LEN {
                return Err(bad("truncated frame header in replication batch"));
            }
            let len =
                u32::from_le_bytes([batch[off], batch[off + 1], batch[off + 2], batch[off + 3]])
                    as usize;
            let crc = u32::from_le_bytes([
                batch[off + 4],
                batch[off + 5],
                batch[off + 6],
                batch[off + 7],
            ]);
            if len > MAX_RECORD_BYTES {
                return Err(bad("oversized record in replication batch"));
            }
            let start = off + FRAME_LEN;
            let end = match start.checked_add(len) {
                Some(end) if end <= batch.len() => end,
                _ => return Err(bad("truncated record in replication batch")),
            };
            let payload = &batch[start..end];
            if crc32(payload) != crc {
                return Err(bad("CRC mismatch in replication batch"));
            }
            let record = decode_record(payload)
                .map_err(|_| bad("undecodable record in replication batch"))?;
            let skip = match &record {
                // A live key already holds these exact bytes; a tombstone
                // for a dead key is a no-op.
                Record::Put { key, .. } => self.index.read().unwrap().contains_key(key),
                Record::Tombstone { key } => !self.index.read().unwrap().contains_key(key),
            };
            if !skip {
                self.append(&record)?;
                applied += 1;
            }
            off = end;
        }
        Ok(applied)
    }

    /// Rewrites every live record into fresh segments and deletes the old
    /// files, dropping superseded puts and tombstones. Appends are
    /// blocked for the duration (reads stay concurrent); a crash
    /// mid-compaction is safe because old segments are only deleted after
    /// the new ones are synced, and replay is last-write-wins.
    pub fn compact(&self) -> io::Result<CompactionReport> {
        let mut w = self.writer.lock().unwrap();
        let bytes_before = self.ins.bytes.get();
        let records_before = self.ins.records_on_disk.get();
        let old_segments = std::mem::take(&mut w.segments);
        // Seal the current segment; compaction output starts a fresh one.
        if let Some(file) = w.file.take() {
            let _ = file.sync_data();
        }

        let snapshot: Vec<(CacheKey, Location)> = {
            let ix = self.index.read().unwrap();
            ix.iter().map(|(k, v)| (*k, *v)).collect()
        };

        // Copy each live record into the new generation, re-validating in
        // transit. `append_frame` keeps the byte counter current.
        let mut new_index: HashMap<CacheKey, Location> = HashMap::new();
        let mut live = 0u64;
        for (key, loc) in snapshot {
            let record = match self.read_location(loc) {
                Some(r @ Record::Put { .. }) => r,
                _ => {
                    self.ins.read_errors.inc();
                    continue;
                }
            };
            let payload = encode_record(&record);
            let frame = frame_record(&payload);
            let (segment, frame_offset) = self.append_frame(&mut w, &frame)?;
            new_index.insert(
                key,
                Location {
                    segment,
                    frame_offset,
                    payload_len: payload.len() as u32,
                },
            );
            live += 1;
        }
        if let Some(file) = &mut w.file {
            file.sync_data()?;
        }

        // Swap the index, then delete the old generation. Old files are
        // only removed after the new ones are durable, so a crash at any
        // point leaves a recoverable (if larger) store.
        *self.index.write().unwrap() = new_index;
        let mut removed_bytes = 0u64;
        for id in old_segments {
            let path = self.config.dir.join(segment_file_name(id));
            removed_bytes += fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
            let _ = fs::remove_file(path);
        }
        self.ins.bytes.sub(removed_bytes);
        self.ins.records_on_disk.set(live);
        self.ins.compactions.inc();
        let bytes_after = self.ins.bytes.get();
        drop(w);
        Ok(CompactionReport {
            live_records: live,
            dropped: records_before.saturating_sub(live),
            bytes_before,
            bytes_after,
        })
    }
}

/// Convenience alias used by the service wiring.
pub type SharedStore = Arc<Store>;

#[cfg(test)]
mod tests {
    use super::*;
    use arrayflow_engine::ProblemSet;
    use arrayflow_ir::Fingerprint;
    use std::sync::atomic::{AtomicU32, Ordering};

    static DIR_SEQ: AtomicU32 = AtomicU32::new(0);

    /// A fresh directory under the system temp dir, removed on drop.
    struct TempDir(PathBuf);

    impl TempDir {
        fn new(tag: &str) -> TempDir {
            let n = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
            let dir =
                std::env::temp_dir().join(format!("afstore-{tag}-{}-{n}", std::process::id()));
            let _ = fs::remove_dir_all(&dir);
            TempDir(dir)
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(&self.0);
        }
    }

    fn key(fp: u128) -> CacheKey {
        CacheKey {
            fingerprint: Fingerprint(fp),
            problems: ProblemSet::ALL,
            dep_max_distance: 8,
            custom: None,
        }
    }

    fn report(fp: u128, sites: usize) -> AnalysisReport {
        AnalysisReport {
            fingerprint: Fingerprint(fp),
            problems: ProblemSet::ALL,
            dep_max_distance: 8,
            nodes: 10,
            sites,
            reaching_stats: None,
            available_stats: None,
            busy_stats: None,
            reaching_refs_stats: None,
            reuses: Vec::new(),
            redundant_stores: Vec::new(),
            dependences: Vec::new(),
            custom: None,
        }
    }

    #[test]
    fn put_get_round_trip() {
        let dir = TempDir::new("roundtrip");
        let store = Store::open(StoreConfig::at(&dir.0)).unwrap();
        store.put(key(1), report(1, 3)).unwrap();
        store.put(key(2), report(2, 4)).unwrap();
        assert_eq!(store.get(&key(1)), Some(report(1, 3)));
        assert_eq!(store.get(&key(2)), Some(report(2, 4)));
        assert_eq!(store.get(&key(3)), None);
        let stats = store.stats();
        assert_eq!(stats.records, 2);
        assert_eq!(stats.disk_hits, 2);
        assert_eq!(stats.disk_misses, 1);
        assert_eq!(stats.appends, 2);
    }

    #[test]
    fn last_write_wins_and_tombstones_kill() {
        let dir = TempDir::new("lww");
        let store = Store::open(StoreConfig::at(&dir.0)).unwrap();
        store.put(key(1), report(1, 3)).unwrap();
        store.put(key(1), report(1, 9)).unwrap();
        assert_eq!(store.get(&key(1)), Some(report(1, 9)));
        store.remove(key(1)).unwrap();
        assert_eq!(store.get(&key(1)), None);
        assert!(store.is_empty());
    }

    #[test]
    fn reopen_recovers_live_set() {
        let dir = TempDir::new("reopen");
        {
            let store = Store::open(StoreConfig::at(&dir.0)).unwrap();
            store.put(key(1), report(1, 3)).unwrap();
            store.put(key(2), report(2, 4)).unwrap();
            store.put(key(1), report(1, 7)).unwrap();
            store.remove(key(2)).unwrap();
        }
        let store = Store::open(StoreConfig::at(&dir.0)).unwrap();
        let rec = store.recovery();
        assert_eq!(rec.records_replayed, 4);
        assert_eq!(rec.skipped, 0);
        assert_eq!(rec.live_records, 1);
        assert_eq!(store.get(&key(1)), Some(report(1, 7)));
        assert_eq!(store.get(&key(2)), None);
    }

    #[test]
    fn rotation_spawns_new_segments_and_reopen_sees_all() {
        let dir = TempDir::new("rotate");
        let mut config = StoreConfig::at(&dir.0);
        config.segment_bytes = 128; // force a rotation every few records
        {
            let store = Store::open(config.clone()).unwrap();
            for i in 0..20u128 {
                store.put(key(i), report(i, i as usize)).unwrap();
            }
            assert!(store.stats().segments > 1, "expected rotation");
        }
        let store = Store::open(config).unwrap();
        assert_eq!(store.len(), 20);
        for i in 0..20u128 {
            assert_eq!(store.get(&key(i)), Some(report(i, i as usize)), "key {i}");
        }
    }

    #[test]
    fn compaction_drops_dead_records_and_preserves_live() {
        let dir = TempDir::new("compact");
        let mut config = StoreConfig::at(&dir.0);
        config.segment_bytes = 256;
        let store = Store::open(config.clone()).unwrap();
        for i in 0..10u128 {
            store.put(key(i), report(i, 1)).unwrap();
            store.put(key(i), report(i, 2)).unwrap(); // supersede
        }
        store.remove(key(9)).unwrap();
        let before = store.stats();
        let report_c = store.compact().unwrap();
        assert_eq!(report_c.live_records, 9);
        assert_eq!(report_c.dropped, 21 - 9);
        assert!(report_c.bytes_after < report_c.bytes_before);
        assert!(store.stats().bytes < before.bytes);
        for i in 0..9u128 {
            assert_eq!(store.get(&key(i)), Some(report(i, 2)), "key {i}");
        }
        assert_eq!(store.get(&key(9)), None);
        // Appends after compaction land in fresh segments; reopen agrees.
        store.put(key(100), report(100, 5)).unwrap();
        drop(store);
        let store = Store::open(config).unwrap();
        assert_eq!(store.recovery().skipped, 0);
        assert_eq!(store.len(), 10);
        assert_eq!(store.get(&key(100)), Some(report(100, 5)));
        assert_eq!(store.get(&key(4)), Some(report(4, 2)));
    }

    #[test]
    fn for_each_live_visits_exactly_live() {
        let dir = TempDir::new("foreach");
        let store = Store::open(StoreConfig::at(&dir.0)).unwrap();
        for i in 0..5u128 {
            store.put(key(i), report(i, 1)).unwrap();
        }
        store.remove(key(0)).unwrap();
        let mut seen = Vec::new();
        let delivered = store.for_each_live(|k, _| seen.push(k.fingerprint.0));
        seen.sort_unstable();
        assert_eq!(delivered, 4);
        assert_eq!(seen, vec![1, 2, 3, 4]);
    }

    #[test]
    fn export_import_replicates_live_set() {
        let src_dir = TempDir::new("export-src");
        let dst_dir = TempDir::new("export-dst");
        let src = Store::open(StoreConfig::at(&src_dir.0)).unwrap();
        for i in 0..6u128 {
            src.put(key(i), report(i, i as usize)).unwrap();
        }
        src.remove(key(5)).unwrap();
        let batch = src.export_live();

        let dst = Store::open(StoreConfig::at(&dst_dir.0)).unwrap();
        // Pre-seed one key: the import must skip it, not duplicate it.
        dst.put(key(2), report(2, 2)).unwrap();
        let applied = dst.import_frames(&batch).unwrap();
        assert_eq!(applied, 4);
        assert_eq!(dst.len(), 5);
        for i in 0..5u128 {
            assert_eq!(dst.get(&key(i)), Some(report(i, i as usize)), "key {i}");
        }
        assert_eq!(dst.get(&key(5)), None);
        // Re-importing the same batch is a no-op.
        assert_eq!(dst.import_frames(&batch).unwrap(), 0);
    }

    #[test]
    fn import_rejects_corrupt_batches() {
        let dir = TempDir::new("import-corrupt");
        let store = Store::open(StoreConfig::at(&dir.0)).unwrap();
        store.put(key(1), report(1, 1)).unwrap();
        let mut batch = store.export_live();
        // Truncated tail.
        assert!(store.import_frames(&batch[..batch.len() - 1]).is_err());
        // Flipped payload byte.
        let n = batch.len();
        batch[n - 1] ^= 0xFF;
        assert!(store.import_frames(&batch).is_err());
        // Garbage header.
        assert!(store.import_frames(&[1, 2, 3]).is_err());
        // Empty batch is fine.
        assert_eq!(store.import_frames(&[]).unwrap(), 0);
    }

    #[test]
    fn corrupt_record_on_disk_is_a_miss_not_a_panic() {
        let dir = TempDir::new("corrupt-get");
        let store = Store::open(StoreConfig::at(&dir.0)).unwrap();
        store.put(key(1), report(1, 3)).unwrap();
        // Flip a payload byte behind the store's back.
        let seg = dir.0.join(segment_file_name(1));
        let mut bytes = fs::read(&seg).unwrap();
        let n = bytes.len();
        bytes[n - 2] ^= 0xFF;
        fs::write(&seg, bytes).unwrap();
        assert_eq!(store.get(&key(1)), None);
        let stats = store.stats();
        assert_eq!(stats.read_errors, 1);
        assert_eq!(stats.disk_misses, 1);
    }
}
