//! The binary codec for persisted records, built on the shared
//! primitives in [`arrayflow_wire::codec`] (extracted from this crate in
//! PR 6 so the segment log and the binary wire protocol share one
//! implementation — the byte-compatibility tests in
//! `tests/byte_compat.rs` pin the encoding against pre-extraction
//! golden bytes).
//!
//! Integers are LEB128 varints, fingerprints are fixed 16-byte
//! little-endian, sequences are count-prefixed. Encoding is canonical
//! (minimal varints, fixed field order), so `encode(decode(encode(r)))`
//! reproduces the same bytes and two equal reports always serialize
//! identically — the property the store's byte-exact round-trip and the
//! service's byte-identical-across-restart guarantee rest on.
//!
//! Decoding is fully defensive: every read is bounds-checked, sequence
//! counts are validated against the remaining input before allocation,
//! enums reject unknown discriminants, and no input — however hostile —
//! panics. Corrupt bytes come back as [`DecodeError`].

use arrayflow_analyses::{Dep, DepKind, RedundantStore, Reuse};
use arrayflow_core::{CustomSpec, Dist, RefId};
use arrayflow_engine::{
    AnalysisReport, CacheKey, CustomResult, CustomValue, InstanceStats, ProblemSet,
};
use arrayflow_ir::stmt::StmtId;
use arrayflow_ir::Fingerprint;
use arrayflow_wire::codec::{put_bool, put_u128, put_usize, put_varint, Reader};

pub use arrayflow_wire::codec::{DecodeError, DecodeResult};

// ---------------------------------------------------------------- write

fn put_instance_stats(out: &mut Vec<u8>, s: &Option<InstanceStats>) {
    match s {
        None => out.push(0),
        Some(s) => {
            out.push(1);
            put_usize(out, s.init_visits);
            put_usize(out, s.iter_visits);
            put_usize(out, s.passes);
            put_usize(out, s.changing_passes);
        }
    }
}

// ----------------------------------------------------------------- read

fn read_instance_stats(r: &mut Reader<'_>) -> DecodeResult<Option<InstanceStats>> {
    match r.u8()? {
        0 => Ok(None),
        1 => Ok(Some(InstanceStats {
            init_visits: r.usize()?,
            iter_visits: r.usize()?,
            passes: r.usize()?,
            changing_passes: r.usize()?,
        })),
        _ => Err(DecodeError::BadDiscriminant),
    }
}

/// High bit of the problems byte: set when the key/report answers a
/// custom (G, K) spec, with [`CustomSpec::bits`] in the low bits. Canned
/// [`ProblemSet::bits`] never exceed `0b1111`, so every pre-custom byte
/// stream decodes unchanged and canned encodings stay byte-identical.
const CUSTOM_MARKER: u8 = 0x80;

fn put_problems_byte(out: &mut Vec<u8>, problems: ProblemSet, custom: Option<CustomSpec>) {
    match custom {
        Some(spec) => out.push(CUSTOM_MARKER | spec.bits()),
        None => out.push(problems.bits()),
    }
}

fn read_problems_byte(r: &mut Reader<'_>) -> DecodeResult<(ProblemSet, Option<CustomSpec>)> {
    let byte = r.u8()?;
    if byte & CUSTOM_MARKER != 0 {
        let spec =
            CustomSpec::from_bits(byte & !CUSTOM_MARKER).ok_or(DecodeError::BadDiscriminant)?;
        Ok((ProblemSet::NONE, Some(spec)))
    } else {
        let problems = ProblemSet::from_bits(byte).ok_or(DecodeError::BadDiscriminant)?;
        Ok((problems, None))
    }
}

fn put_dist(out: &mut Vec<u8>, dist: Dist) {
    match dist {
        Dist::Bottom => out.push(0),
        Dist::Fin(x) => {
            out.push(1);
            put_varint(out, x);
        }
        Dist::Top => out.push(2),
    }
}

fn read_dist(r: &mut Reader<'_>) -> DecodeResult<Dist> {
    match r.u8()? {
        0 => Ok(Dist::Bottom),
        1 => Ok(Dist::Fin(r.varint()?)),
        2 => Ok(Dist::Top),
        _ => Err(DecodeError::BadDiscriminant),
    }
}

// ------------------------------------------------------------- key

/// Appends the canonical encoding of `key` to `out`.
pub fn encode_key_into(out: &mut Vec<u8>, key: &CacheKey) {
    put_u128(out, key.fingerprint.0);
    put_problems_byte(out, key.problems, key.custom);
    put_varint(out, key.dep_max_distance);
}

fn decode_key(r: &mut Reader<'_>) -> DecodeResult<CacheKey> {
    let fingerprint = Fingerprint(r.u128()?);
    let (problems, custom) = read_problems_byte(r)?;
    Ok(CacheKey {
        fingerprint,
        problems,
        dep_max_distance: r.varint()?,
        custom,
    })
}

// ---------------------------------------------------------- report

/// Appends the canonical encoding of `report` to `out`.
pub fn encode_report_into(out: &mut Vec<u8>, report: &AnalysisReport) {
    put_u128(out, report.fingerprint.0);
    put_problems_byte(out, report.problems, report.custom.as_ref().map(|c| c.spec));
    put_varint(out, report.dep_max_distance);
    put_usize(out, report.nodes);
    put_usize(out, report.sites);
    put_instance_stats(out, &report.reaching_stats);
    put_instance_stats(out, &report.available_stats);
    put_instance_stats(out, &report.busy_stats);
    put_instance_stats(out, &report.reaching_refs_stats);

    put_usize(out, report.reuses.len());
    for r in &report.reuses {
        put_usize(out, r.use_site);
        put_varint(out, r.gen.0 as u64);
        put_usize(out, r.gen_site);
        put_varint(out, r.distance);
        put_bool(out, r.gen_is_def);
    }
    put_usize(out, report.redundant_stores.len());
    for s in &report.redundant_stores {
        put_usize(out, s.store_site);
        match s.stmt {
            None => out.push(0),
            Some(StmtId(id)) => {
                out.push(1);
                put_varint(out, id as u64);
            }
        }
        put_varint(out, s.distance);
        put_usize(out, s.killer_site);
    }
    put_usize(out, report.dependences.len());
    for d in &report.dependences {
        put_usize(out, d.src_site);
        put_usize(out, d.dst_site);
        put_varint(out, d.distance);
        out.push(match d.kind {
            DepKind::Flow => 0,
            DepKind::Anti => 1,
            DepKind::Output => 2,
        });
    }
    // The custom section rides behind the marker bit of the problems
    // byte, so canned reports (the only kind older readers know) encode
    // byte-identically to the pre-custom format.
    if let Some(c) = &report.custom {
        put_usize(out, c.stats.init_visits);
        put_usize(out, c.stats.iter_visits);
        put_usize(out, c.stats.passes);
        put_usize(out, c.stats.changing_passes);
        put_usize(out, c.width);
        put_usize(out, c.values.len());
        for v in &c.values {
            put_varint(out, v.gen as u64);
            put_varint(out, v.gen_site as u64);
            put_varint(out, v.node as u64);
            put_dist(out, v.dist);
        }
    }
}

/// The canonical encoding of one report, standalone.
pub fn encode_report(report: &AnalysisReport) -> Vec<u8> {
    let mut out = Vec::new();
    encode_report_into(&mut out, report);
    out
}

fn decode_report_inner(r: &mut Reader<'_>) -> DecodeResult<AnalysisReport> {
    let fingerprint = Fingerprint(r.u128()?);
    let (problems, custom_spec) = read_problems_byte(r)?;
    let dep_max_distance = r.varint()?;
    let nodes = r.usize()?;
    let sites = r.usize()?;
    let reaching_stats = read_instance_stats(r)?;
    let available_stats = read_instance_stats(r)?;
    let busy_stats = read_instance_stats(r)?;
    let reaching_refs_stats = read_instance_stats(r)?;

    let n = r.count(5)?; // use_site, gen, gen_site, distance, flag
    let mut reuses = Vec::with_capacity(n);
    for _ in 0..n {
        reuses.push(Reuse {
            use_site: r.usize()?,
            gen: RefId(r.u32()?),
            gen_site: r.usize()?,
            distance: r.varint()?,
            gen_is_def: r.bool()?,
        });
    }
    let n = r.count(4)?; // store_site, stmt tag, distance, killer_site
    let mut redundant_stores = Vec::with_capacity(n);
    for _ in 0..n {
        let store_site = r.usize()?;
        let stmt = match r.u8()? {
            0 => None,
            1 => Some(StmtId(r.u32()?)),
            _ => return Err(DecodeError::BadDiscriminant),
        };
        redundant_stores.push(RedundantStore {
            store_site,
            stmt,
            distance: r.varint()?,
            killer_site: r.usize()?,
        });
    }
    let n = r.count(4)?; // src, dst, distance, kind
    let mut dependences = Vec::with_capacity(n);
    for _ in 0..n {
        dependences.push(Dep {
            src_site: r.usize()?,
            dst_site: r.usize()?,
            distance: r.varint()?,
            kind: match r.u8()? {
                0 => DepKind::Flow,
                1 => DepKind::Anti,
                2 => DepKind::Output,
                _ => return Err(DecodeError::BadDiscriminant),
            },
        });
    }

    let custom = match custom_spec {
        None => None,
        Some(spec) => {
            let stats = InstanceStats {
                init_visits: r.usize()?,
                iter_visits: r.usize()?,
                passes: r.usize()?,
                changing_passes: r.usize()?,
            };
            let width = r.usize()?;
            let n = r.count(4)?; // gen, gen_site, node, dist tag
            let mut values = Vec::with_capacity(n);
            for _ in 0..n {
                values.push(CustomValue {
                    gen: r.u32()?,
                    gen_site: r.u32()?,
                    node: r.u32()?,
                    dist: read_dist(r)?,
                });
            }
            Some(CustomResult {
                spec,
                stats,
                width,
                values,
            })
        }
    };

    Ok(AnalysisReport {
        fingerprint,
        problems,
        dep_max_distance,
        nodes,
        sites,
        reaching_stats,
        available_stats,
        busy_stats,
        reaching_refs_stats,
        reuses,
        redundant_stores,
        dependences,
        custom,
    })
}

/// Decodes a standalone report, rejecting trailing bytes.
pub fn decode_report(bytes: &[u8]) -> DecodeResult<AnalysisReport> {
    let mut r = Reader::new(bytes);
    let report = decode_report_inner(&mut r)?;
    r.finish()?;
    Ok(report)
}

// ---------------------------------------------------------- records

/// One logical entry of the segment log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Record {
    /// A report stored under its cache key (last write wins).
    Put {
        /// The memo-cache identity of the report.
        key: CacheKey,
        /// The persisted analysis (boxed: a report is an order of
        /// magnitude larger than a tombstone).
        report: Box<AnalysisReport>,
    },
    /// A deletion marker: earlier `Put`s for `key` are dead and will be
    /// dropped by the next compaction.
    Tombstone {
        /// The deleted key.
        key: CacheKey,
    },
}

impl Record {
    /// The key this record is about.
    pub fn key(&self) -> &CacheKey {
        match self {
            Record::Put { key, .. } | Record::Tombstone { key } => key,
        }
    }
}

const TAG_PUT: u8 = 1;
const TAG_TOMBSTONE: u8 = 2;

/// The canonical encoding of one record (a segment-log payload).
pub fn encode_record(record: &Record) -> Vec<u8> {
    let mut out = Vec::new();
    match record {
        Record::Put { key, report } => {
            out.push(TAG_PUT);
            encode_key_into(&mut out, key);
            encode_report_into(&mut out, report);
        }
        Record::Tombstone { key } => {
            out.push(TAG_TOMBSTONE);
            encode_key_into(&mut out, key);
        }
    }
    out
}

/// Decodes a record payload, rejecting trailing bytes. Never panics on
/// arbitrary input.
pub fn decode_record(bytes: &[u8]) -> DecodeResult<Record> {
    let mut r = Reader::new(bytes);
    let record = match r.u8()? {
        TAG_PUT => Record::Put {
            key: decode_key(&mut r)?,
            report: Box::new(decode_report_inner(&mut r)?),
        },
        TAG_TOMBSTONE => Record::Tombstone {
            key: decode_key(&mut r)?,
        },
        _ => return Err(DecodeError::BadDiscriminant),
    };
    r.finish()?;
    Ok(record)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> AnalysisReport {
        AnalysisReport {
            fingerprint: Fingerprint(0xdead_beef_cafe_f00d_0123_4567_89ab_cdef),
            problems: ProblemSet::ALL,
            dep_max_distance: 8,
            nodes: 12,
            sites: 5,
            reaching_stats: Some(InstanceStats {
                init_visits: 12,
                iter_visits: 36,
                passes: 3,
                changing_passes: 2,
            }),
            available_stats: Some(InstanceStats {
                init_visits: 12,
                iter_visits: 24,
                passes: 2,
                changing_passes: 1,
            }),
            busy_stats: None,
            reaching_refs_stats: None,
            reuses: vec![Reuse {
                use_site: 1,
                gen: RefId(0),
                gen_site: 0,
                distance: 2,
                gen_is_def: true,
            }],
            redundant_stores: vec![RedundantStore {
                store_site: 3,
                stmt: Some(StmtId(7)),
                distance: 1,
                killer_site: 4,
            }],
            dependences: vec![Dep {
                src_site: 0,
                dst_site: 1,
                distance: 2,
                kind: DepKind::Flow,
            }],
            custom: None,
        }
    }

    fn sample_key() -> CacheKey {
        CacheKey {
            fingerprint: Fingerprint(42),
            problems: ProblemSet::ALL,
            dep_max_distance: 8,
            custom: None,
        }
    }

    fn sample_custom_report() -> AnalysisReport {
        let spec = CustomSpec::from_bits(0b11_0110).unwrap(); // live elements
        AnalysisReport {
            fingerprint: Fingerprint(0x0123_4567_89ab_cdef_dead_beef_cafe_f00d),
            problems: ProblemSet::NONE,
            dep_max_distance: 8,
            nodes: 6,
            sites: 3,
            reaching_stats: None,
            available_stats: None,
            busy_stats: None,
            reaching_refs_stats: None,
            reuses: Vec::new(),
            redundant_stores: Vec::new(),
            dependences: Vec::new(),
            custom: Some(CustomResult {
                spec,
                stats: InstanceStats {
                    init_visits: 6,
                    iter_visits: 12,
                    passes: 2,
                    changing_passes: 1,
                },
                width: 2,
                values: vec![
                    CustomValue {
                        gen: 0,
                        gen_site: 1,
                        node: 2,
                        dist: Dist::Fin(3),
                    },
                    CustomValue {
                        gen: 1,
                        gen_site: 2,
                        node: 0,
                        dist: Dist::Top,
                    },
                ],
            }),
        }
    }

    #[test]
    fn report_round_trips_byte_exactly() {
        let report = sample_report();
        let bytes = encode_report(&report);
        let decoded = decode_report(&bytes).unwrap();
        assert_eq!(decoded, report);
        // Canonical: re-encoding the decoded value reproduces the bytes.
        assert_eq!(encode_report(&decoded), bytes);
    }

    #[test]
    fn custom_report_round_trips_byte_exactly() {
        let report = sample_custom_report();
        let bytes = encode_report(&report);
        let decoded = decode_report(&bytes).unwrap();
        assert_eq!(decoded, report);
        assert_eq!(encode_report(&decoded), bytes);

        let key = CacheKey {
            fingerprint: report.fingerprint,
            problems: ProblemSet::NONE,
            dep_max_distance: 8,
            custom: report.custom.as_ref().map(|c| c.spec),
        };
        let record = Record::Put {
            key,
            report: Box::new(report),
        };
        let bytes = encode_record(&record);
        assert_eq!(decode_record(&bytes).unwrap(), record);
    }

    #[test]
    fn canned_encoding_is_unchanged_by_the_custom_extension() {
        // The marker bit rides on the problems byte; a canned report must
        // not grow a custom section or shift any field.
        let bytes = encode_report(&sample_report());
        assert_eq!(bytes[16], ProblemSet::ALL.bits());
        assert!(bytes[16] & CUSTOM_MARKER == 0);
    }

    #[test]
    fn bad_custom_spec_bytes_are_rejected() {
        let report = sample_custom_report();
        let mut bytes = encode_report(&report);
        // The problems byte sits right after the 16-byte fingerprint.
        assert_eq!(bytes[16], CUSTOM_MARKER | 0b11_0110);
        // Marker with empty-G spec bits: invalid, must not panic.
        bytes[16] = CUSTOM_MARKER;
        assert_eq!(decode_report(&bytes), Err(DecodeError::BadDiscriminant));
        bytes[16] = CUSTOM_MARKER | 0b11_1100; // G empty, K full
        assert_eq!(decode_report(&bytes), Err(DecodeError::BadDiscriminant));
    }

    #[test]
    fn bad_dist_tag_is_rejected() {
        let report = sample_custom_report();
        let mut bytes = encode_report(&report);
        let last = bytes.len() - 1;
        assert_eq!(bytes[last], 2); // trailing value's dist tag (Top)
        bytes[last] = 3;
        assert_eq!(decode_report(&bytes), Err(DecodeError::BadDiscriminant));
    }

    #[test]
    fn custom_truncation_at_every_length_is_an_error_not_a_panic() {
        let bytes = encode_report(&sample_custom_report());
        for len in 0..bytes.len() {
            assert!(decode_report(&bytes[..len]).is_err(), "len {len}");
        }
    }

    #[test]
    fn records_round_trip() {
        for record in [
            Record::Put {
                key: sample_key(),
                report: Box::new(sample_report()),
            },
            Record::Tombstone { key: sample_key() },
        ] {
            let bytes = encode_record(&record);
            assert_eq!(decode_record(&bytes).unwrap(), record);
            assert_eq!(encode_record(&decode_record(&bytes).unwrap()), bytes);
        }
    }

    #[test]
    fn truncation_at_every_length_is_an_error_not_a_panic() {
        let bytes = encode_record(&Record::Put {
            key: sample_key(),
            report: Box::new(sample_report()),
        });
        for len in 0..bytes.len() {
            assert!(decode_record(&bytes[..len]).is_err(), "len {len}");
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = encode_record(&Record::Tombstone { key: sample_key() });
        bytes.push(0);
        assert_eq!(decode_record(&bytes), Err(DecodeError::TrailingBytes));
    }

    #[test]
    fn huge_counts_do_not_allocate() {
        // TAG_PUT + valid key + valid report prefix, then a count claiming
        // u64::MAX reuses: must fail fast on the count check.
        let mut bytes = Vec::new();
        bytes.push(TAG_PUT);
        encode_key_into(&mut bytes, &sample_key());
        let mut report = sample_report();
        report.reuses.clear();
        report.redundant_stores.clear();
        report.dependences.clear();
        let body = encode_report(&report);
        // The empty report ends with three zero counts; replace the first
        // with a giant varint.
        bytes.extend_from_slice(&body[..body.len() - 3]);
        bytes.extend_from_slice(&[0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01]);
        assert!(decode_record(&bytes).is_err());
    }
}
