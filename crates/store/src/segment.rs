//! The on-disk segment format and its recovery scanner.
//!
//! A store directory holds numbered segment files (`seg-00000001.log`,
//! ids strictly increasing, never reused — compaction writes fresh ids
//! and deletes the old files). Each segment is:
//!
//! ```text
//! ┌──────────────────────────── header (12 bytes) ────────────────────┐
//! │ magic "AFSTOR01" (8 bytes) │ version u32 LE (= 1)                 │
//! ├──────────────────────────── record frame ─────────────────────────┤
//! │ len u32 LE │ crc32(payload) u32 LE │ payload (len bytes, codec)   │
//! ├───────────────────────────────────────────────────────────────────┤
//! │ … more record frames, until EOF …                                 │
//! └───────────────────────────────────────────────────────────────────┘
//! ```
//!
//! Recovery trusts nothing: a bad header skips the whole segment; a
//! frame whose length runs past EOF (a torn append) ends the segment; a
//! CRC mismatch or an undecodable payload skips that record and resyncs
//! at the next frame. Every skip is counted, nothing panics, and a
//! record is only ever surfaced when its CRC *and* its codec decode both
//! check out — a corrupt report can be lost, never returned.

use std::fs;
use std::path::Path;

use crate::codec::{decode_record, Record};
use crate::crc::crc32;

/// Leading bytes of every segment file.
pub const MAGIC: [u8; 8] = *b"AFSTOR01";
/// Format version written after the magic.
pub const VERSION: u32 = 1;
/// Header size in bytes (magic + version).
pub const HEADER_LEN: usize = 12;
/// Frame overhead per record (length + CRC).
pub const FRAME_LEN: usize = 8;
/// Upper bound on one record payload; anything larger in a length field
/// is treated as corruption.
pub const MAX_RECORD_BYTES: usize = 1 << 26; // 64 MiB

/// Builds the file name of segment `id`.
pub fn segment_file_name(id: u64) -> String {
    format!("seg-{id:08}.log")
}

/// Parses a segment id back out of a file name, if it is one of ours.
pub fn parse_segment_file_name(name: &str) -> Option<u64> {
    let digits = name.strip_prefix("seg-")?.strip_suffix(".log")?;
    if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

/// The 12-byte header every segment starts with.
pub fn header_bytes() -> [u8; HEADER_LEN] {
    let mut h = [0u8; HEADER_LEN];
    h[..8].copy_from_slice(&MAGIC);
    h[8..].copy_from_slice(&VERSION.to_le_bytes());
    h
}

/// Frames one encoded payload: `len | crc | payload`.
pub fn frame_record(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(FRAME_LEN + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// What one segment scan found.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScanStats {
    /// Records whose CRC and decode both validated.
    pub records: u64,
    /// Records skipped: CRC mismatch, undecodable payload, or a torn /
    /// truncated tail (the tail counts as one skip).
    pub skipped: u64,
    /// True when the segment header itself was missing or wrong (the
    /// whole segment is skipped and counted as one `skipped`).
    pub bad_header: bool,
}

/// A validated record with its position inside the segment buffer.
#[derive(Debug)]
pub struct ScannedRecord {
    /// The decoded record.
    pub record: Record,
    /// Byte offset of the frame (the `len` field) within the segment.
    pub frame_offset: u64,
    /// Payload length in bytes.
    pub payload_len: u32,
}

fn read_u32(buf: &[u8], pos: usize) -> u32 {
    u32::from_le_bytes([buf[pos], buf[pos + 1], buf[pos + 2], buf[pos + 3]])
}

/// Scans one segment buffer, calling `emit` for every intact record in
/// file order. Returns the scan statistics; never panics, whatever the
/// bytes.
pub fn scan_segment_bytes(buf: &[u8], mut emit: impl FnMut(ScannedRecord)) -> ScanStats {
    let mut stats = ScanStats::default();
    if buf.len() < HEADER_LEN || buf[..8] != MAGIC || read_u32(buf, 8) != VERSION {
        stats.bad_header = true;
        stats.skipped = 1;
        return stats;
    }
    let mut pos = HEADER_LEN;
    while pos < buf.len() {
        if buf.len() - pos < FRAME_LEN {
            // A torn frame header at the tail.
            stats.skipped += 1;
            break;
        }
        let len = read_u32(buf, pos) as usize;
        let crc = read_u32(buf, pos + 4);
        if len > MAX_RECORD_BYTES || pos + FRAME_LEN + len > buf.len() {
            // Corrupt length or a torn append: the rest of the segment
            // cannot be trusted for resync, drop it as one skip.
            stats.skipped += 1;
            break;
        }
        let payload = &buf[pos + FRAME_LEN..pos + FRAME_LEN + len];
        if crc32(payload) != crc {
            stats.skipped += 1;
            pos += FRAME_LEN + len; // the length field still framed it
            continue;
        }
        match decode_record(payload) {
            Ok(record) => {
                emit(ScannedRecord {
                    record,
                    frame_offset: pos as u64,
                    payload_len: len as u32,
                });
                stats.records += 1;
            }
            Err(_) => stats.skipped += 1,
        }
        pos += FRAME_LEN + len;
    }
    stats
}

/// Reads and scans one segment file. An unreadable file counts as a bad
/// header (one skip).
pub fn scan_segment_file(path: &Path, emit: impl FnMut(ScannedRecord)) -> ScanStats {
    match fs::read(path) {
        Ok(buf) => scan_segment_bytes(&buf, emit),
        Err(_) => ScanStats {
            records: 0,
            skipped: 1,
            bad_header: true,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::encode_record;
    use arrayflow_engine::{CacheKey, ProblemSet};
    use arrayflow_ir::Fingerprint;

    fn tombstone(fp: u128) -> Record {
        Record::Tombstone {
            key: CacheKey {
                fingerprint: Fingerprint(fp),
                problems: ProblemSet::ALL,
                dep_max_distance: 8,
                custom: None,
            },
        }
    }

    fn segment_with(records: &[Record]) -> Vec<u8> {
        let mut buf = header_bytes().to_vec();
        for r in records {
            buf.extend_from_slice(&frame_record(&encode_record(r)));
        }
        buf
    }

    #[test]
    fn file_names_round_trip() {
        assert_eq!(segment_file_name(1), "seg-00000001.log");
        assert_eq!(parse_segment_file_name("seg-00000001.log"), Some(1));
        assert_eq!(
            parse_segment_file_name("seg-123456789.log"),
            Some(123_456_789)
        );
        assert_eq!(parse_segment_file_name("seg-.log"), None);
        assert_eq!(parse_segment_file_name("seg-1x.log"), None);
        assert_eq!(parse_segment_file_name("other.log"), None);
    }

    #[test]
    fn scans_intact_segment() {
        let buf = segment_with(&[tombstone(1), tombstone(2), tombstone(3)]);
        let mut seen = Vec::new();
        let stats = scan_segment_bytes(&buf, |r| seen.push(r.record.key().fingerprint.0));
        assert_eq!(
            stats,
            ScanStats {
                records: 3,
                skipped: 0,
                bad_header: false
            }
        );
        assert_eq!(seen, vec![1, 2, 3]);
    }

    #[test]
    fn truncated_tail_counts_one_skip() {
        let buf = segment_with(&[tombstone(1), tombstone(2)]);
        // Chop into the middle of the second record.
        let cut = buf.len() - 5;
        let mut seen = 0;
        let stats = scan_segment_bytes(&buf[..cut], |_| seen += 1);
        assert_eq!(seen, 1);
        assert_eq!(
            stats,
            ScanStats {
                records: 1,
                skipped: 1,
                bad_header: false
            }
        );
    }

    #[test]
    fn crc_flip_skips_record_and_resyncs() {
        let mut buf = segment_with(&[tombstone(1), tombstone(2), tombstone(3)]);
        // Flip a byte in the *body* of the first record (after its frame).
        buf[HEADER_LEN + FRAME_LEN + 2] ^= 0xFF;
        let mut seen = Vec::new();
        let stats = scan_segment_bytes(&buf, |r| seen.push(r.record.key().fingerprint.0));
        assert_eq!(seen, vec![2, 3]);
        assert_eq!(stats.records, 2);
        assert_eq!(stats.skipped, 1);
    }

    #[test]
    fn bad_header_skips_segment() {
        let mut buf = segment_with(&[tombstone(1)]);
        buf[0] ^= 0xFF;
        let stats = scan_segment_bytes(&buf, |_| panic!("no records from a bad header"));
        assert!(stats.bad_header);
        let stats = scan_segment_bytes(b"", |_| ());
        assert!(stats.bad_header);
    }

    #[test]
    fn random_bytes_never_panic() {
        // Deterministic pseudo-random garbage, including a valid header
        // followed by garbage.
        let mut x: u64 = 0x9E3779B97F4A7C15;
        let mut next = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for len in [0usize, 1, 11, 12, 13, 64, 1024, 8192] {
            let mut buf: Vec<u8> = (0..len).map(|_| next() as u8).collect();
            scan_segment_bytes(&buf, |_| ());
            if buf.len() >= HEADER_LEN {
                buf[..HEADER_LEN].copy_from_slice(&header_bytes());
                scan_segment_bytes(&buf, |_| ());
            }
        }
    }
}
