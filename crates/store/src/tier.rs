//! [`PersistentTier`]: the bridge between [`MemoCache`] and the disk
//! [`Store`] — a [`SecondTier`] implementation whose writes go through a
//! dedicated writer thread behind a **bounded** channel.
//!
//! Reads (`load`) hit the store synchronously: a disk read is the slow
//! path of a cache miss that was going to solve four data-flow problems
//! anyway. Writes (`store`) must never stall analysis, so they are
//! forwarded with `try_send`; when the queue is full the append is
//! dropped and counted (`dropped_appends`) — losing a cache write costs
//! a future re-analysis, never correctness.
//!
//! [`MemoCache`]: arrayflow_engine::MemoCache

use std::sync::mpsc::{sync_channel, SyncSender, TrySendError};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;

use arrayflow_engine::{AnalysisReport, CacheKey, SecondTier};
use arrayflow_obs::{observed_span, Counter, Gauge, Histogram, Registry, PHASE_BUCKETS_US};
use arrayflow_resilience::{BreakerState, CircuitBreaker, Transition};

use crate::store::{Store, StoreStats};

enum WriterMsg {
    Put(CacheKey, Arc<AnalysisReport>),
    /// Flush barrier: the writer acks on the back-channel once every
    /// message queued before it has been appended.
    Flush(SyncSender<()>),
}

/// A tee on the tier's writer thread: every append that reaches disk is
/// also offered to the sink, and each flush barrier is forwarded so the
/// sink can ship what it has buffered. Implemented by the cluster
/// replicator; calls are made *on the writer thread*, so implementations
/// must be quick and non-blocking (queue and return).
pub trait ReplicationSink: Send + Sync {
    /// A record just reached the local segment log.
    fn record(&self, key: &CacheKey, report: &Arc<AnalysisReport>);
    /// A flush barrier passed: everything recorded so far should be
    /// shipped at the next opportunity.
    fn barrier(&self);
}

/// Counters specific to the tier (the store keeps its own).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TierStats {
    /// Appends accepted onto the writer queue.
    pub queued_appends: u64,
    /// Appends dropped because the queue was full (backpressure).
    pub dropped_appends: u64,
    /// Appends that reached disk.
    pub written_appends: u64,
    /// Appends that failed with an I/O error on the writer thread.
    pub failed_appends: u64,
    /// Appends refused locally because the write-path breaker was open
    /// (the memory-only degraded mode).
    pub breaker_dropped_appends: u64,
    /// Times the write-path breaker has tripped open.
    pub breaker_trips: u64,
}

/// Disk-backed second tier with an asynchronous writer thread and a
/// write-path circuit breaker.
///
/// The breaker (configured by `breaker_threshold` / `breaker_cooldown`
/// in [`StoreConfig`](crate::StoreConfig)) sits at the tier's front
/// door: after `threshold` consecutive failed appends it trips open and
/// the cache degrades to memory-only — appends are refused by a local
/// check instead of paying a doomed enqueue + syscall each. After the
/// cooldown, one append is admitted as a half-open probe; its outcome on
/// the writer thread closes or re-opens the breaker. Reads (`load`) are
/// never gated: a readable disk keeps serving warm loads even while
/// writes are broken.
pub struct PersistentTier {
    store: Arc<Store>,
    sender: Mutex<Option<SyncSender<WriterMsg>>>,
    writer: Mutex<Option<JoinHandle<()>>>,
    breaker: Arc<CircuitBreaker>,
    replication: Arc<RwLock<Option<Arc<dyn ReplicationSink>>>>,
    ins: TierInstruments,
}

/// The tier's registered instruments: writer-queue counters plus the
/// `tier_load` / `tier_append` phase histograms.
#[derive(Debug, Clone)]
struct TierInstruments {
    queued: Counter,
    dropped: Counter,
    written: Counter,
    failed: Counter,
    breaker_state: Gauge,
    breaker_trips: Counter,
    breaker_dropped: Counter,
    phase_load: Histogram,
    phase_append: Histogram,
}

impl TierInstruments {
    fn registered(registry: &Registry) -> Self {
        let phase = |name| {
            registry.histogram_with(
                "arrayflow_phase_us",
                "per-phase wall-clock, microseconds",
                &[("phase", name)],
                &PHASE_BUCKETS_US,
            )
        };
        Self {
            queued: registry.counter(
                "arrayflow_tier_queued_appends_total",
                "appends accepted onto the writer queue",
            ),
            dropped: registry.counter(
                "arrayflow_tier_dropped_appends_total",
                "appends dropped because the writer queue was full (backpressure)",
            ),
            written: registry.counter(
                "arrayflow_tier_written_appends_total",
                "appends that reached disk",
            ),
            failed: registry.counter(
                "arrayflow_tier_failed_appends_total",
                "appends that failed with an I/O error on the writer thread",
            ),
            breaker_state: registry.gauge(
                "arrayflow_store_breaker_state",
                "write-path circuit breaker state: 0 closed, 1 half-open, 2 open",
            ),
            breaker_trips: registry.counter(
                "arrayflow_store_breaker_trips_total",
                "times the write-path breaker tripped open",
            ),
            breaker_dropped: registry.counter(
                "arrayflow_tier_breaker_dropped_total",
                "appends refused locally while the write-path breaker was open",
            ),
            phase_load: phase("tier_load"),
            phase_append: phase("tier_append"),
        }
    }

    /// Records a breaker transition: gauge, trip counter, and one
    /// structured stderr line (the `--slow-log` format family) so
    /// operators see degradation without scraping metrics.
    fn breaker_transition(&self, t: Transition) {
        self.breaker_state.set(t.to.as_gauge() as u64);
        if t.to == BreakerState::Open {
            self.breaker_trips.inc();
        }
        eprintln!(
            "store: breaker-transition from={} to={} consecutive_failures={} mode={}",
            t.from,
            t.to,
            t.consecutive_failures,
            if t.to == BreakerState::Open {
                "memory-only"
            } else {
                "persistent"
            }
        );
    }
}

impl std::fmt::Debug for PersistentTier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PersistentTier")
            .field("stats", &self.stats())
            .finish()
    }
}

impl PersistentTier {
    /// Wraps `store`, spawning the writer thread. `queue_bound` is the
    /// maximum number of in-flight appends before backpressure drops new
    /// ones. Instruments land on a fresh private [`Registry`]; use
    /// [`PersistentTier::new_in`] to share one.
    pub fn new(store: Arc<Store>, queue_bound: usize) -> Arc<PersistentTier> {
        Self::new_in(store, queue_bound, &Registry::new())
    }

    /// Like [`PersistentTier::new`], but registers the tier's counters and
    /// phase histograms on `registry`.
    pub fn new_in(
        store: Arc<Store>,
        queue_bound: usize,
        registry: &Registry,
    ) -> Arc<PersistentTier> {
        let (tx, rx) = sync_channel::<WriterMsg>(queue_bound.max(1));
        let ins = TierInstruments::registered(registry);
        let breaker = Arc::new(CircuitBreaker::new(
            store.config().breaker_threshold,
            store.config().breaker_cooldown,
        ));
        let replication: Arc<RwLock<Option<Arc<dyn ReplicationSink>>>> =
            Arc::new(RwLock::new(None));
        let writer = {
            let store = Arc::clone(&store);
            let ins = ins.clone();
            let breaker = Arc::clone(&breaker);
            let replication = Arc::clone(&replication);
            std::thread::Builder::new()
                .name("store-writer".into())
                .spawn(move || {
                    for msg in rx {
                        match msg {
                            WriterMsg::Put(key, report) => {
                                let ok = {
                                    let _span = observed_span("tier_append", &ins.phase_append);
                                    store.put(key, (*report).clone()).is_ok()
                                };
                                if ok {
                                    ins.written.inc();
                                    // Tee to the replica only what
                                    // actually reached the local log.
                                    let sink = replication.read().unwrap().clone();
                                    if let Some(sink) = sink {
                                        sink.record(&key, &report);
                                    }
                                } else {
                                    ins.failed.inc();
                                }
                                // The append outcome drives the breaker:
                                // the threshold-th consecutive failure
                                // trips it, a successful half-open probe
                                // closes it again.
                                if let Some(t) = breaker.record(ok) {
                                    ins.breaker_transition(t);
                                }
                            }
                            WriterMsg::Flush(ack) => {
                                let sink = replication.read().unwrap().clone();
                                if let Some(sink) = sink {
                                    sink.barrier();
                                }
                                let _ = ack.send(());
                            }
                        }
                    }
                })
                .expect("spawn store writer thread")
        };
        Arc::new(PersistentTier {
            store,
            sender: Mutex::new(Some(tx)),
            writer: Mutex::new(Some(writer)),
            breaker,
            replication,
            ins,
        })
    }

    /// Installs a [`ReplicationSink`] teeing every successful append (and
    /// each flush barrier) to a replica. Replaces any previous sink.
    pub fn set_replication_sink(&self, sink: Arc<dyn ReplicationSink>) {
        *self.replication.write().unwrap() = Some(sink);
    }

    /// The underlying store.
    pub fn store_handle(&self) -> &Arc<Store> {
        &self.store
    }

    /// Tier counters.
    pub fn stats(&self) -> TierStats {
        TierStats {
            queued_appends: self.ins.queued.get(),
            dropped_appends: self.ins.dropped.get(),
            written_appends: self.ins.written.get(),
            failed_appends: self.ins.failed.get(),
            breaker_dropped_appends: self.ins.breaker_dropped.get(),
            breaker_trips: self.breaker.trips(),
        }
    }

    /// Current state of the write-path circuit breaker.
    pub fn breaker_state(&self) -> BreakerState {
        self.breaker.state()
    }

    /// Store counters, for convenience.
    pub fn store_stats(&self) -> StoreStats {
        self.store.stats()
    }

    /// Blocks until every append queued so far has reached the store (or
    /// the writer is gone). Uses a flush barrier message, so it *does*
    /// wait on the queue if it is full.
    pub fn flush(&self) {
        let sender = self.sender.lock().unwrap().clone();
        if let Some(tx) = sender {
            let (ack_tx, ack_rx) = sync_channel::<()>(1);
            if tx.send(WriterMsg::Flush(ack_tx)).is_ok() {
                let _ = ack_rx.recv();
            }
        }
    }

    /// Flushes, stops the writer thread, and joins it. Idempotent; called
    /// by `Drop` as well.
    pub fn shutdown(&self) {
        // Dropping the sender ends the writer's receive loop after it
        // drains everything already queued.
        self.sender.lock().unwrap().take();
        if let Some(handle) = self.writer.lock().unwrap().take() {
            let _ = handle.join();
        }
    }
}

impl Drop for PersistentTier {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl SecondTier for PersistentTier {
    fn load(&self, key: &CacheKey) -> Option<Arc<AnalysisReport>> {
        let _span = observed_span("tier_load", &self.ins.phase_load);
        self.store.get(key).map(Arc::new)
    }

    fn store(&self, key: &CacheKey, report: &Arc<AnalysisReport>) {
        // Breaker front door. While open this is the entire cost of a
        // "write": one local check, no enqueue, no syscall. When the
        // cooldown has elapsed, this very call is admitted as the
        // half-open probe and flows through the writer like any append.
        let (admitted, transition) = self.breaker.try_acquire();
        if let Some(t) = transition {
            self.ins.breaker_transition(t);
        }
        if !admitted {
            self.ins.breaker_dropped.inc();
            return;
        }
        let was_probe = transition.is_some();
        let sender = self.sender.lock().unwrap().clone();
        let Some(tx) = sender else {
            self.ins.dropped.inc();
            return;
        };
        match tx.try_send(WriterMsg::Put(*key, Arc::clone(report))) {
            Ok(()) => {
                self.ins.queued.inc();
            }
            Err(TrySendError::Full(_)) | Err(TrySendError::Disconnected(_)) => {
                self.ins.dropped.inc();
                if was_probe {
                    // The probe never reached the writer, so no outcome
                    // will ever be recorded for it; fail it here or the
                    // breaker would wedge half-open forever.
                    if let Some(t) = self.breaker.record(false) {
                        self.ins.breaker_transition(t);
                    }
                }
            }
        }
    }
}
