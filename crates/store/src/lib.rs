//! # arrayflow-store
//!
//! Crash-safe, disk-backed persistence for analysis reports — the second
//! tier under the engine's [`MemoCache`](arrayflow_engine::MemoCache).
//! Zero external dependencies, like the rest of the workspace: the
//! binary codec, CRC-32, and segment log are all in-crate.
//!
//! ## Layers
//!
//! * [`codec`] — compact varint binary encoding of [`CacheKey`] and
//!   [`AnalysisReport`], byte-exact on round trip and defensive on
//!   decode (bounds-checked reader, never panics on hostile bytes).
//! * [`segment`] — the on-disk format: `seg-NNNNNNNN.log` files with a
//!   magic/version header and CRC-framed records, plus the recovery
//!   scanner that skips-and-counts corruption instead of failing.
//! * [`Store`] — the store proper: append-only writes with size-capped
//!   segment rotation, an in-memory key→location index rebuilt on open,
//!   re-validated reads, and a compaction pass that rewrites live
//!   records into fresh segments.
//! * [`PersistentTier`] — the [`SecondTier`](arrayflow_engine::SecondTier)
//!   implementation: synchronous loads, asynchronous appends through a
//!   bounded writer-thread channel (backpressure drops are counted,
//!   analysis never blocks on disk), and a write-path circuit breaker
//!   that degrades the cache to memory-only while the disk is failing
//!   (see [`arrayflow_resilience::CircuitBreaker`]).
//!
//! ## Example
//!
//! ```
//! use arrayflow_store::{Store, StoreConfig};
//! # let dir = std::env::temp_dir().join(format!("afstore-doc-{}", std::process::id()));
//! let store = Store::open(StoreConfig::at(&dir)).unwrap();
//! assert!(store.is_empty());
//! # drop(store);
//! # let _ = std::fs::remove_dir_all(&dir);
//! ```
//!
//! [`CacheKey`]: arrayflow_engine::CacheKey
//! [`AnalysisReport`]: arrayflow_engine::AnalysisReport

pub mod codec;
pub mod crc;
pub mod segment;
mod store;
mod tier;

pub use codec::{decode_record, encode_record, DecodeError, Record};
pub use crc::crc32;
pub use segment::{ScanStats, ScannedRecord};
pub use store::{CompactionReport, RecoveryReport, SharedStore, Store, StoreConfig, StoreStats};
pub use tier::{PersistentTier, ReplicationSink, TierStats};
