//! Crash-recovery tests for the persistent report store.
//!
//! Each test builds a real store on disk, then damages it the way a
//! crash, a bad disk, or an operator would — truncating a segment
//! mid-record, flipping bytes in record bodies and CRC fields, deleting a
//! whole segment file — and asserts recovery's exact skip accounting,
//! that every undamaged record survives, and that nothing ever panics or
//! surfaces a corrupt report.

use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};

use arrayflow_engine::{AnalysisReport, CacheKey, ProblemSet};
use arrayflow_ir::Fingerprint;
use arrayflow_store::segment::{FRAME_LEN, HEADER_LEN};
use arrayflow_store::{decode_record, Store, StoreConfig};

static DIR_SEQ: AtomicU32 = AtomicU32::new(0);

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        let n = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!("afcrash-{tag}-{}-{n}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        TempDir(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

fn key(fp: u128) -> CacheKey {
    CacheKey {
        fingerprint: Fingerprint(fp),
        problems: ProblemSet::ALL,
        dep_max_distance: 8,
        custom: None,
    }
}

fn report(fp: u128) -> AnalysisReport {
    AnalysisReport {
        fingerprint: Fingerprint(fp),
        problems: ProblemSet::ALL,
        dep_max_distance: 8,
        nodes: 7,
        sites: 3,
        reaching_stats: None,
        available_stats: None,
        busy_stats: None,
        reaching_refs_stats: None,
        reuses: Vec::new(),
        redundant_stores: Vec::new(),
        dependences: Vec::new(),
        custom: None,
    }
}

/// Writes `n` records into one segment and returns the store directory's
/// single segment path.
fn populate_one_segment(dir: &TempDir, n: u128) -> PathBuf {
    let store = Store::open(StoreConfig::at(&dir.0)).unwrap();
    for i in 0..n {
        store.put(key(i), report(i)).unwrap();
    }
    drop(store);
    let seg = dir.0.join(arrayflow_store::segment::segment_file_name(1));
    assert!(seg.exists(), "expected a single first segment");
    seg
}

#[test]
fn truncate_mid_record_loses_exactly_the_tail() {
    let dir = TempDir::new("truncate");
    let seg = populate_one_segment(&dir, 5);
    // Chop into the middle of the final record.
    let bytes = fs::read(&seg).unwrap();
    fs::write(&seg, &bytes[..bytes.len() - 3]).unwrap();

    let store = Store::open(StoreConfig::at(&dir.0)).unwrap();
    let rec = store.recovery();
    assert_eq!(rec.records_replayed, 4);
    assert_eq!(rec.skipped, 1);
    assert_eq!(rec.bad_segments, 0);
    assert_eq!(rec.live_records, 4);
    for i in 0..4u128 {
        assert_eq!(store.get(&key(i)), Some(report(i)), "key {i}");
    }
    assert_eq!(store.get(&key(4)), None);
}

#[test]
fn truncate_mid_frame_header_loses_exactly_the_tail() {
    let dir = TempDir::new("truncate-frame");
    let seg = populate_one_segment(&dir, 3);
    // Leave only 4 of the final record's 8 frame bytes.
    let bytes = fs::read(&seg).unwrap();
    let record_len = (bytes.len() - HEADER_LEN) / 3;
    let cut = HEADER_LEN + 2 * record_len + FRAME_LEN / 2;
    fs::write(&seg, &bytes[..cut]).unwrap();

    let store = Store::open(StoreConfig::at(&dir.0)).unwrap();
    let rec = store.recovery();
    assert_eq!((rec.records_replayed, rec.skipped), (2, 1));
    assert_eq!(store.len(), 2);
}

#[test]
fn body_byte_flip_skips_one_record_and_resyncs() {
    let dir = TempDir::new("flip-body");
    let seg = populate_one_segment(&dir, 5);
    let mut bytes = fs::read(&seg).unwrap();
    // Third byte of the first record's payload.
    bytes[HEADER_LEN + FRAME_LEN + 2] ^= 0xA5;
    fs::write(&seg, bytes).unwrap();

    let store = Store::open(StoreConfig::at(&dir.0)).unwrap();
    let rec = store.recovery();
    assert_eq!(rec.records_replayed, 4);
    assert_eq!(rec.skipped, 1);
    assert_eq!(store.get(&key(0)), None, "corrupted record must be gone");
    for i in 1..5u128 {
        assert_eq!(store.get(&key(i)), Some(report(i)), "key {i}");
    }
}

#[test]
fn crc_field_byte_flip_skips_one_record_and_resyncs() {
    let dir = TempDir::new("flip-crc");
    let seg = populate_one_segment(&dir, 5);
    let mut bytes = fs::read(&seg).unwrap();
    let record_len = (bytes.len() - HEADER_LEN) / 5;
    // A byte inside the CRC field of the *second* record's frame.
    bytes[HEADER_LEN + record_len + 5] ^= 0xFF;
    fs::write(&seg, bytes).unwrap();

    let store = Store::open(StoreConfig::at(&dir.0)).unwrap();
    let rec = store.recovery();
    assert_eq!(rec.records_replayed, 4);
    assert_eq!(rec.skipped, 1);
    assert_eq!(store.get(&key(1)), None);
    for i in [0u128, 2, 3, 4] {
        assert_eq!(store.get(&key(i)), Some(report(i)), "key {i}");
    }
}

#[test]
fn length_field_corruption_abandons_the_tail_as_one_skip() {
    let dir = TempDir::new("flip-len");
    let seg = populate_one_segment(&dir, 5);
    let mut bytes = fs::read(&seg).unwrap();
    let record_len = (bytes.len() - HEADER_LEN) / 5;
    // Blow up the length field of the third record: the scanner cannot
    // trust anything after it, so records 3..5 are gone but the count is
    // exactly one skip (the untrustworthy tail).
    let pos = HEADER_LEN + 2 * record_len;
    bytes[pos..pos + 4].copy_from_slice(&u32::MAX.to_le_bytes());
    fs::write(&seg, bytes).unwrap();

    let store = Store::open(StoreConfig::at(&dir.0)).unwrap();
    let rec = store.recovery();
    assert_eq!(rec.records_replayed, 2);
    assert_eq!(rec.skipped, 1);
    assert_eq!(store.len(), 2);
}

#[test]
fn corrupted_segment_header_skips_that_segment_only() {
    let dir = TempDir::new("bad-header");
    let mut config = StoreConfig::at(&dir.0);
    config.segment_bytes = 256; // several segments
    {
        let store = Store::open(config.clone()).unwrap();
        for i in 0..12u128 {
            store.put(key(i), report(i)).unwrap();
        }
        assert!(store.stats().segments >= 3, "need multiple segments");
    }
    // Count what segment 2 holds, then corrupt its magic.
    let seg2 = dir.0.join(arrayflow_store::segment::segment_file_name(2));
    let mut in_seg2 = 0u64;
    arrayflow_store::segment::scan_segment_file(&seg2, |_| in_seg2 += 1);
    assert!(in_seg2 > 0);
    let mut bytes = fs::read(&seg2).unwrap();
    bytes[0] ^= 0xFF;
    fs::write(&seg2, bytes).unwrap();

    let store = Store::open(config).unwrap();
    let rec = store.recovery();
    assert_eq!(rec.bad_segments, 1);
    assert_eq!(rec.skipped, 1, "a bad segment is one counted skip");
    assert_eq!(
        rec.records_replayed,
        12 - in_seg2,
        "other segments fully recovered"
    );
    // Everything outside segment 2 is intact and readable.
    let mut present = 0;
    for i in 0..12u128 {
        if let Some(r) = store.get(&key(i)) {
            assert_eq!(r, report(i));
            present += 1;
        }
    }
    assert_eq!(present as u64, rec.records_replayed);
}

#[test]
fn deleted_segment_loses_its_records_and_nothing_else() {
    let dir = TempDir::new("deleted");
    let mut config = StoreConfig::at(&dir.0);
    config.segment_bytes = 256;
    let keys_in_seg2: Vec<u128>;
    {
        let store = Store::open(config.clone()).unwrap();
        for i in 0..12u128 {
            store.put(key(i), report(i)).unwrap();
        }
        assert!(store.stats().segments >= 3);
        drop(store);
        // Find which keys live in segment 2 by scanning it.
        let seg2 = dir.0.join(arrayflow_store::segment::segment_file_name(2));
        let mut ks = Vec::new();
        arrayflow_store::segment::scan_segment_file(&seg2, |r| {
            ks.push(r.record.key().fingerprint.0);
        });
        keys_in_seg2 = ks;
        fs::remove_file(&seg2).unwrap();
    }
    assert!(!keys_in_seg2.is_empty());

    let store = Store::open(config).unwrap();
    let rec = store.recovery();
    assert_eq!(rec.bad_segments, 0, "a missing file is simply not scanned");
    assert_eq!(rec.skipped, 0);
    assert_eq!(rec.records_replayed as usize, 12 - keys_in_seg2.len());
    for i in 0..12u128 {
        if keys_in_seg2.contains(&i) {
            assert_eq!(
                store.get(&key(i)),
                None,
                "key {i} was in the deleted segment"
            );
        } else {
            assert_eq!(store.get(&key(i)), Some(report(i)), "key {i}");
        }
    }
}

#[test]
fn fresh_appends_after_damaged_recovery_work_and_survive() {
    let dir = TempDir::new("append-after");
    let seg = populate_one_segment(&dir, 4);
    let bytes = fs::read(&seg).unwrap();
    fs::write(&seg, &bytes[..bytes.len() - 1]).unwrap(); // torn tail

    let store = Store::open(StoreConfig::at(&dir.0)).unwrap();
    assert_eq!(store.recovery().skipped, 1);
    store.put(key(100), report(100)).unwrap();
    store.put(key(3), report(3)).unwrap(); // re-put the lost key
    drop(store);

    let store = Store::open(StoreConfig::at(&dir.0)).unwrap();
    let rec = store.recovery();
    assert_eq!(rec.skipped, 1, "old damage still counted, nothing new");
    assert_eq!(store.len(), 5);
    assert_eq!(store.get(&key(3)), Some(report(3)));
    assert_eq!(store.get(&key(100)), Some(report(100)));
}

/// SplitMix64, inlined like in `crates/ir/tests/parser_fuzz.rs` — the
/// store sits below the workloads crate in the dependency graph for the
/// purposes of this suite's determinism.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

#[test]
fn codec_never_panics_on_random_bytes() {
    let mut rng = SplitMix64(0x5afe_c0de);
    for _ in 0..4_000 {
        let len = rng.below(300);
        let bytes: Vec<u8> = (0..len).map(|_| rng.next() as u8).collect();
        // Only that it returns, never that it succeeds.
        let _ = decode_record(&bytes);
    }
}

#[test]
fn codec_never_panics_on_mutated_valid_records() {
    use arrayflow_store::encode_record;
    use arrayflow_store::Record;
    let valid = encode_record(&Record::Put {
        key: key(7),
        report: Box::new(report(7)),
    });
    let mut rng = SplitMix64(0x0bad_cafe);
    for _ in 0..4_000 {
        let mut bytes = valid.clone();
        for _ in 0..1 + rng.below(4) {
            let pos = rng.below(bytes.len());
            bytes[pos] ^= (1 << rng.below(8)) as u8;
        }
        if let Ok(rec) = decode_record(&bytes) {
            // A surviving decode must still re-encode canonically.
            let _ = encode_record(&rec);
        }
    }
}

#[test]
fn store_open_never_panics_on_garbage_directory() {
    let dir = TempDir::new("garbage");
    fs::create_dir_all(&dir.0).unwrap();
    let mut rng = SplitMix64(0xd15ea5e);
    for id in 1..=4u64 {
        let len = rng.below(600);
        let bytes: Vec<u8> = (0..len).map(|_| rng.next() as u8).collect();
        fs::write(
            dir.0.join(arrayflow_store::segment::segment_file_name(id)),
            bytes,
        )
        .unwrap();
    }
    // Plus a non-segment file which must simply be ignored.
    fs::write(dir.0.join("notes.txt"), b"hello").unwrap();

    let store = Store::open(StoreConfig::at(&dir.0)).unwrap();
    assert_eq!(store.len(), 0);
    assert_eq!(store.recovery().segments, 4);
    // The store remains usable for fresh appends.
    store.put(key(1), report(1)).unwrap();
    assert_eq!(store.get(&key(1)), Some(report(1)));
}
