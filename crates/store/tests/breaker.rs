//! Write-path circuit breaker: trip on consecutive failed appends,
//! degrade to memory-only, recover through a half-open probe.

use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use arrayflow_engine::{AnalysisReport, CacheKey, ProblemSet, SecondTier};
use arrayflow_ir::Fingerprint;
use arrayflow_resilience::{BreakerState, FaultPlan};
use arrayflow_store::{PersistentTier, Store, StoreConfig};

static DIR_SEQ: AtomicUsize = AtomicUsize::new(0);

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        let n = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!("afbrk-{tag}-{}-{n}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        TempDir(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

fn key(fp: u128) -> CacheKey {
    CacheKey {
        fingerprint: Fingerprint(fp),
        problems: ProblemSet::ALL,
        dep_max_distance: 8,
        custom: None,
    }
}

fn report(fp: u128) -> AnalysisReport {
    AnalysisReport {
        fingerprint: Fingerprint(fp),
        problems: ProblemSet::ALL,
        dep_max_distance: 8,
        nodes: 7,
        sites: 3,
        reaching_stats: None,
        available_stats: None,
        busy_stats: None,
        reaching_refs_stats: None,
        reuses: Vec::new(),
        redundant_stores: Vec::new(),
        dependences: Vec::new(),
        custom: None,
    }
}

fn config(dir: &TempDir, threshold: u32, cooldown: Duration) -> StoreConfig {
    let mut c = StoreConfig::at(&dir.0);
    c.breaker_threshold = threshold;
    c.breaker_cooldown = cooldown;
    c
}

/// Queues one append and waits for the writer to process it.
fn store_and_flush(tier: &PersistentTier, fp: u128) {
    tier.store(&key(fp), &Arc::new(report(fp)));
    tier.flush();
}

#[test]
fn trips_after_threshold_and_degrades_to_memory_only() {
    let dir = TempDir::new("trip");
    let store = Arc::new(Store::open(config(&dir, 3, Duration::from_secs(3600))).unwrap());
    // Every append fails, as if the disk had died.
    store.set_fault_surface(Arc::new(
        FaultPlan::parse("store_io_first=1000000").unwrap(),
    ));
    let tier = PersistentTier::new(Arc::clone(&store), 64);

    for fp in 0..3 {
        store_and_flush(&tier, fp);
        let expected = if fp < 2 {
            BreakerState::Closed
        } else {
            BreakerState::Open
        };
        assert_eq!(tier.breaker_state(), expected, "after failure #{}", fp + 1);
    }
    let s = tier.stats();
    assert_eq!(s.failed_appends, 3);
    assert_eq!(s.breaker_trips, 1);
    assert_eq!(s.breaker_dropped_appends, 0);

    // Open breaker: appends are refused locally, the disk is left alone.
    for fp in 10..20 {
        store_and_flush(&tier, fp);
    }
    let s = tier.stats();
    assert_eq!(s.failed_appends, 3, "no further I/O was attempted");
    assert_eq!(s.breaker_dropped_appends, 10);
    assert_eq!(s.queued_appends, 3, "refused appends never hit the queue");
    assert_eq!(tier.breaker_state(), BreakerState::Open);
}

#[test]
fn half_open_probe_closes_on_success() {
    let dir = TempDir::new("recover");
    // The first two appends fail (tripping the threshold-2 breaker), the
    // disk then "recovers"; cooldown zero admits the probe immediately.
    let store = Arc::new(Store::open(config(&dir, 2, Duration::ZERO)).unwrap());
    store.set_fault_surface(Arc::new(FaultPlan::parse("store_io_first=2").unwrap()));
    let tier = PersistentTier::new(Arc::clone(&store), 64);

    store_and_flush(&tier, 1);
    store_and_flush(&tier, 2);
    assert_eq!(tier.breaker_state(), BreakerState::Open);
    assert_eq!(tier.stats().breaker_trips, 1);

    // The next append is admitted as the half-open probe, succeeds on
    // disk, and closes the breaker.
    store_and_flush(&tier, 3);
    assert_eq!(tier.breaker_state(), BreakerState::Closed);
    assert_eq!(tier.stats().written_appends, 1);

    // Back to normal: writes reach the disk again.
    store_and_flush(&tier, 4);
    assert_eq!(tier.stats().written_appends, 2);
    assert_eq!(store.get(&key(4)).as_ref(), Some(&report(4)));
}

#[test]
fn failed_probe_reopens() {
    let dir = TempDir::new("reopen");
    // Failures: 2 to trip, then the probe (append #3) also fails, then
    // the disk recovers for the second probe.
    let store = Arc::new(Store::open(config(&dir, 2, Duration::ZERO)).unwrap());
    store.set_fault_surface(Arc::new(FaultPlan::parse("store_io_first=3").unwrap()));
    let tier = PersistentTier::new(Arc::clone(&store), 64);

    store_and_flush(&tier, 1);
    store_and_flush(&tier, 2);
    assert_eq!(tier.breaker_state(), BreakerState::Open);

    store_and_flush(&tier, 3); // probe, fails on disk
    assert_eq!(tier.breaker_state(), BreakerState::Open);
    assert_eq!(tier.stats().breaker_trips, 2);

    store_and_flush(&tier, 4); // second probe, disk is back
    assert_eq!(tier.breaker_state(), BreakerState::Closed);
    assert_eq!(tier.stats().failed_appends, 3);
    assert_eq!(tier.stats().written_appends, 1);
}

#[test]
fn reads_keep_working_while_writes_are_broken() {
    let dir = TempDir::new("reads");
    let store = Arc::new(Store::open(config(&dir, 1, Duration::from_secs(3600))).unwrap());
    let tier = PersistentTier::new(Arc::clone(&store), 64);

    // One good write before the disk dies.
    store_and_flush(&tier, 7);
    assert_eq!(tier.stats().written_appends, 1);

    store.set_fault_surface(Arc::new(
        FaultPlan::parse("store_io_first=1000000").unwrap(),
    ));
    store_and_flush(&tier, 8); // fails, trips the threshold-1 breaker
    assert_eq!(tier.breaker_state(), BreakerState::Open);

    // Loads are never gated by the write-path breaker.
    assert_eq!(tier.load(&key(7)).as_deref(), Some(&report(7)));
    assert_eq!(tier.load(&key(8)), None);
}
