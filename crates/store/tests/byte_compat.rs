//! Byte-compatibility: the codec now lives in `arrayflow-wire`, and the
//! bytes must not have moved.
//!
//! `GOLDEN_SEGMENT_HEX` was captured from the **pre-extraction** codec
//! (the PR 3 implementation that lived inside this crate): one segment
//! holding a `Put` and a `Tombstone` for a fixed report/key. The
//! refactored codec must (a) reproduce these bytes exactly — so every
//! existing `seg-*.log` on disk was written in today's format — and
//! (b) decode them back to the original values — so existing segments
//! still recover.

use arrayflow_analyses::{Dep, DepKind, RedundantStore, Reuse};
use arrayflow_core::RefId;
use arrayflow_engine::{AnalysisReport, CacheKey, InstanceStats, ProblemSet};
use arrayflow_ir::stmt::StmtId;
use arrayflow_ir::Fingerprint;
use arrayflow_store::codec::{encode_record, Record};
use arrayflow_store::segment::{frame_record, header_bytes, scan_segment_bytes};

/// Captured from the pre-refactor codec; regenerating it with today's
/// code must be a no-op.
const GOLDEN_SEGMENT_HEX: &str = "414653544f5230310100000044000000d12c50f2017766554433221100efcdab89674523010f087766554433221100efcdab89674523010f080703010715030201070e020100000101000002010102010501000100010200130000004374a8e9027766554433221100efcdab89674523010f08";

fn golden_report() -> AnalysisReport {
    AnalysisReport {
        fingerprint: Fingerprint(0x0123_4567_89ab_cdef_0011_2233_4455_6677),
        problems: ProblemSet::ALL,
        dep_max_distance: 8,
        nodes: 7,
        sites: 3,
        reaching_stats: Some(InstanceStats {
            init_visits: 7,
            iter_visits: 21,
            passes: 3,
            changing_passes: 2,
        }),
        available_stats: Some(InstanceStats {
            init_visits: 7,
            iter_visits: 14,
            passes: 2,
            changing_passes: 1,
        }),
        busy_stats: None,
        reaching_refs_stats: None,
        reuses: vec![Reuse {
            use_site: 1,
            gen: RefId(0),
            gen_site: 0,
            distance: 2,
            gen_is_def: true,
        }],
        redundant_stores: vec![RedundantStore {
            store_site: 2,
            stmt: Some(StmtId(5)),
            distance: 1,
            killer_site: 0,
        }],
        dependences: vec![Dep {
            src_site: 0,
            dst_site: 1,
            distance: 2,
            kind: DepKind::Flow,
        }],
        custom: None,
    }
}

fn golden_key() -> CacheKey {
    CacheKey {
        fingerprint: Fingerprint(0x0123_4567_89ab_cdef_0011_2233_4455_6677),
        problems: ProblemSet::ALL,
        dep_max_distance: 8,
        custom: None,
    }
}

fn golden_segment() -> Vec<u8> {
    let mut seg = Vec::new();
    seg.extend_from_slice(&header_bytes());
    seg.extend_from_slice(&frame_record(&encode_record(&Record::Put {
        key: golden_key(),
        report: Box::new(golden_report()),
    })));
    seg.extend_from_slice(&frame_record(&encode_record(&Record::Tombstone {
        key: golden_key(),
    })));
    seg
}

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

fn unhex(s: &str) -> Vec<u8> {
    (0..s.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
        .collect()
}

#[test]
fn refactored_codec_reproduces_pre_extraction_bytes() {
    assert_eq!(
        hex(&golden_segment()),
        GOLDEN_SEGMENT_HEX,
        "shared-codec extraction changed the segment encoding"
    );
}

#[test]
fn pre_extraction_segments_still_decode() {
    let seg = unhex(GOLDEN_SEGMENT_HEX);
    let mut records = Vec::new();
    let stats = scan_segment_bytes(&seg, |r| records.push(r.record));
    assert!(!stats.bad_header);
    assert_eq!(stats.records, 2);
    assert_eq!(stats.skipped, 0);
    assert_eq!(
        records[0],
        Record::Put {
            key: golden_key(),
            report: Box::new(golden_report()),
        }
    );
    assert_eq!(records[1], Record::Tombstone { key: golden_key() });
}

#[test]
fn wire_and_store_share_one_crc() {
    // The store's crc path is a re-export of the wire implementation:
    // same function, same table, same checksums.
    let payload = b"segment payload bytes";
    assert_eq!(
        arrayflow_store::crc32(payload),
        arrayflow_wire::crc32(payload)
    );
}
