//! Livermore-loops-inspired kernels, adapted to the integer loop DSL.
//!
//! These mirror the shapes of the classic Livermore Fortran kernels the
//! 1990s register-allocation literature (including the paper's scalar
//! replacement baseline, Callahan/Carr/Kennedy '90) evaluated on: stencil
//! reuse, first-order recurrences, reductions, banded matrix access and
//! conditional state updates. Floating-point operations become integer
//! ones; the reference patterns — which is all the analyses care about —
//! are preserved.

use arrayflow_ir::{parse_program, Program};

fn parsed(src: &str) -> Program {
    parse_program(src).expect("kernel sources are well-formed")
}

/// LL1 — hydro fragment: `X[k] = q + Y[k]·(r·Z[k+10] + t·Z[k+11])`.
pub fn hydro(ub: i64) -> Program {
    parsed(&format!(
        "do k = 1, {ub}
           X[k] := q + Y[k] * (r * Z[k+10] + t * Z[k+11]);
         end"
    ))
}

/// LL3 — inner product reduction.
pub fn inner_product(ub: i64) -> Program {
    parsed(&format!(
        "do k = 1, {ub}
           q := q + Z[k] * X[k];
         end"
    ))
}

/// LL5 — tri-diagonal elimination (first-order recurrence with reuse of
/// the just-computed element).
pub fn tridiag(ub: i64) -> Program {
    parsed(&format!(
        "do k = 2, {ub}
           X[k] := Z[k] * (Y[k] - X[k-1]);
         end"
    ))
}

/// LL11 — first sum (prefix sum): `X[k] = X[k−1] + Y[k]`.
pub fn first_sum(ub: i64) -> Program {
    parsed(&format!(
        "do k = 2, {ub}
           X[k] := X[k-1] + Y[k];
         end"
    ))
}

/// LL7 — equation-of-state fragment: wide expression with overlapping
/// stencil reads of `U`.
pub fn state_eos(ub: i64) -> Program {
    parsed(&format!(
        "do k = 1, {ub}
           X[k] := U[k] + r * (Z[k] + r * Y[k])
                   + t * (U[k+3] + r * (U[k+2] + r * U[k+1]));
         end"
    ))
}

/// LL12 — first difference: `X[k] = Y[k+1] − Y[k]`.
pub fn first_diff(ub: i64) -> Program {
    parsed(&format!(
        "do k = 1, {ub}
           X[k] := Y[k+1] - Y[k];
         end"
    ))
}

/// Banded linear equations flavor: fixed off-diagonal band accesses.
pub fn banded(ub: i64) -> Program {
    parsed(&format!(
        "do i = 1, {ub}
           X[i+4] := X[i+4] - G[i] * X[i] - G[i+1] * X[i+1];
         end"
    ))
}

/// LL16-ish — Monte-Carlo-style conditional search step (heavy control
/// flow: the flow-sensitive analyses earn their keep here).
pub fn conditional_update(ub: i64) -> Program {
    parsed(&format!(
        "do k = 1, {ub}
           t := P[k] + P[k+1];
           if t > 100 then
             P[k+1] := t / 2;
           else
             P[k+1] := P[k] + 1;
           end
           S[k] := P[k+1];
         end"
    ))
}

/// The whole suite with short tags.
pub fn livermore_kernels(ub: i64) -> Vec<(&'static str, Program)> {
    vec![
        ("ll1_hydro", hydro(ub)),
        ("ll3_inner_product", inner_product(ub)),
        ("ll5_tridiag", tridiag(ub)),
        ("ll7_state_eos", state_eos(ub)),
        ("ll11_first_sum", first_sum(ub)),
        ("ll12_first_diff", first_diff(ub)),
        ("banded", banded(ub)),
        ("ll16_conditional", conditional_update(ub)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernels_parse_and_run() {
        for (name, p) in livermore_kernels(64) {
            let env = arrayflow_ir::interp::run_with(&p, |e| {
                for a in p.symbols.array_ids() {
                    for k in -16..160 {
                        e.set_elem(a, vec![k], (k % 7) + 1);
                    }
                }
                for v in p.symbols.var_ids() {
                    e.set_scalar(v, 2);
                }
            })
            .unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(env.stats.iterations >= 60, "{name}");
        }
    }

    #[test]
    fn recurrences_are_where_expected() {
        // tridiag and first_sum carry distance-1 flow recurrences after
        // normalization; first_diff carries none.
        for (name, p, expect) in [
            ("ll5", tridiag(64), true),
            ("ll11", first_sum(64), true),
            ("ll12", first_diff(64), false),
        ] {
            let mut p = p;
            arrayflow_ir::normalize(&mut p);
            let a = arrayflow_analyses::analyze_loop(&p).unwrap_or_else(|e| panic!("{name}: {e}"));
            let has = a
                .reuse_pairs()
                .iter()
                .any(|r| r.gen_is_def && r.distance == 1);
            assert_eq!(has, expect, "{name}: {:?}", a.reuse_pairs());
        }
    }
}
