//! Named loops: the paper's figures plus classic scientific kernels.

use arrayflow_ir::{parse_program, Program};

fn parsed(src: &str) -> Program {
    parse_program(src).expect("kernel sources are well-formed")
}

/// The running example of Fig. 1 / Fig. 3 / Table 1.
pub fn fig1(ub: Option<i64>) -> Program {
    let ub = ub.map_or("UB".to_string(), |u| u.to_string());
    parsed(&format!(
        "do i = 1, {ub}
           C[i+2] := C[i] * 2;
           B[2*i] := C[i] + x;
           if C[i] == 0 then C[i] := B[i-1]; end
           B[i] := C[i+1];
         end"
    ))
}

/// The Fig. 4 loop nest (multi-dimensional recurrences).
pub fn fig4() -> Program {
    parsed(
        "do j = 1, UB2
           do i = 1, UB1
             X[i+1, j] := X[i, j];
             Y[i, j+1] := Y[i, j-1];
             Z[i+1, j] := Z[i, j-1];
           end
         end",
    )
}

/// The Fig. 5 register pipelining example: `A[i+2] := A[i] + x`.
pub fn fig5(ub: i64) -> Program {
    parsed(&format!("do i = 1, {ub} A[i+2] := A[i] + x; end"))
}

/// The Fig. 6 redundant-store example.
pub fn fig6(ub: i64) -> Program {
    parsed(&format!(
        "do i = 1, {ub}
           A[i] := x;
           if c > 0 then A[i+1] := y; end
         end"
    ))
}

/// The Fig. 7 redundant-load example.
pub fn fig7(ub: i64) -> Program {
    parsed(&format!(
        "do i = 1, {ub}
           if c > 0 then s := A[i] + s; end
           A[i+1] := s * 2;
         end"
    ))
}

/// First-order recurrence (fully serial): `A[i+1] := A[i]·q + r`.
pub fn recurrence(ub: i64) -> Program {
    parsed(&format!("do i = 1, {ub} A[i+1] := A[i] * q + r; end"))
}

/// Three-point smoothing stencil with reuse at distances 1 and 2.
pub fn smooth3(ub: i64) -> Program {
    parsed(&format!(
        "do i = 1, {ub}
           B[i] := A[i] + A[i+1] + A[i+2];
           A[i+2] := B[i] / 3;
         end"
    ))
}

/// Dot-product-ish reduction: loads from two streams, no reuse.
pub fn dot(ub: i64) -> Program {
    parsed(&format!("do i = 1, {ub} s := s + A[i] * B[i]; end"))
}

/// Wavefront with a conditional clipping step (flow-sensitivity matters).
pub fn clipped_wavefront(ub: i64) -> Program {
    parsed(&format!(
        "do i = 1, {ub}
           A[i+1] := A[i] + B[i];
           if A[i+1] > 100 then A[i+1] := 100; end
           C[i] := A[i+1];
         end"
    ))
}

/// Sum of prefix pairs — a distance-`d` stencil with no kills on B.
pub fn pair_sum(ub: i64, d: i64) -> Program {
    parsed(&format!("do i = 1, {ub} B[i+{d}] := B[i] + A[i]; end"))
}

/// Independent map (perfectly parallel, unrolling-friendly).
pub fn map_scale(ub: i64) -> Program {
    parsed(&format!("do i = 1, {ub} A[i] := B[i] * k + c; end"))
}

/// Every named kernel with a short tag, for table drivers.
pub fn all_kernels(ub: i64) -> Vec<(&'static str, Program)> {
    vec![
        ("fig1", fig1(Some(ub))),
        ("fig5", fig5(ub)),
        ("fig6", fig6(ub)),
        ("fig7", fig7(ub)),
        ("recurrence", recurrence(ub)),
        ("smooth3", smooth3(ub)),
        ("dot", dot(ub)),
        ("clipped_wavefront", clipped_wavefront(ub)),
        ("pair_sum_d4", pair_sum(ub, 4)),
        ("map_scale", map_scale(ub)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_kernels_parse_and_run() {
        for (name, p) in all_kernels(32) {
            let env = arrayflow_ir::interp::run_with(&p, |e| {
                for a in p.symbols.array_ids() {
                    for k in -8..80 {
                        e.set_elem(a, vec![k], k + 1);
                    }
                }
                for v in p.symbols.var_ids() {
                    e.set_scalar(v, 2);
                }
            })
            .unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(env.stats.iterations >= 32, "{name}");
        }
    }

    #[test]
    fn fig4_is_a_nest() {
        let p = fig4();
        let outer = p.sole_loop().unwrap();
        assert!(matches!(outer.body[0], arrayflow_ir::Stmt::Do(_)));
    }
}
