//! Deterministic random structured loops.
//!
//! Used by property tests (e.g. "the bounded three-pass solver equals the
//! run-to-fixpoint solver on every structured loop"), by the scaling
//! benches and by the batch engine's workload streams. Generation is
//! seeded through the in-crate [`Prng`] so every run on every machine sees
//! the same programs with no external dependencies.

use arrayflow_ir::{Expr, LoopBuilder, Program, RelOp};

use crate::prng::Prng;

/// Shape parameters for the generator.
#[derive(Debug, Clone, Copy)]
pub struct LoopShape {
    /// Assignments to generate.
    pub stmts: usize,
    /// Distinct arrays to draw references from.
    pub arrays: usize,
    /// Probability (percent) that a statement is wrapped in a conditional.
    pub cond_pct: u32,
    /// Subscript offsets are drawn from `[-max_offset, max_offset]`.
    pub max_offset: i64,
    /// Subscript coefficients are drawn from `[1, max_coef]` (occasionally
    /// negated).
    pub max_coef: i64,
    /// Loop trip count.
    pub ub: i64,
}

impl Default for LoopShape {
    fn default() -> Self {
        Self {
            stmts: 8,
            arrays: 3,
            cond_pct: 25,
            max_offset: 4,
            max_coef: 2,
            ub: 100,
        }
    }
}

/// Generates one random structured loop.
pub fn random_loop(shape: &LoopShape, seed: u64) -> Program {
    let mut rng = Prng::seed_from_u64(seed);
    let mut b = LoopBuilder::new("i", shape.ub);

    let array_name = |k: usize| format!("A{k}");

    let gen_ref = |b: &mut LoopBuilder, rng: &mut Prng| {
        let arr = array_name(rng.below_usize(shape.arrays));
        let coef = if rng.ratio(1, 8) {
            0
        } else {
            let c = rng.range_i64(1, shape.max_coef);
            if rng.ratio(1, 10) {
                -c
            } else {
                c
            }
        };
        let off = rng.range_i64(-shape.max_offset, shape.max_offset);
        b.array_ref(&arr, coef, off)
    };

    for _ in 0..shape.stmts {
        let conditional = rng.percent(shape.cond_pct);
        if conditional {
            let guard = gen_ref(&mut b, &mut rng);
            let rel = match rng.below(3) {
                0 => RelOp::Gt,
                1 => RelOp::Eq,
                _ => RelOp::Le,
            };
            let threshold = Expr::Const(rng.range_i64(-5, 49));
            b.begin_if(guard.into(), rel, threshold);
        }
        let lhs = gen_ref(&mut b, &mut rng);
        let u1 = gen_ref(&mut b, &mut rng);
        let rhs = if rng.ratio(1, 2) {
            let u2 = gen_ref(&mut b, &mut rng);
            b.add(u1.into(), u2.into())
        } else {
            let k = Expr::Const(rng.range_i64(1, 4));
            b.add(u1.into(), k)
        };
        b.assign_elem(lhs, rhs);
        if conditional {
            if rng.ratio(3, 10) {
                b.begin_else();
                let lhs = gen_ref(&mut b, &mut rng);
                let u = gen_ref(&mut b, &mut rng);
                b.assign_elem(lhs, u.into());
            }
            b.end_if();
        }
    }
    b.finish()
}

/// A batch of seeded random loops.
pub fn random_loops(shape: &LoopShape, count: usize, base_seed: u64) -> Vec<Program> {
    (0..count)
        .map(|k| random_loop(shape, base_seed.wrapping_add(k as u64)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let shape = LoopShape::default();
        let a = random_loop(&shape, 7);
        let b = random_loop(&shape, 7);
        assert_eq!(
            arrayflow_ir::pretty::print_program(&a),
            arrayflow_ir::pretty::print_program(&b)
        );
        let c = random_loop(&shape, 8);
        assert_ne!(
            arrayflow_ir::pretty::print_program(&a),
            arrayflow_ir::pretty::print_program(&c)
        );
    }

    #[test]
    fn generated_loops_run() {
        for seed in 0..20 {
            let p = random_loop(&LoopShape::default(), seed);
            arrayflow_ir::interp::run_with(&p, |e| {
                for a in p.symbols.array_ids() {
                    for k in -40..300 {
                        e.set_elem(a, vec![k], (k % 9) - 3);
                    }
                }
            })
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn shapes_scale() {
        let p = random_loop(
            &LoopShape {
                stmts: 50,
                arrays: 6,
                ..LoopShape::default()
            },
            1,
        );
        let counts = arrayflow_ir::visit::count_stmts(&p.sole_loop().unwrap().body);
        assert!(counts.assigns >= 50);
    }
}
