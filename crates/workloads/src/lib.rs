#![warn(missing_docs)]
//! Workload generation: the paper's figure loops, classic scientific
//! kernels, and seeded random structured loops for property testing and
//! benchmarking.

pub mod edits;
pub mod kernels;
pub mod livermore;
pub mod prng;
pub mod random;

pub use edits::{assign_ids, random_edit, random_edits};
pub use kernels::{
    all_kernels, clipped_wavefront, dot, fig1, fig4, fig5, fig6, fig7, map_scale, pair_sum,
    recurrence, smooth3,
};
pub use livermore::livermore_kernels;
pub use prng::Prng;
pub use random::{random_loop, random_loops, LoopShape};
