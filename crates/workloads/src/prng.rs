//! A small, deterministic, in-crate pseudo-random number generator.
//!
//! The workload generators must produce the *same* programs for the same
//! seed on every platform and every build, with no external dependencies
//! (the workspace builds offline). This module implements the standard
//! xoshiro256** generator seeded through SplitMix64 — the construction
//! recommended by Blackman & Vigna — in ~60 lines, which is all the
//! randomness quality a structural loop generator needs. It is **not**
//! cryptographic.

/// SplitMix64 step: used to expand a 64-bit seed into xoshiro state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Deterministic xoshiro256** generator.
///
/// Identical seeds yield identical streams on every platform; the stream is
/// part of the repo's test contract (golden workloads), so changing the
/// algorithm is a breaking change for seeded tests.
#[derive(Debug, Clone)]
pub struct Prng {
    s: [u64; 4],
}

impl Prng {
    /// Creates a generator from a 64-bit seed (SplitMix64-expanded).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Self { s }
    }

    /// Next raw 64-bit output (xoshiro256**).
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `u64` in `[0, bound)`. `bound` must be nonzero.
    ///
    /// Uses multiply-shift reduction (Lemire) without rejection; the bias is
    /// at most `bound / 2⁶⁴`, irrelevant for workload shaping and — unlike
    /// rejection sampling — a fixed number of `next_u64` calls per draw,
    /// which keeps seeded streams easy to reason about.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "Prng::below(0)");
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform `i64` in the inclusive range `[lo, hi]`.
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        debug_assert!(lo <= hi, "empty range {lo}..={hi}");
        let span = (hi as i128 - lo as i128 + 1) as u64;
        lo.wrapping_add(self.below(span) as i64)
    }

    /// Uniform `usize` in the half-open range `[0, bound)`.
    pub fn below_usize(&mut self, bound: usize) -> usize {
        self.below(bound as u64) as usize
    }

    /// True with probability `num / den`.
    pub fn ratio(&mut self, num: u64, den: u64) -> bool {
        debug_assert!(num <= den && den > 0);
        self.below(den) < num
    }

    /// True with probability `percent / 100`.
    pub fn percent(&mut self, percent: u32) -> bool {
        self.below(100) < percent as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Prng::seed_from_u64(42);
        let mut b = Prng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Prng::seed_from_u64(1);
        let mut b = Prng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn golden_first_outputs() {
        // Pin the stream: seeded tests and cached workloads depend on it.
        let mut r = Prng::seed_from_u64(0);
        let first: Vec<u64> = (0..4).map(|_| r.next_u64()).collect();
        let mut r2 = Prng::seed_from_u64(0);
        assert_eq!(first, (0..4).map(|_| r2.next_u64()).collect::<Vec<_>>());
        // xoshiro256** with an all-SplitMix64(0) state is nonzero and mixes.
        assert!(first.iter().all(|&x| x != 0));
        assert_ne!(first[0], first[1]);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = Prng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = r.range_i64(-4, 4);
            assert!((-4..=4).contains(&x));
            let y = r.below_usize(3);
            assert!(y < 3);
        }
        // Both endpoints of a small range are reachable.
        let mut r = Prng::seed_from_u64(9);
        let draws: Vec<i64> = (0..200).map(|_| r.range_i64(0, 1)).collect();
        assert!(draws.contains(&0) && draws.contains(&1));
    }

    #[test]
    fn ratio_is_roughly_calibrated() {
        let mut r = Prng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| r.ratio(1, 4)).count();
        assert!((2000..3000).contains(&hits), "hits={hits}");
    }
}
