//! Deterministic random single-statement edits.
//!
//! Drives the incremental-analysis property tests and the
//! `incremental_throughput` bench: given a program, produce a seeded stream
//! of [`Edit`]s that replace one assignment with a freshly generated one,
//! rendered as source text exactly as an interactive client would submit it.

use arrayflow_ir::{Edit, Program, Stmt, StmtId};

use crate::prng::Prng;
use crate::random::LoopShape;

/// Statement ids of every assignment in the program, in textual order.
pub fn assign_ids(program: &Program) -> Vec<StmtId> {
    fn walk(block: &[Stmt], out: &mut Vec<StmtId>) {
        for stmt in block {
            match stmt {
                Stmt::Assign(a) => out.push(a.id),
                Stmt::If {
                    then_blk, else_blk, ..
                } => {
                    walk(then_blk, out);
                    walk(else_blk, out);
                }
                Stmt::Do(l) => walk(&l.body, out),
            }
        }
    }
    let mut out = Vec::new();
    walk(&program.body, &mut out);
    out
}

fn subscript(shape: &LoopShape, rng: &mut Prng) -> String {
    let coef = if rng.ratio(1, 8) {
        0
    } else {
        rng.range_i64(1, shape.max_coef)
    };
    let off = rng.range_i64(-shape.max_offset, shape.max_offset);
    match (coef, off) {
        (0, o) => format!("{o}"),
        (1, 0) => "i".to_string(),
        (1, o) if o > 0 => format!("i + {o}"),
        (1, o) => format!("i - {}", -o),
        (c, 0) => format!("{c} * i"),
        (c, o) if o > 0 => format!("{c} * i + {o}"),
        (c, o) => format!("{c} * i - {}", -o),
    }
}

fn array_ref(shape: &LoopShape, rng: &mut Prng) -> String {
    let arr = rng.below_usize(shape.arrays);
    format!("A{arr}[{}]", subscript(shape, rng))
}

/// Generates one random assignment-for-assignment edit against `program`.
///
/// The replacement is always an array-element assignment over the same
/// array pool the [`crate::random_loop`] generator draws from, so chains of
/// edits stay inside the incremental fast path. Returns `None` when the
/// program contains no assignments.
pub fn random_edit(program: &Program, shape: &LoopShape, seed: u64) -> Option<Edit> {
    let ids = assign_ids(program);
    if ids.is_empty() {
        return None;
    }
    let mut rng = Prng::seed_from_u64(seed);
    let stmt = ids[rng.below_usize(ids.len())];
    let lhs = array_ref(shape, &mut rng);
    let rhs = if rng.ratio(1, 2) {
        format!(
            "{} + {}",
            array_ref(shape, &mut rng),
            array_ref(shape, &mut rng)
        )
    } else {
        format!("{} + {}", array_ref(shape, &mut rng), rng.range_i64(1, 4))
    };
    Some(Edit {
        stmt,
        text: format!("{lhs} := {rhs};"),
    })
}

/// A seeded stream of `count` edits, each generated against the program as
/// it would look after the previous edits were applied.
pub fn random_edits(
    program: &Program,
    shape: &LoopShape,
    count: usize,
    base_seed: u64,
) -> Vec<Edit> {
    // Assignment-for-assignment replacement never changes the id set, so
    // the stream can be generated up front from the original program.
    (0..count)
        .filter_map(|k| random_edit(program, shape, base_seed.wrapping_add(k as u64)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random::random_loop;
    use arrayflow_ir::apply_edit;

    #[test]
    fn edits_parse_and_apply() {
        let shape = LoopShape::default();
        for seed in 0..16 {
            let mut p = random_loop(&shape, seed);
            p.renumber();
            for e in random_edits(&p, &shape, 8, seed * 100) {
                apply_edit(&mut p, &e).expect("generated edit must apply");
            }
        }
    }

    #[test]
    fn assign_ids_cover_conditionals() {
        let shape = LoopShape {
            cond_pct: 100,
            ..LoopShape::default()
        };
        let mut p = random_loop(&shape, 7);
        p.renumber();
        assert!(!assign_ids(&p).is_empty());
    }
}
