//! Kill-and-restart round trip against the real `serve` binary.
//!
//! Populates a store through `serve --store DIR`, kills the process
//! without any graceful shutdown (SIGKILL), restarts it over the same
//! directory, and replays the same request stream: every report must come
//! back byte-identical and at least 90% of lookups must be answered warm
//! (from the warm-started cache / disk) rather than re-solved.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::Path;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use arrayflow_service::Json;

struct Serve {
    child: Child,
    addr: SocketAddr,
    warm_loaded: u64,
}

/// Spawns `serve --store dir` on an ephemeral port and parses the
/// listening address (and warm-start count) from its stderr.
fn spawn_serve(dir: &Path) -> Serve {
    let mut child = Command::new(env!("CARGO_BIN_EXE_serve"))
        .args([
            "--listen",
            "127.0.0.1:0",
            "--store",
            dir.to_str().unwrap(),
            "--workers",
            "2",
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn serve binary");
    let stderr = child.stderr.take().expect("piped stderr");
    let mut lines = BufReader::new(stderr).lines();
    let mut addr = None;
    let mut warm_loaded = None;
    for line in &mut lines {
        let line = line.expect("read serve stderr");
        if let Some(rest) = line.strip_prefix("serve: listening on ") {
            addr = Some(rest.trim().parse().expect("listen address"));
        }
        if let Some(rest) = line.strip_prefix("serve: store warm-started ") {
            let count = rest
                .split_whitespace()
                .next()
                .and_then(|n| n.parse().ok())
                .expect("warm-start count");
            warm_loaded = Some(count);
        }
        if addr.is_some() && warm_loaded.is_some() {
            break;
        }
    }
    // Keep draining stderr in the background so the child never blocks on
    // a full pipe.
    std::thread::spawn(move || for _ in lines {});
    Serve {
        child,
        addr: addr.expect("serve printed its address"),
        warm_loaded: warm_loaded.expect("serve printed its warm-start count"),
    }
}

struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect to serve");
        stream.set_nodelay(true).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        Client {
            reader: BufReader::new(stream.try_clone().unwrap()),
            writer: stream,
        }
    }

    fn request(&mut self, line: &str) -> Json {
        self.writer.write_all(line.as_bytes()).unwrap();
        self.writer.write_all(b"\n").unwrap();
        let mut resp = String::new();
        let n = self.reader.read_line(&mut resp).expect("serve response");
        assert!(n > 0, "serve closed the connection");
        Json::parse(resp.trim_end().as_bytes())
            .unwrap_or_else(|e| panic!("bad response {resp:?}: {e}"))
    }
}

/// A stream of structurally distinct single-loop programs.
fn programs() -> Vec<String> {
    (0..30)
        .map(|k| {
            format!(
                "do i = 1, {} A[i+{}] := A[i] + x; B[i] := A[i+{}]; end",
                40 + k,
                1 + (k % 5),
                1 + (k % 5),
            )
        })
        .collect()
}

fn analyze_frame(id: usize, program: &str) -> String {
    format!(r#"{{"id": {id}, "verb": "analyze", "program": "{program}"}}"#)
}

/// The `loops` portion of an analyze response — the reports themselves,
/// excluding the per-request hit/miss stats which legitimately change
/// across a restart.
fn loops_portion(resp: &Json) -> String {
    let result = resp.get("result").expect("ok response");
    result.get("loops").expect("loops array").to_string()
}

fn request_cache_hits(resp: &Json) -> u64 {
    resp.get("result")
        .and_then(|r| r.get("stats"))
        .and_then(|s| s.get("cache_hits"))
        .and_then(Json::as_u64)
        .expect("stats.cache_hits")
}

fn store_counter(client: &mut Client, name: &str) -> u64 {
    let resp = client.request(r#"{"id": 0, "verb": "stats"}"#);
    resp.get("result")
        .and_then(|r| r.get("store"))
        .and_then(|s| s.get(name))
        .and_then(Json::as_u64)
        .unwrap_or_else(|| panic!("stats.store.{name} missing"))
}

#[test]
fn kill_and_restart_round_trip() {
    let dir = std::env::temp_dir().join(format!("afrestart-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let programs = programs();

    // Phase 1: populate through the real server.
    let mut serve = spawn_serve(&dir);
    assert_eq!(serve.warm_loaded, 0, "fresh directory starts cold");
    let mut client = Client::connect(serve.addr);
    let mut first_reports = Vec::new();
    for (i, p) in programs.iter().enumerate() {
        let resp = client.request(&analyze_frame(i, p));
        assert_eq!(
            resp.get("ok").and_then(Json::as_bool),
            Some(true),
            "analyze {i} failed: {resp:?}"
        );
        first_reports.push(loops_portion(&resp));
    }
    // Wait until the async writer has landed every append on disk, then
    // kill the process with no grace whatsoever.
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let appends = store_counter(&mut client, "appends");
        if appends >= programs.len() as u64 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "writer thread did not land {} appends (got {appends})",
            programs.len()
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    drop(client);
    serve.child.kill().expect("SIGKILL serve");
    let _ = serve.child.wait();

    // Phase 2: restart over the same directory and replay the stream.
    let mut serve = spawn_serve(&dir);
    assert_eq!(
        serve.warm_loaded,
        programs.len() as u64,
        "every persisted report warm-starts the cache"
    );
    let mut client = Client::connect(serve.addr);
    let mut warm = 0u64;
    for (i, p) in programs.iter().enumerate() {
        let resp = client.request(&analyze_frame(i, p));
        assert_eq!(
            loops_portion(&resp),
            first_reports[i],
            "report {i} changed across restart"
        );
        warm += request_cache_hits(&resp);
    }
    let total = programs.len() as u64;
    assert!(
        warm * 10 >= total * 9,
        "only {warm}/{total} lookups were answered warm"
    );
    // No re-analysis means no new appends beyond what phase 1 persisted.
    let appends = store_counter(&mut client, "appends");
    assert_eq!(appends, 0, "replay should not append anything new");

    // Graceful shutdown this time.
    let resp = client.request(r#"{"id": 999, "verb": "shutdown"}"#);
    assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(true));
    let status = serve.child.wait().expect("serve exit status");
    assert!(status.success(), "graceful shutdown exits 0: {status:?}");
    let _ = std::fs::remove_dir_all(&dir);
}
