//! Observability integration tests: the metrics registry exported by a
//! running service, the Prometheus/JSON `metrics` verb, and regression
//! coverage for the three accounting bugfixes — oversized frames no
//! longer skew the latency histogram, queue wait is measured and
//! included in request latency, and `serve` reports a store-open failure
//! as a structured one-line error instead of panicking.

use std::process::{Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use arrayflow_obs::{HistogramSnapshot, MetricValue, MetricsSnapshot};
use arrayflow_service::{Json, Service, ServiceConfig};
use arrayflow_store::StoreConfig;

fn counter(snap: &MetricsSnapshot, name: &str) -> u64 {
    match snap.find(name) {
        Some(m) => match &m.value {
            MetricValue::Counter(v) | MetricValue::Gauge(v) => *v,
            other => panic!("{name} is not a counter/gauge: {other:?}"),
        },
        None => panic!("metric {name} not registered"),
    }
}

fn histogram(snap: &MetricsSnapshot, name: &str) -> HistogramSnapshot {
    histogram_with(snap, name, &[])
}

fn histogram_with(
    snap: &MetricsSnapshot,
    name: &str,
    labels: &[(&str, &str)],
) -> HistogramSnapshot {
    match snap.find_with(name, labels) {
        Some(m) => match &m.value {
            MetricValue::Histogram(h) => h.clone(),
            other => panic!("{name}{labels:?} is not a histogram: {other:?}"),
        },
        None => panic!("metric {name}{labels:?} not registered"),
    }
}

fn analyze_frame(id: usize, program: &str) -> String {
    format!(r#"{{"id": {id}, "verb": "analyze", "program": "{program}"}}"#)
}

/// Structurally distinct single-loop programs (cache misses, so the
/// solver actually runs and pass counts land in the histograms).
fn distinct_programs(n: usize) -> Vec<String> {
    (0..n)
        .map(|k| {
            format!(
                "do i = 1, {} A[i+{}] := A[i] + x; B[i] := A[i+{}]; end",
                50 + k,
                1 + (k % 4),
                1 + (k % 4),
            )
        })
        .collect()
}

fn assert_ok(resp: &str) {
    let json = Json::parse(resp.as_bytes()).expect("valid response JSON");
    assert_eq!(
        json.get("ok").and_then(Json::as_bool),
        Some(true),
        "expected ok response, got {resp}"
    );
}

/// Regression (bugfix 1): oversized frames get their own counter and are
/// never timed — the latency histogram and request total only ever see
/// frames that produced a response. Pre-fix, each oversized frame was
/// counted as a protocol error and observed as a zero-microsecond
/// latency, silently dragging the distribution toward zero.
#[test]
fn oversized_frames_never_enter_the_latency_distribution() {
    let service = Service::start(ServiceConfig::default()).unwrap();
    for i in 0..4 {
        let resp = service.handle_frame(format!(r#"{{"id": {i}, "verb": "ping"}}"#).as_bytes());
        assert_ok(&resp.line);
    }
    for _ in 0..7 {
        let line = service.oversized_frame_response();
        assert!(line.contains("protocol"), "oversized reply names its kind");
    }

    let stats = service.stats();
    assert_eq!(stats.oversized_frames, 7);
    assert_eq!(stats.requests, 4, "oversized frames are not requests");
    assert_eq!(stats.protocol_errors, 0, "oversized is its own class");
    assert_eq!(stats.latency.iter().sum::<u64>(), 4);

    let snap = service.registry().snapshot();
    assert_eq!(counter(&snap, "arrayflow_oversized_frames_total"), 7);
    assert_eq!(counter(&snap, "arrayflow_requests_total"), 4);
    let latency = histogram(&snap, "arrayflow_request_latency_us");
    assert_eq!(latency.count, 4, "only timed frames reach the histogram");

    service.shutdown();
    service.join_workers();
}

/// The paper's convergence bound, asserted from exported metrics alone:
/// must-problems (reaching, available, busy) fix within three solver
/// passes and the may-problem (reaching_refs) within two, so the
/// cumulative bucket at the bound swallows the whole distribution.
#[test]
fn solver_pass_bound_is_assertable_from_metrics_alone() {
    let service = Service::start(ServiceConfig::default()).unwrap();
    for (i, p) in distinct_programs(8).iter().enumerate() {
        let resp = service.handle_frame(analyze_frame(i, p).as_bytes());
        assert_ok(&resp.line);
    }

    let snap = service.registry().snapshot();
    for problem in ["reaching", "available", "busy"] {
        let h = histogram_with(&snap, "arrayflow_solver_passes", &[("problem", problem)]);
        assert!(h.count > 0, "{problem} recorded no pass counts");
        assert_eq!(
            h.cumulative_le(3),
            Some(h.count),
            "must-problem {problem} exceeded the 3-pass bound: {h:?}"
        );
    }
    let h = histogram_with(
        &snap,
        "arrayflow_solver_passes",
        &[("problem", "reaching_refs")],
    );
    assert!(h.count > 0, "reaching_refs recorded no pass counts");
    assert_eq!(
        h.cumulative_le(2),
        Some(h.count),
        "may-problem reaching_refs exceeded the 2-pass bound: {h:?}"
    );

    service.shutdown();
    service.join_workers();
}

/// Regression (bugfix 2): time spent queued behind other requests is
/// measured (its own histogram) and included in request latency, which
/// is stamped at frame acceptance rather than at worker pickup.
#[test]
fn queue_wait_is_measured_and_included_in_latency() {
    let service = Service::start(ServiceConfig {
        workers: 1,
        ..ServiceConfig::default()
    })
    .unwrap();
    let programs = distinct_programs(6);
    std::thread::scope(|scope| {
        for (i, p) in programs.iter().enumerate() {
            let service = &service;
            scope.spawn(move || {
                let resp = service.handle_frame(analyze_frame(i, p).as_bytes());
                assert_ok(&resp.line);
            });
        }
    });

    let snap = service.registry().snapshot();
    let wait = histogram(&snap, "arrayflow_queue_wait_us");
    let latency = histogram(&snap, "arrayflow_request_latency_us");
    assert_eq!(wait.count, programs.len() as u64, "one wait per analyze");
    assert_eq!(latency.count, programs.len() as u64);
    assert!(
        latency.sum >= wait.sum,
        "queue wait ({}us) must be contained in latency ({}us)",
        wait.sum,
        latency.sum
    );
    let stats = service.stats();
    assert_eq!(stats.queue_wait.iter().sum::<u64>(), programs.len() as u64);

    service.shutdown();
    service.join_workers();
}

/// N writer threads hammer `handle_frame` with a mixed workload while a
/// reader polls registry snapshots: totals must be monotone across
/// polls, and once quiescent the latency histogram count must equal the
/// request total and the per-outcome response counters must partition it.
#[test]
fn metrics_snapshots_stay_consistent_under_concurrent_load() {
    const WRITERS: usize = 4;
    const FRAMES_EACH: usize = 25;
    let service = Service::start(ServiceConfig {
        workers: 2,
        ..ServiceConfig::default()
    })
    .unwrap();
    let stop = AtomicBool::new(false);
    let polls = AtomicU64::new(0);

    std::thread::scope(|scope| {
        let reader_service = &service;
        let (stop, polls) = (&stop, &polls);
        let reader = scope.spawn(move || {
            let mut last = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let snap = reader_service.registry().snapshot();
                let requests = counter(&snap, "arrayflow_requests_total");
                assert!(requests >= last, "requests_total went backwards");
                last = requests;
                polls.fetch_add(1, Ordering::Relaxed);
                std::thread::yield_now();
            }
        });
        let writers: Vec<_> = (0..WRITERS)
            .map(|w| {
                let service = &service;
                scope.spawn(move || {
                    for i in 0..FRAMES_EACH {
                        let frame = match i % 4 {
                            0 => format!(r#"{{"id": {i}, "verb": "ping"}}"#),
                            1 => analyze_frame(
                                i,
                                &format!("do i = 1, {} A[i+1] := A[i]; end", 10 + w),
                            ),
                            2 => analyze_frame(i, "do this is not a program"),
                            _ => "{\"not\": \"a request\"".to_string(),
                        };
                        let _ = service.handle_frame(frame.as_bytes());
                    }
                })
            })
            .collect();
        for w in writers {
            w.join().unwrap();
        }
        stop.store(true, Ordering::Relaxed);
        reader.join().unwrap();
    });

    assert!(polls.load(Ordering::Relaxed) > 0, "reader never polled");
    let total = (WRITERS * FRAMES_EACH) as u64;
    let snap = service.registry().snapshot();
    assert_eq!(counter(&snap, "arrayflow_requests_total"), total);
    let latency = histogram(&snap, "arrayflow_request_latency_us");
    assert_eq!(latency.count, total, "every request is timed exactly once");
    assert_eq!(
        latency.total(),
        latency.count,
        "buckets partition the count"
    );
    let by_outcome: u64 = [
        "ok",
        "parse",
        "analysis",
        "timeout",
        "overloaded",
        "protocol",
    ]
    .iter()
    .map(|o| {
        snap.find_with("arrayflow_responses_total", &[("outcome", o)])
            .map_or(0, |m| match &m.value {
                MetricValue::Counter(v) => *v,
                other => panic!("responses_total is not a counter: {other:?}"),
            })
    })
    .sum();
    assert_eq!(by_outcome, total, "outcomes partition the request total");

    service.shutdown();
    service.join_workers();
}

/// The `metrics` verb returns every layer's instruments — service,
/// engine, cache, store, tier — as structured JSON plus a Prometheus
/// text exposition.
#[test]
fn metrics_verb_exports_every_layer() {
    let dir = std::env::temp_dir().join(format!("afobs-metrics-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let service = Service::start(ServiceConfig {
        store: Some(StoreConfig::at(&dir)),
        ..ServiceConfig::default()
    })
    .unwrap();
    let resp = service.handle_frame(analyze_frame(0, &distinct_programs(1)[0]).as_bytes());
    assert_ok(&resp.line);

    let resp = service.handle_frame(br#"{"id": 1, "verb": "metrics"}"#);
    let json = Json::parse(resp.line.as_bytes()).expect("metrics response parses");
    assert_eq!(json.get("ok").and_then(Json::as_bool), Some(true));
    let result = json.get("result").expect("result object");
    let metrics = result
        .get("metrics")
        .and_then(Json::as_arr)
        .expect("metrics array");
    let names: Vec<&str> = metrics
        .iter()
        .filter_map(|m| m.get("name").and_then(Json::as_str))
        .collect();
    for expected in [
        "arrayflow_requests_total",            // service
        "arrayflow_request_latency_us",        // service histogram
        "arrayflow_queue_wait_us",             // service histogram
        "arrayflow_oversized_frames_total",    // service counter
        "arrayflow_engine_programs_total",     // engine
        "arrayflow_solver_passes",             // per-problem solver histogram
        "arrayflow_phase_us",                  // per-phase timing histogram
        "arrayflow_cache_hits_total",          // cache
        "arrayflow_store_appends_total",       // store
        "arrayflow_tier_queued_appends_total", // tier
    ] {
        assert!(
            names.contains(&expected),
            "metrics verb is missing {expected}; got {names:?}"
        );
    }
    let prometheus = result
        .get("prometheus")
        .and_then(Json::as_str)
        .expect("prometheus exposition");
    assert!(prometheus.contains("# TYPE arrayflow_request_latency_us histogram"));
    assert!(prometheus.contains("arrayflow_request_latency_us_bucket{le=\"+Inf\"}"));
    assert!(prometheus.contains("# TYPE arrayflow_queue_wait_us histogram"));
    assert!(prometheus.contains("arrayflow_solver_passes_bucket{"));
    assert!(prometheus.contains("arrayflow_oversized_frames_total"));

    service.shutdown();
    service.join_workers();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Regression (bugfix 3): a store directory that cannot be created makes
/// `serve` exit nonzero with a single structured error line — it used to
/// panic through an `.expect()` in `Service::start`.
#[test]
fn serve_store_open_failure_is_structured_and_nonzero() {
    let file = std::env::temp_dir().join(format!("afobs-notadir-{}", std::process::id()));
    std::fs::write(&file, b"occupies the path").unwrap();
    let store = file.join("store"); // parent is a regular file: create fails
    let out = Command::new(env!("CARGO_BIN_EXE_serve"))
        .args(["--store", store.to_str().unwrap()])
        .output()
        .expect("run serve");
    assert!(!out.status.success(), "serve must exit nonzero");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("serve: error: cannot open report store:"),
        "missing structured error line, stderr: {stderr}"
    );
    assert!(!stderr.contains("panicked"), "serve panicked: {stderr}");
    let _ = std::fs::remove_file(&file);
}

/// `--slow-log 0` logs every request to stderr with its trace id and
/// per-phase span breakdown.
#[test]
fn slow_log_zero_emits_span_breakdown_per_request() {
    use std::io::Write;
    let mut child = Command::new(env!("CARGO_BIN_EXE_serve"))
        .args(["--stdio", "--slow-log", "0", "--workers", "1"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn serve --stdio");
    {
        let stdin = child.stdin.as_mut().unwrap();
        writeln!(
            stdin,
            "{}",
            analyze_frame(0, "do i = 1, 20 A[i+1] := A[i]; end")
        )
        .unwrap();
        writeln!(stdin, r#"{{"id": 1, "verb": "shutdown"}}"#).unwrap();
    }
    drop(child.stdin.take());
    let out = child.wait_with_output().expect("serve exit");
    assert!(
        out.status.success(),
        "stdio shutdown exits 0: {:?}",
        out.status
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(stdout.lines().count(), 2, "two responses: {stdout}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    let slow: Vec<&str> = stderr
        .lines()
        .filter(|l| l.starts_with("serve: slow-request trace="))
        .collect();
    assert!(
        slow.len() >= 2,
        "expected a slow-log line per request, stderr: {stderr}"
    );
    let analyze_line = slow
        .iter()
        .find(|l| l.contains("queue_wait="))
        .unwrap_or_else(|| panic!("no analyze slow-log line with spans: {slow:?}"));
    for span in ["decode=", "queue_wait=", "parse=", "solve=", "total_us="] {
        assert!(
            analyze_line.contains(span),
            "slow-log line missing {span}: {analyze_line}"
        );
    }
}

/// Requests through a cloned `Arc<Service>` land on the same registry:
/// instruments are shared, not per-handle.
#[test]
fn registry_is_shared_across_service_handles() {
    let service = Service::start(ServiceConfig::default()).unwrap();
    let clone = Arc::clone(&service);
    let resp = clone.handle_frame(br#"{"id": 0, "verb": "ping"}"#);
    assert_ok(&resp.line);
    let snap = service.registry().snapshot();
    assert_eq!(counter(&snap, "arrayflow_requests_total"), 1);
    service.shutdown();
    service.join_workers();
}
