//! Connection-scaling soak: many concurrent connections against one
//! event loop, every response byte-identical to a sequential replay.
//!
//! The connection count comes from `AF_SOAK_CONNS` (default 256; CI runs
//! 1000). The test adapts to the process fd limit: if connects start
//! failing partway it proceeds with what it got, as long as a sane floor
//! was reached.
#![cfg(unix)]

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::time::Duration;

use arrayflow_service::{Client, ClientConfig, EventServer, ProtoMode, Service, ServiceConfig};
use arrayflow_wire::proto::{AnalyzeRequest, Request as WireRequest};
use arrayflow_wire::{encode_frame, FrameDecoder, FrameEvent};

const SRC: &str = "do i = 1, 60 B[i+1] := B[i] + c; end";
const FLOOR: usize = 64;

fn requests(fp: [u8; 16]) -> Vec<u8> {
    let mut bytes = Vec::new();
    let ping = WireRequest::Ping { id: 1 };
    bytes.extend(encode_frame(ping.tag(), &ping.encode_payload()));
    let probe = WireRequest::Analyze(AnalyzeRequest {
        id: 2,
        fingerprint: Some(fp),
        problems: None,
        distance_bound: None,
        source: None,
    });
    bytes.extend(encode_frame(probe.tag(), &probe.encode_payload()));
    bytes
}

/// Reads exactly `n` response frames and returns their raw bytes.
fn read_frames(stream: &mut TcpStream, n: usize) -> Vec<u8> {
    let mut decoder = FrameDecoder::new(usize::MAX);
    let mut raw = Vec::new();
    let mut frames = 0;
    let mut buf = [0u8; 8192];
    while frames < n {
        let read = stream.read(&mut buf).expect("read response");
        assert!(read > 0, "server closed early");
        raw.extend_from_slice(&buf[..read]);
        decoder.extend(&buf[..read]);
        while let Some(ev) = decoder.next().unwrap() {
            assert!(matches!(ev, FrameEvent::Frame { .. }));
            frames += 1;
        }
    }
    raw
}

#[test]
fn concurrent_connections_match_sequential_replay() {
    let target: usize = std::env::var("AF_SOAK_CONNS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(256);

    let service = Service::start(ServiceConfig::default()).unwrap();
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr: SocketAddr = listener.local_addr().unwrap();
    let server = EventServer::attach(listener, service);
    let handle = std::thread::spawn(move || server.run(ProtoMode::Auto));

    // Warm the cache and learn the canonical fingerprint.
    let mut warm = Client::new(addr.to_string(), ClientConfig::default());
    let full = warm.analyze_binary(SRC).unwrap();
    let fp = full.loops[0].fingerprint;
    let burst = requests(fp);

    // The sequential replay — the byte-level ground truth.
    let expected = {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        stream.write_all(&burst).unwrap();
        read_frames(&mut stream, 2)
    };

    // Open as many concurrent connections as the fd limit allows, up to
    // the target, all held open at once.
    let t0 = std::time::Instant::now();
    let mut conns = Vec::new();
    for i in 0..target {
        // On a single hardware thread a tight connect loop can fill the
        // listen backlog before the event loop is ever scheduled to
        // accept, stalling connects in SYN retransmit; yielding lets the
        // loop drain the queue. Real clients arrive from other machines.
        if i % 64 == 63 {
            std::thread::yield_now();
        }
        match TcpStream::connect(addr) {
            Ok(s) => {
                s.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
                conns.push(s);
            }
            Err(_) => break, // fd limit; soak with what we have
        }
    }
    assert!(
        conns.len() >= FLOOR,
        "only {} connections opened; below the {} floor",
        conns.len(),
        FLOOR
    );
    eprintln!(
        "soak: {} concurrent connections (connect {:.2?})",
        conns.len(),
        t0.elapsed()
    );

    // Everyone writes first (all connections genuinely concurrent),
    // then everyone is read back.
    let t1 = std::time::Instant::now();
    for stream in conns.iter_mut() {
        stream.write_all(&burst).unwrap();
    }
    let t2 = std::time::Instant::now();
    for (i, stream) in conns.iter_mut().enumerate() {
        let got = read_frames(stream, 2);
        assert_eq!(got, expected, "connection {i} diverged from replay");
    }
    eprintln!(
        "soak: write burst {:.2?}, read-back {:.2?}",
        t2 - t1,
        t2.elapsed()
    );

    let mut c = Client::new(addr.to_string(), ClientConfig::default());
    let metrics = c.metrics_prometheus().unwrap();
    let hits: u64 = metrics
        .lines()
        .find_map(|l| l.strip_prefix("arrayflow_fingerprint_fast_hits_total "))
        .and_then(|v| v.trim().parse().ok())
        .expect("fast-hit counter in exposition");
    assert!(
        hits > conns.len() as u64,
        "expected a fast hit per connection, saw {hits}"
    );

    c.shutdown().unwrap();
    handle.join().unwrap().unwrap();
}
