//! Fuzz-style robustness tests for the custom-spec decoders.
//!
//! The `custom` verb walks untrusted bytes into two new decode paths —
//! the JSON `spec` object validator and the binary `0x0B` payload
//! decoder — and both sit in front of the solver. Mirroring the parser's
//! fuzz suite (`crates/ir/tests/parser_fuzz.rs`), these tests hammer the
//! paths with seeded random bytes, structured garbage and mutated valid
//! inputs, asserting every input comes back as a framed error or a
//! result — never a panic, and never an unbounded response.

use arrayflow_service::{Request, Service, ServiceConfig};
use arrayflow_wire::proto::{
    strip_deadline, with_deadline, AnalyzeRequest, CustomRequest, Request as WireRequest,
    MAX_DEADLINE_MS, TAG_ANALYZE, TAG_CUSTOM, TAG_DEADLINE_BIT,
};

/// SplitMix64 — the same tiny seeded generator the parser fuzz suite
/// uses, so failures replay deterministically.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

#[test]
fn random_bytes_into_the_binary_custom_decoder_never_panic() {
    let mut rng = SplitMix64(0xc0ffee);
    for _ in 0..4_000 {
        let len = rng.below(200);
        let bytes: Vec<u8> = (0..len).map(|_| rng.next() as u8).collect();
        // The result does not matter — only that we get one.
        let _ = WireRequest::decode(TAG_CUSTOM, &bytes);
    }
}

#[test]
fn mutated_valid_custom_payloads_never_panic() {
    let valid = WireRequest::Custom(CustomRequest {
        id: 7,
        spec: 0b11_0110,
        fingerprint: Some([9; 16]),
        distance_bound: Some(64),
        source: Some(b"do i = 1, 9 A[i] := 1; end".to_vec()),
    });
    let payload = valid.encode_payload();
    // Truncation at every prefix length.
    for len in 0..payload.len() {
        let _ = WireRequest::decode(TAG_CUSTOM, &payload[..len]);
    }
    // Random single- and multi-byte corruption.
    let mut rng = SplitMix64(0xdead);
    for _ in 0..4_000 {
        let mut bytes = payload.clone();
        for _ in 0..1 + rng.below(4) {
            let pos = rng.below(bytes.len());
            bytes[pos] = rng.next() as u8;
        }
        let _ = WireRequest::decode(TAG_CUSTOM, &bytes);
    }
}

#[test]
fn random_json_spec_values_never_panic_request_decode() {
    // Structured garbage exercises the validator (not just the JSON
    // lexer): random member names and values in a spec-shaped object.
    const KEYS: &[&str] = &[
        "gen",
        "kill",
        "direction",
        "mode",
        "bogus",
        "Gen",
        "",
        "g\\u0000",
    ];
    const VALUES: &[&str] = &[
        r#"["defs"]"#,
        r#"["uses"]"#,
        r#"["defs","uses"]"#,
        r#"["defs","defs","defs"]"#,
        r#"[]"#,
        r#"["both"]"#,
        r#"[1]"#,
        r#"[null]"#,
        r#""forward""#,
        r#""backward""#,
        r#""must""#,
        r#""may""#,
        r#""sideways""#,
        "17",
        "null",
        "true",
        r#"{"nested":1}"#,
        "-1e308",
    ];
    let mut rng = SplitMix64(0xf022);
    for _ in 0..4_000 {
        let members = rng.below(6);
        let mut spec = String::from("{");
        for i in 0..members {
            if i > 0 {
                spec.push(',');
            }
            spec.push('"');
            spec.push_str(KEYS[rng.below(KEYS.len())]);
            spec.push_str("\":");
            spec.push_str(VALUES[rng.below(VALUES.len())]);
        }
        spec.push('}');
        let frame = format!(
            r#"{{"id": 1, "verb": "custom", "program": "do i = 1, 9 A[i] := 1; end", "spec": {spec}}}"#
        );
        // Decode must classify, never panic.
        let _ = Request::decode(frame.as_bytes());
    }
}

#[test]
fn hostile_spec_frames_get_bounded_error_responses_end_to_end() {
    // The full JSON path: hostile spec shapes through a live service.
    // Every frame must come back answered (ok or structured error) with
    // a bounded response line.
    let service = Service::start(ServiceConfig {
        workers: 1,
        ..Default::default()
    })
    .unwrap();
    let hostile = [
        r#"{"id":1,"verb":"custom","program":"do i = 1, 9 A[i] := 1; end"}"#.to_string(),
        r#"{"id":2,"verb":"custom","program":"x := 1;","spec":null}"#.to_string(),
        r#"{"id":3,"verb":"custom","program":"x := 1;","spec":[]}"#.to_string(),
        r#"{"id":4,"verb":"custom","program":"x := 1;","spec":{"gen":[]}}"#.to_string(),
        r#"{"id":5,"verb":"custom","program":"x := 1;","spec":{"kill":["defs"]}}"#.to_string(),
        r#"{"id":6,"verb":"custom","program":"x := 1;","spec":{"gen":["defs"],"mode":"perhaps"}}"#
            .to_string(),
        r#"{"id":7,"verb":"custom","program":"x := 1;","spec":{"gen":["defs"],"extra":1}}"#
            .to_string(),
        format!(
            r#"{{"id":8,"verb":"custom","program":"x := 1;","spec":{{"gen":["defs"]}},"distance_bound":{}}}"#,
            u64::MAX
        ),
        format!(
            r#"{{"id":9,"verb":"custom","program":"x := 1;","spec":{{"gen":["{}"]}}}}"#,
            "u".repeat(10_000)
        ),
    ];
    for frame in &hostile {
        let resp = service.handle_frame(frame.as_bytes());
        assert!(
            resp.line.contains(r#""ok":false"#),
            "hostile frame must be rejected: {frame} -> {}",
            resp.line
        );
        assert!(
            resp.line.len() < 64 << 10,
            "response must stay bounded: {} bytes",
            resp.line.len()
        );
    }
    // A valid spec still works after the barrage — the connection-level
    // state survives hostile frames.
    let resp = service.handle_frame(
        br#"{"id":10,"verb":"custom","program":"do i = 1, 9 A[i+1] := A[i]; end","spec":{"gen":["uses"],"kill":["defs"],"direction":"backward","mode":"may"}}"#,
    );
    assert!(resp.line.contains(r#""ok":true"#), "{}", resp.line);
    assert!(
        resp.line.contains("custom spec=gu-kd-bwd-may"),
        "{}",
        resp.line
    );
    service.shutdown();
    service.join_workers();
}

#[test]
fn random_deadline_prefixes_never_panic_the_binary_decoder() {
    // The deadline tag bit prepends a varint to the payload; hostile
    // prefixes (truncated, overlong, pure noise) must decode to an error
    // or a clamped value, never a panic or an out-of-bounds read.
    let mut rng = SplitMix64(0xdd11_u64 ^ 0x0dea_d1e5);
    for _ in 0..4_000 {
        let len = rng.below(32);
        let bytes: Vec<u8> = (0..len).map(|_| rng.next() as u8).collect();
        let tag = (rng.next() as u8) | TAG_DEADLINE_BIT;
        if let Ok((base, deadline, offset)) = strip_deadline(tag, &bytes) {
            assert_eq!(base, tag & !TAG_DEADLINE_BIT);
            assert!(deadline.unwrap() <= MAX_DEADLINE_MS, "unclamped deadline");
            assert!(offset <= bytes.len(), "offset past payload end");
        }
    }
}

#[test]
fn mutated_deadline_prefixes_on_valid_frames_never_panic() {
    let valid = WireRequest::Analyze(AnalyzeRequest {
        id: 3,
        fingerprint: None,
        problems: None,
        distance_bound: None,
        source: Some(b"do i = 1, 9 A[i] := 1; end".to_vec()),
    });
    let (tag, payload) = with_deadline(valid.tag(), &valid.encode_payload(), 250);

    // Truncation at every prefix length: the varint header and the body
    // both get cut.
    for len in 0..payload.len() {
        if let Ok((base, _, offset)) = strip_deadline(tag, &payload[..len]) {
            let _ = WireRequest::decode(base, &payload[offset..len]);
        }
    }
    // Structured hostile headers in place of the encoded varint.
    let body = valid.encode_payload();
    let hostile_headers: &[&[u8]] = &[
        &[],                                                           // missing varint
        &[0xFF; 11],                                                   // varint never terminates
        &[0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F], // overlong u64
        &[0x80],                                                       // continuation then EOF
    ];
    for header in hostile_headers {
        let mut bytes = header.to_vec();
        bytes.extend_from_slice(&body);
        if let Ok((base, deadline, offset)) = strip_deadline(tag, &bytes) {
            assert!(deadline.unwrap() <= MAX_DEADLINE_MS);
            let _ = WireRequest::decode(base, &bytes[offset..]);
        }
    }
    // Random corruption across header + body.
    let mut rng = SplitMix64(0xbadd_11fe);
    for _ in 0..4_000 {
        let mut bytes = payload.clone();
        for _ in 0..1 + rng.below(4) {
            let pos = rng.below(bytes.len());
            bytes[pos] = rng.next() as u8;
        }
        if let Ok((base, _, offset)) = strip_deadline(tag, &bytes) {
            let _ = WireRequest::decode(base, &bytes[offset..]);
        }
    }
}

#[test]
fn absurd_deadline_values_are_clamped_on_both_protocols() {
    // Binary: any encodable budget survives the round trip clamped.
    for ms in [0, 1, MAX_DEADLINE_MS, MAX_DEADLINE_MS + 1, u64::MAX] {
        let ping = WireRequest::Ping { id: 1 };
        let (tag, payload) = with_deadline(ping.tag(), &ping.encode_payload(), ms);
        let (base, deadline, offset) = strip_deadline(tag, &payload).unwrap();
        assert_eq!(base, ping.tag());
        assert_eq!(deadline, Some(ms.min(MAX_DEADLINE_MS)));
        assert!(WireRequest::decode(base, &payload[offset..]).is_ok());
    }
    // JSON: hostile deadline_ms shapes classify (clamped value or framed
    // error), never panic — and huge-but-valid numbers clamp.
    let hostile = [
        r#"{"verb":"ping","deadline_ms":18446744073709551615}"#,
        r#"{"verb":"ping","deadline_ms":1e308}"#,
        r#"{"verb":"ping","deadline_ms":-1}"#,
        r#"{"verb":"ping","deadline_ms":0.5}"#,
        r#"{"verb":"ping","deadline_ms":"soon"}"#,
        r#"{"verb":"ping","deadline_ms":[250]}"#,
        r#"{"verb":"ping","deadline_ms":{"ms":250}}"#,
        r#"{"verb":"ping","deadline_ms":}"#,
    ];
    for frame in hostile {
        if let Ok(req) = Request::decode(frame.as_bytes()) {
            assert!(req.deadline_ms.unwrap_or(0) <= MAX_DEADLINE_MS, "{frame}");
        }
    }
}

#[test]
fn hostile_deadline_frames_get_bounded_error_responses_end_to_end() {
    // The full binary path: deadline-bit frames with garbage payloads
    // through a live service must answer with a bounded framed error (or
    // a result), never a panic and never a hung worker.
    let service = Service::start(ServiceConfig {
        workers: 1,
        ..Default::default()
    })
    .unwrap();
    let mut rng = SplitMix64(0x005e_edd1);
    for i in 0..500 {
        let len = rng.below(64);
        let bytes: Vec<u8> = (0..len).map(|_| rng.next() as u8).collect();
        let tag = if i % 2 == 0 {
            TAG_ANALYZE | TAG_DEADLINE_BIT
        } else {
            (rng.next() as u8) | TAG_DEADLINE_BIT
        };
        let (tx, rx) = std::sync::mpsc::channel();
        service.handle_binary_frame_async(
            tag,
            &bytes,
            Box::new(move |resp| {
                let _ = tx.send(resp);
            }),
        );
        let resp = rx
            .recv_timeout(std::time::Duration::from_secs(30))
            .expect("frame must be answered");
        assert!(resp.frame.len() < 64 << 10, "response must stay bounded");
    }
    // A well-formed budgeted frame still works after the barrage.
    let ok = WireRequest::Ping { id: 9 };
    let (tag, payload) = with_deadline(ok.tag(), &ok.encode_payload(), 5_000);
    let (tx, rx) = std::sync::mpsc::channel();
    service.handle_binary_frame_async(
        tag,
        &payload,
        Box::new(move |resp| {
            let _ = tx.send(resp);
        }),
    );
    let resp = rx.recv_timeout(std::time::Duration::from_secs(30)).unwrap();
    assert!(!resp.frame.is_empty());
    service.shutdown();
    service.join_workers();
}

#[test]
fn random_spec_byte_times_flag_byte_cross_product_never_panics() {
    // The binary payload's first two variable bytes are the spec byte
    // and the flags byte; sweep the full cross product with and without
    // trailing content.
    for spec in 0..=u8::MAX {
        for flags in 0..=u8::MAX {
            let payload = [1u8, spec, flags];
            let _ = WireRequest::decode(TAG_CUSTOM, &payload);
            let mut with_body = payload.to_vec();
            with_body.extend_from_slice(&[16, 0, 0, 0]);
            let _ = WireRequest::decode(TAG_CUSTOM, &with_body);
        }
    }
}
