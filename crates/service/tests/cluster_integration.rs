//! Three real `serve` nodes behind a real `serve --router`: fingerprint
//! routing, the health verb, replication wiring, and cluster-wide
//! stats/metrics aggregation — all over actual sockets.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use arrayflow_service::{Client, ClientConfig, Json};

/// Reserves `n` distinct ephemeral ports. The listeners are dropped, so
/// there is a tiny reuse race — acceptable for tests, and the only way
/// to give each node its replica's address up front.
fn reserve_ports(n: usize) -> Vec<u16> {
    let listeners: Vec<TcpListener> = (0..n)
        .map(|_| TcpListener::bind("127.0.0.1:0").unwrap())
        .collect();
    listeners
        .iter()
        .map(|l| l.local_addr().unwrap().port())
        .collect()
}

struct Serve {
    child: Child,
}

impl Drop for Serve {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Spawns `serve` with `flags` and waits for its listening announcement.
fn spawn_serve(flags: &[String]) -> Serve {
    let mut child = Command::new(env!("CARGO_BIN_EXE_serve"))
        .args(flags)
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn serve binary");
    let stderr = child.stderr.take().expect("piped stderr");
    // Into the kill-on-drop wrapper immediately, so a panic below still
    // reaps the child.
    let serve = Serve { child };
    let mut lines = BufReader::new(stderr).lines();
    for line in &mut lines {
        let line = line.expect("read serve stderr");
        if line.starts_with("serve: listening on ") {
            // Drain the rest in the background so the child never blocks
            // on a full pipe.
            std::thread::spawn(move || for _ in lines.map_while(Result::ok) {});
            return serve;
        }
    }
    panic!("serve exited before announcing its address");
}

struct JsonClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl JsonClient {
    fn connect(addr: &str) -> JsonClient {
        let stream = TcpStream::connect(addr).expect("connect");
        stream.set_nodelay(true).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        JsonClient {
            reader: BufReader::new(stream.try_clone().unwrap()),
            writer: stream,
        }
    }

    fn request(&mut self, line: &str) -> Json {
        self.writer.write_all(line.as_bytes()).unwrap();
        self.writer.write_all(b"\n").unwrap();
        let mut resp = String::new();
        let n = self.reader.read_line(&mut resp).expect("response");
        assert!(n > 0, "connection closed mid-request");
        Json::parse(resp.trim_end().as_bytes())
            .unwrap_or_else(|e| panic!("unframed response {resp:?}: {e}"))
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("afclint-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

struct Cluster {
    nodes: Vec<Serve>,
    node_addrs: Vec<String>,
    router: Serve,
    router_addr: String,
    dirs: Vec<PathBuf>,
}

/// Boots `n` store-backed nodes in a replication ring plus a router.
fn boot_cluster(tag: &str, n: usize) -> Cluster {
    let ports = reserve_ports(n + 1);
    let node_addrs: Vec<String> = ports[..n]
        .iter()
        .map(|p| format!("127.0.0.1:{p}"))
        .collect();
    let router_addr = format!("127.0.0.1:{}", ports[n]);
    let dirs: Vec<PathBuf> = (0..n).map(|i| temp_dir(&format!("{tag}-n{i}"))).collect();
    let nodes: Vec<Serve> = (0..n)
        .map(|i| {
            spawn_serve(&[
                "--listen".into(),
                node_addrs[i].clone(),
                "--workers".into(),
                "2".into(),
                "--node-id".into(),
                format!("n{}", i + 1),
                "--store".into(),
                dirs[i].to_str().unwrap().into(),
                "--replicate-to".into(),
                node_addrs[(i + 1) % n].clone(),
                "--replicate-interval-ms".into(),
                "50".into(),
            ])
        })
        .collect();
    let spec = (0..n)
        .map(|i| format!("n{}={}", i + 1, node_addrs[i]))
        .collect::<Vec<_>>()
        .join(",");
    let router = spawn_serve(&[
        "--listen".into(),
        router_addr.clone(),
        "--router".into(),
        spec,
        "--probe-interval-ms".into(),
        "100".into(),
    ]);
    Cluster {
        nodes,
        node_addrs,
        router,
        router_addr,
        dirs,
    }
}

impl Cluster {
    fn shutdown(mut self) {
        let mut c = JsonClient::connect(&self.router_addr);
        c.request(r#"{"id": 1, "verb": "shutdown"}"#);
        assert!(self.router.child.wait().unwrap().success(), "router exit");
        for (i, addr) in self.node_addrs.iter().enumerate() {
            let mut c = JsonClient::connect(addr);
            c.request(r#"{"id": 1, "verb": "shutdown"}"#);
            assert!(
                self.nodes[i].child.wait().unwrap().success(),
                "node {i} exit"
            );
        }
        for dir in &self.dirs {
            let _ = std::fs::remove_dir_all(dir);
        }
    }
}

fn is_ok(resp: &Json) -> bool {
    resp.get("ok").and_then(Json::as_bool) == Some(true)
}

fn programs(n: usize) -> Vec<String> {
    (0..n)
        .map(|k| format!("do i = 1, {} A[i+{}] := A[i] + x; end", 50 + k, 1 + (k % 6)))
        .collect()
}

#[test]
fn health_verb_identifies_nodes_and_router() {
    let cluster = boot_cluster("health", 3);

    let mut node = JsonClient::connect(&cluster.node_addrs[1]);
    let resp = node.request(r#"{"id": 1, "verb": "health"}"#);
    assert!(is_ok(&resp), "{resp:?}");
    let result = resp.get("result").unwrap();
    assert_eq!(result.get("status").and_then(Json::as_str), Some("ok"));
    assert_eq!(result.get("node").and_then(Json::as_str), Some("n2"));

    let mut router = JsonClient::connect(&cluster.router_addr);
    let resp = router.request(r#"{"id": 2, "verb": "health"}"#);
    assert!(is_ok(&resp), "{resp:?}");
    let result = resp.get("result").unwrap();
    assert_eq!(result.get("node").and_then(Json::as_str), Some("router"));
    let nodes = result.get("nodes").and_then(Json::as_arr).unwrap();
    assert_eq!(nodes.len(), 3);

    cluster.shutdown();
}

#[test]
fn router_shards_work_and_merges_observability() {
    let cluster = boot_cluster("route", 3);
    let programs = programs(18);

    // Warm every program through the router's JSON path.
    let mut router = JsonClient::connect(&cluster.router_addr);
    for (i, p) in programs.iter().enumerate() {
        let resp = router.request(&format!(
            r#"{{"id": {i}, "verb": "analyze", "program": "{p}"}}"#
        ));
        assert!(is_ok(&resp), "analyze {i} via router: {resp:?}");
    }

    // Re-analyzing must hit the owning shard's cache: the router routes
    // by canonical fingerprint, so the repeat lands where the report is.
    for (i, p) in programs.iter().enumerate() {
        let resp = router.request(&format!(
            r#"{{"id": {i}, "verb": "analyze", "program": "{p}"}}"#
        ));
        assert!(is_ok(&resp), "{resp:?}");
        let hits = resp
            .get("result")
            .and_then(|r| r.get("stats"))
            .and_then(|s| s.get("cache_hits"))
            .and_then(Json::as_u64)
            .unwrap_or(0);
        assert!(hits >= 1, "repeat analyze {i} missed the shard cache");
    }

    // The binary fingerprint-first path works through the router too.
    let mut bin = Client::new(cluster.router_addr.clone(), ClientConfig::default());
    let warm = bin.analyze_binary(&programs[0]).unwrap();
    assert_eq!(warm.cache_hits, 1, "binary repeat must hit via router");

    // Merged stats: summed cluster section, per-node sections, router
    // counters.
    let resp = router.request(r#"{"id": 900, "verb": "stats"}"#);
    assert!(is_ok(&resp), "{resp:?}");
    let result = resp.get("result").unwrap();
    let requests = result
        .get("cluster")
        .and_then(|c| c.get("service"))
        .and_then(|s| s.get("requests"))
        .and_then(Json::as_u64)
        .expect("summed cluster.service.requests");
    assert!(requests >= 2 * programs.len() as u64, "requests={requests}");
    let nodes = result.get("nodes").expect("per-node sections");
    let mut serving = 0;
    for id in ["n1", "n2", "n3"] {
        let node = nodes.get(id).unwrap_or_else(|| panic!("missing {id}"));
        let reqs = node
            .get("service")
            .and_then(|s| s.get("requests"))
            .and_then(Json::as_u64)
            .unwrap_or(0);
        if reqs > 0 {
            serving += 1;
        }
    }
    assert!(serving >= 2, "18 programs landed on {serving} node(s)");
    let forwards = result
        .get("router")
        .and_then(|r| r.get("forwards"))
        .and_then(Json::as_u64)
        .unwrap_or(0);
    assert!(forwards >= 2 * programs.len() as u64, "forwards={forwards}");

    // Merged exposition: node labels on node series, router series too.
    let resp = router.request(r#"{"id": 901, "verb": "metrics"}"#);
    assert!(is_ok(&resp), "{resp:?}");
    let prom = resp
        .get("result")
        .and_then(|r| r.get("prometheus"))
        .and_then(Json::as_str)
        .expect("merged exposition")
        .to_string();
    for needle in [
        "node=\"n1\"",
        "node=\"n2\"",
        "node=\"n3\"",
        "node=\"router\"",
        "arrayflow_router_forwards_total",
        "arrayflow_requests_total",
    ] {
        assert!(prom.contains(needle), "merged exposition lacks {needle}");
    }
    // One HELP per family even though every node emits it.
    let helps = prom.matches("# HELP arrayflow_requests_total ").count();
    assert_eq!(helps, 1, "duplicated HELP in merged exposition");

    cluster.shutdown();
}

#[test]
fn replication_keeps_each_replica_warm() {
    let cluster = boot_cluster("repl", 3);
    let programs = programs(10);

    let mut router = JsonClient::connect(&cluster.router_addr);
    for (i, p) in programs.iter().enumerate() {
        let resp = router.request(&format!(
            r#"{{"id": {i}, "verb": "analyze", "program": "{p}"}}"#
        ));
        assert!(is_ok(&resp), "{resp:?}");
    }

    // Every report reaches its primary's designated replica: the sum of
    // applied replication records across the cluster converges to the
    // number of distinct loops.
    let deadline = Instant::now() + Duration::from_secs(30);
    let mut clients: Vec<JsonClient> = cluster
        .node_addrs
        .iter()
        .map(|a| JsonClient::connect(a))
        .collect();
    loop {
        let mut applied = 0u64;
        for c in &mut clients {
            let resp = c.request(r#"{"id": 5, "verb": "metrics"}"#);
            let metrics = resp
                .get("result")
                .and_then(|r| r.get("metrics"))
                .and_then(Json::as_arr)
                .expect("metrics array");
            applied += metrics
                .iter()
                .find(|m| {
                    m.get("name").and_then(Json::as_str)
                        == Some("arrayflow_replica_applied_records_total")
                })
                .and_then(|m| m.get("value"))
                .and_then(Json::as_u64)
                .unwrap_or(0);
        }
        if applied >= programs.len() as u64 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "replication stalled: {applied}/{} applied",
            programs.len()
        );
        std::thread::sleep(Duration::from_millis(50));
    }

    cluster.shutdown();
}

#[test]
fn sessions_stay_pinned_to_one_shard_through_the_router() {
    let cluster = boot_cluster("sessions", 3);
    let mut c = JsonClient::connect(&cluster.router_addr);

    // Open several sessions; each routes by its source's canonical
    // fingerprint, so different loops may land on different shards.
    let base = "do i = 1, 60 A[i+2] := A[i] + x; B[i] := A[i+1]; end";
    let opened = c.request(&format!(
        r#"{{"id": 1, "verb": "open", "program": "{base}"}}"#
    ));
    assert!(is_ok(&opened), "{opened:?}");
    let result = opened.get("result").unwrap();
    let session = result.get("session").and_then(Json::as_u64).unwrap();
    let fp = result
        .get("fingerprint")
        .and_then(Json::as_str)
        .unwrap()
        .to_string();

    let stmt = {
        let mut p = arrayflow_ir::parse_program(base).unwrap();
        p.renumber();
        arrayflow_workloads::assign_ids(&p)[1].0
    };

    // A chain of edits, every delta carrying the *base* fingerprint: the
    // router hashes it to the same shard each time, so the session state
    // is found even though each edit changes the canonical fingerprint.
    let texts = [
        "B[i] := A[i-3] * 2;",
        "B[i] := A[i] + y;",
        "B[i+1] := A[i-1];",
        "B[i] := A[i+1];",
    ];
    let mut last_fp = fp.clone();
    for (step, text) in texts.iter().enumerate() {
        let resp = c.request(&format!(
            r#"{{"id": {}, "verb": "delta", "session": {session}, "fingerprint": "{fp}", "stmt": {stmt}, "text": "{text}"}}"#,
            step + 2
        ));
        assert!(is_ok(&resp), "step {step}: {resp:?}");
        let result = resp.get("result").unwrap();
        assert_eq!(result.get("session").and_then(Json::as_u64), Some(session));
        let new_fp = result
            .get("fingerprint")
            .and_then(Json::as_str)
            .unwrap()
            .to_string();
        assert_ne!(new_fp, last_fp, "step {step}: the edit changes the loop");
        last_fp = new_fp;
    }

    // Exactly one node owns the session: the aggregated stats show one
    // open session and four deltas across the cluster.
    let stats = c.request(r#"{"id": 99, "verb": "stats"}"#);
    assert!(is_ok(&stats), "{stats:?}");
    let nodes = stats
        .get("result")
        .and_then(|r| r.get("nodes"))
        .expect("router stats carry per-node sections");
    let mut open_total = 0;
    let mut deltas_total = 0;
    let mut owners = 0;
    for id in ["n1", "n2", "n3"] {
        let node = nodes.get(id).unwrap_or_else(|| panic!("missing {id}"));
        let Some(sessions) = node.get("sessions") else {
            continue;
        };
        let open = sessions.get("open").and_then(Json::as_u64).unwrap_or(0);
        let deltas = sessions
            .get("deltas_total")
            .and_then(Json::as_u64)
            .unwrap_or(0);
        open_total += open;
        deltas_total += deltas;
        if deltas > 0 {
            owners += 1;
            assert_eq!(deltas, 4, "all deltas on the owning shard");
        }
    }
    assert_eq!(open_total, 1);
    assert_eq!(deltas_total, 4);
    assert_eq!(owners, 1, "the session never moved between shards");

    cluster.shutdown();
}
