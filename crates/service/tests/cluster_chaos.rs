//! Cluster chaos drill: SIGKILL a node mid-stream under load and prove
//! the surviving replica answers with byte-identical reports.
//!
//! The drill:
//! 1. Golden run — every program against a single plain `serve`,
//!    recording the `loops` portion of each response.
//! 2. Boot a 3-node replicated cluster behind a router, warm every
//!    program through it, and wait until replication has shipped every
//!    report to its designated replica.
//! 3. SIGKILL the node that owns the first program's shard while a load
//!    thread hammers the router.
//! 4. Re-request every program: all must succeed, byte-identical to the
//!    golden run, with nonzero failover and replica-warm-hit counters.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use arrayflow_cluster::Topology;
use arrayflow_ir as ir;
use arrayflow_service::Json;

fn reserve_ports(n: usize) -> Vec<u16> {
    let listeners: Vec<TcpListener> = (0..n)
        .map(|_| TcpListener::bind("127.0.0.1:0").unwrap())
        .collect();
    listeners
        .iter()
        .map(|l| l.local_addr().unwrap().port())
        .collect()
}

struct Serve {
    child: Child,
}

impl Drop for Serve {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn spawn_serve(flags: &[String]) -> Serve {
    let mut child = Command::new(env!("CARGO_BIN_EXE_serve"))
        .args(flags)
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn serve binary");
    let stderr = child.stderr.take().expect("piped stderr");
    // Into the kill-on-drop wrapper immediately, so a panic below still
    // reaps the child.
    let serve = Serve { child };
    let mut lines = BufReader::new(stderr).lines();
    for line in &mut lines {
        let line = line.expect("read serve stderr");
        if line.starts_with("serve: listening on ") {
            std::thread::spawn(move || for _ in lines.map_while(Result::ok) {});
            return serve;
        }
    }
    panic!("serve exited before announcing its address");
}

struct JsonClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl JsonClient {
    fn connect(addr: &str) -> JsonClient {
        let stream = TcpStream::connect(addr).expect("connect");
        stream.set_nodelay(true).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        JsonClient {
            reader: BufReader::new(stream.try_clone().unwrap()),
            writer: stream,
        }
    }

    fn request(&mut self, line: &str) -> Json {
        self.writer.write_all(line.as_bytes()).unwrap();
        self.writer.write_all(b"\n").unwrap();
        let mut resp = String::new();
        let n = self.reader.read_line(&mut resp).expect("response");
        assert!(n > 0, "connection closed mid-request");
        Json::parse(resp.trim_end().as_bytes())
            .unwrap_or_else(|e| panic!("unframed response {resp:?}: {e}"))
    }
}

fn is_ok(resp: &Json) -> bool {
    resp.get("ok").and_then(Json::as_bool) == Some(true)
}

fn loops_portion(resp: &Json) -> String {
    let result = resp.get("result").expect("ok response");
    result.get("loops").expect("loops array").to_string()
}

fn analyze_frame(id: usize, program: &str) -> String {
    format!(r#"{{"id": {id}, "verb": "analyze", "program": "{program}"}}"#)
}

/// Canonical fingerprint bytes of a single-loop program — exactly the
/// router's routing key, so the test can pick the owning shard to kill.
fn fingerprint_of(source: &str) -> [u8; 16] {
    let mut program = ir::parse_program(source).expect("parse");
    ir::normalize(&mut program);
    program.renumber();
    let l = program.sole_loop().expect("single loop");
    ir::fingerprint_loop(l, &program.symbols).0.to_le_bytes()
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("afcchaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn killed_node_fails_over_to_a_warm_replica_with_identical_reports() {
    let programs: Vec<String> = (0..9)
        .map(|k| format!("do i = 1, {} A[i+{}] := A[i] + x; end", 80 + k, 1 + (k % 5)))
        .collect();

    // --- Golden run: one plain node, no store, no cluster. ---
    let golden_port = reserve_ports(1)[0];
    let golden_addr = format!("127.0.0.1:{golden_port}");
    let mut golden_serve = spawn_serve(&[
        "--listen".into(),
        golden_addr.clone(),
        "--workers".into(),
        "2".into(),
    ]);
    let golden: Vec<String> = {
        let mut c = JsonClient::connect(&golden_addr);
        let out = programs
            .iter()
            .enumerate()
            .map(|(i, p)| {
                let resp = c.request(&analyze_frame(i, p));
                assert!(is_ok(&resp), "golden analyze {i}: {resp:?}");
                loops_portion(&resp)
            })
            .collect();
        c.request(r#"{"id": 999, "verb": "shutdown"}"#);
        out
    };
    assert!(golden_serve.child.wait().unwrap().success());

    // --- Cluster: 3 store-backed nodes in a replication ring + router. ---
    let ports = reserve_ports(4);
    let node_addrs: Vec<String> = ports[..3]
        .iter()
        .map(|p| format!("127.0.0.1:{p}"))
        .collect();
    let router_addr = format!("127.0.0.1:{}", ports[3]);
    let dirs: Vec<PathBuf> = (0..3).map(|i| temp_dir(&format!("n{i}"))).collect();
    let mut nodes: Vec<Serve> = (0..3)
        .map(|i| {
            spawn_serve(&[
                "--listen".into(),
                node_addrs[i].clone(),
                "--workers".into(),
                "2".into(),
                "--node-id".into(),
                format!("n{}", i + 1),
                "--store".into(),
                dirs[i].to_str().unwrap().into(),
                "--replicate-to".into(),
                node_addrs[(i + 1) % 3].clone(),
                "--replicate-interval-ms".into(),
                "50".into(),
            ])
        })
        .collect();
    let spec = (0..3)
        .map(|i| format!("n{}={}", i + 1, node_addrs[i]))
        .collect::<Vec<_>>()
        .join(",");
    let mut router_serve = spawn_serve(&[
        "--listen".into(),
        router_addr.clone(),
        "--router".into(),
        spec.clone(),
        "--probe-interval-ms".into(),
        "100".into(),
    ]);

    // Warm every program through the router; reports must already match
    // the golden single-node run.
    let mut router = JsonClient::connect(&router_addr);
    for (i, p) in programs.iter().enumerate() {
        let resp = router.request(&analyze_frame(i, p));
        assert!(is_ok(&resp), "cluster warm {i}: {resp:?}");
        assert_eq!(
            loops_portion(&resp),
            golden[i],
            "cluster report {i} diverged from golden before the kill"
        );
    }

    // Wait until every report has been shipped to its replica.
    let deadline = Instant::now() + Duration::from_secs(30);
    let mut node_clients: Vec<JsonClient> =
        node_addrs.iter().map(|a| JsonClient::connect(a)).collect();
    loop {
        let mut applied = 0u64;
        for c in &mut node_clients {
            let resp = c.request(r#"{"id": 5, "verb": "metrics"}"#);
            let metrics = resp
                .get("result")
                .and_then(|r| r.get("metrics"))
                .and_then(Json::as_arr)
                .expect("metrics array");
            applied += metrics
                .iter()
                .find(|m| {
                    m.get("name").and_then(Json::as_str)
                        == Some("arrayflow_replica_applied_records_total")
                })
                .and_then(|m| m.get("value"))
                .and_then(Json::as_u64)
                .unwrap_or(0);
        }
        if applied >= programs.len() as u64 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "replication stalled: {applied}/{} applied",
            programs.len()
        );
        std::thread::sleep(Duration::from_millis(50));
    }
    drop(node_clients);

    // The victim: the node that owns the first program's shard. Same
    // topology the router built, so the choice is exact, and the kill is
    // guaranteed to force failovers for that shard's re-requests.
    let topology = Topology::parse(&spec, 0).expect("topology");
    let victim = topology.primary_for(fingerprint_of(&programs[0]));

    // Load thread: hammer the router while the victim dies under it.
    // Every request must still draw a framed response — ok or a
    // structured error — never a hang or a torn connection.
    let load_router_addr = router_addr.clone();
    let load_programs = programs.clone();
    let load = std::thread::spawn(move || {
        let mut c = JsonClient::connect(&load_router_addr);
        let mut oks = 0usize;
        for round in 0..30 {
            for (i, p) in load_programs.iter().enumerate() {
                let resp = c.request(&analyze_frame(round * 100 + i, p));
                if is_ok(&resp) {
                    oks += 1;
                } else {
                    resp.get("error")
                        .and_then(|e| e.get("kind"))
                        .and_then(Json::as_str)
                        .expect("structured error under chaos");
                }
            }
        }
        oks
    });
    std::thread::sleep(Duration::from_millis(30));
    // SIGKILL mid-stream: no graceful shutdown, no flush, no goodbye.
    nodes[victim].child.kill().expect("kill victim");
    let oks = load.join().expect("load thread");
    assert!(oks > 0, "load thread saw no successful responses");

    // Every program must still be answered — the victim's shards from
    // its replica — byte-identical to the golden run.
    for (i, p) in programs.iter().enumerate() {
        let resp = router.request(&analyze_frame(1000 + i, p));
        assert!(is_ok(&resp), "post-kill analyze {i}: {resp:?}");
        assert_eq!(
            loops_portion(&resp),
            golden[i],
            "post-kill report {i} diverged from golden"
        );
    }

    // The failover actually happened and the replica was warm.
    let resp = router.request(r#"{"id": 2000, "verb": "stats"}"#);
    assert!(is_ok(&resp), "{resp:?}");
    let stats = resp.get("result").and_then(|r| r.get("router")).unwrap();
    let failovers = stats.get("failovers").and_then(Json::as_u64).unwrap_or(0);
    let warm_hits = stats
        .get("replica_warm_hits")
        .and_then(Json::as_u64)
        .unwrap_or(0);
    assert!(failovers > 0, "router never failed over: {stats:?}");
    assert!(warm_hits > 0, "replica served no warm hits: {stats:?}");

    // The merged exposition carries the failover counter for CI to grep.
    let resp = router.request(r#"{"id": 2001, "verb": "metrics"}"#);
    let prom = resp
        .get("result")
        .and_then(|r| r.get("prometheus"))
        .and_then(Json::as_str)
        .expect("merged exposition")
        .to_string();
    assert!(
        prom.contains("arrayflow_router_failovers_total"),
        "merged exposition lacks the failover counter"
    );

    // Graceful teardown of the survivors.
    router.request(r#"{"id": 3000, "verb": "shutdown"}"#);
    assert!(router_serve.child.wait().unwrap().success(), "router exit");
    for (i, node) in nodes.iter_mut().enumerate() {
        if i == victim {
            continue;
        }
        let mut c = JsonClient::connect(&node_addrs[i]);
        c.request(r#"{"id": 3001, "verb": "shutdown"}"#);
        assert!(node.child.wait().unwrap().success(), "node {i} exit");
    }
    for dir in &dirs {
        let _ = std::fs::remove_dir_all(dir);
    }
}
