//! Chaos drill against the real `serve` binary under a deterministic
//! fault plan: injected solver panics, a dying disk, and crashing
//! workers — while the client demands that every request is answered
//! with a framed response, that every `ok` report is byte-identical to
//! a fault-free golden run, and that the store's circuit breaker trips
//! and then recovers.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::process::{Child, Command, Stdio};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use arrayflow_service::Json;

/// The deterministic plan for the faulty run. `store_io_first=3` fails
/// exactly the first three appends — enough to trip the threshold-3
/// breaker — after which the "disk" recovers and the first half-open
/// probe closes the breaker again.
const FAULT_PLAN: &str = "seed=7,solver_panic=25%,store_io_first=3,worker_exit=15%";

struct Serve {
    child: Child,
    addr: SocketAddr,
    stderr: Arc<Mutex<Vec<String>>>,
}

/// Spawns the `serve` binary with `extra` flags on an ephemeral port,
/// parses the listening address from stderr, and keeps capturing every
/// later stderr line (structured fault-tolerance diagnostics) for the
/// test to inspect.
fn spawn_serve(extra: &[&str]) -> Serve {
    let mut child = Command::new(env!("CARGO_BIN_EXE_serve"))
        .args(["--listen", "127.0.0.1:0", "--workers", "2"])
        .args(extra)
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn serve binary");
    let child_stderr = child.stderr.take().expect("piped stderr");
    let mut lines = BufReader::new(child_stderr).lines();
    let mut addr = None;
    for line in &mut lines {
        let line = line.expect("read serve stderr");
        if let Some(rest) = line.strip_prefix("serve: listening on ") {
            addr = Some(rest.trim().parse().expect("listen address"));
            break;
        }
    }
    let stderr = Arc::new(Mutex::new(Vec::new()));
    let sink = Arc::clone(&stderr);
    std::thread::spawn(move || {
        for line in lines.map_while(Result::ok) {
            sink.lock().unwrap().push(line);
        }
    });
    Serve {
        child,
        addr: addr.expect("serve printed its address"),
        stderr,
    }
}

impl Serve {
    fn stderr_contains(&self, needle: &str) -> bool {
        self.stderr
            .lock()
            .unwrap()
            .iter()
            .any(|l| l.contains(needle))
    }
}

struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect to serve");
        stream.set_nodelay(true).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        Client {
            reader: BufReader::new(stream.try_clone().unwrap()),
            writer: stream,
        }
    }

    /// One request, one response line — which must always arrive and
    /// always parse. "Every frame is answered with a frame" is the
    /// invariant chaos is trying to break.
    fn request(&mut self, line: &str) -> Json {
        self.writer.write_all(line.as_bytes()).unwrap();
        self.writer.write_all(b"\n").unwrap();
        let mut resp = String::new();
        let n = self.reader.read_line(&mut resp).expect("serve response");
        assert!(n > 0, "serve closed the connection mid-request");
        Json::parse(resp.trim_end().as_bytes())
            .unwrap_or_else(|e| panic!("unframed response {resp:?}: {e}"))
    }
}

/// Structurally distinct single-loop programs (distinct bounds and
/// dependence distances), so every analyze is a fresh solve.
fn programs() -> Vec<String> {
    (0..40)
        .map(|k| {
            format!(
                "do i = 1, {} A[i+{}] := A[i] + x; B[i] := A[i+{}]; end",
                40 + k,
                1 + (k % 5),
                1 + (k % 5),
            )
        })
        .collect()
}

fn analyze_frame(id: usize, program: &str) -> String {
    format!(r#"{{"id": {id}, "verb": "analyze", "program": "{program}"}}"#)
}

fn is_ok(resp: &Json) -> bool {
    resp.get("ok").and_then(Json::as_bool) == Some(true)
}

/// The reports themselves, excluding per-request cache stats (which
/// legitimately differ between runs).
fn loops_portion(resp: &Json) -> String {
    let result = resp.get("result").expect("ok response");
    result.get("loops").expect("loops array").to_string()
}

fn error_kind(resp: &Json) -> String {
    resp.get("error")
        .and_then(|e| e.get("kind"))
        .and_then(Json::as_str)
        .unwrap_or_else(|| panic!("error response without kind: {resp:?}"))
        .to_string()
}

/// Retries an idempotent analyze until the injected faults miss it.
/// Every failed attempt must still be a *framed* `analysis` error.
fn analyze_until_ok(client: &mut Client, id: usize, program: &str) -> (Json, u32) {
    for failures in 0..50 {
        let resp = client.request(&analyze_frame(id, program));
        if is_ok(&resp) {
            return (resp, failures);
        }
        assert_eq!(
            error_kind(&resp),
            "analysis",
            "injected faults must surface as analysis errors: {resp:?}"
        );
    }
    panic!("analyze of {program:?} failed 50 times in a row");
}

fn stats_field(client: &mut Client, section: &str, name: &str) -> Json {
    let resp = client.request(r#"{"id": 0, "verb": "stats"}"#);
    resp.get("result")
        .and_then(|r| r.get(section))
        .and_then(|s| s.get(name))
        .cloned()
        .unwrap_or_else(|| panic!("stats.{section}.{name} missing"))
}

/// Looks a counter/gauge up in the `metrics` verb's structured JSON.
fn metric_value(client: &mut Client, name: &str) -> u64 {
    let resp = client.request(r#"{"id": 0, "verb": "metrics"}"#);
    let metrics = resp
        .get("result")
        .and_then(|r| r.get("metrics"))
        .and_then(Json::as_arr)
        .expect("metrics array");
    metrics
        .iter()
        .find(|m| m.get("name").and_then(Json::as_str) == Some(name))
        .and_then(|m| m.get("value"))
        .and_then(Json::as_u64)
        .unwrap_or_else(|| panic!("metric {name} missing"))
}

#[test]
fn chaos_drill_contains_every_injected_fault() {
    let dir = std::env::temp_dir().join(format!("afchaos-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let programs = programs();

    // Phase 1 — golden run, no faults: record every report.
    let mut golden_serve = spawn_serve(&[]);
    let mut client = Client::connect(golden_serve.addr);
    let mut golden = Vec::new();
    for (i, p) in programs.iter().enumerate() {
        let resp = client.request(&analyze_frame(i, p));
        assert!(is_ok(&resp), "golden analyze {i} failed: {resp:?}");
        golden.push(loops_portion(&resp));
    }
    client.request(r#"{"id": 999, "verb": "shutdown"}"#);
    assert!(golden_serve.child.wait().expect("golden exit").success());

    // Phase 2 — same stream under the fault plan.
    let mut serve = spawn_serve(&[
        "--store",
        dir.to_str().unwrap(),
        "--store-breaker-threshold",
        "3",
        "--store-breaker-cooldown-ms",
        "200",
        "--fault-plan",
        FAULT_PLAN,
    ]);
    let mut client = Client::connect(serve.addr);
    let mut injected_failures = 0;
    for (i, p) in programs.iter().enumerate() {
        let (resp, failures) = analyze_until_ok(&mut client, i, p);
        injected_failures += failures;
        assert_eq!(
            loops_portion(&resp),
            golden[i],
            "ok reply for program {i} differs from the fault-free run"
        );
    }
    assert!(
        injected_failures > 0,
        "the fault plan injected no solver panics at all"
    );

    // The injected panics were counted, and no worker took the hit
    // silently: panicking jobs answered with framed errors above.
    let panics = metric_value(&mut client, "arrayflow_worker_panics_total");
    assert!(panics as u32 >= injected_failures, "panics={panics}");

    // The first three appends failed, so the breaker tripped open and
    // degraded the store to memory-only (a structured stderr line marks
    // the transition)...
    let deadline = Instant::now() + Duration::from_secs(30);
    while !serve.stderr_contains("store: breaker-transition") {
        assert!(Instant::now() < deadline, "breaker never transitioned");
        std::thread::sleep(Duration::from_millis(20));
    }
    assert!(serve.stderr_contains("to=open"), "breaker never opened");

    // ...and because the injected disk fault heals after 3 appends, the
    // half-open probe eventually lands and closes the breaker again.
    // Fresh programs force append attempts (= probe opportunities).
    let mut extra = 0u64;
    loop {
        let state = stats_field(&mut client, "store", "breaker_state");
        if state.as_str() == Some("closed") {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "breaker never recovered (state {state:?})"
        );
        std::thread::sleep(Duration::from_millis(250));
        let p = format!("do i = 1, {} C[i+3] := C[i] + y; end", 500 + extra);
        extra += 1;
        analyze_until_ok(&mut client, 1000 + extra as usize, &p);
    }
    assert!(serve.stderr_contains("to=closed"), "no recovery transition");
    let trips = stats_field(&mut client, "store", "breaker_trips");
    assert!(trips.as_u64().unwrap_or(0) >= 1, "trips: {trips:?}");
    assert_eq!(
        metric_value(&mut client, "arrayflow_store_breaker_state"),
        0
    );

    // Workers were killed by the plan and replaced by the supervisor.
    // The supervisor polls every 20 ms, so give the last injected exit a
    // moment to be noticed.
    loop {
        let restarts = stats_field(&mut client, "service", "worker_restarts");
        if restarts.as_u64().unwrap_or(0) >= 1 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "no worker was ever restarted: {restarts:?}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    assert!(serve.stderr_contains("serve: worker-restart"));

    // The Prometheus exposition carries the fault-tolerance series.
    let metrics = client.request(r#"{"id": 0, "verb": "metrics"}"#);
    let prom = metrics
        .get("result")
        .and_then(|r| r.get("prometheus"))
        .and_then(Json::as_str)
        .expect("prometheus exposition")
        .to_string();
    for series in [
        "arrayflow_worker_panics_total",
        "arrayflow_worker_restarts_total",
        "arrayflow_store_breaker_state",
        "arrayflow_store_breaker_trips_total",
    ] {
        assert!(prom.contains(series), "exposition lacks {series}");
    }

    // After all of that: a graceful drain still works and exits 0.
    let resp = client.request(r#"{"id": 9999, "verb": "shutdown"}"#);
    assert!(is_ok(&resp));
    let status = serve.child.wait().expect("serve exit status");
    assert!(
        status.success(),
        "graceful shutdown after chaos: {status:?}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
