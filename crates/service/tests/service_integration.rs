//! Loopback-TCP integration tests: concurrent clients, response/request
//! id matching, byte-identical reports vs the direct in-process engine,
//! the negative paths of the error taxonomy, and graceful-shutdown drain.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use arrayflow_engine::{Engine, EngineConfig};
use arrayflow_service::{Json, Server, Service, ServiceConfig};

/// One test client: a connection plus line-oriented send/receive.
struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect to test server");
        stream.set_nodelay(true).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        Client {
            reader: BufReader::new(stream.try_clone().unwrap()),
            writer: stream,
        }
    }

    fn send(&mut self, line: &str) {
        self.writer.write_all(line.as_bytes()).unwrap();
        self.writer.write_all(b"\n").unwrap();
    }

    fn send_raw(&mut self, bytes: &[u8]) {
        self.writer.write_all(bytes).unwrap();
    }

    fn recv(&mut self) -> String {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line).expect("server response");
        assert!(n > 0, "server closed the connection unexpectedly");
        line.truncate(line.trim_end().len());
        line
    }

    fn recv_json(&mut self) -> Json {
        let line = self.recv();
        Json::parse(line.as_bytes()).unwrap_or_else(|e| panic!("bad response {line:?}: {e}"))
    }
}

fn spawn_server(config: ServiceConfig) -> (std::net::SocketAddr, Arc<Service>) {
    let server = Server::bind("127.0.0.1:0", config).expect("bind loopback");
    let addr = server.local_addr().unwrap();
    let service = server.service();
    std::thread::spawn(move || server.run().unwrap());
    (addr, service)
}

fn error_kind(resp: &Json) -> &str {
    assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(false));
    resp.get("error")
        .and_then(|e| e.get("kind"))
        .and_then(Json::as_str)
        .expect("error.kind")
}

/// The small program corpus the concurrency test spreads across clients:
/// some alpha-equivalent pairs (cache hits), some distinct.
fn corpus() -> Vec<String> {
    vec![
        "do i = 1, 100 A[i+2] := A[i] + x; end".into(),
        "do j = 1, 100 B[j+2] := B[j] + y; end".into(), // alpha-equiv of [0]
        "do i = 1, 50 A[i] := A[i-1] * 2; A[i+3] := A[i]; end".into(),
        "do k = 1, 80 if k < 9 then C[k] := C[k-2]; end end".into(),
        "do i = 1, 60 do j = 1, 60 X[i, j] := X[i, j-1]; end end".into(),
    ]
}

#[test]
fn concurrent_clients_get_id_matched_byte_identical_reports() {
    let engine_cfg = EngineConfig {
        workers: 1,
        ..EngineConfig::default()
    };
    let (addr, service) = spawn_server(ServiceConfig {
        workers: 4,
        engine: engine_cfg.clone(),
        ..ServiceConfig::default()
    });

    // Direct in-process baseline with an identical (but separate) engine.
    let programs = corpus();
    let baseline: Vec<Vec<String>> = {
        let engine = Engine::new(engine_cfg);
        programs
            .iter()
            .map(|src| {
                let p = arrayflow_ir::parse_program(src).unwrap();
                let r = engine.analyze_one(0, &p);
                assert!(r.error.is_none());
                r.loops.iter().map(|l| l.report.render()).collect()
            })
            .collect()
    };

    const CLIENTS: usize = 8;
    const REQUESTS: usize = 20;
    let programs = Arc::new(programs);
    let baseline = Arc::new(baseline);
    std::thread::scope(|scope| {
        for c in 0..CLIENTS {
            let programs = Arc::clone(&programs);
            let baseline = Arc::clone(&baseline);
            scope.spawn(move || {
                let mut client = Client::connect(addr);
                // Pipeline all requests, then read all responses: exercises
                // in-order response delivery and id correlation.
                for k in 0..REQUESTS {
                    let id = (c * 1000 + k) as u32;
                    let which = (c + k) % programs.len();
                    let frame = Json::Obj(vec![
                        ("id".into(), Json::Num(id as f64)),
                        ("verb".into(), Json::Str("analyze".into())),
                        ("program".into(), Json::Str(programs[which].clone())),
                    ]);
                    client.send(&frame.to_string());
                }
                for k in 0..REQUESTS {
                    let id = (c * 1000 + k) as u32;
                    let which = (c + k) % programs.len();
                    let resp = client.recv_json();
                    assert_eq!(
                        resp.get("id").and_then(Json::as_u64),
                        Some(id as u64),
                        "response out of order or mismatched"
                    );
                    assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(true));
                    let loops = resp
                        .get("result")
                        .and_then(|r| r.get("loops"))
                        .and_then(Json::as_arr)
                        .unwrap();
                    let served: Vec<&str> = loops
                        .iter()
                        .map(|l| l.get("report").and_then(Json::as_str).unwrap())
                        .collect();
                    assert_eq!(
                        served, baseline[which],
                        "served report differs from direct engine output"
                    );
                }
            });
        }
    });

    let stats = service.stats();
    assert_eq!(stats.ok, (CLIENTS * REQUESTS) as u64);
    assert_eq!(stats.requests, stats.ok);
    assert_eq!(stats.connections, CLIENTS as u64);
    // Alpha-equivalent duplicates hit the shared cache.
    assert!(service.engine_stats().cache.hits > 0);

    service.shutdown();
    service.join_workers();
}

#[test]
fn malformed_json_is_protocol_error_and_connection_survives() {
    let (addr, service) = spawn_server(ServiceConfig {
        workers: 1,
        ..ServiceConfig::default()
    });
    let mut client = Client::connect(addr);

    client.send("this is { not json");
    assert_eq!(error_kind(&client.recv_json()), "protocol");

    // Invalid UTF-8 bytes inside the frame: still a structured error.
    client.send_raw(b"{\"verb\": \"ping\", \"junk\": \"\xff\xfe\"}\n");
    assert_eq!(error_kind(&client.recv_json()), "protocol");

    // Connection still usable afterwards.
    client.send(r#"{"id": 5, "verb": "ping"}"#);
    let resp = client.recv_json();
    assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(resp.get("id").and_then(Json::as_u64), Some(5));

    assert_eq!(service.stats().protocol_errors, 2);
    service.shutdown();
    service.join_workers();
}

#[test]
fn invalid_utf8_dsl_is_parse_error_not_a_crash() {
    let (addr, service) = spawn_server(ServiceConfig {
        workers: 1,
        ..ServiceConfig::default()
    });
    let mut client = Client::connect(addr);
    // The program smuggles U+0080 through valid JSON; the DSL lexer rejects the non-ASCII byte with a `parse` error, not a crash.
    client.send(r#"{"id": 1, "verb": "analyze", "program": "do i = 1, 9  end"}"#);
    assert_eq!(error_kind(&client.recv_json()), "parse");
    client.send(r#"{"id": 2, "verb": "ping"}"#);
    assert_eq!(
        client.recv_json().get("ok").and_then(Json::as_bool),
        Some(true)
    );
    service.shutdown();
    service.join_workers();
}

#[test]
fn oversized_frame_is_rejected_and_connection_survives() {
    let (addr, service) = spawn_server(ServiceConfig {
        workers: 1,
        max_frame_bytes: 256,
        ..ServiceConfig::default()
    });
    let mut client = Client::connect(addr);

    let huge = format!(
        r#"{{"id": 1, "verb": "analyze", "program": "{}"}}"#,
        "x := 1; ".repeat(200)
    );
    assert!(huge.len() > 256);
    client.send(&huge);
    let resp = client.recv_json();
    assert_eq!(error_kind(&resp), "protocol");
    let msg = resp
        .get("error")
        .and_then(|e| e.get("message"))
        .and_then(Json::as_str)
        .unwrap();
    assert!(msg.contains("256 bytes"), "{msg}");

    client.send(r#"{"id": 2, "verb": "ping"}"#);
    assert_eq!(
        client.recv_json().get("ok").and_then(Json::as_bool),
        Some(true)
    );
    // Oversized frames get their own counter — they are not protocol
    // errors, not requests, and never land in the latency histogram.
    let stats = service.stats();
    assert_eq!(stats.oversized_frames, 1);
    assert_eq!(stats.protocol_errors, 0);
    service.shutdown();
    service.join_workers();
}

#[test]
fn unknown_verb_is_protocol_error() {
    let (addr, service) = spawn_server(ServiceConfig {
        workers: 1,
        ..ServiceConfig::default()
    });
    let mut client = Client::connect(addr);
    client.send(r#"{"id": 1, "verb": "explode"}"#);
    let resp = client.recv_json();
    assert_eq!(error_kind(&resp), "protocol");
    assert_eq!(resp.get("id").and_then(Json::as_u64), Some(1));
    client.send(r#"{"id": 2, "verb": "ping"}"#);
    assert_eq!(
        client.recv_json().get("ok").and_then(Json::as_bool),
        Some(true)
    );
    service.shutdown();
    service.join_workers();
}

#[test]
fn deadline_miss_is_timeout_error_and_connection_survives() {
    let (addr, service) = spawn_server(ServiceConfig {
        workers: 1,
        request_timeout: Duration::ZERO,
        ..ServiceConfig::default()
    });
    let mut client = Client::connect(addr);
    client.send(r#"{"id": 1, "verb": "analyze", "program": "x := 1;"}"#);
    assert_eq!(error_kind(&client.recv_json()), "timeout");
    // Cheap verbs bypass the queue and still work.
    client.send(r#"{"id": 2, "verb": "ping"}"#);
    assert_eq!(
        client.recv_json().get("ok").and_then(Json::as_bool),
        Some(true)
    );
    assert_eq!(service.stats().timeouts, 1);
    service.shutdown();
    service.join_workers();
}

#[test]
fn overload_is_reported_when_queue_is_full() {
    // Queue of 1 and a single worker: pipelining many analyzes from many
    // threads must never panic, and every response is either ok,
    // overloaded, or timeout — nothing is dropped.
    let (addr, service) = spawn_server(ServiceConfig {
        workers: 1,
        queue_capacity: 1,
        request_timeout: Duration::from_secs(10),
        ..ServiceConfig::default()
    });
    const CLIENTS: usize = 6;
    std::thread::scope(|scope| {
        for c in 0..CLIENTS {
            scope.spawn(move || {
                let mut client = Client::connect(addr);
                for k in 0..10 {
                    client.send(&format!(
                        r#"{{"id": {}, "verb": "analyze", "program": "do i = 1, 50 A[i+{}] := A[i]; end"}}"#,
                        c * 100 + k,
                        k + 1
                    ));
                }
                for _ in 0..10 {
                    let resp = client.recv_json();
                    if resp.get("ok").and_then(Json::as_bool) == Some(true) {
                        continue;
                    }
                    let kind = error_kind(&resp).to_string();
                    assert!(
                        kind == "overloaded" || kind == "timeout",
                        "unexpected error kind {kind}"
                    );
                }
            });
        }
    });
    let stats = service.stats();
    assert_eq!(stats.requests, (CLIENTS * 10) as u64);
    assert_eq!(stats.ok + stats.overloaded + stats.timeouts, stats.requests);
    assert!(stats.queue_depth_hwm <= 1);
    service.shutdown();
    service.join_workers();
}

#[test]
fn graceful_shutdown_drains_in_flight_requests() {
    // Many clients, each with one request in flight against a 1-worker
    // service, while another client fires `shutdown` concurrently: every
    // accepted request must still be answered (ok — drained, or
    // overloaded if it arrived after the flag), and the server must stop.
    let (addr, service) = spawn_server(ServiceConfig {
        workers: 1,
        queue_capacity: 64,
        request_timeout: Duration::from_secs(30),
        ..ServiceConfig::default()
    });
    const CLIENTS: usize = 8;
    let outcomes: Vec<String> = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for c in 0..CLIENTS {
            handles.push(scope.spawn(move || {
                let mut client = Client::connect(addr);
                client.send(&format!(
                    r#"{{"id": {c}, "verb": "analyze", "program": "do i = 1, 90 A[i+{}] := A[i] + B[i-1]; end"}}"#,
                    c + 1
                ));
                let resp = client.recv_json();
                assert_eq!(resp.get("id").and_then(Json::as_u64), Some(c as u64));
                if resp.get("ok").and_then(Json::as_bool) == Some(true) {
                    "ok".to_string()
                } else {
                    error_kind(&resp).to_string()
                }
            }));
        }
        // Let the analyze requests land first, then shut down mid-stream.
        std::thread::sleep(Duration::from_millis(30));
        let mut killer = Client::connect(addr);
        killer.send(r#"{"id": 999, "verb": "shutdown"}"#);
        let resp = killer.recv_json();
        assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(true));
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    for outcome in &outcomes {
        assert!(
            outcome == "ok" || outcome == "overloaded",
            "request dropped or mis-answered during shutdown: {outcome}"
        );
    }
    // join_workers returns only after the queue fully drained.
    service.join_workers();
    assert!(service.is_shutdown());

    // Counters are consistent: every request has exactly one outcome.
    let stats = service.stats();
    assert_eq!(stats.requests, CLIENTS as u64 + 1); // + shutdown verb
    assert_eq!(stats.ok + stats.errors(), stats.requests);
    let answered_ok = outcomes.iter().filter(|o| *o == "ok").count() as u64;
    assert_eq!(stats.ok, answered_ok + 1); // + shutdown verb
}

#[test]
fn stats_verb_reports_engine_summary_and_counters() {
    let (addr, service) = spawn_server(ServiceConfig {
        workers: 2,
        ..ServiceConfig::default()
    });
    let mut client = Client::connect(addr);
    client.send(r#"{"id": 1, "verb": "analyze", "program": "do i = 1, 9 A[i+1] := A[i]; end"}"#);
    client.recv_json();
    client.send(r#"{"id": 2, "verb": "analyze", "program": "do j = 1, 9 B[j+1] := B[j]; end"}"#);
    client.recv_json();
    client.send("not json");
    client.recv_json();

    client.send(r#"{"id": 3, "verb": "stats"}"#);
    let resp = client.recv_json();
    assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(true));
    let result = resp.get("result").unwrap();

    // The engine line is the EngineStats Display one-liner; the two
    // alpha-equivalent programs produce one solve and one cache hit.
    let engine = result.get("engine").and_then(Json::as_str).unwrap();
    assert!(engine.contains("2 programs"), "{engine}");
    assert!(engine.contains("1 from cache"), "{engine}");
    let cache = result.get("cache").and_then(Json::as_str).unwrap();
    assert!(cache.contains("hits=1"), "{cache}");

    // Counters snapshot before the stats request itself completes: the
    // two analyzes and the protocol error, not the in-flight stats call.
    let svc = result.get("service").unwrap();
    assert_eq!(svc.get("requests").and_then(Json::as_u64), Some(3));
    assert_eq!(svc.get("ok").and_then(Json::as_u64), Some(2));
    assert_eq!(
        svc.get("errors")
            .and_then(|e| e.get("protocol"))
            .and_then(Json::as_u64),
        Some(1)
    );
    let latency = svc.get("latency").unwrap();
    let total: u64 = [
        "le_100us",
        "le_1000us",
        "le_10000us",
        "le_100000us",
        "le_1000000us",
        "gt_1000000us",
    ]
    .iter()
    .map(|k| latency.get(k).and_then(Json::as_u64).unwrap())
    .sum();
    assert_eq!(total, 3);

    service.shutdown();
    service.join_workers();
}

#[test]
fn stdio_like_loop_over_pipe_mode_frames() {
    // The stdio transport shares handle_frame with TCP; drive it directly
    // with a mixed script to pin the pipe-mode contract.
    let service = Service::start(ServiceConfig {
        workers: 1,
        ..ServiceConfig::default()
    })
    .unwrap();
    let script: &[&[u8]] = &[
        br#"{"id": 1, "verb": "ping"}"#,
        br#"{"id": 2, "verb": "analyze", "program": "do i = 1, 9 A[i+2] := A[i]; end"}"#,
        br#"{"id": 3, "verb": "stats"}"#,
        br#"{"id": 4, "verb": "shutdown"}"#,
    ];
    let mut saw_shutdown = false;
    for frame in script {
        let resp = service.handle_frame(frame);
        assert!(resp.line.contains("\"ok\":true"), "{}", resp.line);
        saw_shutdown |= resp.shutdown;
    }
    assert!(saw_shutdown);
    service.join_workers();
}

#[test]
fn open_then_delta_matches_fresh_analyze_byte_for_byte() {
    let (addr, service) = spawn_server(ServiceConfig::default());
    let mut client = Client::connect(addr);

    let base = "do i = 1, 100 A[i+2] := A[i] + x; B[i] := A[i+1]; end";
    let replacement = "B[i] := A[i-3] * 2;";
    let edited = "do i = 1, 100 A[i+2] := A[i] + x; B[i] := A[i-3] * 2; end";

    client.send(&format!(
        r#"{{"id": 1, "verb": "open", "program": "{base}"}}"#
    ));
    let opened = client.recv_json();
    assert_eq!(
        opened.get("ok").and_then(Json::as_bool),
        Some(true),
        "{opened:?}"
    );
    let result = opened.get("result").unwrap();
    let session = result.get("session").and_then(Json::as_u64).unwrap();
    let base_fp = result
        .get("fingerprint")
        .and_then(Json::as_str)
        .unwrap()
        .to_string();
    assert_eq!(base_fp.len(), 32);

    // The edit targets the second assignment; ids are the renumbered ones.
    let stmt = {
        let mut p = arrayflow_ir::parse_program(base).unwrap();
        p.renumber();
        arrayflow_workloads::assign_ids(&p)[1].0
    };

    // Every delta routes by the *base* fingerprint `open` returned.
    client.send(&format!(
        r#"{{"id": 2, "verb": "delta", "session": {session}, "fingerprint": "{base_fp}", "stmt": {stmt}, "text": "{replacement}"}}"#
    ));
    let delta = client.recv_json();
    assert_eq!(
        delta.get("ok").and_then(Json::as_bool),
        Some(true),
        "{delta:?}"
    );
    let dres = delta.get("result").unwrap();
    assert_eq!(dres.get("session").and_then(Json::as_u64), Some(session));
    assert_eq!(dres.get("fallback").and_then(Json::as_bool), Some(false));
    let dirty = dres.get("dirty_columns").and_then(Json::as_u64).unwrap();
    let total = dres.get("total_columns").and_then(Json::as_u64).unwrap();
    assert!(dirty <= total && total > 0);
    let delta_report = dres.get("report").and_then(Json::as_str).unwrap();
    let delta_fp = dres.get("fingerprint").and_then(Json::as_str).unwrap();
    assert_ne!(delta_fp, base_fp, "the edit changes the canonical loop");

    // A fresh full analysis of the edited source must render byte-identically.
    client.send(&format!(
        r#"{{"id": 3, "verb": "analyze", "program": "{edited}"}}"#
    ));
    let fresh = client.recv_json();
    assert_eq!(
        fresh.get("ok").and_then(Json::as_bool),
        Some(true),
        "{fresh:?}"
    );
    let loops = fresh
        .get("result")
        .and_then(|r| r.get("loops"))
        .and_then(Json::as_arr)
        .unwrap();
    assert_eq!(loops.len(), 1);
    assert_eq!(
        loops[0].get("report").and_then(Json::as_str).unwrap(),
        delta_report
    );
    assert_eq!(
        loops[0].get("fingerprint").and_then(Json::as_str).unwrap(),
        delta_fp
    );

    service.shutdown();
    service.join_workers();
}

#[test]
fn delta_error_paths_are_typed_and_incomplete_requests_are_protocol_errors() {
    let (addr, service) = spawn_server(ServiceConfig::default());
    let mut client = Client::connect(addr);

    // Unknown session: the typed `session_lost` error — the client's cue
    // to re-open and replay, distinct from a real analysis failure. The
    // connection survives.
    client.send(
        r#"{"id": 1, "verb": "delta", "session": 424242, "fingerprint": "00000000000000000000000000000000", "stmt": 0, "text": "A[i] := 0;"}"#,
    );
    let resp = client.recv_json();
    assert_eq!(error_kind(&resp), "session_lost");

    // Missing fields are rejected at decode time: protocol errors, like
    // every other malformed request.
    client.send(r#"{"id": 2, "verb": "delta", "session": 1}"#);
    let resp = client.recv_json();
    assert_eq!(error_kind(&resp), "protocol");

    // A bad fingerprint string too.
    client.send(
        r#"{"id": 3, "verb": "delta", "session": 1, "fingerprint": "zz", "stmt": 0, "text": "A[i] := 0;"}"#,
    );
    let resp = client.recv_json();
    assert_eq!(error_kind(&resp), "protocol");

    // `open` still requires a program.
    client.send(r#"{"id": 4, "verb": "open"}"#);
    let resp = client.recv_json();
    assert_eq!(error_kind(&resp), "protocol");

    service.shutdown();
    service.join_workers();
}

#[test]
fn stats_verb_reports_session_counters() {
    let (addr, service) = spawn_server(ServiceConfig::default());
    let mut client = Client::connect(addr);

    let base = "do i = 1, 50 A[i+1] := A[i]; B[i] := A[i]; end";
    client.send(&format!(
        r#"{{"id": 1, "verb": "open", "program": "{base}"}}"#
    ));
    let opened = client.recv_json();
    let result = opened.get("result").unwrap();
    let session = result.get("session").and_then(Json::as_u64).unwrap();
    let fp = result
        .get("fingerprint")
        .and_then(Json::as_str)
        .unwrap()
        .to_string();
    let stmt = {
        let mut p = arrayflow_ir::parse_program(base).unwrap();
        p.renumber();
        arrayflow_workloads::assign_ids(&p)[1].0
    };

    // One fast-path delta, one structural fallback.
    client.send(&format!(
        r#"{{"id": 2, "verb": "delta", "session": {session}, "fingerprint": "{fp}", "stmt": {stmt}, "text": "B[i] := A[i] + 1;"}}"#
    ));
    assert_eq!(
        client.recv_json().get("ok").and_then(Json::as_bool),
        Some(true)
    );
    client.send(&format!(
        r#"{{"id": 3, "verb": "delta", "session": {session}, "fingerprint": "{fp}", "stmt": {stmt}, "text": "if x > 0 then B[i] := A[i]; end"}}"#
    ));
    let fb = client.recv_json();
    assert_eq!(
        fb.get("result")
            .and_then(|r| r.get("fallback"))
            .and_then(Json::as_bool),
        Some(true),
        "{fb:?}"
    );

    client.send(r#"{"id": 4, "verb": "stats"}"#);
    let stats = client.recv_json();
    let sessions = stats.get("result").and_then(|r| r.get("sessions")).unwrap();
    assert_eq!(sessions.get("open").and_then(Json::as_u64), Some(1));
    assert_eq!(sessions.get("opened_total").and_then(Json::as_u64), Some(1));
    assert_eq!(sessions.get("deltas_total").and_then(Json::as_u64), Some(2));
    assert_eq!(
        sessions.get("delta_fallbacks").and_then(Json::as_u64),
        Some(1)
    );
    assert_eq!(
        sessions.get("evicted_capacity").and_then(Json::as_u64),
        Some(0)
    );

    service.shutdown();
    service.join_workers();
}
