//! End-to-end tests of the event-driven server: binary and JSON clients
//! against one listener, byte-identity across protocols, the
//! fingerprint fast path, frame caps, ordering, and drain-on-shutdown.
#![cfg(unix)]

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::thread::JoinHandle;
use std::time::Duration;

use arrayflow_service::{
    Client, ClientConfig, EventServer, Json, ProtoMode, Service, ServiceConfig,
};
use arrayflow_store::codec::decode_report;
use arrayflow_wire::proto::{AnalyzeRequest, Request as WireRequest, Response as WireResponse};
use arrayflow_wire::{encode_frame, FrameDecoder, FrameEvent};

const SRC: &str = "do i = 1, 100 A[i+2] := A[i] + x; end";

fn start(mode: ProtoMode, config: ServiceConfig) -> (SocketAddr, JoinHandle<std::io::Result<()>>) {
    let service = Service::start(config).unwrap();
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let server = EventServer::attach(listener, service);
    let handle = std::thread::spawn(move || server.run(mode));
    (addr, handle)
}

fn client(addr: SocketAddr) -> Client {
    Client::new(
        addr.to_string(),
        ClientConfig {
            backoff_seed: Some(7),
            ..Default::default()
        },
    )
}

fn stop(addr: SocketAddr, handle: JoinHandle<std::io::Result<()>>) {
    let mut c = client(addr);
    c.shutdown().unwrap();
    handle.join().unwrap().unwrap();
}

#[test]
fn json_and_binary_reports_are_byte_identical() {
    let (addr, handle) = start(ProtoMode::Auto, ServiceConfig::default());

    // JSON path first (this also populates the cache).
    let mut jc = client(addr);
    let line = jc.analyze(SRC).unwrap();
    let json = Json::parse(line.as_bytes()).unwrap();
    let loops = json
        .get("result")
        .and_then(|r| r.get("loops"))
        .and_then(Json::as_arr)
        .unwrap();
    assert_eq!(loops.len(), 1);
    let json_fp = loops[0].get("fingerprint").and_then(Json::as_str).unwrap();
    let json_report = loops[0].get("report").and_then(Json::as_str).unwrap();

    // Binary path: same program, decoded report must render to the very
    // same bytes the JSON response carried.
    let mut bc = client(addr);
    let ok = bc.analyze_binary(SRC).unwrap();
    assert_eq!(ok.loops.len(), 1);
    let report = decode_report(&ok.loops[0].report).unwrap();
    assert_eq!(report.render(), json_report);
    assert_eq!(
        format!("{:032x}", u128::from_le_bytes(ok.loops[0].fingerprint)),
        json_fp
    );

    stop(addr, handle);
}

#[test]
fn fingerprint_hit_matches_full_parse_byte_for_byte() {
    let (addr, handle) = start(ProtoMode::Auto, ServiceConfig::default());
    let mut c = client(addr);

    let full = c.analyze_binary(SRC).unwrap();
    let fp = full.loops[0].fingerprint;

    let hit = c.analyze_fingerprint(fp, None).unwrap();
    assert_eq!(hit.cache_hits, 1);
    assert_eq!(hit.cache_misses, 0);
    assert_eq!(hit.loops.len(), 1);
    assert_eq!(hit.loops[0].report, full.loops[0].report);

    // The counter is visible in the exposition the binary metrics verb
    // returns.
    let metrics = c.metrics_prometheus().unwrap();
    assert!(metrics.contains("arrayflow_fingerprint_fast_hits_total 1"));

    stop(addr, handle);
}

#[test]
fn unknown_fingerprint_falls_back_to_shipped_source() {
    let (addr, handle) = start(ProtoMode::Auto, ServiceConfig::default());
    let mut c = client(addr);

    // Nothing cached: the probe alone errors...
    let err = c.analyze_fingerprint([3; 16], None).unwrap_err();
    assert!(err.to_string().contains("unknown fingerprint"), "{err}");

    // ...but with source attached the same request analyzes in full.
    let ok = c.analyze_fingerprint([3; 16], Some(SRC)).unwrap();
    assert_eq!(ok.loops.len(), 1);
    assert_eq!(ok.cache_misses, 1);

    stop(addr, handle);
}

#[test]
fn one_listener_speaks_both_protocols() {
    let (addr, handle) = start(ProtoMode::Auto, ServiceConfig::default());
    let mut c = client(addr);
    // Interleave: the server detects the protocol per connection, and the
    // client keeps one cached connection per mode — so alternating
    // protocols costs exactly one dial each, not one per switch.
    c.ping().unwrap();
    c.ping_binary().unwrap();
    c.ping().unwrap();
    assert_eq!(c.connects(), 2);
    stop(addr, handle);
}

#[test]
fn json_only_mode_treats_binary_magic_as_a_json_line() {
    let (addr, handle) = start(ProtoMode::Json, ServiceConfig::default());

    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let ping = WireRequest::Ping { id: 1 };
    let mut bytes = encode_frame(ping.tag(), &ping.encode_payload());
    // Terminate the "line" so the JSON framer hands it to the decoder.
    bytes.push(b'\n');
    stream.write_all(&bytes).unwrap();
    let mut line = String::new();
    BufReader::new(&stream).read_line(&mut line).unwrap();
    let json = Json::parse(line.as_bytes()).unwrap();
    assert_eq!(json.get("ok").and_then(Json::as_bool), Some(false));
    let kind = json
        .get("error")
        .and_then(|e| e.get("kind"))
        .and_then(Json::as_str)
        .unwrap()
        .to_string();
    assert_eq!(kind, "protocol");

    stop(addr, handle);
}

#[test]
fn pipelined_binary_requests_answer_in_request_order() {
    let (addr, handle) = start(ProtoMode::Auto, ServiceConfig::default());

    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    // A burst of pings and analyzes in one write: responses must come
    // back in request order even though analyze runs on workers and ping
    // answers inline.
    let mut burst = Vec::new();
    let n = 16u64;
    for id in 0..n {
        let req = if id % 2 == 0 {
            WireRequest::Ping { id }
        } else {
            WireRequest::Analyze(AnalyzeRequest {
                id,
                fingerprint: None,
                problems: None,
                distance_bound: None,
                source: Some(SRC.as_bytes().to_vec()),
            })
        };
        burst.extend(encode_frame(req.tag(), &req.encode_payload()));
    }
    stream.write_all(&burst).unwrap();

    let mut decoder = FrameDecoder::new(usize::MAX);
    let mut got = Vec::new();
    let mut buf = [0u8; 4096];
    while got.len() < n as usize {
        let read = stream.read(&mut buf).unwrap();
        assert!(read > 0, "server closed early");
        decoder.extend(&buf[..read]);
        while let Some(FrameEvent::Frame { tag, payload }) = decoder.next().unwrap() {
            got.push(WireResponse::decode(tag, &payload).unwrap());
        }
    }
    for (i, resp) in got.iter().enumerate() {
        assert_eq!(resp.id(), i as u64, "response out of order: {resp:?}");
    }

    stop(addr, handle);
}

#[test]
fn oversized_binary_frame_is_rejected_and_the_connection_survives() {
    let (addr, handle) = start(
        ProtoMode::Auto,
        ServiceConfig {
            max_frame_bytes: 1024,
            ..Default::default()
        },
    );

    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let big = WireRequest::Analyze(AnalyzeRequest {
        id: 1,
        fingerprint: None,
        problems: None,
        distance_bound: None,
        source: Some(vec![b'x'; 1 << 20]),
    });
    stream
        .write_all(&encode_frame(big.tag(), &big.encode_payload()))
        .unwrap();
    let ping = WireRequest::Ping { id: 2 };
    stream
        .write_all(&encode_frame(ping.tag(), &ping.encode_payload()))
        .unwrap();

    let mut decoder = FrameDecoder::new(usize::MAX);
    let mut got = Vec::new();
    let mut buf = [0u8; 4096];
    while got.len() < 2 {
        let read = stream.read(&mut buf).unwrap();
        assert!(read > 0, "server closed early");
        decoder.extend(&buf[..read]);
        while let Some(FrameEvent::Frame { tag, payload }) = decoder.next().unwrap() {
            got.push(WireResponse::decode(tag, &payload).unwrap());
        }
    }
    assert!(
        matches!(&got[0], WireResponse::Err { message, .. } if message.contains("exceeds")),
        "{:?}",
        got[0]
    );
    assert!(matches!(&got[1], WireResponse::Text { id: 2, .. }));

    // The oversized frame landed in its own counter, not the taxonomy.
    let mut c = client(addr);
    let metrics = c.metrics_prometheus().unwrap();
    assert!(
        metrics.contains("arrayflow_oversized_frames_total 1"),
        "oversized counter missing"
    );

    stop(addr, handle);
}

#[test]
fn binary_shutdown_drains_the_server() {
    let (addr, handle) = start(ProtoMode::Auto, ServiceConfig::default());
    let mut c = client(addr);
    let id = 42;
    match c.request_binary(&WireRequest::Shutdown { id }).unwrap() {
        WireResponse::Text { id: got, text } => {
            assert_eq!(got, id);
            assert_eq!(text, "shutting down");
        }
        other => panic!("unexpected response {other:?}"),
    }
    handle.join().unwrap().unwrap();
}

#[test]
fn threaded_and_event_servers_share_handle_frame_semantics() {
    // The event server must answer a JSON frame with the exact same line
    // the in-process blocking path produces.
    let (addr, handle) = start(ProtoMode::Auto, ServiceConfig::default());
    let mut c = client(addr);
    let line = c.analyze(SRC).unwrap();

    let svc = Service::start(ServiceConfig::default()).unwrap();
    let frame = format!(
        "{{\"id\": {}, \"verb\": \"analyze\", \"program\": {}}}",
        1,
        Json::Str(SRC.into())
    );
    let direct = svc.handle_frame(frame.as_bytes());
    svc.shutdown();
    svc.join_workers();

    // Ids differ (client picks its own); compare the result payloads.
    let over_wire = Json::parse(line.as_bytes()).unwrap();
    let in_proc = Json::parse(direct.line.as_bytes()).unwrap();
    assert_eq!(
        over_wire.get("result").unwrap().to_string(),
        in_proc.get("result").unwrap().to_string()
    );

    stop(addr, handle);
}

#[test]
fn open_and_delta_round_trip_matches_fresh_analysis() {
    let (addr, handle) = start(ProtoMode::Auto, ServiceConfig::default());
    let mut c = client(addr);

    let base = "do i = 1, 100 A[i+2] := A[i] + x; B[i] := A[i+1]; end";
    let opened = c.open_session_binary(base).unwrap();
    let base_fp = opened.fingerprint;

    let stmt = {
        let mut p = arrayflow_ir::parse_program(base).unwrap();
        p.renumber();
        arrayflow_workloads::assign_ids(&p)[1].0 as u64
    };
    let d = c
        .delta_binary(opened.session, base_fp, stmt, "B[i] := A[i-3] * 2;")
        .unwrap();
    assert_eq!(d.session, opened.session);
    assert!(!d.fallback);
    assert!(d.dirty_columns <= d.total_columns && d.total_columns > 0);
    assert_ne!(
        d.fingerprint, base_fp,
        "the edit changes the canonical loop"
    );

    // Fresh full analysis of the edited source: byte-identical report.
    let fresh = c
        .analyze_binary("do i = 1, 100 A[i+2] := A[i] + x; B[i] := A[i-3] * 2; end")
        .unwrap();
    assert_eq!(fresh.loops.len(), 1);
    assert_eq!(fresh.loops[0].fingerprint, d.fingerprint);
    assert_eq!(
        decode_report(&fresh.loops[0].report).unwrap().render(),
        decode_report(&d.report).unwrap().render()
    );

    // And the JSON verbs against the very same listener agree byte-for-byte.
    let opened_json = c.open_session(base).unwrap();
    assert_eq!(
        opened_json.fingerprint,
        format!("{:032x}", u128::from_le_bytes(base_fp))
    );
    let line = c
        .delta(
            opened_json.session,
            &opened_json.fingerprint,
            stmt,
            "B[i] := A[i-3] * 2;",
        )
        .unwrap();
    let json = Json::parse(line.as_bytes()).unwrap();
    let result = json.get("result").unwrap();
    assert_eq!(
        result.get("report").and_then(Json::as_str).unwrap(),
        decode_report(&d.report).unwrap().render()
    );
    assert_eq!(result.get("fallback").and_then(Json::as_bool), Some(false));

    stop(addr, handle);
}

#[test]
fn structural_delta_falls_back_and_expired_session_is_an_analysis_error() {
    let (addr, handle) = start(ProtoMode::Auto, ServiceConfig::default());
    let mut c = client(addr);

    let base = "do i = 1, 50 A[i+1] := A[i]; B[i] := A[i]; end";
    let opened = c.open_session_binary(base).unwrap();
    let stmt = {
        let mut p = arrayflow_ir::parse_program(base).unwrap();
        p.renumber();
        arrayflow_workloads::assign_ids(&p)[0].0 as u64
    };

    // A conditional replacement changes the flow graph: full re-analysis.
    let d = c
        .delta_binary(
            opened.session,
            opened.fingerprint,
            stmt,
            "if A[i] > 0 then A[i+1] := A[i]; end",
        )
        .unwrap();
    assert!(d.fallback);
    assert_eq!(d.dirty_columns, 0);

    // Unknown sessions come back as analysis errors, not dead connections.
    let err = c
        .delta_binary(999_999, opened.fingerprint, stmt, "A[i+1] := A[i];")
        .unwrap_err();
    assert!(err.to_string().contains("session"), "{err}");

    // The service survived both and still answers.
    assert!(c.ping().is_ok());

    stop(addr, handle);
}
