//! End-to-end tests for deadline propagation and cooperative
//! cancellation: the slow-loris idle guard, the accounting invariant
//! (cancelled work never skews the latency histogram), cancellation
//! safety (shed jobs never poison the memo cache, open sessions or the
//! persistent tier), and the chaos drill (a storm of already-expired
//! requests leaves live traffic answering byte-identically).
#![cfg(unix)]

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::Path;
use std::sync::mpsc;
use std::thread::JoinHandle;
use std::time::Duration;

use arrayflow_resilience::CancelToken;
use arrayflow_service::{
    Client, ClientConfig, EventServer, Json, ProtoMode, Service, ServiceConfig,
};
use arrayflow_store::{Store, StoreConfig};
use arrayflow_wire::proto::{AnalyzeRequest, Request as WireRequest, Response as WireResponse};
use arrayflow_wire::{encode_frame, FrameDecoder, FrameEvent};

fn start(config: ServiceConfig) -> (SocketAddr, JoinHandle<std::io::Result<()>>) {
    let service = Service::start(config).unwrap();
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let server = EventServer::attach(listener, service);
    let handle = std::thread::spawn(move || server.run(ProtoMode::Auto));
    (addr, handle)
}

fn client(addr: SocketAddr) -> Client {
    Client::new(
        addr.to_string(),
        ClientConfig {
            backoff_seed: Some(7),
            ..Default::default()
        },
    )
}

fn stop(addr: SocketAddr, handle: JoinHandle<std::io::Result<()>>) {
    let mut c = client(addr);
    c.shutdown().unwrap();
    handle.join().unwrap().unwrap();
}

/// A raw line-oriented JSON client: the test controls request ids
/// exactly, so response lines can be compared byte-for-byte across runs.
struct Line {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Line {
    fn connect(addr: SocketAddr) -> Line {
        let stream = TcpStream::connect(addr).unwrap();
        stream.set_nodelay(true).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        Line {
            reader: BufReader::new(stream.try_clone().unwrap()),
            writer: stream,
        }
    }

    fn request(&mut self, line: &str) -> String {
        self.writer.write_all(line.as_bytes()).unwrap();
        self.writer.write_all(b"\n").unwrap();
        let mut resp = String::new();
        let n = self.reader.read_line(&mut resp).expect("server response");
        assert!(n > 0, "server closed the connection");
        resp.trim_end().to_string()
    }
}

fn analyze_frame(id: usize, program: &str) -> String {
    format!(
        "{{\"id\": {id}, \"verb\": \"analyze\", \"program\": {}}}",
        Json::Str(program.into())
    )
}

/// Sends one JSON frame through the async path with a caller-owned
/// cancel token and returns the response line.
fn async_json(svc: &std::sync::Arc<Service>, frame: &str, cancel: CancelToken) -> String {
    let (tx, rx) = mpsc::channel();
    svc.handle_frame_async_ctrl(
        frame.as_bytes(),
        cancel,
        Box::new(move |resp| {
            let _ = tx.send(resp);
        }),
    );
    rx.recv_timeout(Duration::from_secs(30))
        .expect("frame must be answered")
        .line
}

/// Sends one binary frame through the async path and decodes the
/// response frame.
fn async_binary(svc: &std::sync::Arc<Service>, req: &WireRequest) -> WireResponse {
    let (tx, rx) = mpsc::channel();
    svc.handle_binary_frame_async(
        req.tag(),
        &req.encode_payload(),
        Box::new(move |resp| {
            let _ = tx.send(resp);
        }),
    );
    let out = rx
        .recv_timeout(Duration::from_secs(30))
        .expect("frame must be answered");
    let mut decoder = FrameDecoder::new(usize::MAX);
    decoder.extend(&out.frame);
    match decoder.next().unwrap() {
        Some(FrameEvent::Frame { tag, payload }) => WireResponse::decode(tag, &payload).unwrap(),
        other => panic!("expected one response frame, got {other:?}"),
    }
}

/// Sums every sample of a (possibly labelled) counter in a Prometheus
/// exposition.
fn counter_total(metrics: &str, name: &str) -> u64 {
    metrics
        .lines()
        .filter(|l| {
            l.starts_with(name) && {
                let rest = &l[name.len()..];
                rest.starts_with(' ') || rest.starts_with('{')
            }
        })
        .map(|l| l.rsplit(' ').next().unwrap().parse::<u64>().unwrap())
        .sum()
}

#[test]
fn slow_loris_connections_are_reaped_and_the_server_stays_up() {
    let (addr, handle) = start(ServiceConfig {
        workers: 1,
        idle_timeout: Duration::from_millis(200),
        ..Default::default()
    });

    // Six parked connections: pure idlers, half a JSON line, and half a
    // binary frame — none will ever complete a request.
    let mut parked = Vec::new();
    for i in 0..6 {
        let mut s = TcpStream::connect(addr).unwrap();
        match i % 3 {
            1 => s.write_all(b"{\"id\": 1, \"verb\": \"anal").unwrap(),
            2 => {
                let req = WireRequest::Ping { id: 1 };
                let frame = encode_frame(req.tag(), &req.encode_payload());
                s.write_all(&frame[..3]).unwrap();
            }
            _ => {}
        }
        parked.push(s);
    }

    // Past the idle timeout (plus poll-tick slack) every parked
    // connection must have been closed by the sweep.
    std::thread::sleep(Duration::from_millis(900));
    for s in &mut parked {
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let mut buf = [0u8; 64];
        match s.read(&mut buf) {
            Ok(0) | Err(_) => {}
            Ok(n) => panic!("parked connection got {n} bytes instead of a reap"),
        }
    }

    // The server is still healthy for well-behaved clients, and the
    // sweep is visible to operators.
    let mut c = client(addr);
    c.ping().unwrap();
    let metrics = c.metrics_prometheus().unwrap();
    assert_eq!(
        counter_total(&metrics, "arrayflow_idle_disconnects_total"),
        6,
        "all six parked connections must be counted:\n{metrics}"
    );

    stop(addr, handle);
}

#[test]
fn cancelled_jobs_have_their_own_counters_and_skip_the_latency_histogram() {
    let svc = Service::start(ServiceConfig {
        workers: 1,
        ..Default::default()
    })
    .unwrap();
    let before = svc.stats();
    let program = "do i = 1, 60 A[i+1] := A[i]; end";

    // A job whose client is already gone when the worker reaches it.
    let gone = CancelToken::new();
    gone.cancel();
    let line = async_json(&svc, &analyze_frame(1, program), gone);
    assert!(line.contains(r#""kind":"cancelled""#), "{line}");

    // A job whose deadline budget is spent on arrival.
    let frame = format!(
        "{{\"id\": 2, \"verb\": \"analyze\", \"program\": {}, \"deadline_ms\": 0}}",
        Json::Str(program.into())
    );
    let line = async_json(&svc, &frame, CancelToken::new());
    assert!(line.contains(r#""kind":"cancelled""#), "{line}");

    // Mirroring the oversized-frame invariant: cancelled work gets its
    // own counters (split by reason) and never touches `requests` or the
    // latency histogram — no client was answered in time, so timing it
    // would only skew the distribution.
    let after = svc.stats();
    assert_eq!(after.cancelled, before.cancelled + 2);
    assert_eq!(after.cancelled_disconnect, before.cancelled_disconnect + 1);
    assert_eq!(after.cancelled_expired, before.cancelled_expired + 1);
    assert_eq!(after.deadline_propagated, before.deadline_propagated + 1);
    assert_eq!(after.requests, before.requests);
    assert_eq!(after.latency, before.latency);
    assert_eq!(after.timeouts, before.timeouts, "cancelled is not timeout");

    // A healthy request afterwards is counted and timed as usual.
    let resp = svc.handle_frame(analyze_frame(3, program).as_bytes());
    assert!(resp.line.contains(r#""ok":true"#), "{}", resp.line);
    let done = svc.stats();
    assert_eq!(done.requests, after.requests + 1);
    assert_eq!(
        done.latency.iter().sum::<u64>(),
        after.latency.iter().sum::<u64>() + 1
    );

    svc.shutdown();
    svc.join_workers();
}

/// Structurally distinct single-loop programs over `A`.
fn normal_programs() -> Vec<String> {
    (0..6)
        .map(|k| format!("do i = 1, {} A[i+2] := A[i] + x; end", 30 + k))
        .collect()
}

/// Structurally distinct single-loop programs over `B`, disjoint from
/// [`normal_programs`] so a cache entry for one can never answer the
/// other.
fn storm_programs() -> Vec<String> {
    (0..6)
        .map(|k| format!("do i = 1, {} B[i+3] := B[i] * y; end", 50 + k))
        .collect()
}

const SESSION_BASE: &str = "do i = 1, 40 A[i+1] := A[i]; B[i] := A[i]; end";
const SESSION_EDIT: &str = "B[i] := A[i-2] * 2;";

/// Runs the same normal workload against a fresh store-backed service —
/// optionally interleaved with a storm of doomed requests — and returns
/// every response line plus the store's live-set bytes after shutdown.
fn run_workload(dir: &Path, with_storm: bool) -> (Vec<String>, Vec<Vec<u8>>) {
    let svc = Service::start(ServiceConfig {
        workers: 2,
        store: Some(StoreConfig::at(dir)),
        ..Default::default()
    })
    .unwrap();

    let normal = normal_programs();
    let storm = storm_programs();
    let mut lines = Vec::new();
    for (i, program) in normal.iter().enumerate() {
        if with_storm {
            // One doomed request whose client is gone, one whose budget
            // is already spent — both against programs the normal run
            // never submits.
            let gone = CancelToken::new();
            gone.cancel();
            let line = async_json(&svc, &analyze_frame(1000 + i, &storm[i]), gone);
            assert!(line.contains(r#""kind":"cancelled""#), "{line}");
            let frame = format!(
                "{{\"id\": {}, \"verb\": \"analyze\", \"program\": {}, \"deadline_ms\": 0}}",
                2000 + i,
                Json::Str(storm[i].clone())
            );
            let line = async_json(&svc, &frame, CancelToken::new());
            assert!(line.contains(r#""kind":"cancelled""#), "{line}");
        }
        lines.push(svc.handle_frame(analyze_frame(i, program).as_bytes()).line);
    }

    // Session flow: open, optionally hit the session with a cancelled
    // delta, then apply a real delta. The cancelled delta must leave no
    // trace in the session state the real delta sees.
    let open = svc
        .handle_frame(
            format!(
                "{{\"id\": 900, \"verb\": \"open\", \"program\": {}}}",
                Json::Str(SESSION_BASE.into())
            )
            .as_bytes(),
        )
        .line;
    lines.push(open.clone());
    let json = Json::parse(open.as_bytes()).unwrap();
    let result = json.get("result").unwrap();
    let session = result.get("session").and_then(Json::as_u64).unwrap();
    let fingerprint = result
        .get("fingerprint")
        .and_then(Json::as_str)
        .unwrap()
        .to_string();
    let stmt = {
        let mut p = arrayflow_ir::parse_program(SESSION_BASE).unwrap();
        p.renumber();
        arrayflow_workloads::assign_ids(&p)[1].0 as u64
    };
    let delta_frame = |id: usize| {
        format!(
            "{{\"id\": {id}, \"verb\": \"delta\", \"session\": {session}, \"fingerprint\": {}, \"stmt\": {stmt}, \"text\": {}}}",
            Json::Str(fingerprint.clone()),
            Json::Str(SESSION_EDIT.into())
        )
    };
    if with_storm {
        let gone = CancelToken::new();
        gone.cancel();
        let line = async_json(&svc, &delta_frame(901), gone);
        assert!(line.contains(r#""kind":"cancelled""#), "{line}");
    }
    lines.push(svc.handle_frame(delta_frame(902).as_bytes()).line);

    if with_storm {
        // The memo cache never saw the doomed programs: a fingerprint
        // probe for each must miss, while a normal program's fingerprint
        // answers warm. Fingerprints come from a scratch service so the
        // one under test is never asked to analyze a storm program.
        let scratch = Service::start(ServiceConfig {
            workers: 1,
            ..Default::default()
        })
        .unwrap();
        let fp_of = |program: &str| -> [u8; 16] {
            match async_binary(
                &scratch,
                &WireRequest::Analyze(AnalyzeRequest {
                    id: 1,
                    fingerprint: None,
                    problems: None,
                    distance_bound: None,
                    source: Some(program.as_bytes().to_vec()),
                }),
            ) {
                WireResponse::Analyze(ok) => ok.loops[0].fingerprint,
                other => panic!("scratch analysis failed: {other:?}"),
            }
        };
        for program in &storm {
            let probe = async_binary(
                &svc,
                &WireRequest::Analyze(AnalyzeRequest {
                    id: 3000,
                    fingerprint: Some(fp_of(program)),
                    problems: None,
                    distance_bound: None,
                    source: None,
                }),
            );
            match probe {
                WireResponse::Err { message, .. } => {
                    assert!(message.contains("unknown fingerprint"), "{message}")
                }
                other => panic!("cancelled work leaked into the cache: {other:?}"),
            }
        }
        let probe = async_binary(
            &svc,
            &WireRequest::Analyze(AnalyzeRequest {
                id: 3001,
                fingerprint: Some(fp_of(&normal[0])),
                problems: None,
                distance_bound: None,
                source: None,
            }),
        );
        match probe {
            WireResponse::Analyze(ok) => assert_eq!(ok.cache_hits, 1),
            other => panic!("completed work must stay cached: {other:?}"),
        }
        let stats = svc.stats();
        assert!(stats.cancelled >= 13, "storm must be counted: {stats:?}");
        scratch.shutdown();
        scratch.join_workers();
    }

    svc.shutdown();
    svc.join_workers();
    let store = Store::open(StoreConfig::at(dir)).unwrap();
    (lines, live_records(&store.export_live()))
}

/// Splits an [`Store::export_live`] batch (`len | crc | payload` frames)
/// into its records and sorts them: the live *set* is what must match
/// across runs — its iteration order is per-instance.
fn live_records(batch: &[u8]) -> Vec<Vec<u8>> {
    let mut records = Vec::new();
    let mut at = 0;
    while at < batch.len() {
        let len = u32::from_le_bytes(batch[at..at + 4].try_into().unwrap()) as usize;
        records.push(batch[at..at + 8 + len].to_vec());
        at += 8 + len;
    }
    records.sort();
    records
}

#[test]
fn cancelled_and_expired_work_never_poisons_cache_sessions_or_store() {
    let base = std::env::temp_dir().join(format!("afcancel-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let golden_dir = base.join("golden");
    let storm_dir = base.join("storm");
    std::fs::create_dir_all(&golden_dir).unwrap();
    std::fs::create_dir_all(&storm_dir).unwrap();

    let (golden_lines, golden_store) = run_workload(&golden_dir, false);
    let (storm_lines, storm_store) = run_workload(&storm_dir, true);

    // Every answer a live client received — analyses, the session open,
    // the real delta — is byte-identical to the storm-free run, and the
    // persistent tier holds the exact same live set.
    assert_eq!(golden_lines, storm_lines);
    assert_eq!(golden_store, storm_store);

    let _ = std::fs::remove_dir_all(&base);
}

#[test]
fn a_deadline_storm_leaves_live_answers_byte_identical_and_work_bounded() {
    let live: Vec<String> = (0..20)
        .map(|k| {
            format!(
                "do i = 1, {} A[i+2] := A[i] + x; B[i] := A[i+1]; end",
                25 + k
            )
        })
        .collect();

    // A deep queue: the whole storm fits, so live requests are never
    // bounced `overloaded` — they queue behind doomed jobs that the
    // worker sheds in microseconds each.
    let config = || ServiceConfig {
        workers: 1,
        queue_capacity: 2048,
        ..Default::default()
    };
    let solver_passes = |addr: SocketAddr| -> u64 {
        let metrics = client(addr).metrics_prometheus().unwrap();
        counter_total(&metrics, "arrayflow_engine_solver_passes_total")
    };

    // Golden run: the live stream alone.
    let (addr, handle) = start(config());
    let mut c = Line::connect(addr);
    let golden: Vec<String> = live
        .iter()
        .enumerate()
        .map(|(i, p)| c.request(&analyze_frame(i, p)))
        .collect();
    let golden_passes = solver_passes(addr);
    assert!(golden_passes > 0);
    stop(addr, handle);

    // Storm run: two connections flood already-expired budgets while
    // the same live stream runs.
    let (addr, handle) = start(config());
    let flooders: Vec<_> = (0..2)
        .map(|f| {
            std::thread::spawn(move || {
                let stream = TcpStream::connect(addr).unwrap();
                stream.set_nodelay(true).unwrap();
                stream
                    .set_read_timeout(Some(Duration::from_secs(30)))
                    .unwrap();
                let mut writer = stream.try_clone().unwrap();
                let reader = std::thread::spawn(move || {
                    let mut cancelled = 0u64;
                    let mut lines = BufReader::new(stream).lines();
                    for _ in 0..400 {
                        let line = lines.next().unwrap().unwrap();
                        if line.contains(r#""kind":"cancelled""#) {
                            cancelled += 1;
                        }
                    }
                    cancelled
                });
                // One up-front burst per connection of already-expired
                // budgets: every job is dead on arrival, so the worker
                // sheds each at dequeue without running a single pass.
                let mut burst = String::new();
                for k in 0..400 {
                    burst.push_str(&format!(
                        "{{\"id\": {k}, \"verb\": \"analyze\", \"program\": \"do i = 1, {} C{f}[i+1] := C{f}[i] + z; end\", \"deadline_ms\": 0}}\n",
                        100 + k
                    ));
                }
                writer.write_all(burst.as_bytes()).unwrap();
                reader.join().unwrap()
            })
        })
        .collect();

    // Let the flood land first, then run the live stream through it.
    std::thread::sleep(Duration::from_millis(30));
    let mut c = Line::connect(addr);
    let stormed: Vec<String> = live
        .iter()
        .enumerate()
        .map(|(i, p)| c.request(&analyze_frame(i, p)))
        .collect();
    let cancelled_seen: u64 = flooders.into_iter().map(|f| f.join().unwrap()).sum();

    // Live answers are byte-identical to the storm-free run.
    assert_eq!(golden, stormed);

    // The storm was shed, visibly: cancelled responses reached the
    // flooders and the counter moved.
    let metrics = client(addr).metrics_prometheus().unwrap();
    let cancelled_total = counter_total(&metrics, "arrayflow_cancelled_jobs_total");
    assert!(cancelled_total > 0, "storm must be counted:\n{metrics}");
    assert!(cancelled_seen > 0, "flooders must see cancelled responses");

    // And shed cheaply: dead-on-arrival budgets cost no solver passes,
    // so total work stays within 1.2x of the golden run.
    let storm_passes = solver_passes(addr);
    assert!(
        (storm_passes as f64) <= (golden_passes as f64) * 1.2,
        "storm burned {storm_passes} passes vs {golden_passes} golden"
    );

    // The server is responsive after the storm.
    client(addr).ping().unwrap();
    stop(addr, handle);
}
