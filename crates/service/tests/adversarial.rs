//! Never-take-down suite: hostile and degenerate input through a live
//! service over real TCP. The invariant under attack is always the
//! same — every line sent gets exactly one framed JSON response (ok or
//! structured error), the connection is never dropped, and the service
//! still answers clean work afterwards.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

use arrayflow_service::{Json, Server, ServiceConfig};

struct Session {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Session {
    fn connect(addr: &str) -> Session {
        let stream = TcpStream::connect(addr).expect("connect");
        stream.set_nodelay(true).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        Session {
            reader: BufReader::new(stream.try_clone().unwrap()),
            writer: stream,
        }
    }

    /// Sends raw bytes (a newline is appended) and demands one framed
    /// JSON response on a live connection.
    fn send_raw(&mut self, payload: &[u8]) -> Json {
        self.writer.write_all(payload).unwrap();
        self.writer.write_all(b"\n").unwrap();
        let mut resp = String::new();
        let n = self
            .reader
            .read_line(&mut resp)
            .expect("response after hostile frame");
        assert!(n > 0, "connection dropped after {payload:?}");
        Json::parse(resp.trim_end().as_bytes())
            .unwrap_or_else(|e| panic!("unframed response {resp:?}: {e}"))
    }

    fn send(&mut self, line: &str) -> Json {
        self.send_raw(line.as_bytes())
    }

    /// The connection still does useful work: one clean analyze.
    fn assert_still_alive(&mut self) {
        let resp = self
            .send(r#"{"id": 1, "verb": "analyze", "program": "do i = 1, 9 A[i+2] := A[i]; end"}"#);
        assert_eq!(
            resp.get("ok").and_then(Json::as_bool),
            Some(true),
            "clean analyze after hostility failed: {resp:?}"
        );
    }
}

fn start() -> (String, std::thread::JoinHandle<std::io::Result<()>>) {
    let config = ServiceConfig {
        max_frame_bytes: 64 * 1024,
        ..ServiceConfig::default()
    };
    let server = Server::bind("127.0.0.1:0", config).expect("bind");
    let addr = server.local_addr().expect("addr").to_string();
    (addr, std::thread::spawn(move || server.run()))
}

fn error_kind(resp: &Json) -> &str {
    assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(false));
    resp.get("error")
        .and_then(|e| e.get("kind"))
        .and_then(Json::as_str)
        .expect("error.kind")
}

#[test]
fn hostile_frames_never_take_the_connection_down() {
    let (addr, server) = start();
    let mut s = Session::connect(&addr);

    // Binary garbage, invalid UTF-8, empty line, bare words.
    for payload in [
        b"\x00\x01\x02\xff\xfe garbage".as_slice(),
        b"\xc3\x28".as_slice(), // invalid UTF-8 sequence
        b"".as_slice(),
        b"GET / HTTP/1.1".as_slice(),
    ] {
        let resp = s.send_raw(payload);
        assert!(
            ["protocol", "parse"].contains(&error_kind(&resp)),
            "unexpected kind for {payload:?}: {resp:?}"
        );
    }

    // Structurally valid JSON that abuses the protocol.
    for frame in [
        r#"{}"#,
        r#"{"verb": 42}"#,
        r#"{"verb": "conquer"}"#,
        r#"{"id": {"nested": "id"}, "verb": "analyze"}"#,
        r#"{"verb": "analyze", "program": 17}"#,
        r#"{"verb": "analyze", "program": "x := 1;", "problems": ["zeta"]}"#,
        r#"[1, 2, 3]"#,
        r#""just a string""#,
        r#"null"#,
    ] {
        let resp = s.send(frame);
        assert_eq!(
            resp.get("ok").and_then(Json::as_bool),
            Some(false),
            "{frame}"
        );
    }

    s.assert_still_alive();
    s.send(r#"{"id": 9, "verb": "shutdown"}"#);
    server.join().expect("server").expect("run");
}

#[test]
fn deep_nesting_is_rejected_not_overflowed() {
    let (addr, server) = start();
    let mut s = Session::connect(&addr);

    // 500 nested arrays: far past the parser's depth cap, which must
    // answer with an error instead of blowing the stack.
    let mut deep = String::with_capacity(1100);
    deep.extend(std::iter::repeat_n('[', 500));
    deep.extend(std::iter::repeat_n(']', 500));
    let resp = s.send(&deep);
    assert_eq!(error_kind(&resp), "protocol");

    // Same, hidden inside a legitimate field.
    let mut frame = String::from(r#"{"id": 1, "verb": "analyze", "program": "#);
    frame.extend(std::iter::repeat_n('[', 400));
    frame.extend(std::iter::repeat_n(']', 400));
    frame.push('}');
    let resp = s.send(&frame);
    assert_eq!(error_kind(&resp), "protocol");

    s.assert_still_alive();
    s.send(r#"{"id": 9, "verb": "shutdown"}"#);
    server.join().expect("server").expect("run");
}

#[test]
fn oversized_frames_are_discarded_in_bounded_memory() {
    let (addr, server) = start();
    let mut s = Session::connect(&addr);

    // 4 MiB line against a 64 KiB cap: discarded while streaming, then
    // answered, and the framing resynchronizes on the next newline.
    let huge = "x".repeat(4 * 1024 * 1024);
    let resp = s.send(&huge);
    assert_eq!(error_kind(&resp), "protocol");

    s.assert_still_alive();
    s.send(r#"{"id": 9, "verb": "shutdown"}"#);
    server.join().expect("server").expect("run");
}

#[test]
fn degenerate_programs_are_answered_not_crashed() {
    let (addr, server) = start();
    let mut s = Session::connect(&addr);

    let mut nested = String::new();
    for d in 0..24 {
        nested.push_str(&format!("do i{d} = 1, 4 "));
    }
    nested.push_str("A[i0+1] := A[i0]; ");
    nested.extend(std::iter::repeat_n("end ", 24));

    let degenerates = [
        // Zero-trip and backwards loops.
        "do i = 1, 0 A[i+1] := A[i]; end".to_string(),
        "do i = 9, 3 A[i+1] := A[i]; end".to_string(),
        // Enormous bounds (the solver is bound-independent).
        "do i = 1, 1000000000 A[i+1] := A[i]; end".to_string(),
        // Empty-ish bodies and scalar-only loops.
        "x := 1;".to_string(),
        "do i = 1, 10 x := x + 1; end".to_string(),
        // Self-dependence at distance zero.
        "do i = 1, 10 A[i] := A[i]; end".to_string(),
        // Deep loop nest.
        nested,
        // A loop whose subscripts stress the distance lattice.
        "do i = 1, 100 A[i+99] := A[i] + A[i+50]; B[i] := A[i+99]; end".to_string(),
    ];
    for (i, p) in degenerates.iter().enumerate() {
        let frame = format!(
            r#"{{"id": {i}, "verb": "analyze", "program": {}}}"#,
            Json::Str(p.clone())
        );
        let resp = s.send(&frame);
        // ok or a framed analysis/parse error — anything but a dropped
        // connection or a hung server.
        assert!(
            resp.get("ok").and_then(Json::as_bool).is_some(),
            "unframed response for degenerate program {i}: {resp:?}"
        );
    }

    s.assert_still_alive();
    s.send(r#"{"id": 9, "verb": "shutdown"}"#);
    server.join().expect("server").expect("run");
}

#[test]
fn fault_plan_plus_hostility_still_answers_everything() {
    // The adversarial stream with faults injected underneath: parse
    // errors, panics, and hostile frames interleaved — every frame is
    // still answered on a live connection.
    let config = ServiceConfig {
        faults: Some(std::sync::Arc::new(
            arrayflow_resilience::FaultPlan::parse("seed=11,solver_panic=50%").unwrap(),
        )),
        ..ServiceConfig::default()
    };
    let server = Server::bind("127.0.0.1:0", config).expect("bind");
    let addr = server.local_addr().expect("addr").to_string();
    let server_thread = std::thread::spawn(move || server.run());
    let mut s = Session::connect(&addr);

    for i in 0..60 {
        let resp = match i % 3 {
            0 => s.send(&format!(
                r#"{{"id": {i}, "verb": "analyze", "program": "do i = 1, {} A[i+2] := A[i]; end"}}"#,
                10 + i
            )),
            1 => s.send("not json at all"),
            _ => s.send(r#"{"verb": "analyze", "program": "do broken"}"#),
        };
        assert!(
            resp.get("ok").and_then(Json::as_bool).is_some(),
            "frame {i} was not answered with a frame: {resp:?}"
        );
    }

    s.send(r#"{"id": 999, "verb": "shutdown"}"#);
    server_thread.join().expect("server").expect("run");
}
