//! The resilient client against misbehaving servers: reconnect after
//! dropped connections, retry on `overloaded`, fail fast on structured
//! errors, and bounded time against a wedged server.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::thread;
use std::time::{Duration, Instant};

use arrayflow_service::{
    Client, ClientConfig, ClientError, ErrorKind, Server, Service, ServiceConfig,
};

/// A fast-retry config for tests: small deadlines, deterministic jitter.
fn test_config() -> ClientConfig {
    ClientConfig {
        connect_timeout: Duration::from_secs(2),
        request_timeout: Duration::from_secs(2),
        max_retries: 4,
        backoff_base: Duration::from_millis(1),
        backoff_cap: Duration::from_millis(10),
        backoff_seed: Some(7),
        ..ClientConfig::default()
    }
}

/// Runs `script` against each accepted connection on an ephemeral
/// listener, in order; returns the address and the server thread.
fn fake_server(script: Vec<fn(TcpStream)>) -> (String, thread::JoinHandle<()>) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr").to_string();
    let handle = thread::spawn(move || {
        for handler in script {
            let (stream, _) = listener.accept().expect("accept");
            handler(stream);
        }
    });
    (addr, handle)
}

/// Reads one request line and answers with a well-formed `ok` frame.
fn answer_ok(stream: TcpStream) {
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut line = String::new();
    reader.read_line(&mut line).expect("read");
    let mut w = &stream;
    w.write_all(b"{\"id\":0,\"ok\":true,\"pong\":true}\n")
        .expect("write");
}

/// Accepts and immediately drops the connection — a crash mid-session.
fn drop_connection(stream: TcpStream) {
    drop(stream);
}

/// One connection, three requests: `overloaded` twice (transient
/// backpressure), then an `ok` once capacity returns.
fn overloaded_twice_then_ok(stream: TcpStream) {
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut w = &stream;
    for reply in [
        b"{\"id\":0,\"ok\":false,\"error\":{\"kind\":\"overloaded\",\"message\":\"queue full\"}}\n"
            .as_slice(),
        b"{\"id\":0,\"ok\":false,\"error\":{\"kind\":\"overloaded\",\"message\":\"queue full\"}}\n"
            .as_slice(),
        b"{\"id\":0,\"ok\":true,\"pong\":true}\n".as_slice(),
    ] {
        let mut line = String::new();
        reader.read_line(&mut line).expect("read");
        w.write_all(reply).expect("write");
    }
}

/// Reads one request and answers a fatal `parse` error.
fn answer_parse_error(stream: TcpStream) {
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut line = String::new();
    reader.read_line(&mut line).expect("read");
    let mut w = &stream;
    w.write_all(b"{\"id\":0,\"ok\":false,\"error\":{\"kind\":\"parse\",\"message\":\"bad\"}}\n")
        .expect("write");
}

/// Reads one request and never answers — a wedged server.
fn wedge(stream: TcpStream) {
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut line = String::new();
    reader.read_line(&mut line).expect("read");
    // Hold the socket open without responding until the client gives up.
    thread::sleep(Duration::from_millis(500));
}

#[test]
fn reconnects_when_the_server_drops_the_connection() {
    let (addr, server) = fake_server(vec![drop_connection, answer_ok]);
    let mut client = Client::new(addr, test_config());
    client.ping().expect("retry on a new connection succeeds");
    assert_eq!(client.connects(), 2, "one reconnect");
    assert_eq!(client.retries(), 1);
    server.join().expect("fake server");
}

#[test]
fn survives_a_mid_session_crash() {
    // First connection serves one request then dies; the client's next
    // request sees EOF, redials, and resends.
    let (addr, server) = fake_server(vec![answer_ok, answer_ok]);
    let mut client = Client::new(addr, test_config());
    client.ping().expect("first request");
    client.ping().expect("second request after server restart");
    assert_eq!(client.connects(), 2);
    server.join().expect("fake server");
}

#[test]
fn overloaded_is_retried_until_capacity_returns() {
    let (addr, server) = fake_server(vec![overloaded_twice_then_ok]);
    let mut client = Client::new(addr, test_config());
    client.ping().expect("retries ride out the overload");
    assert_eq!(client.retries(), 2);
    // `overloaded` is an application answer, not a transport failure:
    // the client kept the connection instead of redialing.
    assert_eq!(client.connects(), 1);
    server.join().expect("fake server");
}

#[test]
fn fatal_service_errors_are_not_retried() {
    let (addr, server) = fake_server(vec![answer_parse_error]);
    let mut client = Client::new(addr, test_config());
    match client.analyze("do do do") {
        Err(ClientError::Service { kind, .. }) => assert_eq!(kind, Some(ErrorKind::Parse)),
        other => panic!("expected a fatal service error, got {other:?}"),
    }
    assert_eq!(client.retries(), 0, "a structured answer is final");
    server.join().expect("fake server");
}

#[test]
fn retry_budget_is_bounded() {
    // Nothing is listening on this address: every attempt fails fast
    // with connection-refused until the budget runs out.
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr").to_string();
    drop(listener);
    let mut config = test_config();
    config.max_retries = 2;
    let mut client = Client::new(addr, config);
    match client.ping() {
        Err(ClientError::Io(_)) => {}
        other => panic!("expected transport failure, got {other:?}"),
    }
    assert_eq!(client.retries(), 2, "exactly max_retries resends");
}

#[test]
fn wedged_server_costs_bounded_time() {
    let (addr, server) = fake_server(vec![wedge]);
    let mut config = test_config();
    config.request_timeout = Duration::from_millis(100);
    config.max_retries = 0;
    let mut client = Client::new(addr, config);
    let start = Instant::now();
    match client.ping() {
        Err(ClientError::Io(_)) => {}
        other => panic!("expected a deadline failure, got {other:?}"),
    }
    assert!(
        start.elapsed() < Duration::from_secs(2),
        "deadline bounded the hang: {:?}",
        start.elapsed()
    );
    server.join().expect("fake server");
}

#[test]
fn full_session_against_the_real_service() {
    let server = Server::bind("127.0.0.1:0", ServiceConfig::default()).expect("bind");
    let addr = server.local_addr().expect("addr").to_string();
    let server_thread = thread::spawn(move || server.run());

    let mut client = Client::connect(addr, test_config()).expect("connect");
    let a = client
        .analyze("do i = 1, 100 A[i+2] := A[i] + x; end")
        .expect("analyze");
    let b = client
        .analyze("do j = 1, 100 B[j+2] := B[j] + y; end")
        .expect("alpha-equivalent analyze");
    assert!(a.contains("reuse use_site"));
    assert!(b.contains("\"cache_hits\":1"), "memo cache hit: {b}");

    let stats = client.stats().expect("stats");
    assert!(stats.contains("\"ok\":true"));
    let metrics = client.metrics().expect("metrics");
    assert!(metrics.contains("arrayflow_requests_total"));

    client.shutdown().expect("shutdown");
    server_thread.join().expect("server thread").expect("run");
    assert_eq!(client.connects(), 1, "one connection for the whole session");
    assert_eq!(client.retries(), 0);
}

/// The in-process path is unaffected by client-side machinery: a
/// `Service` embedded directly still frames every response.
#[test]
fn embedded_service_still_frames_responses() {
    let service = Service::start(ServiceConfig::default()).expect("start");
    let resp = service.handle_frame(br#"{"id": 1, "verb": "ping"}"#);
    assert!(resp.line.contains("\"ok\":true"));
    service.shutdown();
    service.join_workers();
}
