#![warn(missing_docs)]
//! A zero-dependency analysis server exposing the batch engine over
//! TCP and stdio.
//!
//! The framework's per-loop cost is bounded (three solver passes for
//! must-problems, two for may-problems), which makes array reference
//! analysis viable as a low-latency network service: clients submit DSL
//! programs plus a problem selection and get per-loop reports back,
//! answered from the shared memoizing [`Engine`](arrayflow_engine::Engine)
//! whenever an alpha-equivalent loop has been analyzed before.
//!
//! The wire format is newline-framed JSON (see [`proto`]), implemented
//! with the in-crate encoder/decoder in [`json`] — the workspace builds
//! with zero external dependencies. Robustness is the design center:
//!
//! * a **bounded in-flight queue** with explicit `overloaded` errors on
//!   backpressure, never unbounded buffering;
//! * a **per-request deadline** answered with a `timeout` error;
//! * a **frame size cap** — oversized lines are discarded in bounded
//!   memory and answered with a `protocol` error, and the connection
//!   stays usable;
//! * a **structured error taxonomy** ([`ErrorKind`]: `parse`,
//!   `analysis`, `timeout`, `overloaded`, `protocol`) — hostile bytes
//!   produce error responses, not panics or dropped connections;
//! * **graceful shutdown** that drains every queued request before the
//!   workers exit;
//! * a **`stats` verb** surfacing the engine's counters (via their
//!   `Display` one-liners) plus service counters: connections, requests
//!   by outcome, queue-depth high-water mark and latency / queue-wait
//!   histograms;
//! * a **`metrics` verb** returning every metric registered across the
//!   service, engine, cache, store and tier ([`arrayflow_obs`]) as
//!   structured JSON plus a Prometheus text exposition, and per-request
//!   **tracing spans** feeding an optional slow-request log
//!   ([`ServiceConfig::slow_log_micros`], `--slow-log` on `serve`);
//! * optional **persistence** (`--store DIR` on the `serve` binary, or
//!   [`ServiceConfig::store`]): reports survive restarts in a crash-safe
//!   segment log ([`arrayflow_store`]), the cache warm-starts from disk
//!   at boot, and a **`compact` verb** reclaims space from superseded
//!   records;
//! * **panic isolation and supervision** — a worker that panics answers
//!   its own request with a framed `analysis` error and a supervisor
//!   thread replaces dead workers (`arrayflow_worker_restarts_total`);
//!   deterministic fault plans ([`ServiceConfig::faults`], `--fault-plan`
//!   on `serve`) drill the whole containment stack;
//! * a **resilient [`Client`]** with transparent reconnect, per-request
//!   deadlines, and jittered exponential backoff retries for transport
//!   failures and `overloaded` responses.
//!
//! # Quickstart
//!
//! Run `cargo run --release -p arrayflow-service --bin serve`, then pipe
//! newline-delimited requests to `127.0.0.1:7433` — or embed the service:
//!
//! ```
//! use arrayflow_service::{Service, ServiceConfig};
//!
//! let service = Service::start(ServiceConfig::default()).unwrap();
//! let resp = service.handle_frame(
//!     br#"{"id": 1, "verb": "analyze", "program": "do i = 1, 9 A[i+2] := A[i]; end"}"#,
//! );
//! assert!(resp.line.contains("\"ok\":true"));
//! service.shutdown();
//! service.join_workers();
//! ```

pub mod binproto;
pub mod client;
#[cfg(unix)]
pub mod event_server;
pub mod json;
pub mod proto;
pub mod router;
pub mod server;
pub mod service;

pub use binproto::{kind_byte, kind_from_byte, BinaryResponse};
pub use client::{Client, ClientConfig, ClientError, OpenedSession};
#[cfg(unix)]
pub use event_server::{EventServer, ProtoMode};
pub use json::{Json, JsonError};
pub use proto::{ErrorKind, Request, ServiceError, Verb};
pub use router::{Router, RouterConfig, RouterServer};
pub use server::{run_stdio, Frame, FrameReader, Server};
pub use service::{FrameResponse, Service, ServiceConfig, ServiceStats, LATENCY_BUCKETS_US};
