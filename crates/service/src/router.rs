//! The cluster router: `serve --router`'s coordinator process.
//!
//! The router owns no engine and no store. It terminates client
//! connections (both newline-JSON and `AFWIRE01` binary, sniffed per
//! connection exactly like a node does), computes each analyze request's
//! canonical 128-bit fingerprint — taken verbatim from binary
//! fingerprint-first requests, computed from source otherwise — and
//! consistent-hashes it across the node list
//! ([`Topology`]), so every alpha-equivalent
//! loop lands on the same node's memo cache and segment log. Aggregate
//! cache capacity multiplies with node count instead of diluting the way
//! random load balancing would.
//!
//! **Failover.** Each backend carries a health flag (refreshed by a
//! background prober speaking the `health` verb), a
//! [`CircuitBreaker`], and a small pool of binary-mode connections. A
//! forward that fails rotates to the shard's designated replica — node
//! `(i+1) % n`, the peer `serve --replicate-to` keeps warm with the
//! primary's segment log — and is counted in
//! `arrayflow_router_failovers_total`. A replica answering a failed-over
//! analyze from its replicated store shows up as
//! `arrayflow_router_replica_warm_hits_total`.
//!
//! **Aggregation.** `stats` fans out to every node and merges the JSON
//! numerically (counters sum, objects recurse) with per-node sections;
//! `metrics` merges the Prometheus expositions with a `node` label per
//! series ([`merge_expositions`]), the router's own metrics riding along
//! as `node="router"`.
//!
//! Requests on one client connection are forwarded sequentially, so
//! pipelined requests come back in request order — the per-connection
//! ordering contract of both protocols survives the extra hop.

use std::io::{self, BufReader, BufWriter, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use arrayflow_cluster::{merge_expositions, Topology};
use arrayflow_engine::fingerprint_route_hash;
use arrayflow_ir as ir;
use arrayflow_obs::{Counter, Registry};
use arrayflow_resilience::CircuitBreaker;
use arrayflow_store::codec::decode_report;
use arrayflow_wire::encode_frame;
use arrayflow_wire::frame::read_frame;
use arrayflow_wire::proto::{
    strip_deadline, with_deadline, AnalyzeOk, AnalyzeRequest, CustomRequest, DeltaOk,
    Request as WireRequest, Response as WireResponse, SessionOk,
};

use crate::binproto::{kind_byte, kind_from_byte};
use crate::json::Json;
use crate::proto::{encode_err, encode_ok, ErrorKind, Request, ServiceError, Verb};
use crate::server::{Frame, FrameReader};

/// How long a blocked read waits before re-checking the shutdown flag.
const READ_POLL: Duration = Duration::from_millis(50);

/// Idle backend connections kept per node.
const POOL_CAP: usize = 8;

/// Router tuning. Start from [`RouterConfig::new`] and adjust.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// The node list and ring.
    pub topology: Topology,
    /// Health-probe cadence.
    pub probe_interval: Duration,
    /// Deadline for dialing a backend.
    pub connect_timeout: Duration,
    /// Per-forward deadline cap (write + read on the backend connection).
    /// A client that sent a `deadline_ms` budget gets the *remaining*
    /// budget — elapsed router time already subtracted — as its forward
    /// deadline instead, never more than this cap.
    pub request_timeout: Duration,
    /// Cap on a single frame in either direction.
    pub max_frame_bytes: usize,
    /// Consecutive backend failures that open its breaker.
    pub breaker_threshold: u32,
    /// Open-breaker cooldown before a half-open probe forward.
    pub breaker_cooldown: Duration,
}

impl RouterConfig {
    /// Defaults: 500 ms probes, 2 s connect / 10 s request deadlines,
    /// 64 MiB frames, breaker opens after 3 failures with a 1 s cooldown.
    pub fn new(topology: Topology) -> RouterConfig {
        RouterConfig {
            topology,
            probe_interval: Duration::from_millis(500),
            connect_timeout: Duration::from_secs(2),
            request_timeout: Duration::from_secs(10),
            max_frame_bytes: 64 << 20,
            breaker_threshold: 3,
            breaker_cooldown: Duration::from_secs(1),
        }
    }
}

/// One backend node: pooled binary connections plus failure containment.
struct Backend {
    healthy: AtomicBool,
    breaker: CircuitBreaker,
    pool: Mutex<Vec<TcpStream>>,
}

impl Backend {
    fn dial(&self, addr: &str, config: &RouterConfig) -> io::Result<TcpStream> {
        let addr = addr.to_socket_addrs()?.next().ok_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidInput, "address resolved to nothing")
        })?;
        let stream = TcpStream::connect_timeout(&addr, config.connect_timeout)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(config.request_timeout))?;
        stream.set_write_timeout(Some(config.request_timeout))?;
        Ok(stream)
    }

    fn exchange(
        stream: &mut TcpStream,
        frame: &[u8],
        config: &RouterConfig,
        deadline: Duration,
    ) -> io::Result<(u8, Vec<u8>)> {
        stream.set_read_timeout(Some(deadline))?;
        stream.set_write_timeout(Some(deadline))?;
        stream.write_all(frame)?;
        read_frame(stream, config.max_frame_bytes)
    }

    /// One request/response round trip on a pooled connection, bounded by
    /// `deadline` (the caller's remaining budget, never more than the
    /// configured per-forward cap). A stale pooled connection gets exactly
    /// one fresh-dial retry; the caller owns breaker/health accounting.
    fn round_trip(
        &self,
        addr: &str,
        frame: &[u8],
        config: &RouterConfig,
        deadline: Duration,
    ) -> io::Result<(u8, Vec<u8>)> {
        // Pop as a standalone statement: an `if let` on the lock would
        // keep the guard alive across `put_back`, re-locking the pool
        // mutex while it is still held.
        let pooled = self.pool.lock().unwrap().pop();
        if let Some(mut stream) = pooled {
            if let Ok(resp) = Self::exchange(&mut stream, frame, config, deadline) {
                self.put_back(stream);
                return Ok(resp);
            }
        }
        let mut stream = self.dial(addr, config)?;
        let resp = Self::exchange(&mut stream, frame, config, deadline)?;
        self.put_back(stream);
        Ok(resp)
    }

    fn put_back(&self, stream: TcpStream) {
        let mut pool = self.pool.lock().unwrap();
        if pool.len() < POOL_CAP {
            pool.push(stream);
        }
    }
}

#[derive(Clone)]
struct RouterInstruments {
    connections: Counter,
    forwards: Counter,
    failovers: Counter,
    replica_warm_hits: Counter,
    unroutable: Counter,
    probes: Counter,
    probe_failures: Counter,
    deadline_forwards: Counter,
    expired_before_forward: Counter,
}

impl RouterInstruments {
    fn registered(registry: &Registry) -> Self {
        Self {
            connections: registry.counter(
                "arrayflow_router_connections_total",
                "client connections accepted by the router",
            ),
            forwards: registry.counter(
                "arrayflow_router_forwards_total",
                "requests forwarded to a backend node",
            ),
            failovers: registry.counter(
                "arrayflow_router_failovers_total",
                "forwards that rotated from a dead primary to its replica",
            ),
            replica_warm_hits: registry.counter(
                "arrayflow_router_replica_warm_hits_total",
                "failed-over analyzes the replica answered from its replicated cache",
            ),
            unroutable: registry.counter(
                "arrayflow_router_unroutable_total",
                "requests whose primary and replica were both unreachable",
            ),
            probes: registry.counter(
                "arrayflow_router_probes_total",
                "backend health probes sent",
            ),
            probe_failures: registry.counter(
                "arrayflow_router_probe_failures_total",
                "backend health probes that failed",
            ),
            deadline_forwards: registry.counter(
                "arrayflow_router_deadline_forwards_total",
                "forwards carrying a propagated remaining-budget deadline",
            ),
            expired_before_forward: registry.counter(
                "arrayflow_router_expired_before_forward_total",
                "requests whose deadline budget was exhausted before any forward",
            ),
        }
    }
}

/// The routing core, shared by every client-connection thread and the
/// prober. [`RouterServer`] owns the listener in front of it.
pub struct Router {
    config: RouterConfig,
    backends: Vec<Backend>,
    registry: Registry,
    ins: RouterInstruments,
    shutdown: AtomicBool,
    next_id: AtomicU64,
}

impl Router {
    /// Builds the routing core over `config.topology`.
    pub fn new(config: RouterConfig) -> Arc<Router> {
        let registry = Registry::new();
        let ins = RouterInstruments::registered(&registry);
        let backends = config
            .topology
            .nodes()
            .iter()
            .map(|_| Backend {
                healthy: AtomicBool::new(true),
                breaker: CircuitBreaker::new(config.breaker_threshold, config.breaker_cooldown),
                pool: Mutex::new(Vec::new()),
            })
            .collect();
        Arc::new(Router {
            config,
            backends,
            registry,
            ins,
            shutdown: AtomicBool::new(false),
            next_id: AtomicU64::new(1),
        })
    }

    /// The router's own metrics registry.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// True once a `shutdown` request was accepted.
    pub fn is_shutdown(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Begins shutdown: the accept loop stops, connection threads drain.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    fn fresh_id(&self) -> u64 {
        self.next_id.fetch_add(1, Ordering::Relaxed)
    }

    /// Sends `frame` to `slot`'s node if its breaker admits the attempt,
    /// bounded by `deadline`. Success and failure both feed the breaker
    /// and health flag.
    fn try_backend(&self, slot: usize, frame: &[u8], deadline: Duration) -> Option<(u8, Vec<u8>)> {
        let backend = &self.backends[slot];
        let (admitted, _) = backend.breaker.try_acquire();
        if !admitted {
            return None;
        }
        let addr = &self.config.topology.node(slot).addr;
        match backend.round_trip(addr, frame, &self.config, deadline) {
            Ok(resp) => {
                backend.breaker.record(true);
                backend.healthy.store(true, Ordering::SeqCst);
                Some(resp)
            }
            Err(_) => {
                backend.breaker.record(false);
                backend.healthy.store(false, Ordering::SeqCst);
                None
            }
        }
    }

    /// The per-forward deadline for a request accepted at `accepted` with
    /// client budget `budget`: the remaining budget (elapsed router time
    /// subtracted), capped by the configured per-forward timeout. `Err`
    /// when the budget is already exhausted — the forward is not attempted
    /// and the backend never sees dead work.
    fn forward_deadline(
        &self,
        accepted: Instant,
        budget: Option<Duration>,
    ) -> Result<(Duration, Option<u64>), ServiceError> {
        let Some(budget) = budget else {
            return Ok((self.config.request_timeout, None));
        };
        let remaining = budget.saturating_sub(accepted.elapsed());
        if remaining.is_zero() {
            self.ins.expired_before_forward.inc();
            return Err(ServiceError::new(
                ErrorKind::Cancelled,
                format!(
                    "deadline budget exhausted before the forward (budget {} ms)",
                    budget.as_millis()
                ),
            ));
        }
        self.ins.deadline_forwards.inc();
        Ok((remaining, Some(remaining.as_millis() as u64)))
    }

    /// Routes `frame` by `hash` under `deadline`: primary shard first,
    /// designated replica on failure. Returns the raw response and whether
    /// the replica answered.
    fn forward_routed(
        &self,
        hash: u64,
        frame: &[u8],
        deadline: Duration,
    ) -> Result<((u8, Vec<u8>), bool), ServiceError> {
        let primary = self.config.topology.ring().node_for_hash(hash);
        let replica = self.config.topology.replica_of(primary);
        if let Some(resp) = self.try_backend(primary, frame, deadline) {
            self.ins.forwards.inc();
            return Ok((resp, false));
        }
        if replica != primary {
            if let Some(resp) = self.try_backend(replica, frame, deadline) {
                self.ins.forwards.inc();
                self.ins.failovers.inc();
                return Ok((resp, true));
            }
        }
        self.ins.unroutable.inc();
        Err(ServiceError::new(
            ErrorKind::Overloaded,
            format!(
                "no live node for shard (primary {}, replica {})",
                self.config.topology.node(primary).id,
                self.config.topology.node(replica).id,
            ),
        ))
    }

    /// Sends `make_req(fresh_id)` to every node. Entries are `(node id,
    /// response)`, `None` where the node was unreachable.
    fn fan_out(
        &self,
        make_req: impl Fn(u64) -> WireRequest,
    ) -> Vec<(String, Option<WireResponse>)> {
        (0..self.backends.len())
            .map(|slot| {
                let req = make_req(self.fresh_id());
                let frame = encode_frame(req.tag(), &req.encode_payload());
                let resp = self
                    .try_backend(slot, &frame, self.config.request_timeout)
                    .and_then(|(tag, payload)| WireResponse::decode(tag, &payload).ok());
                (self.config.topology.node(slot).id.clone(), resp)
            })
            .collect()
    }

    /// One probe round: `health` to every node, updating flags, breakers
    /// and the probe counters.
    fn probe_all(&self) {
        for slot in 0..self.backends.len() {
            let req = WireRequest::Health {
                id: self.fresh_id(),
            };
            let frame = encode_frame(req.tag(), &req.encode_payload());
            self.ins.probes.inc();
            let backend = &self.backends[slot];
            let addr = &self.config.topology.node(slot).addr;
            match backend.round_trip(addr, &frame, &self.config, self.config.request_timeout) {
                Ok(_) => {
                    backend.breaker.record(true);
                    backend.healthy.store(true, Ordering::SeqCst);
                }
                Err(_) => {
                    self.ins.probe_failures.inc();
                    backend.breaker.record(false);
                    backend.healthy.store(false, Ordering::SeqCst);
                }
            }
        }
    }

    /// Per-node health as JSON, used by the router's own `health` verb.
    fn nodes_json(&self) -> Json {
        Json::Arr(
            self.config
                .topology
                .nodes()
                .iter()
                .zip(&self.backends)
                .map(|(spec, backend)| {
                    Json::Obj(vec![
                        ("id".into(), Json::Str(spec.id.clone())),
                        ("addr".into(), Json::Str(spec.addr.clone())),
                        (
                            "healthy".into(),
                            Json::Bool(backend.healthy.load(Ordering::SeqCst)),
                        ),
                        (
                            "breaker".into(),
                            Json::Str(backend.breaker.state().as_str().into()),
                        ),
                    ])
                })
                .collect(),
        )
    }

    fn health_json(&self) -> Json {
        Json::Obj(vec![
            ("status".into(), Json::Str("ok".into())),
            ("node".into(), Json::Str("router".into())),
            ("shutting_down".into(), Json::Bool(self.is_shutdown())),
            ("nodes".into(), self.nodes_json()),
        ])
    }

    fn router_stats_json(&self) -> Json {
        Json::Obj(vec![
            ("forwards".into(), Json::Num(self.ins.forwards.get() as f64)),
            (
                "failovers".into(),
                Json::Num(self.ins.failovers.get() as f64),
            ),
            (
                "replica_warm_hits".into(),
                Json::Num(self.ins.replica_warm_hits.get() as f64),
            ),
            (
                "unroutable".into(),
                Json::Num(self.ins.unroutable.get() as f64),
            ),
            ("probes".into(), Json::Num(self.ins.probes.get() as f64)),
            (
                "deadline_forwards".into(),
                Json::Num(self.ins.deadline_forwards.get() as f64),
            ),
            (
                "expired_before_forward".into(),
                Json::Num(self.ins.expired_before_forward.get() as f64),
            ),
            ("nodes".into(), self.nodes_json()),
        ])
    }

    /// Cluster-wide `stats`: every node's stats JSON merged numerically
    /// (counters sum, objects recurse), with per-node sections and the
    /// router's own counters alongside.
    fn stats_json(&self) -> Json {
        let mut cluster = Json::Obj(Vec::new());
        let mut nodes = Vec::new();
        for (id, resp) in self.fan_out(|id| WireRequest::Stats { id }) {
            let parsed = match resp {
                Some(WireResponse::Text { text, .. }) => Json::parse(text.as_bytes()).ok(),
                _ => None,
            };
            match parsed {
                Some(json) => {
                    merge_numeric(&mut cluster, &json);
                    nodes.push((id, json));
                }
                None => nodes.push((id, Json::Null)),
            }
        }
        Json::Obj(vec![
            ("cluster".into(), cluster),
            ("nodes".into(), Json::Obj(nodes)),
            ("router".into(), self.router_stats_json()),
        ])
    }

    /// Cluster-wide Prometheus exposition: every reachable node's
    /// exposition (each series carrying its `node` label) merged into
    /// single-HELP families, the router's own metrics as `node="router"`.
    fn merged_exposition(&self) -> String {
        let own = self
            .registry
            .snapshot()
            .render_prometheus_with(&[("node", "router")]);
        let node_parts: Vec<(String, String)> = self
            .fan_out(|id| WireRequest::Metrics { id })
            .into_iter()
            .filter_map(|(id, resp)| match resp {
                Some(WireResponse::Text { text, .. }) => Some((id, text)),
                _ => None,
            })
            .collect();
        let mut parts: Vec<(&str, &str)> = vec![("router", own.as_str())];
        parts.extend(
            node_parts
                .iter()
                .map(|(id, text)| (id.as_str(), text.as_str())),
        );
        merge_expositions(&parts)
    }

    /// `compact` fanned out to every node; per-node results keyed by id.
    fn compact_json(&self) -> Json {
        let nodes = self
            .fan_out(|id| WireRequest::Compact { id })
            .into_iter()
            .map(|(id, resp)| {
                let value = match resp {
                    Some(WireResponse::Text { text, .. }) => {
                        Json::parse(text.as_bytes()).unwrap_or(Json::Str(text))
                    }
                    Some(WireResponse::Err { message, .. }) => {
                        Json::Obj(vec![("error".into(), Json::Str(message))])
                    }
                    _ => Json::Null,
                };
                (id, value)
            })
            .collect();
        Json::Obj(vec![("nodes".into(), Json::Obj(nodes))])
    }

    /// Routes one analyze request expressed as a binary frame under
    /// `deadline`, decoding the response only as far as failover
    /// accounting needs.
    fn forward_analyze(
        &self,
        hash: u64,
        frame: &[u8],
        deadline: Duration,
    ) -> Result<(u8, Vec<u8>), ServiceError> {
        let ((tag, payload), via_replica) = self.forward_routed(hash, frame, deadline)?;
        if via_replica {
            if let Ok(WireResponse::Analyze(ok)) = WireResponse::decode(tag, &payload) {
                if ok.cache_hits > 0 {
                    self.ins.replica_warm_hits.inc();
                }
            }
        }
        Ok((tag, payload))
    }

    /// Handles one decoded binary client frame; returns the response
    /// frame and whether this was an accepted shutdown. A deadline prefix
    /// on the frame is stripped here and re-attached to the forward with
    /// the *remaining* budget, so elapsed router time is never double-
    /// spent on the node.
    fn handle_binary(&self, tag: u8, payload: &[u8]) -> (Vec<u8>, bool) {
        let accepted = Instant::now();
        let (tag, budget_ms, offset) = match strip_deadline(tag, payload) {
            Ok(parts) => parts,
            Err(e) => {
                return (
                    err_frame(0, ErrorKind::Protocol, format!("bad deadline prefix: {e}")),
                    false,
                )
            }
        };
        let payload = &payload[offset..];
        let budget = budget_ms.map(|ms| Duration::from_millis(ms).min(self.config.request_timeout));
        let req = match WireRequest::decode(tag, payload) {
            Ok(req) => req,
            Err(e) => {
                return (
                    err_frame(0, ErrorKind::Protocol, format!("bad frame: {e}")),
                    false,
                )
            }
        };
        match req {
            WireRequest::Ping { id } => (text_frame(id, "pong".into()), false),
            WireRequest::Health { id } => (text_frame(id, self.health_json().to_string()), false),
            WireRequest::Stats { id } => (text_frame(id, self.stats_json().to_string()), false),
            WireRequest::Metrics { id } => (text_frame(id, self.merged_exposition()), false),
            WireRequest::Compact { id } => (text_frame(id, self.compact_json().to_string()), false),
            WireRequest::Shutdown { id } => {
                self.shutdown();
                (text_frame(id, "shutting down".into()), true)
            }
            WireRequest::Replicate { id, .. } => (
                err_frame(
                    id,
                    ErrorKind::Protocol,
                    "replicate targets a node, not the router",
                ),
                false,
            ),
            WireRequest::Analyze(ref a) => (
                self.forward_binary(a.id, analyze_route_hash(a), tag, payload, accepted, budget),
                false,
            ),
            WireRequest::Custom(ref c) => (
                self.forward_binary(c.id, custom_route_hash(c), tag, payload, accepted, budget),
                false,
            ),
            // Sessions are shard-sticky: `open` routes by the source's
            // canonical fingerprint, and every `delta` carries that same
            // base fingerprint back, so the whole session lands on one
            // node's session store. A failover mid-session surfaces as a
            // typed `session_lost` error — the replica never held the
            // session — and the client re-opens and replays.
            WireRequest::Open { id, ref source } => (
                self.forward_binary(id, open_route_hash(source), tag, payload, accepted, budget),
                false,
            ),
            WireRequest::Delta {
                id, fingerprint, ..
            } => {
                let hash =
                    fingerprint_route_hash(ir::Fingerprint(u128::from_le_bytes(fingerprint)));
                (
                    self.forward_binary(id, hash, tag, payload, accepted, budget),
                    false,
                )
            }
        }
    }

    /// One routed binary forward under the request's remaining budget: the
    /// stripped frame is re-encoded with the remaining milliseconds as its
    /// deadline prefix (when the client sent one) so the node sheds the
    /// job if the budget runs out there too.
    fn forward_binary(
        &self,
        id: u64,
        hash: u64,
        tag: u8,
        payload: &[u8],
        accepted: Instant,
        budget: Option<Duration>,
    ) -> Vec<u8> {
        let attempt =
            self.forward_deadline(accepted, budget)
                .and_then(|(deadline, remaining_ms)| {
                    let frame = forward_frame(tag, payload, remaining_ms);
                    self.forward_analyze(hash, &frame, deadline)
                });
        match attempt {
            Ok((rtag, rpayload)) => encode_frame(rtag, &rpayload),
            Err(e) => err_frame(id, e.kind, e.message),
        }
    }

    /// Handles one JSON client line; returns the response line (no
    /// newline) and whether this was an accepted shutdown. A `deadline_ms`
    /// field on the request becomes the forward's remaining-budget
    /// deadline, exactly as the binary prefix does.
    fn handle_json(&self, frame: &[u8]) -> (String, bool) {
        let accepted = Instant::now();
        let req = match Request::decode(frame) {
            Ok(req) => req,
            Err((id, e)) => return (encode_err(&id, &e), false),
        };
        let id = req.id.clone();
        let result = match req.verb {
            Verb::Ping => Ok(Json::Str("pong".into())),
            Verb::Health => Ok(self.health_json()),
            Verb::Stats => Ok(self.stats_json()),
            Verb::Metrics => Ok(Json::Obj(vec![(
                "prometheus".into(),
                Json::Str(self.merged_exposition()),
            )])),
            Verb::Compact => Ok(self.compact_json()),
            Verb::Shutdown => {
                self.shutdown();
                return (encode_ok(&id, Json::Str("shutting down".into())), true);
            }
            Verb::Analyze => self.analyze_json(&req, accepted),
            Verb::Custom => self.custom_json(&req, accepted),
            Verb::Open => self.open_json(&req, accepted),
            Verb::Delta => self.delta_json(&req, accepted),
        };
        match result {
            Ok(json) => (encode_ok(&id, json), false),
            Err(e) => (encode_err(&id, &e), false),
        }
    }

    /// A JSON request's deadline budget, capped by the per-forward limit.
    fn json_budget(&self, req: &Request) -> Option<Duration> {
        req.deadline_ms
            .map(|ms| Duration::from_millis(ms).min(self.config.request_timeout))
    }

    /// A JSON analyze: computed-fingerprint routing, binary forwarding,
    /// response re-rendered to the JSON shape a node would produce.
    fn analyze_json(&self, req: &Request, accepted: Instant) -> Result<Json, ServiceError> {
        let source = require(req.program.as_deref(), "analyze", "program")?;
        let fingerprint = fingerprint_of_source(source);
        let hash = match fingerprint {
            Some(fp) => fingerprint_route_hash(ir::Fingerprint(u128::from_le_bytes(fp))),
            None => source_route_hash(source.as_bytes()),
        };
        let wire = WireRequest::Analyze(AnalyzeRequest {
            id: self.fresh_id(),
            fingerprint,
            problems: req.problems.map(|p| p.bits()),
            distance_bound: req.distance_bound,
            source: Some(source.as_bytes().to_vec()),
        });
        let (deadline, remaining_ms) = self.forward_deadline(accepted, self.json_budget(req))?;
        let frame = forward_frame(wire.tag(), &wire.encode_payload(), remaining_ms);
        let (tag, payload) = self.forward_analyze(hash, &frame, deadline)?;
        match WireResponse::decode(tag, &payload) {
            Ok(WireResponse::Analyze(ok)) => analyze_ok_to_json(&ok),
            Ok(WireResponse::Err { kind, message, .. }) => Err(ServiceError::new(
                kind_from_byte(kind).unwrap_or(ErrorKind::Protocol),
                message,
            )),
            _ => Err(ServiceError::new(
                ErrorKind::Protocol,
                "node sent an unexpected response to analyze",
            )),
        }
    }

    /// A JSON `custom`: the user's (G, K) problem forwarded as a binary
    /// `custom` frame, routed exactly like `analyze` — by the source's
    /// canonical fingerprint — so two specs over the same loop land on the
    /// same node's memo cache (the spec is part of the cache key there,
    /// never the routing key).
    fn custom_json(&self, req: &Request, accepted: Instant) -> Result<Json, ServiceError> {
        let source = require(req.program.as_deref(), "custom", "program")?;
        let spec = require(req.spec, "custom", "spec")?;
        let fingerprint = fingerprint_of_source(source);
        let hash = match fingerprint {
            Some(fp) => fingerprint_route_hash(ir::Fingerprint(u128::from_le_bytes(fp))),
            None => source_route_hash(source.as_bytes()),
        };
        let wire = WireRequest::Custom(CustomRequest {
            id: self.fresh_id(),
            spec: spec.bits(),
            fingerprint,
            distance_bound: req.distance_bound,
            source: Some(source.as_bytes().to_vec()),
        });
        let (deadline, remaining_ms) = self.forward_deadline(accepted, self.json_budget(req))?;
        let frame = forward_frame(wire.tag(), &wire.encode_payload(), remaining_ms);
        let (tag, payload) = self.forward_analyze(hash, &frame, deadline)?;
        match WireResponse::decode(tag, &payload) {
            Ok(WireResponse::Analyze(ok)) => analyze_ok_to_json(&ok),
            Ok(WireResponse::Err { kind, message, .. }) => Err(ServiceError::new(
                kind_from_byte(kind).unwrap_or(ErrorKind::Protocol),
                message,
            )),
            _ => Err(ServiceError::new(
                ErrorKind::Protocol,
                "node sent an unexpected response to custom",
            )),
        }
    }

    /// A JSON `open`: route by the source's canonical fingerprint, forward
    /// as a binary `open` frame, re-render the node's session response to
    /// the JSON shape the node itself would produce.
    fn open_json(&self, req: &Request, accepted: Instant) -> Result<Json, ServiceError> {
        let source = require(req.program.as_deref(), "open", "program")?;
        let wire = WireRequest::Open {
            id: self.fresh_id(),
            source: source.as_bytes().to_vec(),
        };
        let (deadline, remaining_ms) = self.forward_deadline(accepted, self.json_budget(req))?;
        let frame = forward_frame(wire.tag(), &wire.encode_payload(), remaining_ms);
        let hash = open_route_hash(source.as_bytes());
        let ((tag, payload), _) = self.forward_routed(hash, &frame, deadline)?;
        match WireResponse::decode(tag, &payload) {
            Ok(WireResponse::Session(ok)) => session_ok_to_json(&ok),
            Ok(WireResponse::Err { kind, message, .. }) => Err(ServiceError::new(
                kind_from_byte(kind).unwrap_or(ErrorKind::Protocol),
                message,
            )),
            _ => Err(ServiceError::new(
                ErrorKind::Protocol,
                "node sent an unexpected response to open",
            )),
        }
    }

    /// A JSON `delta`: route by the carried base fingerprint (the one
    /// `open` returned — the session's shard key), forward as a binary
    /// `delta` frame.
    fn delta_json(&self, req: &Request, accepted: Instant) -> Result<Json, ServiceError> {
        let fingerprint = require(req.fingerprint, "delta", "fingerprint")?;
        let wire = WireRequest::Delta {
            id: self.fresh_id(),
            session: require(req.session, "delta", "session")?,
            fingerprint,
            stmt: require(req.stmt, "delta", "stmt")?,
            text: require(req.text.clone(), "delta", "text")?.into_bytes(),
        };
        let (deadline, remaining_ms) = self.forward_deadline(accepted, self.json_budget(req))?;
        let frame = forward_frame(wire.tag(), &wire.encode_payload(), remaining_ms);
        let hash = fingerprint_route_hash(ir::Fingerprint(u128::from_le_bytes(fingerprint)));
        let ((tag, payload), _) = self.forward_routed(hash, &frame, deadline)?;
        match WireResponse::decode(tag, &payload) {
            Ok(WireResponse::Delta(ok)) => delta_ok_to_json(&ok),
            Ok(WireResponse::Err { kind, message, .. }) => Err(ServiceError::new(
                kind_from_byte(kind).unwrap_or(ErrorKind::Protocol),
                message,
            )),
            _ => Err(ServiceError::new(
                ErrorKind::Protocol,
                "node sent an unexpected response to delta",
            )),
        }
    }
}

/// A field `proto::Request::decode` is supposed to guarantee. The router
/// answers its absence with a protocol error rather than trusting the
/// invariant with a panic — hand-crafted frames and decode-layer drift
/// must never take the process down (they did: `delta` frames with a
/// missing `fingerprint` or `session` hit an `.expect()` here).
fn require<T>(value: Option<T>, verb: &str, field: &str) -> Result<T, ServiceError> {
    value.ok_or_else(|| {
        ServiceError::new(
            ErrorKind::Protocol,
            format!("`{verb}` requires a `{field}` field"),
        )
    })
}

/// The routing hash of a custom request: identical to
/// [`analyze_route_hash`] — fingerprint first, canonicalized source next,
/// stable byte hash last — because the spec is deliberately not part of
/// the routing key. Every spec over one loop shards to the same node,
/// where the spec-extended cache key keeps the entries distinct.
fn custom_route_hash(req: &CustomRequest) -> u64 {
    if let Some(fp) = req.fingerprint {
        return fingerprint_route_hash(ir::Fingerprint(u128::from_le_bytes(fp)));
    }
    let source = req.source.as_deref().unwrap_or(b"");
    if let Some(fp) = std::str::from_utf8(source)
        .ok()
        .and_then(fingerprint_of_source)
    {
        return fingerprint_route_hash(ir::Fingerprint(u128::from_le_bytes(fp)));
    }
    source_route_hash(source)
}

/// The routing hash of a binary analyze request: the canonical
/// fingerprint when the client sent one (or the source yields one),
/// a stable byte hash of the source otherwise.
fn analyze_route_hash(req: &AnalyzeRequest) -> u64 {
    if let Some(fp) = req.fingerprint {
        return fingerprint_route_hash(ir::Fingerprint(u128::from_le_bytes(fp)));
    }
    let source = req.source.as_deref().unwrap_or(b"");
    if let Some(fp) = std::str::from_utf8(source)
        .ok()
        .and_then(fingerprint_of_source)
    {
        return fingerprint_route_hash(ir::Fingerprint(u128::from_le_bytes(fp)));
    }
    source_route_hash(source)
}

/// The routing hash of an `open` request: the canonical fingerprint of
/// its source when it is a single-loop program, a stable byte hash
/// otherwise — the same keys `analyze` routes by, so a session opens on
/// the shard that already caches its loop.
fn open_route_hash(source: &[u8]) -> u64 {
    if let Some(fp) = std::str::from_utf8(source)
        .ok()
        .and_then(fingerprint_of_source)
    {
        return fingerprint_route_hash(ir::Fingerprint(u128::from_le_bytes(fp)));
    }
    source_route_hash(source)
}

/// Mirrors `arrayflow::fingerprint`: the canonical fingerprint of a
/// single-loop program, `None` when the source does not parse to exactly
/// one top-level loop (those route by source hash instead).
fn fingerprint_of_source(source: &str) -> Option<[u8; 16]> {
    let mut program = ir::parse_program(source).ok()?;
    ir::normalize(&mut program);
    program.renumber();
    let l = program.sole_loop()?;
    Some(ir::fingerprint_loop(l, &program.symbols).0.to_le_bytes())
}

/// FNV-1a over the source bytes, splitmix-finished — the fallback
/// routing hash for multi-loop or unparseable programs. Any stable
/// function works (the shard only has to be deterministic); this one
/// spreads well.
fn source_route_hash(source: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in source {
        h ^= b as u64;
        h = h.wrapping_mul(0x1_0000_01B3);
    }
    let mut z = h.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Renders a decoded [`AnalyzeOk`] as the JSON `analyze` result object a
/// node's JSON transport produces — the report strings are byte-identical
/// because both sides render the same `AnalysisReport`.
fn analyze_ok_to_json(ok: &AnalyzeOk) -> Result<Json, ServiceError> {
    let mut loops = Vec::with_capacity(ok.loops.len());
    for entry in &ok.loops {
        let report = decode_report(&entry.report).map_err(|e| {
            ServiceError::new(
                ErrorKind::Protocol,
                format!("node sent an undecodable report: {e}"),
            )
        })?;
        loops.push(Json::Obj(vec![
            (
                "fingerprint".into(),
                Json::Str(ir::Fingerprint(u128::from_le_bytes(entry.fingerprint)).to_string()),
            ),
            ("report".into(), Json::Str(report.render())),
        ]));
    }
    Ok(Json::Obj(vec![
        ("loops".into(), Json::Arr(loops)),
        ("error".into(), Json::Null),
        (
            "stats".into(),
            Json::Obj(vec![
                ("cache_hits".into(), Json::Num(ok.cache_hits as f64)),
                ("cache_misses".into(), Json::Num(ok.cache_misses as f64)),
                ("solver_passes".into(), Json::Num(ok.solver_passes as f64)),
                ("node_visits".into(), Json::Num(ok.node_visits as f64)),
            ]),
        ),
    ]))
}

/// Renders a decoded [`SessionOk`] as the JSON `open` result object a
/// node's JSON transport produces.
fn session_ok_to_json(ok: &SessionOk) -> Result<Json, ServiceError> {
    let report = decode_report(&ok.report).map_err(|e| {
        ServiceError::new(
            ErrorKind::Protocol,
            format!("node sent an undecodable report: {e}"),
        )
    })?;
    Ok(Json::Obj(vec![
        ("session".into(), Json::Num(ok.session as f64)),
        (
            "fingerprint".into(),
            Json::Str(ir::Fingerprint(u128::from_le_bytes(ok.fingerprint)).to_string()),
        ),
        ("report".into(), Json::Str(report.render())),
    ]))
}

/// Renders a decoded [`DeltaOk`] as the JSON `delta` result object a
/// node's JSON transport produces.
fn delta_ok_to_json(ok: &DeltaOk) -> Result<Json, ServiceError> {
    let report = decode_report(&ok.report).map_err(|e| {
        ServiceError::new(
            ErrorKind::Protocol,
            format!("node sent an undecodable report: {e}"),
        )
    })?;
    Ok(Json::Obj(vec![
        ("session".into(), Json::Num(ok.session as f64)),
        (
            "fingerprint".into(),
            Json::Str(ir::Fingerprint(u128::from_le_bytes(ok.fingerprint)).to_string()),
        ),
        ("report".into(), Json::Str(report.render())),
        ("fallback".into(), Json::Bool(ok.fallback)),
        ("dirty_columns".into(), Json::Num(ok.dirty_columns as f64)),
        ("total_columns".into(), Json::Num(ok.total_columns as f64)),
    ]))
}

/// Merges `from` into `into`: numbers sum, objects recurse on matching
/// keys (missing keys are inserted), everything else keeps `into`'s
/// value. The cross-node `stats` aggregation.
fn merge_numeric(into: &mut Json, from: &Json) {
    match (into, from) {
        (Json::Num(a), Json::Num(b)) => *a += *b,
        (into @ Json::Obj(_), Json::Obj(bs)) => {
            let Json::Obj(r#as) = into else {
                unreachable!()
            };
            for (key, value) in bs {
                match r#as.iter_mut().find(|(k, _)| k == key) {
                    Some((_, slot)) => merge_numeric(slot, value),
                    None => r#as.push((key.clone(), value.clone())),
                }
            }
        }
        _ => {}
    }
}

/// Encodes a forwarded request frame, re-attaching the remaining budget
/// as a deadline prefix when the client sent one.
fn forward_frame(tag: u8, payload: &[u8], remaining_ms: Option<u64>) -> Vec<u8> {
    match remaining_ms {
        Some(ms) => {
            let (ftag, fpayload) = with_deadline(tag, payload, ms);
            encode_frame(ftag, &fpayload)
        }
        None => encode_frame(tag, payload),
    }
}

fn text_frame(id: u64, text: String) -> Vec<u8> {
    let resp = WireResponse::Text { id, text };
    encode_frame(resp.tag(), &resp.encode_payload())
}

fn err_frame(id: u64, kind: ErrorKind, message: impl Into<String>) -> Vec<u8> {
    let resp = WireResponse::Err {
        id,
        kind: kind_byte(kind),
        message: message.into(),
    };
    encode_frame(resp.tag(), &resp.encode_payload())
}

fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// Reads one byte, polling the shutdown flag while idle. `Ok(None)` on
/// EOF or shutdown.
fn wait_byte(stream: &mut TcpStream, router: &Router) -> io::Result<Option<u8>> {
    let mut byte = [0u8; 1];
    loop {
        match stream.read(&mut byte) {
            Ok(0) => return Ok(None),
            Ok(_) => return Ok(Some(byte[0])),
            Err(e) if is_timeout(&e) => {
                if router.is_shutdown() {
                    return Ok(None);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
}

/// Serves one binary-mode client connection. `first` is the sniffed
/// magic byte, spliced back ahead of the stream for the framer.
fn serve_binary_client(router: &Arc<Router>, mut stream: TcpStream, first: u8) -> io::Result<()> {
    let mut writer = BufWriter::new(stream.try_clone()?);
    let mut pending = Some(first);
    loop {
        let lead = match pending.take() {
            Some(b) => b,
            None => match wait_byte(&mut stream, router)? {
                Some(b) => b,
                None => return Ok(()),
            },
        };
        // Mid-frame reads run under the request deadline, not the
        // shutdown-poll interval — a torn frame drops the connection
        // instead of wedging it.
        stream.set_read_timeout(Some(router.config.request_timeout))?;
        let mut reader = io::Cursor::new(vec![lead]).chain(stream.try_clone()?);
        let (tag, payload) = match read_frame(&mut reader, router.config.max_frame_bytes) {
            Ok(frame) => frame,
            Err(e) => {
                let frame = err_frame(0, ErrorKind::Protocol, format!("bad frame: {e}"));
                let _ = writer.write_all(&frame);
                let _ = writer.flush();
                return Ok(());
            }
        };
        stream.set_read_timeout(Some(READ_POLL))?;
        let (frame, is_shutdown) = router.handle_binary(tag, &payload);
        writer.write_all(&frame)?;
        writer.flush()?;
        if is_shutdown {
            return Ok(());
        }
    }
}

/// Serves one JSON-mode client connection; `first` is the already-read
/// opening byte of the first line.
fn serve_json_client(router: &Arc<Router>, stream: TcpStream, first: u8) -> io::Result<()> {
    let reader = BufReader::new(io::Cursor::new(vec![first]).chain(stream.try_clone()?));
    let mut writer = BufWriter::new(stream);
    let mut frames = FrameReader::new(reader, router.config.max_frame_bytes);
    loop {
        match frames.next_frame() {
            Ok(Some(Frame::Complete)) => {
                let (line, is_shutdown) = router.handle_json(frames.frame());
                writer.write_all(line.as_bytes())?;
                writer.write_all(b"\n")?;
                writer.flush()?;
                if is_shutdown {
                    return Ok(());
                }
            }
            Ok(Some(Frame::Oversized)) => {
                let e = ServiceError::new(
                    ErrorKind::Protocol,
                    format!(
                        "frame exceeds the {} byte cap",
                        router.config.max_frame_bytes
                    ),
                );
                writer.write_all(encode_err(&Json::Null, &e).as_bytes())?;
                writer.write_all(b"\n")?;
                writer.flush()?;
            }
            Ok(None) => return Ok(()),
            Err(e) if is_timeout(&e) => {
                if router.is_shutdown() {
                    return Ok(());
                }
            }
            Err(_) => return Ok(()),
        }
    }
}

fn handle_client(router: Arc<Router>, mut stream: TcpStream) -> io::Result<()> {
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(READ_POLL))?;
    let first = match wait_byte(&mut stream, &router)? {
        Some(b) => b,
        None => return Ok(()),
    };
    if first == b'{' {
        serve_json_client(&router, stream, first)
    } else {
        serve_binary_client(&router, stream, first)
    }
}

/// The TCP front-end over a [`Router`]: thread-per-client connections
/// plus the background health prober.
pub struct RouterServer {
    router: Arc<Router>,
    listener: TcpListener,
}

impl RouterServer {
    /// Binds `addr` (port 0 for ephemeral) in front of a fresh router.
    pub fn bind(addr: impl ToSocketAddrs, config: RouterConfig) -> io::Result<RouterServer> {
        let listener = TcpListener::bind(addr)?;
        Ok(RouterServer {
            router: Router::new(config),
            listener,
        })
    }

    /// The bound address.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A handle to the routing core (shutdown, metrics).
    pub fn router(&self) -> Arc<Router> {
        Arc::clone(&self.router)
    }

    /// Accepts and serves clients until a `shutdown` request, probing
    /// backend health in the background; then joins every connection
    /// thread.
    pub fn run(self) -> io::Result<()> {
        self.listener.set_nonblocking(true)?;
        let prober = {
            let router = Arc::clone(&self.router);
            std::thread::Builder::new()
                .name("router-prober".into())
                .spawn(move || {
                    while !router.is_shutdown() {
                        router.probe_all();
                        let mut waited = Duration::ZERO;
                        while waited < router.config.probe_interval && !router.is_shutdown() {
                            std::thread::sleep(READ_POLL);
                            waited += READ_POLL;
                        }
                    }
                })
                .expect("spawn router prober thread")
        };
        let mut connections: Vec<std::thread::JoinHandle<()>> = Vec::new();
        while !self.router.is_shutdown() {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    self.router.ins.connections.inc();
                    let router = Arc::clone(&self.router);
                    connections.push(std::thread::spawn(move || {
                        let _ = handle_client(router, stream);
                    }));
                }
                Err(e) if is_timeout(&e) => {
                    std::thread::sleep(Duration::from_millis(5));
                    connections.retain(|h| !h.is_finished());
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        for handle in connections {
            let _ = handle.join();
        }
        let _ = prober.join();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn route_hash_prefers_the_canonical_fingerprint() {
        // Alpha-equivalent single-loop programs must route identically,
        // whether the fingerprint arrives precomputed or as source.
        let a = "do i = 1, 100 A[i+2] := A[i] + x; end";
        let b = "do j = 1, 100 B[j+2] := B[j] + y; end";
        let fp = fingerprint_of_source(a).unwrap();
        assert_eq!(fingerprint_of_source(b), Some(fp));

        let by_source = analyze_route_hash(&AnalyzeRequest {
            id: 1,
            fingerprint: None,
            problems: None,
            distance_bound: None,
            source: Some(a.as_bytes().to_vec()),
        });
        let by_fp = analyze_route_hash(&AnalyzeRequest {
            id: 2,
            fingerprint: Some(fp),
            problems: None,
            distance_bound: None,
            source: None,
        });
        let alpha = analyze_route_hash(&AnalyzeRequest {
            id: 3,
            fingerprint: None,
            problems: None,
            distance_bound: None,
            source: Some(b.as_bytes().to_vec()),
        });
        assert_eq!(by_source, by_fp);
        assert_eq!(by_source, alpha);
    }

    #[test]
    fn multi_loop_source_falls_back_to_a_stable_byte_hash() {
        let src = "do i = 1, 9 A[i] := 1; end do j = 1, 9 B[j] := 2; end";
        assert_eq!(fingerprint_of_source(src), None);
        let h1 = analyze_route_hash(&AnalyzeRequest {
            id: 1,
            fingerprint: None,
            problems: None,
            distance_bound: None,
            source: Some(src.as_bytes().to_vec()),
        });
        assert_eq!(h1, source_route_hash(src.as_bytes()));
        assert_ne!(h1, source_route_hash(b"different"));
    }

    #[test]
    fn merge_numeric_sums_and_recurses() {
        let mut a = Json::parse(br#"{"requests": 3, "inner": {"hits": 1}, "name": "n1"}"#).unwrap();
        let b = Json::parse(br#"{"requests": 4, "inner": {"hits": 2, "misses": 5}}"#).unwrap();
        merge_numeric(&mut a, &b);
        assert_eq!(a.get("requests").and_then(Json::as_u64), Some(7));
        let inner = a.get("inner").unwrap();
        assert_eq!(inner.get("hits").and_then(Json::as_u64), Some(3));
        assert_eq!(inner.get("misses").and_then(Json::as_u64), Some(5));
        assert_eq!(a.get("name").and_then(Json::as_str), Some("n1"));
    }

    #[test]
    fn unroutable_request_is_a_structured_overloaded_error() {
        // Nothing listens on these ports; both candidates fail fast.
        let topology = Topology::parse("a=127.0.0.1:1,b=127.0.0.1:1", 16).unwrap();
        let mut config = RouterConfig::new(topology);
        config.connect_timeout = Duration::from_millis(100);
        let router = Router::new(config);
        let (line, is_shutdown) = router.handle_json(
            br#"{"id": 1, "verb": "analyze", "program": "do i = 1, 9 A[i] := 1; end"}"#,
        );
        assert!(!is_shutdown);
        assert!(line.contains(r#""kind":"overloaded""#), "{line}");
        assert!(router.ins.unroutable.get() >= 1);
        // The health view reflects the dead nodes after the attempts.
        let health = router.health_json().to_string();
        assert!(health.contains(r#""healthy":false"#), "{health}");
    }

    #[test]
    fn delta_frames_missing_fields_answer_protocol_errors() {
        // Regression: hand-crafted delta frames with a missing
        // `fingerprint` or `session` used to reach `.expect()` calls that
        // trusted decode invariants, taking the router thread down.
        let topology = Topology::parse("a=127.0.0.1:1", 16).unwrap();
        let router = Router::new(RouterConfig::new(topology));
        let fp = "000102030405060708090a0b0c0d0e0f";
        let frames = [
            r#"{"id": 1, "verb": "delta", "stmt": 3, "text": "A[i] := 1;"}"#.to_string(),
            format!(
                r#"{{"id": 2, "verb": "delta", "fingerprint": "{fp}", "stmt": 3, "text": "x := 1;"}}"#
            ),
            format!(r#"{{"id": 3, "verb": "delta", "session": 7, "fingerprint": "{fp}"}}"#),
            r#"{"id": 4, "verb": "delta"}"#.to_string(),
        ];
        for frame in frames {
            let (line, is_shutdown) = router.handle_json(frame.as_bytes());
            assert!(!is_shutdown);
            assert!(line.contains(r#""kind":"protocol""#), "{line}");
        }
    }

    #[test]
    fn a_request_that_slips_past_decode_still_answers_not_panics() {
        // Defense in depth behind `Request::decode`: even a request struct
        // violating the per-verb invariants gets a protocol error from
        // every forwarding handler, never a panic.
        let topology = Topology::parse("a=127.0.0.1:1", 16).unwrap();
        let router = Router::new(RouterConfig::new(topology));
        let bare = Request {
            id: Json::Num(1.0),
            verb: Verb::Delta,
            program: None,
            problems: None,
            spec: None,
            distance_bound: None,
            session: None,
            fingerprint: None,
            stmt: None,
            text: None,
            deadline_ms: None,
        };
        let now = Instant::now();
        for result in [
            router.delta_json(&bare, now),
            router.analyze_json(&bare, now),
            router.open_json(&bare, now),
            router.custom_json(&bare, now),
        ] {
            let e = result.expect_err("missing fields must be an error");
            assert_eq!(e.kind, ErrorKind::Protocol);
        }
    }

    #[test]
    fn custom_routes_by_the_same_keys_as_analyze() {
        // The spec is part of the cache key, never the routing key: every
        // spec over one loop must shard to the node that caches it.
        let src = "do i = 1, 100 A[i+2] := A[i] + x; end";
        let fp = fingerprint_of_source(src).unwrap();
        let by_fp = custom_route_hash(&CustomRequest {
            id: 1,
            spec: 0b01,
            fingerprint: Some(fp),
            distance_bound: None,
            source: None,
        });
        let by_source = custom_route_hash(&CustomRequest {
            id: 2,
            spec: 0b10_0110,
            fingerprint: None,
            distance_bound: None,
            source: Some(src.as_bytes().to_vec()),
        });
        assert_eq!(by_fp, by_source);
        let analyze = analyze_route_hash(&AnalyzeRequest {
            id: 3,
            fingerprint: Some(fp),
            problems: None,
            distance_bound: None,
            source: None,
        });
        assert_eq!(by_fp, analyze);
    }

    #[test]
    fn zero_budget_requests_are_cancelled_without_a_forward() {
        // A dead-on-arrival budget must never consume a backend round
        // trip: the router answers `cancelled` itself, on both protocols.
        let topology = Topology::parse("a=127.0.0.1:1", 16).unwrap();
        let router = Router::new(RouterConfig::new(topology));

        let (line, is_shutdown) = router.handle_json(
            br#"{"id": 1, "verb": "analyze", "program": "do i = 1, 9 A[i] := 1; end", "deadline_ms": 0}"#,
        );
        assert!(!is_shutdown);
        assert!(line.contains(r#""kind":"cancelled""#), "{line}");

        let req = WireRequest::Analyze(AnalyzeRequest {
            id: 2,
            fingerprint: None,
            problems: None,
            distance_bound: None,
            source: Some(b"do i = 1, 9 A[i] := 1; end".to_vec()),
        });
        let (tag, payload) = with_deadline(req.tag(), &req.encode_payload(), 0);
        let (frame, is_shutdown) = router.handle_binary(tag, &payload);
        assert!(!is_shutdown);
        let (rtag, rpayload) = read_frame(&mut io::Cursor::new(frame), 1 << 20).unwrap();
        match WireResponse::decode(rtag, &rpayload) {
            Ok(WireResponse::Err { kind, message, .. }) => {
                assert_eq!(
                    kind_from_byte(kind),
                    Some(ErrorKind::Cancelled),
                    "{message}"
                );
            }
            other => panic!("expected cancelled error, got {other:?}"),
        }

        assert_eq!(router.ins.forwards.get(), 0);
        assert_eq!(router.ins.expired_before_forward.get(), 2);
    }

    #[test]
    fn pooled_round_trips_do_not_self_deadlock() {
        // Regression: the second round trip on a backend pops the pooled
        // connection and returns it via `put_back`, which locks the pool
        // again — holding the pop's lock guard across the body wedged
        // the backend (and everything queued behind its mutex) forever.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            for _ in 0..3 {
                let (tag, payload) = read_frame(&mut stream, 1 << 20).unwrap();
                let id = match WireRequest::decode(tag, &payload) {
                    Ok(WireRequest::Ping { id }) => id,
                    other => panic!("expected ping, got {other:?}"),
                };
                let resp = WireResponse::Text {
                    id,
                    text: "pong".into(),
                };
                stream
                    .write_all(&encode_frame(resp.tag(), &resp.encode_payload()))
                    .unwrap();
            }
        });

        let config = RouterConfig::new(Topology::parse(&format!("n1={addr}"), 0).unwrap());
        let backend = Backend {
            healthy: AtomicBool::new(true),
            breaker: CircuitBreaker::new(3, Duration::from_secs(1)),
            pool: Mutex::new(Vec::new()),
        };
        let (done_tx, done_rx) = std::sync::mpsc::channel();
        std::thread::spawn(move || {
            // First trip dials fresh and pools; the next two go through
            // the pooled-connection path.
            for id in 0..3u64 {
                let req = WireRequest::Ping { id };
                let frame = encode_frame(req.tag(), &req.encode_payload());
                backend
                    .round_trip(&addr, &frame, &config, config.request_timeout)
                    .expect("round trip");
            }
            done_tx.send(()).unwrap();
        });
        done_rx
            .recv_timeout(Duration::from_secs(10))
            .expect("pooled round trip deadlocked");
        server.join().unwrap();
    }
}
