//! The binary protocol's service-side half: maps `AFWIRE01` frames
//! (decoded by `arrayflow-wire`) onto the same [`Service`] core the JSON
//! transport uses — same worker pool, same counters, same error taxonomy.
//!
//! The one thing this path has that JSON does not: a **fingerprint-first
//! fast path**. An analyze request carrying a client-precomputed
//! fingerprint probes the memo cache (and, through it, the persistent
//! tier) *before* any parse or normalize work; on a hit the stored report
//! encoding ships back directly, and the request never touches the worker
//! pool.

use std::sync::Arc;
use std::time::Instant;

use arrayflow_engine::{CustomSpec, ProblemSet};
use arrayflow_ir::{Edit, Fingerprint, StmtId};
use arrayflow_obs::{observed_span, Trace};
use arrayflow_resilience::CancelToken;
use arrayflow_store::codec::encode_report;
use arrayflow_wire::encode_frame;
use arrayflow_wire::proto::{
    strip_deadline, AnalyzeOk, AnalyzeRequest, CustomRequest, DeltaOk, LoopEntry, Request,
    Response, SessionOk,
};

use crate::proto::{ErrorKind, ServiceError};
use crate::service::{JobOutput, Service, Work};

/// The outcome of handling one binary frame.
pub struct BinaryResponse {
    /// The complete response frame (header + payload), ready to write.
    pub frame: Vec<u8>,
    /// True when the request was a `shutdown`; the transport should send
    /// the frame, stop reading, and let the server drain.
    pub shutdown: bool,
}

/// [`ErrorKind`] as a single wire byte. Stable protocol values: new kinds
/// append, existing bytes never renumber.
pub fn kind_byte(kind: ErrorKind) -> u8 {
    match kind {
        ErrorKind::Parse => 0,
        ErrorKind::Analysis => 1,
        ErrorKind::Timeout => 2,
        ErrorKind::Overloaded => 3,
        ErrorKind::Protocol => 4,
        ErrorKind::SessionLost => 5,
        ErrorKind::Cancelled => 6,
    }
}

/// Inverse of [`kind_byte`]; `None` for bytes from a newer server.
pub fn kind_from_byte(b: u8) -> Option<ErrorKind> {
    Some(match b {
        0 => ErrorKind::Parse,
        1 => ErrorKind::Analysis,
        2 => ErrorKind::Timeout,
        3 => ErrorKind::Overloaded,
        4 => ErrorKind::Protocol,
        5 => ErrorKind::SessionLost,
        6 => ErrorKind::Cancelled,
        _ => return None,
    })
}

fn frame_of(resp: &Response) -> Vec<u8> {
    encode_frame(resp.tag(), &resp.encode_payload())
}

fn err_response(id: u64, kind: ErrorKind, message: impl Into<String>) -> Response {
    Response::Err {
        id,
        kind: kind_byte(kind),
        message: message.into(),
    }
}

impl Service {
    /// Handles one decoded binary frame (tag + payload). Cheap verbs and
    /// fingerprint cache hits answer inline — `respond` runs before this
    /// returns; full analyses go through the bounded queue with `respond`
    /// called from a worker. `respond` is invoked exactly once either way.
    pub fn handle_binary_frame_async(
        self: &Arc<Self>,
        tag: u8,
        payload: &[u8],
        respond: Box<dyn FnOnce(BinaryResponse) + Send>,
    ) {
        self.handle_binary_frame_async_ctrl(tag, payload, CancelToken::new(), respond)
    }

    /// [`Service::handle_binary_frame_async`] with a caller-owned
    /// [`CancelToken`] — the event server hands each frame its
    /// connection's token so a teardown cancels the connection's queued
    /// and in-flight work.
    pub fn handle_binary_frame_async_ctrl(
        self: &Arc<Self>,
        tag: u8,
        payload: &[u8],
        cancel: CancelToken,
        respond: Box<dyn FnOnce(BinaryResponse) + Send>,
    ) {
        let accepted = Instant::now();
        let trace = self.begin_trace();
        // The deadline prefix is framing, not request content: strip it
        // before the request decoder sees the payload. A frame whose
        // prefix fails to decode is hostile by definition.
        let (tag, budget_ms, offset) = match strip_deadline(tag, payload) {
            Ok(parts) => parts,
            Err(e) => {
                let resp =
                    err_response(0, ErrorKind::Protocol, format!("bad deadline prefix: {e}"));
                respond(self.finish_binary(&trace, accepted, resp, false));
                return;
            }
        };
        let payload = &payload[offset..];
        let decoded = {
            let _span = observed_span("decode", &self.ins().phase_decode);
            Request::decode(tag, payload)
        };
        let req = match decoded {
            Err(e) => {
                // The id could not be recovered from a frame that failed to
                // decode; 0 is the protocol's "unattributable" id.
                let resp = err_response(0, ErrorKind::Protocol, format!("bad frame: {e}"));
                respond(self.finish_binary(&trace, accepted, resp, false));
                return;
            }
            Ok(req) => req,
        };
        match req {
            Request::Ping { id } => {
                let resp = Response::Text {
                    id,
                    text: "pong".into(),
                };
                respond(self.finish_binary(&trace, accepted, resp, false));
            }
            Request::Stats { id } => {
                let resp = Response::Text {
                    id,
                    text: self.stats_json().to_string(),
                };
                respond(self.finish_binary(&trace, accepted, resp, false));
            }
            Request::Metrics { id } => {
                // Binary metrics ship the Prometheus exposition directly —
                // the form a scraper wants, with no JSON wrapper to unpick.
                let resp = Response::Text {
                    id,
                    text: self.render_exposition(),
                };
                respond(self.finish_binary(&trace, accepted, resp, false));
            }
            Request::Health { id } => {
                let resp = Response::Text {
                    id,
                    text: self.health_json().to_string(),
                };
                respond(self.finish_binary(&trace, accepted, resp, false));
            }
            Request::Replicate { id, batch } => {
                let resp = match self.apply_replica_batch(&batch) {
                    Ok(json) => Response::Text {
                        id,
                        text: json.to_string(),
                    },
                    Err(e) => err_response(id, e.kind, e.message),
                };
                respond(self.finish_binary(&trace, accepted, resp, false));
            }
            Request::Compact { id } => {
                let resp = match self.compact_store() {
                    Ok(json) => Response::Text {
                        id,
                        text: json.to_string(),
                    },
                    Err(e) => err_response(id, e.kind, e.message),
                };
                respond(self.finish_binary(&trace, accepted, resp, false));
            }
            Request::Shutdown { id } => {
                self.shutdown();
                let resp = Response::Text {
                    id,
                    text: "shutting down".into(),
                };
                respond(self.finish_binary(&trace, accepted, resp, true));
            }
            Request::Analyze(a) => {
                self.analyze_binary(a, budget_ms, cancel, accepted, trace, respond)
            }
            Request::Custom(c) => {
                self.custom_binary(c, budget_ms, cancel, accepted, trace, respond)
            }
            Request::Open { id, source } => {
                self.open_binary(id, source, budget_ms, cancel, accepted, trace, respond)
            }
            // The carried fingerprint is the router's shard key; the node
            // itself resolves the session by id alone.
            Request::Delta {
                id,
                session,
                fingerprint: _,
                stmt,
                text,
            } => self.delta_binary(
                id, session, stmt, text, budget_ms, cancel, accepted, trace, respond,
            ),
        }
    }

    /// An `open` frame: UTF-8-check the source, then run the full
    /// analysis + session retention through the worker queue.
    #[allow(clippy::too_many_arguments)]
    fn open_binary(
        self: &Arc<Self>,
        id: u64,
        source: Vec<u8>,
        budget_ms: Option<u64>,
        cancel: CancelToken,
        accepted: Instant,
        trace: Arc<Trace>,
        respond: Box<dyn FnOnce(BinaryResponse) + Send>,
    ) {
        let source = match String::from_utf8(source) {
            Ok(s) => s,
            Err(_) => {
                let resp = err_response(id, ErrorKind::Parse, "program source is not valid UTF-8");
                respond(self.finish_binary(&trace, accepted, resp, false));
                return;
            }
        };
        let deadline = self.effective_deadline(budget_ms);
        let svc = Arc::clone(self);
        let trace_done = Arc::clone(&trace);
        self.submit_async(
            Work::Open { program: source },
            accepted,
            deadline,
            cancel,
            trace,
            Box::new(move |outcome| {
                let resp = match outcome {
                    Ok(JobOutput::Session(session, report)) => Response::Session(SessionOk {
                        id,
                        session,
                        fingerprint: report.fingerprint.0.to_le_bytes(),
                        report: encode_report(&report),
                    }),
                    Ok(_) => err_response(id, ErrorKind::Protocol, "internal: job output mismatch"),
                    Err(e) => err_response(id, e.kind, e.message),
                };
                respond(svc.finish_binary(&trace_done, accepted, resp, false));
            }),
        );
    }

    /// A `delta` frame: UTF-8-check the replacement text, then re-converge
    /// the session through the worker queue.
    #[allow(clippy::too_many_arguments)]
    fn delta_binary(
        self: &Arc<Self>,
        id: u64,
        session: u64,
        stmt: u64,
        text: Vec<u8>,
        budget_ms: Option<u64>,
        cancel: CancelToken,
        accepted: Instant,
        trace: Arc<Trace>,
        respond: Box<dyn FnOnce(BinaryResponse) + Send>,
    ) {
        let text = match String::from_utf8(text) {
            Ok(s) => s,
            Err(_) => {
                let resp = err_response(id, ErrorKind::Parse, "edit text is not valid UTF-8");
                respond(self.finish_binary(&trace, accepted, resp, false));
                return;
            }
        };
        let edit = Edit {
            // Out-of-u32-range ids name nothing; saturate into a clean
            // "no such statement" rejection instead of wrapping.
            stmt: StmtId(u32::try_from(stmt).unwrap_or(u32::MAX)),
            text,
        };
        let deadline = self.effective_deadline(budget_ms);
        let svc = Arc::clone(self);
        let trace_done = Arc::clone(&trace);
        self.submit_async(
            Work::Delta { session, edit },
            accepted,
            deadline,
            cancel,
            trace,
            Box::new(move |outcome| {
                let resp = match outcome {
                    Ok(JobOutput::Delta(d)) => Response::Delta(DeltaOk {
                        id,
                        session: d.session,
                        fingerprint: d.fingerprint.0.to_le_bytes(),
                        report: encode_report(&d.report),
                        fallback: d.fallback,
                        dirty_columns: d.dirty_columns as u64,
                        total_columns: d.total_columns as u64,
                    }),
                    Ok(_) => err_response(id, ErrorKind::Protocol, "internal: job output mismatch"),
                    Err(e) => err_response(id, e.kind, e.message),
                };
                respond(svc.finish_binary(&trace_done, accepted, resp, false));
            }),
        );
    }

    fn analyze_binary(
        self: &Arc<Self>,
        req: AnalyzeRequest,
        budget_ms: Option<u64>,
        cancel: CancelToken,
        accepted: Instant,
        trace: Arc<Trace>,
        respond: Box<dyn FnOnce(BinaryResponse) + Send>,
    ) {
        let id = req.id;
        let deadline = self.effective_deadline(budget_ms);
        let problems = match req.problems {
            None => self.config().engine.problems,
            Some(bits) => match ProblemSet::from_bits(bits) {
                Some(p) => p,
                None => {
                    let resp = err_response(
                        id,
                        ErrorKind::Protocol,
                        format!("bad problem-set bits {bits:#06b}"),
                    );
                    respond(self.finish_binary(&trace, accepted, resp, false));
                    return;
                }
            },
        };
        let distance_bound = req
            .distance_bound
            .unwrap_or(self.config().engine.dep_max_distance);

        // Fingerprint-first: probe the cache tiers before any parse work.
        if let Some(fp_bytes) = req.fingerprint {
            let fp = Fingerprint(u128::from_le_bytes(fp_bytes));
            if let Some(report) = self
                .engine()
                .analyze_by_fingerprint(fp, problems, distance_bound)
            {
                let resp = Response::Analyze(AnalyzeOk {
                    id,
                    loops: vec![LoopEntry {
                        fingerprint: fp_bytes,
                        report: encode_report(&report),
                    }],
                    cache_hits: 1,
                    cache_misses: 0,
                    solver_passes: 0,
                    node_visits: 0,
                });
                respond(self.finish_binary(&trace, accepted, resp, false));
                return;
            }
        }

        // Miss (or no fingerprint): full analysis needs source.
        let source = match req.source {
            Some(src) => match String::from_utf8(src) {
                Ok(s) => s,
                Err(_) => {
                    let resp =
                        err_response(id, ErrorKind::Parse, "program source is not valid UTF-8");
                    respond(self.finish_binary(&trace, accepted, resp, false));
                    return;
                }
            },
            None => {
                let resp = err_response(
                    id,
                    ErrorKind::Analysis,
                    "unknown fingerprint (supply program source to analyze)",
                );
                respond(self.finish_binary(&trace, accepted, resp, false));
                return;
            }
        };

        let svc = Arc::clone(self);
        let trace_done = Arc::clone(&trace);
        self.submit_async(
            Work::Analyze {
                program: source,
                problems,
                distance_bound,
            },
            accepted,
            deadline,
            cancel,
            trace,
            Box::new(move |outcome| {
                let resp = match outcome {
                    Ok(JobOutput::Analyze(result)) => Response::Analyze(AnalyzeOk {
                        id,
                        loops: result
                            .loops
                            .iter()
                            .map(|l| LoopEntry {
                                fingerprint: l.fingerprint.0.to_le_bytes(),
                                report: encode_report(&l.report),
                            })
                            .collect(),
                        cache_hits: result.stats.cache_hits,
                        cache_misses: result.stats.cache_misses,
                        solver_passes: result.stats.solver_passes,
                        node_visits: result.stats.node_visits,
                    }),
                    Ok(_) => err_response(id, ErrorKind::Protocol, "internal: job output mismatch"),
                    Err(e) => err_response(id, e.kind, e.message),
                };
                respond(svc.finish_binary(&trace_done, accepted, resp, false));
            }),
        );
    }

    /// A `custom` frame: re-validate the spec byte and distance bound
    /// (defense in depth behind the wire decoder — both checks reject,
    /// never panic), probe the cache tiers by fingerprint when one came
    /// along, and otherwise run the user's (G, K) problem through the
    /// worker queue.
    fn custom_binary(
        self: &Arc<Self>,
        req: CustomRequest,
        budget_ms: Option<u64>,
        cancel: CancelToken,
        accepted: Instant,
        trace: Arc<Trace>,
        respond: Box<dyn FnOnce(BinaryResponse) + Send>,
    ) {
        let id = req.id;
        let deadline = self.effective_deadline(budget_ms);
        let Some(spec) = CustomSpec::from_bits(req.spec) else {
            let resp = err_response(
                id,
                ErrorKind::Protocol,
                format!("bad custom-spec bits {:#08b}", req.spec),
            );
            respond(self.finish_binary(&trace, accepted, resp, false));
            return;
        };
        let distance_bound = req
            .distance_bound
            .unwrap_or(self.config().engine.dep_max_distance);
        if distance_bound > CustomSpec::MAX_DISTANCE_BOUND {
            let resp = err_response(
                id,
                ErrorKind::Protocol,
                format!(
                    "distance bound {distance_bound} exceeds the {} cap",
                    CustomSpec::MAX_DISTANCE_BOUND
                ),
            );
            respond(self.finish_binary(&trace, accepted, resp, false));
            return;
        }

        // Fingerprint-first: the custom key probes the same tiers.
        if let Some(fp_bytes) = req.fingerprint {
            let fp = Fingerprint(u128::from_le_bytes(fp_bytes));
            if let Some(report) =
                self.engine()
                    .analyze_custom_by_fingerprint(fp, spec, distance_bound)
            {
                let resp = Response::Analyze(AnalyzeOk {
                    id,
                    loops: vec![LoopEntry {
                        fingerprint: fp_bytes,
                        report: encode_report(&report),
                    }],
                    cache_hits: 1,
                    cache_misses: 0,
                    solver_passes: 0,
                    node_visits: 0,
                });
                respond(self.finish_binary(&trace, accepted, resp, false));
                return;
            }
        }

        let source = match req.source {
            Some(src) => match String::from_utf8(src) {
                Ok(s) => s,
                Err(_) => {
                    let resp =
                        err_response(id, ErrorKind::Parse, "program source is not valid UTF-8");
                    respond(self.finish_binary(&trace, accepted, resp, false));
                    return;
                }
            },
            None => {
                let resp = err_response(
                    id,
                    ErrorKind::Analysis,
                    "unknown fingerprint (supply program source to analyze)",
                );
                respond(self.finish_binary(&trace, accepted, resp, false));
                return;
            }
        };

        let svc = Arc::clone(self);
        let trace_done = Arc::clone(&trace);
        self.submit_async(
            Work::Custom {
                program: source,
                spec,
                distance_bound,
            },
            accepted,
            deadline,
            cancel,
            trace,
            Box::new(move |outcome| {
                let resp = match outcome {
                    Ok(JobOutput::Analyze(result)) => Response::Analyze(AnalyzeOk {
                        id,
                        loops: result
                            .loops
                            .iter()
                            .map(|l| LoopEntry {
                                fingerprint: l.fingerprint.0.to_le_bytes(),
                                report: encode_report(&l.report),
                            })
                            .collect(),
                        cache_hits: result.stats.cache_hits,
                        cache_misses: result.stats.cache_misses,
                        solver_passes: result.stats.solver_passes,
                        node_visits: result.stats.node_visits,
                    }),
                    Ok(_) => err_response(id, ErrorKind::Protocol, "internal: job output mismatch"),
                    Err(e) => err_response(id, e.kind, e.message),
                };
                respond(svc.finish_binary(&trace_done, accepted, resp, false));
            }),
        );
    }

    /// The binary counterpart of `finish_json`: outcome counters, latency
    /// histogram, slow-request log, then the encoded frame.
    fn finish_binary(
        &self,
        trace: &Arc<Trace>,
        accepted: Instant,
        resp: Response,
        is_shutdown: bool,
    ) -> BinaryResponse {
        let (outcome_name, cancelled) = match &resp {
            Response::Err { kind, .. } => {
                let kind = kind_from_byte(*kind).unwrap_or(ErrorKind::Protocol);
                self.counter_for(kind).inc();
                (kind.as_str(), kind == ErrorKind::Cancelled)
            }
            _ => {
                self.ins().ok.inc();
                ("ok", false)
            }
        };
        // Same accounting as the JSON path: cancelled work keeps its own
        // counters and never skews `requests` or the latency histogram.
        if !cancelled {
            self.observe_request(trace, accepted, outcome_name);
        }
        BinaryResponse {
            frame: frame_of(&resp),
            shutdown: is_shutdown && !matches!(resp, Response::Err { .. }),
        }
    }

    /// The response to a binary frame whose declared payload exceeds the
    /// size cap. Counted in the oversized-frames counter, *not* the
    /// request latency histogram — the frame was discarded, not timed.
    pub fn oversized_binary_response(&self, declared: u64) -> BinaryResponse {
        self.ins().oversized_frames.inc();
        let resp = err_response(
            0,
            ErrorKind::Protocol,
            format!(
                "frame of {declared} bytes exceeds the {} byte cap",
                self.config().max_frame_bytes
            ),
        );
        BinaryResponse {
            frame: frame_of(&resp),
            shutdown: false,
        }
    }
}

/// Turns a [`ServiceError`] into an encoded error frame (used by
/// transports for framing-level failures that never reach the service).
pub fn error_frame(id: u64, e: &ServiceError) -> Vec<u8> {
    frame_of(&err_response(id, e.kind, e.message.clone()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::ServiceConfig;
    use std::sync::mpsc;

    const SRC: &str = "do i = 1, 100 A[i+2] := A[i] + x; end";

    fn svc() -> Arc<Service> {
        Service::start(ServiceConfig {
            workers: 1,
            ..Default::default()
        })
        .unwrap()
    }

    /// Blocks on the async path — what a transport does, minus the socket.
    fn binary_sync(svc: &Arc<Service>, tag: u8, payload: &[u8]) -> BinaryResponse {
        let (tx, rx) = mpsc::channel();
        svc.handle_binary_frame_async(
            tag,
            payload,
            Box::new(move |resp| {
                let _ = tx.send(resp);
            }),
        );
        rx.recv().expect("respond is invoked exactly once")
    }

    #[test]
    fn ping_round_trips() {
        let svc = svc();
        let req = Request::Ping { id: 9 };
        let out = binary_sync(&svc, req.tag(), &req.encode_payload());
        let resp = decode_response_frame(&out.frame);
        assert_eq!(
            resp,
            Response::Text {
                id: 9,
                text: "pong".into()
            }
        );
        assert!(!out.shutdown);
    }

    #[test]
    fn analyze_by_source_then_fingerprint_hit_is_byte_identical() {
        let svc = svc();
        let req = Request::Analyze(AnalyzeRequest {
            id: 1,
            fingerprint: None,
            problems: None,
            distance_bound: None,
            source: Some(SRC.as_bytes().to_vec()),
        });
        let full =
            decode_response_frame(&binary_sync(&svc, req.tag(), &req.encode_payload()).frame);
        let Response::Analyze(full) = full else {
            panic!("expected analyze response, got {full:?}");
        };
        assert_eq!(full.loops.len(), 1);

        // Probe by the fingerprint the full analysis reported.
        let probe = Request::Analyze(AnalyzeRequest {
            id: 2,
            fingerprint: Some(full.loops[0].fingerprint),
            problems: None,
            distance_bound: None,
            source: None,
        });
        let hit =
            decode_response_frame(&binary_sync(&svc, probe.tag(), &probe.encode_payload()).frame);
        let Response::Analyze(hit) = hit else {
            panic!("expected analyze response, got {hit:?}");
        };
        assert_eq!(hit.cache_hits, 1);
        assert_eq!(
            hit.loops[0].report, full.loops[0].report,
            "report bytes moved"
        );
        assert_eq!(svc.engine().stats().fingerprint_fast_hits, 1);
    }

    #[test]
    fn unknown_fingerprint_without_source_is_an_analysis_error() {
        let svc = svc();
        let probe = Request::Analyze(AnalyzeRequest {
            id: 3,
            fingerprint: Some([7; 16]),
            problems: None,
            distance_bound: None,
            source: None,
        });
        let resp =
            decode_response_frame(&binary_sync(&svc, probe.tag(), &probe.encode_payload()).frame);
        let Response::Err { id, kind, .. } = resp else {
            panic!("expected error, got {resp:?}");
        };
        assert_eq!(id, 3);
        assert_eq!(kind_from_byte(kind), Some(ErrorKind::Analysis));
        assert_eq!(svc.engine().stats().fingerprint_misses, 1);
    }

    #[test]
    fn custom_by_source_then_fingerprint_hit_is_byte_identical() {
        let svc = svc();
        // Live elements — gen uses, kill defs, backward, may — has no
        // canned equivalent, so this exercises the true custom path.
        let spec = 0b11_0110;
        let req = Request::Custom(CustomRequest {
            id: 1,
            spec,
            fingerprint: None,
            distance_bound: None,
            source: Some(SRC.as_bytes().to_vec()),
        });
        let full =
            decode_response_frame(&binary_sync(&svc, req.tag(), &req.encode_payload()).frame);
        let Response::Analyze(full) = full else {
            panic!("expected analyze response, got {full:?}");
        };
        assert_eq!(full.loops.len(), 1);

        let probe = Request::Custom(CustomRequest {
            id: 2,
            spec,
            fingerprint: Some(full.loops[0].fingerprint),
            distance_bound: None,
            source: None,
        });
        let hit =
            decode_response_frame(&binary_sync(&svc, probe.tag(), &probe.encode_payload()).frame);
        let Response::Analyze(hit) = hit else {
            panic!("expected analyze response, got {hit:?}");
        };
        assert_eq!(hit.cache_hits, 1);
        assert_eq!(
            hit.loops[0].report, full.loops[0].report,
            "custom report bytes moved"
        );

        // A different spec over the same fingerprint is a distinct cache
        // entry — it must miss, not serve the wrong problem's answer.
        let other = Request::Custom(CustomRequest {
            id: 3,
            spec: 0b01_0110,
            fingerprint: Some(full.loops[0].fingerprint),
            distance_bound: None,
            source: None,
        });
        let miss =
            decode_response_frame(&binary_sync(&svc, other.tag(), &other.encode_payload()).frame);
        let Response::Err { kind, .. } = miss else {
            panic!("expected a miss error, got {miss:?}");
        };
        assert_eq!(kind_from_byte(kind), Some(ErrorKind::Analysis));
    }

    #[test]
    fn custom_delegates_canned_specs_to_the_shared_cache_entry() {
        let svc = svc();
        // gen defs + kill defs, forward, must — exactly must-reaching.
        let req = Request::Custom(CustomRequest {
            id: 1,
            spec: 0b00_0101,
            fingerprint: None,
            distance_bound: None,
            source: Some(SRC.as_bytes().to_vec()),
        });
        let full =
            decode_response_frame(&binary_sync(&svc, req.tag(), &req.encode_payload()).frame);
        let Response::Analyze(full) = full else {
            panic!("expected analyze response, got {full:?}");
        };

        // The canned verb probing the reaching-only selection by
        // fingerprint must hit the entry the custom solve populated.
        let reaching_only = ProblemSet {
            reaching: true,
            ..ProblemSet::NONE
        };
        let probe = Request::Analyze(AnalyzeRequest {
            id: 2,
            fingerprint: Some(full.loops[0].fingerprint),
            problems: Some(reaching_only.bits()),
            distance_bound: None,
            source: None,
        });
        let hit =
            decode_response_frame(&binary_sync(&svc, probe.tag(), &probe.encode_payload()).frame);
        let Response::Analyze(hit) = hit else {
            panic!("expected analyze response, got {hit:?}");
        };
        assert_eq!(hit.cache_hits, 1);
        assert_eq!(
            hit.loops[0].report, full.loops[0].report,
            "delegated custom report must be byte-identical to the canned one"
        );
    }

    #[test]
    fn bad_custom_spec_or_distance_is_a_protocol_error() {
        let svc = svc();
        // An empty-G spec byte is rejected by the wire decoder before the
        // service sees a request — tampering with the encoded payload
        // exercises that path end to end.
        let good = Request::Custom(CustomRequest {
            id: 1,
            spec: 0b00_0101,
            fingerprint: None,
            distance_bound: None,
            source: Some(SRC.as_bytes().to_vec()),
        });
        let mut payload = good.encode_payload();
        payload[1] = 0; // the spec byte sits right after the 1-byte id
        let resp = decode_response_frame(&binary_sync(&svc, good.tag(), &payload).frame);
        let Response::Err { kind, .. } = resp else {
            panic!("expected error, got {resp:?}");
        };
        assert_eq!(kind_from_byte(kind), Some(ErrorKind::Protocol));

        // An absurd distance bound passes framing but fails validation.
        let req = Request::Custom(CustomRequest {
            id: 2,
            spec: 0b00_0101,
            fingerprint: None,
            distance_bound: Some(CustomSpec::MAX_DISTANCE_BOUND + 1),
            source: Some(SRC.as_bytes().to_vec()),
        });
        let resp =
            decode_response_frame(&binary_sync(&svc, req.tag(), &req.encode_payload()).frame);
        let Response::Err { id, kind, .. } = resp else {
            panic!("expected error, got {resp:?}");
        };
        assert_eq!(id, 2);
        assert_eq!(kind_from_byte(kind), Some(ErrorKind::Protocol));
    }

    #[test]
    fn oversized_counts_in_its_own_counter_not_latency() {
        let svc = svc();
        let before = svc.stats();
        let out = svc.oversized_binary_response(1 << 30);
        let resp = decode_response_frame(&out.frame);
        assert!(matches!(resp, Response::Err { .. }));
        let after = svc.stats();
        assert_eq!(after.oversized_frames, before.oversized_frames + 1);
        assert_eq!(after.requests, before.requests);
        assert_eq!(after.latency, before.latency);
        // The taxonomy counter is also untouched: oversized is not a
        // "response by outcome", it is a discarded frame.
        assert_eq!(after.protocol_errors, before.protocol_errors);
    }

    #[test]
    fn health_reports_node_identity() {
        let svc = Service::start(ServiceConfig {
            workers: 1,
            node_id: Some("n1".into()),
            ..Default::default()
        })
        .unwrap();
        let req = Request::Health { id: 4 };
        let out = binary_sync(&svc, req.tag(), &req.encode_payload());
        let resp = decode_response_frame(&out.frame);
        let Response::Text { id, text } = resp else {
            panic!("expected text response, got {resp:?}");
        };
        assert_eq!(id, 4);
        assert!(text.contains(r#""status":"ok""#), "{text}");
        assert!(text.contains(r#""node":"n1""#), "{text}");
        assert!(text.contains(r#""shutting_down":false"#), "{text}");
    }

    #[test]
    fn replicate_without_store_is_a_protocol_error() {
        let svc = svc();
        let req = Request::Replicate {
            id: 5,
            batch: Vec::new(),
        };
        let out = binary_sync(&svc, req.tag(), &req.encode_payload());
        let resp = decode_response_frame(&out.frame);
        let Response::Err { id, kind, message } = resp else {
            panic!("expected error, got {resp:?}");
        };
        assert_eq!(id, 5);
        assert_eq!(kind_from_byte(kind), Some(ErrorKind::Protocol));
        assert!(message.contains("no store configured"), "{message}");
    }

    #[test]
    fn replicate_applies_batch_and_warms_fingerprint_path() {
        use arrayflow_store::{Store, StoreConfig};

        let src_dir = std::env::temp_dir().join(format!("afbin-repl-src-{}", std::process::id()));
        let dst_dir = std::env::temp_dir().join(format!("afbin-repl-dst-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&src_dir);
        let _ = std::fs::remove_dir_all(&dst_dir);

        // Build a donor store by running a real analysis through a
        // store-backed service, then export its live set.
        let donor = Service::start(ServiceConfig {
            workers: 1,
            store: Some(StoreConfig::at(&src_dir)),
            ..Default::default()
        })
        .unwrap();
        let req = Request::Analyze(AnalyzeRequest {
            id: 1,
            fingerprint: None,
            problems: None,
            distance_bound: None,
            source: Some(SRC.as_bytes().to_vec()),
        });
        let full =
            decode_response_frame(&binary_sync(&donor, req.tag(), &req.encode_payload()).frame);
        let Response::Analyze(full) = full else {
            panic!("expected analyze response, got {full:?}");
        };
        let fp_bytes = full.loops[0].fingerprint;
        donor.shutdown();
        donor.join_workers();
        let batch = Store::open(StoreConfig::at(&src_dir))
            .unwrap()
            .export_live();
        assert!(!batch.is_empty());

        // A fresh replica node ingests the batch over the wire verb …
        let replica = Service::start(ServiceConfig {
            workers: 1,
            store: Some(StoreConfig::at(&dst_dir)),
            ..Default::default()
        })
        .unwrap();
        let req = Request::Replicate { id: 2, batch };
        let out = binary_sync(&replica, req.tag(), &req.encode_payload());
        let resp = decode_response_frame(&out.frame);
        let Response::Text { id, text } = resp else {
            panic!("expected text response, got {resp:?}");
        };
        assert_eq!(id, 2);
        assert!(text.contains(r#""applied":1"#), "{text}");

        // … and then answers the fingerprint probe from the replicated
        // store without any source — the warm-failover contract.
        let probe = Request::Analyze(AnalyzeRequest {
            id: 3,
            fingerprint: Some(fp_bytes),
            problems: None,
            distance_bound: None,
            source: None,
        });
        let hit = decode_response_frame(
            &binary_sync(&replica, probe.tag(), &probe.encode_payload()).frame,
        );
        let Response::Analyze(hit) = hit else {
            panic!("expected analyze response, got {hit:?}");
        };
        assert_eq!(hit.cache_hits, 1);
        assert_eq!(hit.loops[0].report, full.loops[0].report);

        replica.shutdown();
        replica.join_workers();
        let _ = std::fs::remove_dir_all(&src_dir);
        let _ = std::fs::remove_dir_all(&dst_dir);
    }

    #[test]
    fn kind_bytes_round_trip() {
        for kind in [
            ErrorKind::Parse,
            ErrorKind::Analysis,
            ErrorKind::Timeout,
            ErrorKind::Overloaded,
            ErrorKind::Protocol,
            ErrorKind::SessionLost,
            ErrorKind::Cancelled,
        ] {
            assert_eq!(kind_from_byte(kind_byte(kind)), Some(kind));
        }
        assert_eq!(kind_from_byte(200), None);
    }

    fn decode_response_frame(frame: &[u8]) -> Response {
        let mut d = arrayflow_wire::FrameDecoder::new(usize::MAX);
        d.extend(frame);
        match d.next().unwrap().unwrap() {
            arrayflow_wire::FrameEvent::Frame { tag, payload } => {
                Response::decode(tag, &payload).unwrap()
            }
            other => panic!("unexpected event {other:?}"),
        }
    }
}
