//! A resilient TCP client for the analysis service.
//!
//! [`Client`] speaks the newline-framed JSON protocol (see [`proto`]) and
//! layers the fault-tolerance a long-lived caller needs on top of a raw
//! socket:
//!
//! * **reconnect** — a dropped or half-dead connection is replaced
//!   transparently on the next request, *into the same protocol mode*:
//!   the client keeps one connection slot per protocol (JSON, binary),
//!   so a reconnect redials straight into the slot's mode instead of
//!   re-running the server's first-bytes protocol detection, and
//!   alternating JSON/binary calls never tear each other's pinned
//!   connection down;
//! * **address failover** — construct with [`Client::new_multi`] and a
//!   transport failure rotates to the next address (counted by
//!   [`Client::failovers`]) before the retry redials, so a dead node
//!   costs one backoff delay, not the whole retry budget;
//! * **per-request deadlines** — connect and read/write timeouts from
//!   [`ClientConfig`], so a wedged server costs bounded time, never a
//!   hang;
//! * **retries with jittered exponential backoff** — transport failures
//!   and `overloaded` responses are retried up to
//!   [`ClientConfig::max_retries`] times with full-jitter delays from
//!   [`arrayflow_resilience::Backoff`]. `analyze` is idempotent (same
//!   program, same report), so resending after an ambiguous failure is
//!   safe.
//!
//! Structured service errors other than `overloaded` (`parse`,
//! `analysis`, `timeout`, `protocol`) are *not* retried: the server
//! answered, the answer is a fact about the request.
//!
//! ```no_run
//! use arrayflow_service::{Client, ClientConfig};
//!
//! let mut client = Client::new("127.0.0.1:7433", ClientConfig::default());
//! let report = client
//!     .analyze("do i = 1, 100 A[i+2] := A[i] + x; end")
//!     .unwrap();
//! assert!(report.contains("\"ok\":true"));
//! ```
//!
//! [`proto`]: crate::proto

use std::fmt;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

use arrayflow_engine::{CustomSpec, Direction, Mode};
use arrayflow_resilience::{Backoff, RetryBudget};
use arrayflow_wire::frame::read_frame;
use arrayflow_wire::proto::{
    with_deadline, AnalyzeOk, AnalyzeRequest, CustomRequest, DeltaOk, Request as WireRequest,
    Response as WireResponse, SessionOk,
};

use crate::binproto::kind_from_byte;
use crate::json::Json;
use crate::proto::ErrorKind;

/// Cap on a single binary response frame the client will buffer. Reports
/// are small; anything near this is a protocol violation, not data.
const MAX_RESPONSE_FRAME: usize = 64 << 20;

/// Tuning for a [`Client`]: deadlines and the retry envelope.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Deadline for establishing a TCP connection.
    pub connect_timeout: Duration,
    /// Per-attempt deadline for sending a request and reading its
    /// response line.
    pub request_timeout: Duration,
    /// Additional attempts after the first (0 disables retries).
    pub max_retries: u32,
    /// First backoff delay; doubles per retry (full jitter).
    pub backoff_base: Duration,
    /// Ceiling on a single backoff delay.
    pub backoff_cap: Duration,
    /// Seed for the jitter stream; `None` seeds from the clock. Fix it
    /// for reproducible retry timing in tests.
    pub backoff_seed: Option<u64>,
    /// Overall per-request deadline budget. Sent to the server as
    /// `deadline_ms` (JSON) or a deadline frame prefix (binary) so it can
    /// shed the work when the budget runs out, and bounding the whole
    /// retry envelope client-side: each attempt's socket timeout is the
    /// *remaining* budget (never more than `request_timeout`), and no
    /// attempt starts once the budget is spent. `None` keeps the
    /// per-attempt `request_timeout` as the only deadline.
    pub deadline: Option<Duration>,
    /// Retry token bucket: back-to-back retries allowed before the
    /// sustained rate applies. Retries across *all* requests spend from
    /// one bucket, so a fleet-wide overload cannot be amplified by
    /// unbounded resends. 0 disables retries outright.
    pub retry_burst: u32,
    /// Retry token bucket: sustained refill rate, retries per second.
    pub retry_per_sec: f64,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            connect_timeout: Duration::from_secs(2),
            request_timeout: Duration::from_secs(10),
            max_retries: 4,
            backoff_base: Duration::from_millis(20),
            backoff_cap: Duration::from_secs(2),
            backoff_seed: None,
            deadline: None,
            retry_burst: 16,
            retry_per_sec: 4.0,
        }
    }
}

/// Why a [`Client`] request ultimately failed.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure that survived every retry (connect refused,
    /// connection reset, per-attempt deadline exceeded, ...).
    Io(io::Error),
    /// The server answered with a structured error frame. `overloaded`
    /// only lands here after the retry budget is spent.
    Service {
        /// The taxonomy kind from `error.kind`; `None` if the wire name
        /// was not a known kind.
        kind: Option<ErrorKind>,
        /// The human-readable `error.message`.
        message: String,
    },
    /// The server's response line was not a valid protocol frame.
    Protocol(String),
    /// The configured [`ClientConfig::deadline`] budget was spent before
    /// another attempt could start. The last transport or service error
    /// (if any attempt ran) is folded into the message.
    DeadlineExhausted {
        /// The configured overall budget.
        budget: Duration,
        /// What the final attempt (if any) failed with.
        last_error: Option<Box<ClientError>>,
    },
}

impl ClientError {
    /// True when this error is worth retrying on an idempotent request:
    /// transport failures and `overloaded` responses.
    fn is_retryable(&self) -> bool {
        match self {
            ClientError::Io(_) => true,
            ClientError::Service { kind, .. } => *kind == Some(ErrorKind::Overloaded),
            ClientError::Protocol(_) => false,
            ClientError::DeadlineExhausted { .. } => false,
        }
    }

    /// True when the server answered `session_lost`: the session a
    /// `delta` targeted no longer exists on the answering node — TTL
    /// expiry, capacity eviction, or a mid-session failover to a replica
    /// that never held it. The remedy is to re-open the session and
    /// replay the edits; resending the delta as-is is pointless, so this
    /// is deliberately not retryable.
    pub fn is_session_lost(&self) -> bool {
        matches!(
            self,
            ClientError::Service {
                kind: Some(ErrorKind::SessionLost),
                ..
            }
        )
    }
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport: {e}"),
            ClientError::Service { kind, message } => match kind {
                Some(k) => write!(f, "service: {k}: {message}"),
                None => write!(f, "service: {message}"),
            },
            ClientError::Protocol(m) => write!(f, "protocol: {m}"),
            ClientError::DeadlineExhausted { budget, last_error } => {
                write!(f, "deadline budget of {} ms exhausted", budget.as_millis())?;
                if let Some(e) = last_error {
                    write!(f, " (last attempt: {e})")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// An incremental analysis session opened over the JSON protocol: the
/// server-side session id, its base fingerprint (carry it on every
/// [`Client::delta`] — the cluster router's shard key for the session),
/// and the full `ok` response line with the initial report.
#[derive(Debug, Clone)]
pub struct OpenedSession {
    /// Server-side session id; pass to [`Client::delta`].
    pub session: u64,
    /// The session's base fingerprint, 32 hex characters.
    pub fingerprint: String,
    /// The raw `ok` response line (initial report inside `result`).
    pub line: String,
}

/// The protocol a connection was opened with. The server locks each
/// connection to the protocol of its first bytes, so a mode switch means
/// a redial.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ConnMode {
    Json,
    Binary,
}

impl ConnMode {
    /// The connection-slot index for this mode.
    fn slot(self) -> usize {
        match self {
            ConnMode::Json => 0,
            ConnMode::Binary => 1,
        }
    }
}

/// One live connection: a write half and a buffered read half over the
/// same socket, locked to one protocol.
struct Conn {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

/// A reconnecting, retrying client for the analysis service.
///
/// One request is in flight at a time; responses are matched by arrival
/// order, which the per-connection protocol guarantees. Construction is
/// lazy — the first request dials the server.
pub struct Client {
    addrs: Vec<String>,
    active: usize,
    config: ClientConfig,
    /// One slot per [`ConnMode`]: the server pins each connection to the
    /// protocol of its first bytes, so the slot *is* the negotiated mode
    /// and survives reconnects.
    conns: [Option<Conn>; 2],
    next_id: u64,
    connects: u64,
    retries: u64,
    failovers: u64,
    /// One bucket across every request this client makes: retries spend
    /// tokens; a dry bucket surfaces the original error instead of
    /// amplifying an overload with resends.
    retry_budget: RetryBudget,
}

impl Client {
    /// Creates a client for `addr` (e.g. `"127.0.0.1:7433"`). Does not
    /// connect; the first request does.
    pub fn new(addr: impl Into<String>, config: ClientConfig) -> Client {
        Client::new_multi([addr.into()], config)
    }

    /// Creates a client over several equivalent addresses (e.g. a node
    /// and its replica). Requests go to one address at a time; a
    /// transport failure rotates to the next before the retry redials.
    ///
    /// # Panics
    ///
    /// If `addrs` is empty.
    pub fn new_multi<I>(addrs: I, config: ClientConfig) -> Client
    where
        I: IntoIterator,
        I::Item: Into<String>,
    {
        let addrs: Vec<String> = addrs.into_iter().map(Into::into).collect();
        assert!(!addrs.is_empty(), "Client needs at least one address");
        let retry_budget = RetryBudget::new(config.retry_burst, config.retry_per_sec);
        Client {
            addrs,
            active: 0,
            config,
            conns: [None, None],
            next_id: 0,
            connects: 0,
            retries: 0,
            failovers: 0,
            retry_budget,
        }
    }

    /// Creates a client and eagerly verifies the server is reachable
    /// with a `ping` (which also exercises the retry envelope).
    pub fn connect(addr: impl Into<String>, config: ClientConfig) -> Result<Client, ClientError> {
        let mut client = Client::new(addr, config);
        client.ping()?;
        Ok(client)
    }

    /// Times the server was (re)dialed. The first connection counts, so
    /// `connects() - 1` is the number of reconnects.
    pub fn connects(&self) -> u64 {
        self.connects
    }

    /// Attempts resent after a retryable failure, across all requests.
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// Times the client rotated to another address after a transport
    /// failure. Always 0 for a single-address client.
    pub fn failovers(&self) -> u64 {
        self.failovers
    }

    /// Retries the token bucket denied; each surfaced the underlying
    /// error instead of resending.
    pub fn retries_denied(&self) -> u64 {
        self.retry_budget.denied()
    }

    /// The address requests currently dial.
    pub fn active_addr(&self) -> &str {
        &self.addrs[self.active]
    }

    /// Analyzes one DSL program; on success returns the server's `ok`
    /// response line (reports, per-request cache stats). Idempotent, so
    /// transport failures and `overloaded` responses are retried.
    pub fn analyze(&mut self, program: &str) -> Result<String, ClientError> {
        let id = self.fresh_id();
        let frame = self.encode_request(vec![
            ("id".into(), Json::Num(id as f64)),
            ("verb".into(), Json::Str("analyze".into())),
            ("program".into(), Json::Str(program.into())),
        ]);
        self.request(&frame)
    }

    /// Encodes a JSON request, appending the configured deadline budget
    /// as `deadline_ms` so the server (and any router on the path) can
    /// shed the work once the budget runs out.
    fn encode_request(&self, mut fields: Vec<(String, Json)>) -> String {
        if let Some(budget) = self.config.deadline {
            fields.push(("deadline_ms".into(), Json::Num(budget.as_millis() as f64)));
        }
        Json::Obj(fields).to_string()
    }

    /// Solves a user-specified (G, K) problem over `program`; on success
    /// returns the server's `ok` response line, whose rendered report
    /// carries the spec label and the per-(generator, node) lattice
    /// values in a `custom` section. Idempotent, so transport failures
    /// and `overloaded` responses are retried.
    pub fn custom(&mut self, program: &str, spec: CustomSpec) -> Result<String, ClientError> {
        let id = self.fresh_id();
        let frame = self.encode_request(vec![
            ("id".into(), Json::Num(id as f64)),
            ("verb".into(), Json::Str("custom".into())),
            ("program".into(), Json::Str(program.into())),
            ("spec".into(), spec_to_json(spec)),
        ]);
        self.request(&frame)
    }

    /// Opens an incremental analysis session over `program`: the server
    /// runs the full analysis once and keeps the converged lattice state
    /// warm for [`Client::delta`] calls. Idempotent at the analysis level
    /// (a retried open may leave an extra session behind; the server's
    /// TTL/capacity bounds reclaim it).
    pub fn open_session(&mut self, program: &str) -> Result<OpenedSession, ClientError> {
        let id = self.fresh_id();
        let frame = self.encode_request(vec![
            ("id".into(), Json::Num(id as f64)),
            ("verb".into(), Json::Str("open".into())),
            ("program".into(), Json::Str(program.into())),
        ]);
        let line = self.request(&frame)?;
        let json = Json::parse(line.as_bytes())
            .map_err(|e| ClientError::Protocol(format!("unparseable open result: {e}")))?;
        let result = json.get("result");
        let session = result
            .and_then(|r| r.get("session"))
            .and_then(Json::as_u64)
            .ok_or_else(|| ClientError::Protocol("open result has no `session` id".into()))?;
        let fingerprint = result
            .and_then(|r| r.get("fingerprint"))
            .and_then(Json::as_str)
            .ok_or_else(|| ClientError::Protocol("open result has no `fingerprint`".into()))?
            .to_string();
        Ok(OpenedSession {
            session,
            fingerprint,
            line,
        })
    }

    /// Applies one statement replacement to an open session and returns
    /// the server's `ok` line (re-analyzed report, fallback flag, dirty
    /// column counts). `fingerprint` is the base fingerprint from
    /// [`Client::open_session`]. Statement replacement is idempotent, so
    /// transport failures and `overloaded` responses are retried.
    pub fn delta(
        &mut self,
        session: u64,
        fingerprint: &str,
        stmt: u64,
        text: &str,
    ) -> Result<String, ClientError> {
        let id = self.fresh_id();
        let frame = self.encode_request(vec![
            ("id".into(), Json::Num(id as f64)),
            ("verb".into(), Json::Str("delta".into())),
            ("session".into(), Json::Num(session as f64)),
            ("fingerprint".into(), Json::Str(fingerprint.into())),
            ("stmt".into(), Json::Num(stmt as f64)),
            ("text".into(), Json::Str(text.into())),
        ]);
        self.request(&frame)
    }

    /// `ping` round trip; proves liveness end to end.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        self.call("ping").map(drop)
    }

    /// Fetches the server's `stats` response line.
    pub fn stats(&mut self) -> Result<String, ClientError> {
        self.call("stats")
    }

    /// Fetches the server's `metrics` response line (JSON metrics plus
    /// the Prometheus exposition).
    pub fn metrics(&mut self) -> Result<String, ClientError> {
        self.call("metrics")
    }

    /// Asks the server to drain and stop.
    pub fn shutdown(&mut self) -> Result<String, ClientError> {
        self.call("shutdown")
    }

    /// Sends a bare `{id, verb}` request.
    pub fn call(&mut self, verb: &str) -> Result<String, ClientError> {
        let frame = Json::Obj(vec![
            ("id".into(), Json::Num(self.fresh_id() as f64)),
            ("verb".into(), Json::Str(verb.into())),
        ]);
        self.request(&frame.to_string())
    }

    /// Sends one pre-encoded request frame (no trailing newline) with
    /// the full resilience envelope, returning the server's `ok`
    /// response line. Only send idempotent requests through this —
    /// ambiguous transport failures are resent.
    pub fn request(&mut self, frame: &str) -> Result<String, ClientError> {
        let mut backoff = self.fresh_backoff();
        let started = Instant::now();
        let mut last: Option<ClientError> = None;
        loop {
            let timeout = self.attempt_timeout(started, &mut last)?;
            let err = match self.attempt(frame, timeout) {
                Ok(line) => return Ok(line),
                Err(e) => e,
            };
            if !err.is_retryable()
                || backoff.attempt() >= self.config.max_retries
                || !self.retry_budget.try_acquire()
            {
                return Err(err);
            }
            self.retries += 1;
            last = Some(err);
            std::thread::sleep(backoff.next_delay());
        }
    }

    /// A fresh jitter stream, varied per request so concurrent clients
    /// with the same seed do not thunder in lockstep.
    fn fresh_backoff(&self) -> Backoff {
        match self.config.backoff_seed {
            Some(seed) => Backoff::with_seed(
                self.config.backoff_base,
                self.config.backoff_cap,
                seed.wrapping_add(self.next_id),
            ),
            None => Backoff::new(self.config.backoff_base, self.config.backoff_cap),
        }
    }

    /// The next attempt's socket deadline: the remaining overall budget,
    /// never more than `request_timeout`. `Err` when the budget is spent
    /// before the attempt could start.
    fn attempt_timeout(
        &self,
        started: Instant,
        last: &mut Option<ClientError>,
    ) -> Result<Duration, ClientError> {
        let Some(budget) = self.config.deadline else {
            return Ok(self.config.request_timeout);
        };
        let remaining = budget.saturating_sub(started.elapsed());
        if remaining.is_zero() {
            return Err(ClientError::DeadlineExhausted {
                budget,
                last_error: last.take().map(Box::new),
            });
        }
        Ok(remaining.min(self.config.request_timeout))
    }

    /// Analyzes one DSL program over the binary protocol, returning the
    /// decoded response (per-loop fingerprints + store-codec report
    /// bytes, per-request cache stats).
    pub fn analyze_binary(&mut self, program: &str) -> Result<AnalyzeOk, ClientError> {
        let id = self.fresh_id();
        self.analyze_request(AnalyzeRequest {
            id,
            fingerprint: None,
            problems: None,
            distance_bound: None,
            source: Some(program.as_bytes().to_vec()),
        })
    }

    /// The fingerprint-first fast path: probes the server's caches with a
    /// precomputed fingerprint (see `arrayflow::fingerprint`), optionally
    /// shipping the source as fallback so a cache miss still analyzes
    /// instead of erroring.
    pub fn analyze_fingerprint(
        &mut self,
        fingerprint: [u8; 16],
        source: Option<&str>,
    ) -> Result<AnalyzeOk, ClientError> {
        let id = self.fresh_id();
        self.analyze_request(AnalyzeRequest {
            id,
            fingerprint: Some(fingerprint),
            problems: None,
            distance_bound: None,
            source: source.map(|s| s.as_bytes().to_vec()),
        })
    }

    /// Opens an incremental analysis session over the binary protocol;
    /// the returned [`SessionOk`] carries the session id, its base
    /// fingerprint bytes (carry them on every [`Client::delta_binary`])
    /// and the store-codec encoding of the initial report.
    pub fn open_session_binary(&mut self, program: &str) -> Result<SessionOk, ClientError> {
        let id = self.fresh_id();
        let req = WireRequest::Open {
            id,
            source: program.as_bytes().to_vec(),
        };
        match self.request_binary(&req)? {
            WireResponse::Session(ok) => Ok(ok),
            other => Err(ClientError::Protocol(format!(
                "expected a session response, got {other:?}"
            ))),
        }
    }

    /// Applies one statement replacement to an open session over the
    /// binary protocol. `fingerprint` is the base fingerprint from
    /// [`Client::open_session_binary`] (the session's shard key at the
    /// cluster router). Idempotent, so retried on transport failures.
    pub fn delta_binary(
        &mut self,
        session: u64,
        fingerprint: [u8; 16],
        stmt: u64,
        text: &str,
    ) -> Result<DeltaOk, ClientError> {
        let id = self.fresh_id();
        let req = WireRequest::Delta {
            id,
            session,
            fingerprint,
            stmt,
            text: text.as_bytes().to_vec(),
        };
        match self.request_binary(&req)? {
            WireResponse::Delta(ok) => Ok(ok),
            other => Err(ClientError::Protocol(format!(
                "expected a delta response, got {other:?}"
            ))),
        }
    }

    /// Solves a user-specified (G, K) problem over the binary protocol.
    /// The response reuses the analyze shape: per-loop fingerprints and
    /// store-codec report bytes whose decoded form carries the custom
    /// section.
    pub fn custom_binary(
        &mut self,
        program: &str,
        spec: CustomSpec,
    ) -> Result<AnalyzeOk, ClientError> {
        let id = self.fresh_id();
        self.custom_request(CustomRequest {
            id,
            spec: spec.bits(),
            fingerprint: None,
            distance_bound: None,
            source: Some(program.as_bytes().to_vec()),
        })
    }

    /// The fingerprint-first fast path for a custom problem: probes the
    /// server's caches under the spec-extended key, optionally shipping
    /// the source as fallback so a miss still solves instead of erroring.
    pub fn custom_fingerprint(
        &mut self,
        fingerprint: [u8; 16],
        spec: CustomSpec,
        source: Option<&str>,
    ) -> Result<AnalyzeOk, ClientError> {
        let id = self.fresh_id();
        self.custom_request(CustomRequest {
            id,
            spec: spec.bits(),
            fingerprint: Some(fingerprint),
            distance_bound: None,
            source: source.map(|s| s.as_bytes().to_vec()),
        })
    }

    fn custom_request(&mut self, req: CustomRequest) -> Result<AnalyzeOk, ClientError> {
        match self.request_binary(&WireRequest::Custom(req))? {
            WireResponse::Analyze(ok) => Ok(ok),
            other => Err(ClientError::Protocol(format!(
                "expected an analyze response, got {other:?}"
            ))),
        }
    }

    fn analyze_request(&mut self, req: AnalyzeRequest) -> Result<AnalyzeOk, ClientError> {
        match self.request_binary(&WireRequest::Analyze(req))? {
            WireResponse::Analyze(ok) => Ok(ok),
            other => Err(ClientError::Protocol(format!(
                "expected an analyze response, got {other:?}"
            ))),
        }
    }

    /// Binary `ping` round trip.
    pub fn ping_binary(&mut self) -> Result<(), ClientError> {
        let id = self.fresh_id();
        match self.request_binary(&WireRequest::Ping { id })? {
            WireResponse::Text { .. } => Ok(()),
            other => Err(ClientError::Protocol(format!(
                "expected a text response, got {other:?}"
            ))),
        }
    }

    /// Fetches the Prometheus metrics exposition over the binary
    /// protocol (the binary `metrics` verb ships it without a JSON
    /// wrapper).
    pub fn metrics_prometheus(&mut self) -> Result<String, ClientError> {
        let id = self.fresh_id();
        match self.request_binary(&WireRequest::Metrics { id })? {
            WireResponse::Text { text, .. } => Ok(text),
            other => Err(ClientError::Protocol(format!(
                "expected a text response, got {other:?}"
            ))),
        }
    }

    /// Sends one binary request with the same resilience envelope as
    /// [`Client::request`]: reconnect on transport failure, jittered
    /// backoff retries for `Io` and `overloaded` outcomes. The connection
    /// is (re)dialed in binary mode if it was speaking JSON.
    pub fn request_binary(&mut self, req: &WireRequest) -> Result<WireResponse, ClientError> {
        let (tag, payload) = (req.tag(), req.encode_payload());
        let mut backoff = self.fresh_backoff();
        let started = Instant::now();
        let mut last: Option<ClientError> = None;
        loop {
            let timeout = self.attempt_timeout(started, &mut last)?;
            // With a budget configured, each attempt carries the
            // *remaining* milliseconds as its deadline prefix, so the
            // server sheds the job right when the client stops waiting.
            let frame = match self.config.deadline {
                Some(budget) => {
                    let remaining = budget.saturating_sub(started.elapsed());
                    let (dtag, dpayload) =
                        with_deadline(tag, &payload, remaining.as_millis() as u64);
                    arrayflow_wire::encode_frame(dtag, &dpayload)
                }
                None => arrayflow_wire::encode_frame(tag, &payload),
            };
            let err = match self.attempt_binary(&frame, timeout) {
                Ok(resp) => return Ok(resp),
                Err(e) => e,
            };
            if !err.is_retryable()
                || backoff.attempt() >= self.config.max_retries
                || !self.retry_budget.try_acquire()
            {
                return Err(err);
            }
            self.retries += 1;
            last = Some(err);
            std::thread::sleep(backoff.next_delay());
        }
    }

    fn attempt_binary(
        &mut self,
        frame: &[u8],
        timeout: Duration,
    ) -> Result<WireResponse, ClientError> {
        let (tag, payload) = match self.send_recv_binary(frame, timeout) {
            Ok(f) => f,
            Err(e) => {
                self.transport_failure();
                return Err(ClientError::Io(e));
            }
        };
        let resp = match WireResponse::decode(tag, &payload) {
            Ok(resp) => resp,
            Err(e) => {
                // The stream may be desynced; force a redial, but do not
                // retry — a malformed response is a fact, not a flake.
                self.conns[ConnMode::Binary.slot()] = None;
                return Err(ClientError::Protocol(format!("undecodable response: {e}")));
            }
        };
        match resp {
            WireResponse::Err { kind, message, .. } => Err(ClientError::Service {
                kind: kind_from_byte(kind),
                message,
            }),
            ok => Ok(ok),
        }
    }

    fn send_recv_binary(&mut self, frame: &[u8], timeout: Duration) -> io::Result<(u8, Vec<u8>)> {
        let conn = self.ensure_conn(ConnMode::Binary)?;
        // Socket options live on the shared file description, so setting
        // them on the write half also bounds the buffered reader's reads.
        conn.writer.set_read_timeout(Some(timeout))?;
        conn.writer.set_write_timeout(Some(timeout))?;
        conn.writer.write_all(frame)?;
        conn.writer.flush()?;
        read_frame(&mut conn.reader, MAX_RESPONSE_FRAME)
    }

    /// One attempt: ensure a connection, write the frame, read and
    /// classify the response line.
    fn attempt(&mut self, frame: &str, timeout: Duration) -> Result<String, ClientError> {
        let line = match self.send_recv(frame, timeout) {
            Ok(line) => line,
            Err(e) => {
                // The socket is in an unknown state (a late response
                // would desync request/response pairing) — drop it and
                // let the next attempt redial.
                self.transport_failure();
                return Err(ClientError::Io(e));
            }
        };
        classify(&line)
    }

    /// A transport-level failure: every connection to the active address
    /// is suspect, so drop both slots, and — with more than one address —
    /// rotate so the retry dials the next node instead of burning the
    /// whole budget on a dead one.
    fn transport_failure(&mut self) {
        self.conns = [None, None];
        if self.addrs.len() > 1 {
            self.active = (self.active + 1) % self.addrs.len();
            self.failovers += 1;
        }
    }

    fn send_recv(&mut self, frame: &str, timeout: Duration) -> io::Result<String> {
        let conn = self.ensure_conn(ConnMode::Json)?;
        conn.writer.set_read_timeout(Some(timeout))?;
        conn.writer.set_write_timeout(Some(timeout))?;
        conn.writer.write_all(frame.as_bytes())?;
        conn.writer.write_all(b"\n")?;
        conn.writer.flush()?;
        let mut line = String::new();
        let n = conn.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        Ok(line)
    }

    fn ensure_conn(&mut self, mode: ConnMode) -> io::Result<&mut Conn> {
        let slot = mode.slot();
        if self.conns[slot].is_none() {
            let addr = self.addrs[self.active]
                .to_socket_addrs()?
                .next()
                .ok_or_else(|| {
                    io::Error::new(io::ErrorKind::InvalidInput, "address resolved to nothing")
                })?;
            let stream = TcpStream::connect_timeout(&addr, self.config.connect_timeout)?;
            stream.set_nodelay(true)?;
            stream.set_read_timeout(Some(self.config.request_timeout))?;
            stream.set_write_timeout(Some(self.config.request_timeout))?;
            let reader = BufReader::new(stream.try_clone()?);
            self.conns[slot] = Some(Conn {
                writer: stream,
                reader,
            });
            self.connects += 1;
        }
        Ok(self.conns[slot].as_mut().expect("connection just ensured"))
    }

    fn fresh_id(&mut self) -> u64 {
        self.next_id += 1;
        self.next_id
    }
}

impl fmt::Debug for Client {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Client")
            .field("addrs", &self.addrs)
            .field("active", &self.addrs[self.active])
            .field("connected", &self.conns.iter().any(Option::is_some))
            .field("connects", &self.connects)
            .field("retries", &self.retries)
            .field("failovers", &self.failovers)
            .finish()
    }
}

/// Renders a [`CustomSpec`] as the JSON `spec` object the protocol takes.
fn spec_to_json(spec: CustomSpec) -> Json {
    let roles = |defs: bool, uses: bool| {
        let mut out = Vec::new();
        if defs {
            out.push(Json::Str("defs".into()));
        }
        if uses {
            out.push(Json::Str("uses".into()));
        }
        Json::Arr(out)
    };
    Json::Obj(vec![
        ("gen".into(), roles(spec.gen_defs, spec.gen_uses)),
        ("kill".into(), roles(spec.kill_defs, spec.kill_uses)),
        (
            "direction".into(),
            Json::Str(
                match spec.direction {
                    Direction::Forward => "forward",
                    Direction::Backward => "backward",
                }
                .into(),
            ),
        ),
        (
            "mode".into(),
            Json::Str(
                match spec.mode {
                    Mode::Must => "must",
                    Mode::May => "may",
                }
                .into(),
            ),
        ),
    ])
}

/// Splits a response line into ok / structured error / protocol noise.
fn classify(line: &str) -> Result<String, ClientError> {
    let json = Json::parse(line.as_bytes())
        .map_err(|e| ClientError::Protocol(format!("unparseable response: {e}")))?;
    match json.get("ok").and_then(Json::as_bool) {
        Some(true) => Ok(line.to_string()),
        Some(false) => {
            let error = json.get("error");
            let kind = error
                .and_then(|e| e.get("kind"))
                .and_then(Json::as_str)
                .and_then(ErrorKind::from_wire);
            let message = error
                .and_then(|e| e.get("message"))
                .and_then(Json::as_str)
                .unwrap_or("server sent no error message")
                .to_string();
            Err(ClientError::Service { kind, message })
        }
        None => Err(ClientError::Protocol(
            "response frame has no boolean `ok` field".to_string(),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read;
    use std::net::TcpListener;
    use std::sync::atomic::{AtomicU32, Ordering};
    use std::sync::Arc;

    fn cfg() -> ClientConfig {
        ClientConfig {
            connect_timeout: Duration::from_secs(2),
            request_timeout: Duration::from_secs(5),
            max_retries: 4,
            backoff_base: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(10),
            backoff_seed: Some(7),
            ..ClientConfig::default()
        }
    }

    /// Reads one newline-terminated request, `first` being a byte the
    /// caller already consumed (protocol sniffing).
    fn read_json_line(stream: &mut TcpStream, first: Option<u8>) -> Option<String> {
        let mut line: Vec<u8> = first.into_iter().collect();
        let mut byte = [0u8; 1];
        loop {
            match stream.read(&mut byte) {
                Ok(0) | Err(_) => return None,
                Ok(_) if byte[0] == b'\n' => {
                    return Some(String::from_utf8_lossy(&line).into_owned())
                }
                Ok(_) => line.push(byte[0]),
            }
        }
    }

    fn serve_json_pings(mut stream: TcpStream, name: &str, first: Option<u8>) {
        let mut first = first;
        while let Some(line) = read_json_line(&mut stream, first.take()) {
            let id = Json::parse(line.as_bytes())
                .ok()
                .and_then(|j| j.get("id").cloned())
                .unwrap_or(Json::Null);
            let resp = format!("{{\"id\":{id},\"ok\":true,\"result\":\"pong-{name}\"}}\n");
            if stream.write_all(resp.as_bytes()).is_err() {
                return;
            }
        }
    }

    /// A JSON ping server. `drop_first` kills the first accepted
    /// connection without answering — the reconnect drill.
    fn json_server(name: &'static str, drop_first: bool, conns: Arc<AtomicU32>) -> String {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        std::thread::spawn(move || {
            for (i, stream) in listener.incoming().enumerate() {
                let Ok(stream) = stream else { continue };
                conns.fetch_add(1, Ordering::SeqCst);
                if drop_first && i == 0 {
                    drop(stream);
                    continue;
                }
                std::thread::spawn(move || serve_json_pings(stream, name, None));
            }
        });
        addr
    }

    /// Serves exactly one connection and one request, then goes dark —
    /// the "node died" half of the failover drill.
    fn one_shot_json_server(name: &'static str) -> String {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        std::thread::spawn(move || {
            let Ok((mut stream, _)) = listener.accept() else {
                return;
            };
            if let Some(line) = read_json_line(&mut stream, None) {
                let id = Json::parse(line.as_bytes())
                    .ok()
                    .and_then(|j| j.get("id").cloned())
                    .unwrap_or(Json::Null);
                let resp = format!("{{\"id\":{id},\"ok\":true,\"result\":\"pong-{name}\"}}\n");
                let _ = stream.write_all(resp.as_bytes());
            }
        });
        addr
    }

    /// Speaks both protocols, pinned per connection by the first byte —
    /// what the real server's transport does.
    fn dual_server(conns: Arc<AtomicU32>) -> String {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        std::thread::spawn(move || {
            for stream in listener.incoming() {
                let Ok(mut stream) = stream else { continue };
                conns.fetch_add(1, Ordering::SeqCst);
                std::thread::spawn(move || {
                    let mut first = [0u8; 1];
                    if stream.read_exact(&mut first).is_err() {
                        return;
                    }
                    if first[0] == b'{' {
                        serve_json_pings(stream, "dual", Some(first[0]));
                        return;
                    }
                    // Binary: splice the sniffed byte back ahead of the
                    // stream for the framer.
                    let writer = stream.try_clone().unwrap();
                    let mut reader = std::io::Cursor::new(vec![first[0]]).chain(stream);
                    let mut writer = writer;
                    loop {
                        let Ok((tag, payload)) = read_frame(&mut reader, 1 << 20) else {
                            return;
                        };
                        let Ok(WireRequest::Ping { id }) = WireRequest::decode(tag, &payload)
                        else {
                            return;
                        };
                        let resp = WireResponse::Text {
                            id,
                            text: "pong".into(),
                        };
                        let frame =
                            arrayflow_wire::encode_frame(resp.tag(), &resp.encode_payload());
                        if writer.write_all(&frame).is_err() {
                            return;
                        }
                    }
                });
            }
        });
        addr
    }

    #[test]
    fn reconnect_keeps_the_negotiated_mode_and_connection_cached() {
        let conns = Arc::new(AtomicU32::new(0));
        let addr = json_server("S", true, Arc::clone(&conns));
        let mut client = Client::new(addr, cfg());

        // First request: the server kills the first connection, the retry
        // redials and succeeds.
        client
            .ping()
            .expect("retry should recover the dropped connection");
        assert_eq!(client.connects(), 2, "{client:?}");
        assert_eq!(client.retries(), 1, "{client:?}");

        // Subsequent requests reuse the reconnected slot: no new dial.
        client.ping().unwrap();
        client.ping().unwrap();
        assert_eq!(
            client.connects(),
            2,
            "reconnect must cache the mode: {client:?}"
        );
    }

    #[test]
    fn mode_slots_survive_alternating_protocols() {
        let conns = Arc::new(AtomicU32::new(0));
        let addr = dual_server(Arc::clone(&conns));
        let mut client = Client::new(addr, cfg());

        client.ping().unwrap();
        client.ping_binary().unwrap();
        client.ping().unwrap();
        client.ping_binary().unwrap();

        // One connection per protocol, not one per mode switch: the slots
        // keep both pinned connections alive side by side.
        assert_eq!(client.connects(), 2, "{client:?}");
        assert_eq!(conns.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn fails_over_to_the_next_address_when_a_node_dies() {
        let conns = Arc::new(AtomicU32::new(0));
        let a = one_shot_json_server("A");
        let b = json_server("B", false, conns);
        let mut client = Client::new_multi([a.clone(), b], cfg());

        let line = client.call("ping").unwrap();
        assert!(line.contains("pong-A"), "{line}");
        assert_eq!(client.active_addr(), a);

        // A is dark now; the next request rotates to B inside the retry
        // envelope instead of exhausting it against the dead node.
        let line = client.call("ping").unwrap();
        assert!(line.contains("pong-B"), "{line}");
        assert!(client.failovers() >= 1, "{client:?}");
        assert_ne!(client.active_addr(), a);
    }

    /// Answers every `delta` with the typed `session_lost` error a
    /// failed-over replica produces (it never held the session), and
    /// everything else with ok — the client half of the failover drill.
    fn session_lost_server() -> String {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        std::thread::spawn(move || {
            for stream in listener.incoming() {
                let Ok(mut stream) = stream else { continue };
                std::thread::spawn(move || {
                    while let Some(line) = read_json_line(&mut stream, None) {
                        let json = Json::parse(line.as_bytes()).ok();
                        let id = json
                            .as_ref()
                            .and_then(|j| j.get("id").cloned())
                            .unwrap_or(Json::Null);
                        let verb = json
                            .as_ref()
                            .and_then(|j| j.get("verb"))
                            .and_then(Json::as_str)
                            .unwrap_or("")
                            .to_string();
                        let resp = if verb == "delta" {
                            format!(
                                "{{\"id\":{id},\"ok\":false,\"error\":{{\"kind\":\"session_lost\",\
                                 \"message\":\"unknown or expired session 7\"}}}}\n"
                            )
                        } else {
                            format!("{{\"id\":{id},\"ok\":true,\"result\":\"pong\"}}\n")
                        };
                        if stream.write_all(resp.as_bytes()).is_err() {
                            return;
                        }
                    }
                });
            }
        });
        addr
    }

    #[test]
    fn session_lost_is_typed_and_not_retried() {
        let addr = session_lost_server();
        let mut client = Client::new(addr, cfg());
        let err = client
            .delta(7, "000102030405060708090a0b0c0d0e0f", 1, "x := 1;")
            .expect_err("the fake replica lost the session");
        assert!(err.is_session_lost(), "{err:?}");
        assert!(
            !err.is_retryable(),
            "replaying the same delta cannot succeed"
        );
        assert_eq!(client.retries(), 0, "{client:?}");
        match err {
            ClientError::Service { kind, message } => {
                assert_eq!(kind, Some(ErrorKind::SessionLost));
                assert!(message.contains("session"), "{message}");
            }
            other => panic!("expected a Service error, got {other:?}"),
        }
    }

    #[test]
    fn retry_budget_caps_resends_below_max_retries() {
        // Nothing listens on port 1, so every attempt is a transport
        // failure. With a burst of 1 and no refill the envelope spends
        // exactly one retry before surfacing the error — max_retries
        // alone would have allowed four.
        let mut config = cfg();
        config.connect_timeout = Duration::from_millis(100);
        config.retry_burst = 1;
        config.retry_per_sec = 0.0;
        let mut client = Client::new("127.0.0.1:1", config);
        let err = client.ping().expect_err("nothing listens there");
        assert!(matches!(err, ClientError::Io(_)), "{err:?}");
        assert_eq!(client.retries(), 1, "{client:?}");
        assert!(client.retries_denied() >= 1, "{client:?}");
    }

    #[test]
    fn spent_deadline_budget_fails_fast_without_an_attempt() {
        let mut config = cfg();
        config.deadline = Some(Duration::ZERO);
        let mut client = Client::new("127.0.0.1:1", config);
        let err = client.ping().expect_err("budget already spent");
        assert!(
            matches!(err, ClientError::DeadlineExhausted { .. }),
            "{err:?}"
        );
        assert!(!err.is_retryable());
        assert_eq!(client.retries(), 0, "{client:?}");
        assert_eq!(client.connects(), 0, "no attempt may dial: {client:?}");
    }

    #[test]
    fn configured_deadline_rides_on_json_requests() {
        let mut config = cfg();
        config.deadline = Some(Duration::from_millis(250));
        let client = Client::new("127.0.0.1:1", config);
        let frame = client.encode_request(vec![
            ("id".into(), Json::Num(1.0)),
            ("verb".into(), Json::Str("analyze".into())),
        ]);
        assert!(frame.contains(r#""deadline_ms":250"#), "{frame}");

        let bare = Client::new("127.0.0.1:1", cfg());
        let frame = bare.encode_request(vec![("id".into(), Json::Num(1.0))]);
        assert!(!frame.contains("deadline_ms"), "{frame}");
    }

    #[test]
    fn classify_splits_the_three_outcomes() {
        assert!(classify("{\"id\":1,\"ok\":true}\n").is_ok());
        match classify("{\"id\":1,\"ok\":false,\"error\":{\"kind\":\"overloaded\",\"message\":\"queue full\"}}") {
            Err(e @ ClientError::Service { kind, .. }) => {
                assert_eq!(kind, Some(ErrorKind::Overloaded));
                assert!(e.is_retryable());
            }
            other => panic!("expected Service error, got {other:?}"),
        }
        match classify("{\"id\":1,\"ok\":false,\"error\":{\"kind\":\"parse\",\"message\":\"bad\"}}")
        {
            Err(e @ ClientError::Service { .. }) => assert!(!e.is_retryable()),
            other => panic!("expected Service error, got {other:?}"),
        }
        assert!(matches!(classify("garbage"), Err(ClientError::Protocol(_))));
        assert!(matches!(
            classify("{\"id\":1}"),
            Err(ClientError::Protocol(_))
        ));
    }

    #[test]
    fn unknown_error_kind_degrades_gracefully() {
        match classify("{\"ok\":false,\"error\":{\"kind\":\"quantum\",\"message\":\"m\"}}") {
            Err(ClientError::Service { kind, message }) => {
                assert_eq!(kind, None);
                assert_eq!(message, "m");
            }
            other => panic!("expected Service error, got {other:?}"),
        }
    }
}
