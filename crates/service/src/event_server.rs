//! The event-driven server: one `poll(2)` loop multiplexing every
//! connection onto the shared [`Service`] worker pool, replacing the
//! thread-per-connection [`Server`](crate::server::Server) for high
//! connection counts.
//!
//! Per connection the loop runs a small state machine:
//!
//! ```text
//!              first bytes
//!   Detecting ─────────────┬── "AFWIRE01…" ──> Binary (FrameDecoder)
//!                          └── anything else ─> Json  (newline framing)
//! ```
//!
//! * **Reads** are nonblocking; complete frames are handed to the service
//!   (`handle_frame_async` / `handle_binary_frame_async`). Cheap verbs
//!   answer inline; `analyze` goes through the bounded queue and a worker
//!   invokes the completion later.
//! * **Responses** carry a per-connection sequence number; a `BTreeMap`
//!   holds completions that finish out of order so bytes are written in
//!   request order — same contract as the threaded server, checkable by a
//!   pipelining client.
//! * **Completions** cross threads via a mutexed queue plus a socketpair
//!   [`Waker`] that pulls the loop out of
//!   `poll`.
//! * **Backpressure**: a connection whose write buffer passes the high
//!   watermark stops being read (`POLLIN` dropped) until the buffer
//!   drains below the low watermark — a slow reader throttles itself,
//!   not the server.
//! * **Oversized frames** (both protocols) are rejected from the length
//!   prefix / line cap *before* buffering, counted in the oversized-frame
//!   counter, and never enter the latency histogram.
//!
//! Shutdown (the `shutdown` verb or [`Service::shutdown`]) stops the
//! accept loop and frame reads, drains every queued job and write buffer,
//! then joins the workers.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::io::{AsRawFd, RawFd};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use arrayflow_resilience::CancelToken;
use arrayflow_wire::event::{set_backlog, wake_pair, Poller, Waker, POLLIN, POLLOUT};
use arrayflow_wire::{detect, Detect, FrameDecoder, FrameEvent};

use crate::binproto::error_frame;
use crate::proto::{ErrorKind, ServiceError};
use crate::service::Service;

/// Write-buffer high watermark: a connection buffering more response
/// bytes than this stops being read until it drains.
const WRITE_HIGH_WATER: usize = 1 << 20;
/// Write-buffer low watermark: reading resumes below this.
const WRITE_LOW_WATER: usize = 64 << 10;
/// Read chunk size.
const READ_CHUNK: usize = 64 << 10;

/// Which protocols a listener accepts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProtoMode {
    /// Sniff the first bytes of each connection: `AFWIRE01` means binary,
    /// anything else is newline-JSON. (A JSON request can never begin
    /// with `A` — it starts with `{` or whitespace — so detection never
    /// misclassifies a well-formed client.)
    Auto,
    /// Newline-JSON only; binary magic is treated as a JSON line (and
    /// answered with a `protocol` error). For deployments that must pin
    /// the legacy protocol.
    Json,
}

/// One finished response on its way back to the event loop.
struct Completion {
    conn: u64,
    seq: u64,
    bytes: Vec<u8>,
    shutdown: bool,
}

type Completions = Arc<Mutex<Vec<Completion>>>;

enum Proto {
    /// Accumulating the first bytes until the protocol is known.
    Detecting(Vec<u8>),
    Json(JsonLines),
    Binary(FrameDecoder),
}

/// Incremental newline framing with the same oversized discipline as the
/// blocking [`FrameReader`](crate::server::FrameReader): a line over the
/// cap is discarded in bounded memory (never buffered whole), reported
/// once at its terminating newline, and the stream stays usable.
struct JsonLines {
    line: Vec<u8>,
    max: usize,
    dropping: bool,
}

enum JsonEvent {
    Line(Vec<u8>),
    Oversized,
}

impl JsonLines {
    fn new(max: usize) -> Self {
        JsonLines {
            line: Vec::new(),
            max,
            dropping: false,
        }
    }

    fn feed(&mut self, chunk: &[u8], mut emit: impl FnMut(JsonEvent)) {
        for &b in chunk {
            if b == b'\n' {
                if self.dropping {
                    self.dropping = false;
                    emit(JsonEvent::Oversized);
                } else {
                    emit(JsonEvent::Line(std::mem::take(&mut self.line)));
                }
            } else if self.dropping {
                // Discard until the newline resynchronizes the stream.
            } else {
                self.line.push(b);
                if self.line.len() > self.max {
                    self.line.clear();
                    self.dropping = true;
                }
            }
        }
    }
}

struct Conn {
    stream: TcpStream,
    proto: Proto,
    /// Bytes ready to write, response order.
    out: VecDeque<u8>,
    /// Sequence number assigned to the next frame read off this conn.
    next_seq: u64,
    /// Sequence number of the next response allowed into `out`.
    next_to_send: u64,
    /// Responses that completed out of order, waiting their turn.
    ready: BTreeMap<u64, Vec<u8>>,
    /// No more frames are read; the conn closes once fully flushed.
    closing: bool,
    /// POLLIN withheld because `out` passed the high watermark.
    paused: bool,
    /// Interest bits currently registered with the poller.
    interest: i16,
    /// Shared with every job this connection submitted; cancelled when
    /// the connection is reaped so workers shed its dead work.
    cancel: CancelToken,
    /// Last read progress or response delivery, for the idle sweep.
    last_activity: Instant,
}

impl Conn {
    fn new(stream: TcpStream, proto: Proto) -> Self {
        Conn {
            stream,
            proto,
            out: VecDeque::new(),
            next_seq: 0,
            next_to_send: 0,
            ready: BTreeMap::new(),
            closing: false,
            paused: false,
            interest: POLLIN,
            cancel: CancelToken::new(),
            last_activity: Instant::now(),
        }
    }

    /// All assigned frames answered and all bytes written.
    fn flushed(&self) -> bool {
        self.out.is_empty() && self.next_to_send == self.next_seq
    }

    fn desired_interest(&self) -> i16 {
        let mut i = 0;
        if !self.closing && !self.paused {
            i |= POLLIN;
        }
        if !self.out.is_empty() {
            i |= POLLOUT;
        }
        i
    }
}

/// An event-driven TCP listener over a shared [`Service`]. Unix-only
/// (`poll(2)`); on other platforms use the threaded
/// [`Server`](crate::server::Server).
pub struct EventServer {
    listener: TcpListener,
    service: Arc<Service>,
}

impl EventServer {
    /// Binds `addr` and prepares the event loop.
    pub fn bind(addr: &str, service: Arc<Service>) -> io::Result<EventServer> {
        Ok(EventServer {
            listener: TcpListener::bind(addr)?,
            service,
        })
    }

    /// Wraps an already-bound listener (tests pick port 0 this way).
    pub fn attach(listener: TcpListener, service: Arc<Service>) -> EventServer {
        EventServer { listener, service }
    }

    /// The bound address.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The shared service.
    pub fn service(&self) -> &Arc<Service> {
        &self.service
    }

    /// Runs the event loop until shutdown, then drains and joins the
    /// worker pool.
    pub fn run(self, mode: ProtoMode) -> io::Result<()> {
        self.listener.set_nonblocking(true)?;
        // std's listen backlog is 128; a connect flood overflows that
        // long before the loop itself is the bottleneck. Best-effort —
        // the loop works either way, slow-accept clients just retry.
        let _ = set_backlog(self.listener.as_raw_fd(), 4096);
        let (mut wake, waker) = wake_pair()?;
        let completions: Completions = Arc::new(Mutex::new(Vec::new()));

        let mut poller = Poller::new();
        let listener_fd = self.listener.as_raw_fd();
        let wake_fd = wake.fd();
        poller.register(listener_fd, POLLIN);
        poller.register(wake_fd, POLLIN);

        let mut conns: HashMap<u64, Conn> = HashMap::new();
        let mut by_fd: HashMap<RawFd, u64> = HashMap::new();
        let mut next_conn_id: u64 = 0;
        let mut accepting = true;
        let mut events = Vec::new();
        let mut touched: Vec<u64> = Vec::new();
        let mut dead: Vec<u64> = Vec::new();
        let mut buf = vec![0u8; READ_CHUNK];

        loop {
            // A bounded wait so an external shutdown() is noticed promptly
            // even with no traffic.
            poller.wait(Some(Duration::from_millis(100)), &mut events)?;
            touched.clear();
            dead.clear();

            for ev in &events {
                if ev.fd == listener_fd {
                    if !accepting {
                        continue;
                    }
                    loop {
                        match self.listener.accept() {
                            Ok((stream, _)) => {
                                if stream.set_nonblocking(true).is_err() {
                                    continue;
                                }
                                let _ = stream.set_nodelay(true);
                                self.service.ins().connections.inc();
                                let proto = match mode {
                                    ProtoMode::Auto => Proto::Detecting(Vec::new()),
                                    ProtoMode::Json => Proto::Json(JsonLines::new(
                                        self.service.config().max_frame_bytes,
                                    )),
                                };
                                let id = next_conn_id;
                                next_conn_id += 1;
                                let fd = stream.as_raw_fd();
                                conns.insert(id, Conn::new(stream, proto));
                                by_fd.insert(fd, id);
                                poller.register(fd, POLLIN);
                            }
                            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                            Err(_) => break,
                        }
                    }
                    continue;
                }
                if ev.fd == wake_fd {
                    wake.drain();
                    continue;
                }
                let Some(&id) = by_fd.get(&ev.fd) else {
                    continue;
                };
                let conn = conns.get_mut(&id).expect("by_fd and conns in sync");
                if ev.broken() {
                    dead.push(id);
                    continue;
                }
                let mut broken = false;
                if ev.readable() && !conn.closing && !conn.paused {
                    broken = read_conn(
                        conn,
                        id,
                        &mut buf,
                        &self.service,
                        &completions,
                        &waker,
                        mode,
                    );
                }
                if ev.writable() {
                    broken = broken || flush_conn(conn);
                }
                if broken {
                    dead.push(id);
                } else {
                    touched.push(id);
                }
            }

            // Deliver finished responses in request order, per connection.
            let done: Vec<Completion> = std::mem::take(&mut *completions.lock().unwrap());
            for c in done {
                let Some(conn) = conns.get_mut(&c.conn) else {
                    // The connection died while its job ran; drop the bytes.
                    continue;
                };
                conn.ready.insert(c.seq, c.bytes);
                conn.last_activity = Instant::now();
                if c.shutdown {
                    conn.closing = true;
                }
                while let Some(bytes) = conn.ready.remove(&conn.next_to_send) {
                    conn.out.extend(bytes);
                    conn.next_to_send += 1;
                }
                if flush_conn(conn) {
                    dead.push(c.conn);
                } else {
                    touched.push(c.conn);
                }
            }

            // Slow-loris guard: a connection that made no read progress for
            // the idle timeout and is owed nothing (no in-flight response,
            // nothing buffered) is reaped — half-open peers and half-frame
            // writers can no longer pin a slot forever. ZERO disables it.
            let idle_timeout = self.service.config().idle_timeout;
            if !idle_timeout.is_zero() {
                for (&id, conn) in conns.iter() {
                    if !conn.closing
                        && conn.flushed()
                        && conn.last_activity.elapsed() >= idle_timeout
                    {
                        self.service.ins().idle_disconnects.inc();
                        dead.push(id);
                    }
                }
            }

            // Global shutdown: stop accepting, stop reading, drain.
            if self.service.is_shutdown() {
                if accepting {
                    accepting = false;
                    poller.deregister(listener_fd);
                }
                for (&id, conn) in conns.iter_mut() {
                    if !conn.closing {
                        conn.closing = true;
                        touched.push(id);
                    }
                }
            }

            // Re-register interest and reap finished/dead connections.
            for &id in touched.iter() {
                let Some(conn) = conns.get_mut(&id) else {
                    continue;
                };
                if conn.out.len() >= WRITE_HIGH_WATER {
                    conn.paused = true;
                } else if conn.paused && conn.out.len() <= WRITE_LOW_WATER {
                    conn.paused = false;
                }
                if conn.closing && conn.flushed() {
                    dead.push(id);
                    continue;
                }
                let want = conn.desired_interest();
                if want != conn.interest {
                    conn.interest = want;
                    poller.reregister(conn.stream.as_raw_fd(), want);
                }
            }
            for &id in dead.iter() {
                if let Some(conn) = conns.remove(&id) {
                    // Nobody is left to read the answers: flag every job
                    // this connection submitted so workers shed them
                    // instead of burning solver passes on dead work.
                    conn.cancel.cancel();
                    let fd = conn.stream.as_raw_fd();
                    poller.deregister(fd);
                    by_fd.remove(&fd);
                }
            }

            if self.service.is_shutdown() && conns.is_empty() {
                break;
            }
        }
        self.service.join_workers();
        Ok(())
    }
}

/// Reads everything available from one connection and feeds the state
/// machine. Returns `true` when the connection is gone.
fn read_conn(
    conn: &mut Conn,
    id: u64,
    buf: &mut [u8],
    service: &Arc<Service>,
    completions: &Completions,
    waker: &Waker,
    mode: ProtoMode,
) -> bool {
    loop {
        match conn.stream.read(buf) {
            Ok(0) => {
                // EOF: no more frames will arrive; flush what is owed.
                conn.closing = true;
                return false;
            }
            Ok(n) => {
                conn.last_activity = Instant::now();
                feed_bytes(conn, id, &buf[..n], service, completions, waker, mode);
                if conn.closing || conn.out.len() >= WRITE_HIGH_WATER {
                    return false;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return false,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return true,
        }
    }
}

/// Routes a chunk of fresh bytes through the connection's protocol state.
fn feed_bytes(
    conn: &mut Conn,
    id: u64,
    chunk: &[u8],
    service: &Arc<Service>,
    completions: &Completions,
    waker: &Waker,
    mode: ProtoMode,
) {
    // Resolve detection first so the real protocol sees the whole prefix.
    if let Proto::Detecting(prefix) = &mut conn.proto {
        prefix.extend_from_slice(chunk);
        let decided = match detect(prefix) {
            Detect::NeedMore => return,
            Detect::Binary if mode == ProtoMode::Auto => {
                Proto::Binary(FrameDecoder::new(service.config().max_frame_bytes))
            }
            _ => Proto::Json(JsonLines::new(service.config().max_frame_bytes)),
        };
        let buffered = std::mem::take(prefix);
        conn.proto = decided;
        feed_decided(conn, id, &buffered, service, completions, waker);
        return;
    }
    feed_decided(conn, id, chunk, service, completions, waker);
}

fn feed_decided(
    conn: &mut Conn,
    id: u64,
    chunk: &[u8],
    service: &Arc<Service>,
    completions: &Completions,
    waker: &Waker,
) {
    match &mut conn.proto {
        Proto::Detecting(_) => unreachable!("detection resolved by feed_bytes"),
        Proto::Json(lines) => {
            let mut frames: Vec<JsonEvent> = Vec::new();
            lines.feed(chunk, |ev| frames.push(ev));
            for ev in frames {
                let seq = conn.next_seq;
                conn.next_seq += 1;
                match ev {
                    JsonEvent::Oversized => {
                        let mut line = service.oversized_frame_response().into_bytes();
                        line.push(b'\n');
                        push_completion(completions, waker, id, seq, line, false);
                    }
                    JsonEvent::Line(line) => {
                        let (completions, waker) = (Arc::clone(completions), waker.clone());
                        service.handle_frame_async_ctrl(
                            &line,
                            conn.cancel.clone(),
                            Box::new(move |resp| {
                                let mut bytes = resp.line.into_bytes();
                                bytes.push(b'\n');
                                push_completion(
                                    &completions,
                                    &waker,
                                    id,
                                    seq,
                                    bytes,
                                    resp.shutdown,
                                );
                            }),
                        );
                    }
                }
            }
        }
        Proto::Binary(decoder) => {
            decoder.extend(chunk);
            loop {
                match decoder.next() {
                    Ok(None) => break,
                    Ok(Some(FrameEvent::Oversized { declared, .. })) => {
                        let seq = conn.next_seq;
                        conn.next_seq += 1;
                        let resp = service.oversized_binary_response(declared);
                        push_completion(completions, waker, id, seq, resp.frame, false);
                    }
                    Ok(Some(FrameEvent::Frame { tag, payload })) => {
                        let seq = conn.next_seq;
                        conn.next_seq += 1;
                        let (completions, waker) = (Arc::clone(completions), waker.clone());
                        service.handle_binary_frame_async_ctrl(
                            tag,
                            &payload,
                            conn.cancel.clone(),
                            Box::new(move |resp| {
                                push_completion(
                                    &completions,
                                    &waker,
                                    id,
                                    seq,
                                    resp.frame,
                                    resp.shutdown,
                                );
                            }),
                        );
                    }
                    Err(e) => {
                        // Framing is unrecoverable (bad magic mid-stream,
                        // CRC mismatch): answer once, then close.
                        let seq = conn.next_seq;
                        conn.next_seq += 1;
                        let err = ServiceError::new(
                            ErrorKind::Protocol,
                            format!("unrecoverable framing error: {e}"),
                        );
                        push_completion(completions, waker, id, seq, error_frame(0, &err), false);
                        conn.closing = true;
                        break;
                    }
                }
            }
        }
    }
}

fn push_completion(
    completions: &Completions,
    waker: &Waker,
    conn: u64,
    seq: u64,
    bytes: Vec<u8>,
    shutdown: bool,
) {
    completions.lock().unwrap().push(Completion {
        conn,
        seq,
        bytes,
        shutdown,
    });
    waker.wake();
}

/// Writes as much of the connection's buffered output as the socket
/// accepts. Returns `true` when the connection is gone.
fn flush_conn(conn: &mut Conn) -> bool {
    while !conn.out.is_empty() {
        let (head, _) = conn.out.as_slices();
        match conn.stream.write(head) {
            Ok(0) => return true,
            Ok(n) => {
                conn.out.drain(..n);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return false,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return true,
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_lines_split_and_cap() {
        let mut j = JsonLines::new(8);
        let mut got = Vec::new();
        j.feed(b"abc\nlongerthan8bytes\nde", |ev| got.push(ev));
        j.feed(b"f\n", |ev| got.push(ev));
        assert_eq!(got.len(), 3);
        assert!(matches!(&got[0], JsonEvent::Line(l) if l == b"abc"));
        assert!(matches!(&got[1], JsonEvent::Oversized));
        assert!(matches!(&got[2], JsonEvent::Line(l) if l == b"def"));
    }

    #[test]
    fn oversized_line_uses_bounded_memory() {
        let mut j = JsonLines::new(1024);
        let chunk = vec![b'x'; 64 << 10];
        for _ in 0..64 {
            j.feed(&chunk, |_| panic!("no newline yet"));
            assert!(j.line.len() <= 1025, "dropping should clear the buffer");
        }
        let mut got = Vec::new();
        j.feed(b"\n", |ev| got.push(ev));
        assert!(matches!(got.as_slice(), [JsonEvent::Oversized]));
    }
}
