//! A minimal JSON encoder/decoder.
//!
//! The workspace builds with zero external dependencies, so the service
//! carries its own wire-format support: a byte-oriented recursive-descent
//! parser (with a nesting-depth bound — the input is untrusted) and a
//! compact serializer. Objects preserve insertion order, which keeps
//! responses byte-deterministic.
//!
//! Only what the protocol needs is implemented: no arbitrary-precision
//! numbers (values are `f64`, exact for integers up to 2^53 — far beyond
//! any counter a response carries as a number) and no pretty printing.

use std::fmt;

/// Maximum array/object nesting the parser accepts. Deeper input is a
/// [`JsonError`], not a stack overflow.
const MAX_DEPTH: usize = 128;

/// A parsed JSON value. Object members keep their textual order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number; integers are exact up to 2^53.
    Num(f64),
    /// A string (always valid UTF-8 after decoding).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses one JSON value from `input`, requiring it to consume the
    /// whole input (modulo trailing whitespace).
    pub fn parse(input: &[u8]) -> Result<Json, JsonError> {
        let mut p = Parser { src: input, pos: 0 };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.src.len() {
            return Err(p.err("trailing bytes after JSON value"));
        }
        Ok(v)
    }

    /// Member lookup on an object; `None` for other variants or missing
    /// keys.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload as `u64`, if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// Error from [`Json::parse`]: byte offset plus description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the offending input.
    pub pos: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.pos, self.message)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    src: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            pos: self.pos,
            message: message.into(),
        }
    }

    fn skip_ws(&mut self) {
        while let Some(b' ' | b'\t' | b'\n' | b'\r') = self.src.get(self.pos) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn eat(&mut self, want: u8) -> Result<(), JsonError> {
        if self.peek() == Some(want) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", want as char)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> Result<(), JsonError> {
        if self.src[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(())
        } else {
            Err(self.err(format!("expected `{kw}`")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err(format!("nesting deeper than {MAX_DEPTH} levels")));
        }
        match self.peek() {
            Some(b'n') => self.eat_keyword("null").map(|()| Json::Null),
            Some(b't') => self.eat_keyword("true").map(|()| Json::Bool(true)),
            Some(b'f') => self.eat_keyword("false").map(|()| Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(format!("unexpected byte 0x{c:02x}"))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.eat(b'[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(out));
        }
        loop {
            self.skip_ws();
            out.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(out));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.eat(b'{')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(out));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            out.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(out));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut bytes: Vec<u8> = Vec::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    break;
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => bytes.push(b'"'),
                        Some(b'\\') => bytes.push(b'\\'),
                        Some(b'/') => bytes.push(b'/'),
                        Some(b'b') => bytes.push(0x08),
                        Some(b'f') => bytes.push(0x0c),
                        Some(b'n') => bytes.push(b'\n'),
                        Some(b'r') => bytes.push(b'\r'),
                        Some(b't') => bytes.push(b'\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let c = self.unicode_escape()?;
                            let mut buf = [0u8; 4];
                            bytes.extend_from_slice(c.encode_utf8(&mut buf).as_bytes());
                            continue; // unicode_escape consumed its input
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => {
                    return Err(self.err("unescaped control character in string"));
                }
                Some(c) => {
                    bytes.push(c);
                    self.pos += 1;
                }
            }
        }
        String::from_utf8(bytes).map_err(|_| self.err("string is not valid UTF-8"))
    }

    /// Parses the `XXXX` of a `\uXXXX` escape (and a low-surrogate
    /// continuation where required), leaving `pos` one past the consumed
    /// digits.
    fn unicode_escape(&mut self) -> Result<char, JsonError> {
        let hi = self.hex4()?;
        if (0xd800..0xdc00).contains(&hi) {
            // High surrogate: require `\uDC00`-range continuation.
            self.eat(b'\\')?;
            self.eat(b'u')?;
            let lo = self.hex4()?;
            if !(0xdc00..0xe000).contains(&lo) {
                return Err(self.err("unpaired surrogate"));
            }
            let c = 0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00);
            char::from_u32(c).ok_or_else(|| self.err("invalid surrogate pair"))
        } else if (0xdc00..0xe000).contains(&hi) {
            Err(self.err("unpaired surrogate"))
        } else {
            char::from_u32(hi).ok_or_else(|| self.err("invalid unicode escape"))
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let d = match self.peek() {
                Some(c @ b'0'..=b'9') => (c - b'0') as u32,
                Some(c @ b'a'..=b'f') => (c - b'a' + 10) as u32,
                Some(c @ b'A'..=b'F') => (c - b'A' + 10) as u32,
                _ => return Err(self.err("expected 4 hex digits")),
            };
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(b'0'..=b'9') = self.peek() {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while let Some(b'0'..=b'9') = self.peek() {
                self.pos += 1;
            }
        }
        if let Some(b'e' | b'E') = self.peek() {
            self.pos += 1;
            if let Some(b'+' | b'-') = self.peek() {
                self.pos += 1;
            }
            while let Some(b'0'..=b'9') = self.peek() {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.src[start..self.pos])
            .expect("number bytes are ASCII by construction");
        text.parse::<f64>()
            .ok()
            .filter(|n| n.is_finite())
            .map(Json::Num)
            .ok_or_else(|| self.err(format!("invalid number `{text}`")))
    }
}

impl fmt::Display for Json {
    /// Compact serialization (no whitespace), deterministic for a given
    /// value since objects keep insertion order.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => f.write_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9e15 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Json::Obj(members) => {
                f.write_str("{")?;
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    write!(f, ":{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(src: &str) -> String {
        Json::parse(src.as_bytes()).unwrap().to_string()
    }

    #[test]
    fn parses_scalars() {
        assert_eq!(roundtrip("null"), "null");
        assert_eq!(roundtrip("true"), "true");
        assert_eq!(roundtrip("false"), "false");
        assert_eq!(roundtrip(" 42 "), "42");
        assert_eq!(roundtrip("-7"), "-7");
        assert_eq!(roundtrip("1.5"), "1.5");
        assert_eq!(roundtrip("1e3"), "1000");
        assert_eq!(roundtrip("\"hi\""), "\"hi\"");
    }

    #[test]
    fn parses_structures_preserving_order() {
        assert_eq!(
            roundtrip("{ \"b\" : [1, 2, {}], \"a\" : null }"),
            "{\"b\":[1,2,{}],\"a\":null}"
        );
        assert_eq!(roundtrip("[]"), "[]");
    }

    #[test]
    fn string_escapes_roundtrip() {
        assert_eq!(roundtrip(r#""a\"b\\c\nd\u0041""#), "\"a\\\"b\\\\c\\ndA\"");
        assert_eq!(roundtrip(r#""\ud83d\ude00""#), "\"😀\"");
    }

    #[test]
    fn rejects_garbage() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "tru",
            "1..2",
            "\"\\x\"",
            "\"unterminated",
            "\"\\ud800\"",
            "[1] trailing",
            "nan",
            "inf",
            "1e999",
        ] {
            assert!(Json::parse(bad.as_bytes()).is_err(), "accepted {bad:?}");
        }
        // Raw invalid UTF-8 inside a string is an error, not a panic.
        assert!(Json::parse(b"\"\xff\xfe\"").is_err());
    }

    #[test]
    fn rejects_pathological_nesting() {
        let deep = "[".repeat(100_000);
        assert!(Json::parse(deep.as_bytes()).is_err());
    }

    #[test]
    fn accessors() {
        let v = Json::parse(br#"{"id": 7, "s": "x", "b": true, "a": [1]}"#).unwrap();
        assert_eq!(v.get("id").and_then(Json::as_u64), Some(7));
        assert_eq!(v.get("s").and_then(Json::as_str), Some("x"));
        assert_eq!(v.get("b").and_then(Json::as_bool), Some(true));
        assert_eq!(
            v.get("a").and_then(Json::as_arr).map(<[Json]>::len),
            Some(1)
        );
        assert_eq!(v.get("missing"), None);
    }
}
