//! The service core: a shared [`Engine`] behind a bounded request queue
//! and a worker pool, with per-request deadlines, a structured error
//! taxonomy, service-level counters and graceful drain-on-shutdown.
//!
//! Transport-agnostic: both the TCP listener and the stdio loop feed raw
//! frames to [`Service::handle_frame`] and write back the returned line.
//! Cheap verbs (`ping`, `stats`, `shutdown`) are answered inline on the
//! transport thread; `analyze` goes through the queue so a flood of
//! expensive requests degrades into explicit `overloaded` errors instead
//! of unbounded memory growth or latency collapse.

use std::collections::VecDeque;
use std::io;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use arrayflow_cluster::{Replicator, ReplicatorConfig};
use arrayflow_engine::{
    AnalysisReport, BatchResult, CustomSpec, DeltaReport, Engine, EngineConfig, EngineStats,
    ProblemSet,
};
use arrayflow_ir::{parse_program_bytes, Edit, StmtId};
use arrayflow_obs::{
    observed_span, with_current, Counter, Gauge, Histogram, HistogramSnapshot, MetricValue,
    Registry, Trace, PHASE_BUCKETS_US,
};
use arrayflow_resilience::{panic_message, CancelToken, FaultSurface};
use arrayflow_store::{PersistentTier, Store, StoreConfig};

use crate::json::Json;
use crate::proto::{
    analyze_result_json, delta_result_json, encode_err, encode_ok, session_result_json, ErrorKind,
    Request, ServiceError, Verb,
};

/// Upper edges of the request latency histogram, in microseconds; the
/// final bucket is unbounded.
pub const LATENCY_BUCKETS_US: [u64; 5] = [100, 1_000, 10_000, 100_000, 1_000_000];

/// Upper edges of the wasted-work histogram: solver passes a job had
/// completed when it was cancelled or expired. Mirrors the engine's
/// per-instance pass buckets — the paper's bound says completed work
/// clusters at 2–3 passes, so wasted work beyond a pass or two means the
/// cooperative stop checks are not being polled often enough.
pub const WASTED_PASS_BUCKETS: [u64; 5] = [1, 2, 3, 4, 6];

/// Service construction parameters. `Default` is a reasonable single-host
/// setup: engine defaults, one service worker per hardware thread, a
/// 256-request queue, 5 s deadline, 1 MiB frames.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Configuration of the shared analysis engine.
    pub engine: EngineConfig,
    /// Worker threads executing `analyze` requests. `0` means one per
    /// available hardware thread.
    pub workers: usize,
    /// Bound on queued-but-unstarted `analyze` requests; submissions
    /// beyond it are rejected with an `overloaded` error.
    pub queue_capacity: usize,
    /// Per-request deadline, measured from the moment the frame is
    /// accepted. Requests that spend longer than this queued (or whose
    /// analysis overruns it) answer with a `timeout` error.
    pub request_timeout: Duration,
    /// Maximum accepted frame (request line) size in bytes; longer lines
    /// are discarded and answered with a `protocol` error.
    pub max_frame_bytes: usize,
    /// When set, reports persist to this disk store: the cache is
    /// warm-started from it on boot, misses fall through to it, and fresh
    /// results are appended asynchronously.
    pub store: Option<StoreConfig>,
    /// When set, every request whose end-to-end latency reaches this many
    /// microseconds emits one structured line on stderr with the trace id
    /// and per-phase span breakdown. `0` logs every request.
    pub slow_log_micros: Option<u64>,
    /// When set, the fault surface is installed at every injection seam
    /// (solver panics/latency in the engine, store append I/O, worker
    /// exits) for chaos drills — see `serve --fault-plan`. `None` (the
    /// default, and the only sane production setting) leaves every seam a
    /// single branch.
    pub faults: Option<Arc<dyn FaultSurface>>,
    /// Stable node identity in a cluster (`serve --node-id`). Stamped as
    /// a `node` label on every Prometheus series and echoed by the
    /// `health` verb, so multi-node scrapes and router probes stay
    /// distinguishable.
    pub node_id: Option<String>,
    /// Replica address (`serve --replicate-to`). Requires a store: every
    /// record reaching the local segment log is also shipped to this
    /// address as `replicate` wire frames, keeping the replica warm for
    /// failover.
    pub replicate_to: Option<String>,
    /// Ship interval for the replicator's incremental batches (a flush
    /// barrier ships sooner).
    pub replicate_interval: Duration,
    /// Idle-connection timeout for the event-driven server (`serve
    /// --idle-timeout-ms`): a connection that has sent no bytes for this
    /// long — including a slow-loris peer parked mid-frame — is closed
    /// and counted in `arrayflow_idle_disconnects_total`. `Duration::ZERO`
    /// disables the sweep.
    pub idle_timeout: Duration,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            engine: EngineConfig::default(),
            workers: 0,
            queue_capacity: 256,
            request_timeout: Duration::from_secs(5),
            max_frame_bytes: 1 << 20,
            store: None,
            slow_log_micros: None,
            faults: None,
            node_id: None,
            replicate_to: None,
            replicate_interval: Duration::from_millis(250),
            idle_timeout: Duration::from_secs(60),
        }
    }
}

impl ServiceConfig {
    /// The worker count actually used (resolving `0`).
    pub fn effective_workers(&self) -> usize {
        if self.workers > 0 {
            self.workers
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }
    }
}

/// Snapshot of the service-level counters (the engine keeps its own
/// [`EngineStats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Connections accepted (TCP) or opened (stdio counts as one).
    pub connections: u64,
    /// Frames that produced a response, by outcome.
    pub requests: u64,
    /// Dead worker threads replaced by the supervisor.
    pub worker_restarts: u64,
    /// Successful responses.
    pub ok: u64,
    /// DSL parse failures.
    pub parse_errors: u64,
    /// Analysis failures.
    pub analysis_errors: u64,
    /// Deadline misses.
    pub timeouts: u64,
    /// Queue-full / shutting-down rejections.
    pub overloaded: u64,
    /// Malformed frames (bad JSON, unknown verb, bad fields). Oversized
    /// frames have their own counter and are *not* included here.
    pub protocol_errors: u64,
    /// `delta` requests whose session no longer exists on the answering
    /// node (mid-session failover); clients re-`open` and replay.
    pub session_lost: u64,
    /// `cancelled` responses: jobs abandoned because the owning connection
    /// dropped or the deadline budget expired before/while the worker ran
    /// them. Like oversized frames, these are *not* part of `requests` and
    /// never touch the latency histogram — no client was answered in time,
    /// so timing them would only skew the distribution.
    pub cancelled: u64,
    /// Jobs cancelled because the owning connection dropped.
    pub cancelled_disconnect: u64,
    /// Jobs cancelled because the deadline budget ran out.
    pub cancelled_expired: u64,
    /// Requests that arrived carrying a client deadline budget
    /// (`deadline_ms` field or the binary deadline tag bit).
    pub deadline_propagated: u64,
    /// Connections reaped by the event server's idle sweep (slow-loris
    /// peers included).
    pub idle_disconnects: u64,
    /// Frames discarded for exceeding [`ServiceConfig::max_frame_bytes`].
    /// Counted separately from `requests` so they never skew the latency
    /// distribution (the frame is discarded without being timed).
    pub oversized_frames: u64,
    /// High-water mark of the analyze queue depth.
    pub queue_depth_hwm: usize,
    /// Latency histogram: counts per [`LATENCY_BUCKETS_US`] bucket plus a
    /// final unbounded bucket.
    pub latency: [u64; LATENCY_BUCKETS_US.len() + 1],
    /// Queue-wait histogram for `analyze` requests (same buckets as
    /// `latency`): time between enqueue and a worker picking the job up.
    pub queue_wait: [u64; LATENCY_BUCKETS_US.len() + 1],
}

impl ServiceStats {
    /// Total error responses across the taxonomy.
    pub fn errors(&self) -> u64 {
        self.parse_errors
            + self.analysis_errors
            + self.timeouts
            + self.overloaded
            + self.protocol_errors
            + self.session_lost
            + self.cancelled
    }
}

/// How a finished queued job reaches whoever is waiting: a boxed
/// one-shot closure, so the blocking transports (an `mpsc` send the
/// submitting thread waits on) and the event-driven server (append to a
/// completion queue, wake the poll loop) share one queue and one worker
/// pool.
pub(crate) type Reply = Box<dyn FnOnce(Result<JobOutput, ServiceError>) + Send>;

/// The engine work a queued job carries. Everything that runs a solver —
/// full analyses, session opens (a full analysis that also retains
/// state), and delta re-convergences — goes through the bounded queue so
/// a flood degrades into explicit `overloaded` errors.
pub(crate) enum Work {
    /// A stateless `analyze`.
    Analyze {
        /// DSL source of the program to analyze.
        program: String,
        /// Which problem instances to solve.
        problems: ProblemSet,
        /// Dependence distance bound for the report.
        distance_bound: u64,
    },
    /// A `custom`: solve a user-specified (G, K) problem over a program.
    Custom {
        /// DSL source of the program to analyze.
        program: String,
        /// The user's (G, K) spec: which site roles generate and kill,
        /// direction, and confluence mode.
        spec: CustomSpec,
        /// Dependence distance bound for the report.
        distance_bound: u64,
    },
    /// An `open`: full analysis plus session retention.
    Open {
        /// DSL source of the program to open a session over.
        program: String,
    },
    /// A `delta`: one statement replacement against an open session.
    Delta {
        /// The session id from a prior `open`.
        session: u64,
        /// The statement replacement to apply.
        edit: Edit,
    },
}

/// What a finished job produced, matching its [`Work`] variant.
pub(crate) enum JobOutput {
    /// The batch result of a stateless `analyze`.
    Analyze(BatchResult),
    /// The session id and initial report of an `open`.
    Session(u64, Arc<AnalysisReport>),
    /// The re-analysis of a `delta`.
    Delta(DeltaReport),
}

impl JobOutput {
    /// Renders this output as the JSON `result` object its verb returns.
    pub(crate) fn to_json(&self) -> Json {
        match self {
            JobOutput::Analyze(r) => analyze_result_json(r),
            JobOutput::Session(session, report) => session_result_json(*session, report),
            JobOutput::Delta(d) => delta_result_json(d),
        }
    }
}

struct Job {
    work: Work,
    /// When the frame was accepted by `handle_frame` — the deadline base.
    accepted: Instant,
    enqueued: Instant,
    deadline: Duration,
    /// Cooperative cancellation: set by whoever learns the request is dead
    /// (the event loop on connection teardown, the blocking waiter on its
    /// own timeout). Workers check it at dequeue, and the solver polls it
    /// between iteration passes, so a dead request costs at most one pass.
    cancel: CancelToken,
    /// The request's trace, carried across the queue so worker-side spans
    /// (parse, solve, tier I/O) land on the same per-request record.
    trace: Arc<Trace>,
    reply: Reply,
}

/// The outcome of handling one frame.
pub struct FrameResponse {
    /// The response line (no trailing newline).
    pub line: String,
    /// True when this frame was a `shutdown` request; the transport should
    /// send the line, stop reading, and let the server drain.
    pub shutdown: bool,
}

/// A long-lived analysis service: shared engine, bounded queue, worker
/// pool and counters. Construct with [`Service::start`]; share via `Arc`.
pub struct Service {
    config: ServiceConfig,
    engine: Engine,
    registry: Registry,
    tier: Option<Arc<PersistentTier>>,
    replicator: Option<Arc<Replicator>>,
    warm_loaded: u64,
    queue: Mutex<VecDeque<Job>>,
    job_ready: Condvar,
    shutdown: AtomicBool,
    workers: Mutex<Vec<JoinHandle<()>>>,
    supervisor: Mutex<Option<JoinHandle<()>>>,
    next_trace_id: AtomicU64,
    ins: ServiceInstruments,
}

/// The service's registered instruments: request/response counters by
/// outcome, the latency and queue-wait histograms, and the
/// transport-side phase timings.
#[derive(Debug, Clone)]
pub(crate) struct ServiceInstruments {
    pub(crate) connections: Counter,
    pub(crate) requests: Counter,
    pub(crate) ok: Counter,
    pub(crate) parse_errors: Counter,
    pub(crate) analysis_errors: Counter,
    pub(crate) timeouts: Counter,
    pub(crate) overloaded: Counter,
    pub(crate) protocol_errors: Counter,
    pub(crate) session_lost: Counter,
    pub(crate) cancelled: Counter,
    pub(crate) cancelled_disconnect: Counter,
    pub(crate) cancelled_expired: Counter,
    pub(crate) deadline_propagated: Counter,
    pub(crate) idle_disconnects: Counter,
    pub(crate) oversized_frames: Counter,
    pub(crate) worker_restarts: Counter,
    pub(crate) queue_depth_hwm: Gauge,
    pub(crate) latency: Histogram,
    pub(crate) queue_wait: Histogram,
    pub(crate) wasted_passes: Histogram,
    pub(crate) phase_decode: Histogram,
    pub(crate) phase_parse: Histogram,
}

impl ServiceInstruments {
    fn registered(registry: &Registry) -> Self {
        let outcome = |name| {
            registry.counter_with(
                "arrayflow_responses_total",
                "responses sent, by outcome",
                &[("outcome", name)],
            )
        };
        let phase = |name| {
            registry.histogram_with(
                "arrayflow_phase_us",
                "per-phase wall-clock, microseconds",
                &[("phase", name)],
                &PHASE_BUCKETS_US,
            )
        };
        Self {
            connections: registry.counter(
                "arrayflow_connections_total",
                "transport connections accepted (stdio counts as one)",
            ),
            requests: registry.counter(
                "arrayflow_requests_total",
                "frames that produced a timed response",
            ),
            ok: outcome("ok"),
            parse_errors: outcome("parse"),
            analysis_errors: outcome("analysis"),
            timeouts: outcome("timeout"),
            overloaded: outcome("overloaded"),
            protocol_errors: outcome("protocol"),
            session_lost: outcome("session_lost"),
            cancelled: outcome("cancelled"),
            cancelled_disconnect: registry.counter_with(
                "arrayflow_cancelled_jobs_total",
                "jobs abandoned before completion, by reason",
                &[("reason", "disconnect")],
            ),
            cancelled_expired: registry.counter_with(
                "arrayflow_cancelled_jobs_total",
                "jobs abandoned before completion, by reason",
                &[("reason", "expired")],
            ),
            deadline_propagated: registry.counter(
                "arrayflow_deadline_propagated_total",
                "requests that arrived carrying a client deadline budget",
            ),
            idle_disconnects: registry.counter(
                "arrayflow_idle_disconnects_total",
                "connections closed by the idle sweep (slow-loris peers included)",
            ),
            oversized_frames: registry.counter(
                "arrayflow_oversized_frames_total",
                "frames discarded for exceeding the size cap (excluded from request latency)",
            ),
            worker_restarts: registry.counter(
                "arrayflow_worker_restarts_total",
                "dead worker threads replaced by the supervisor",
            ),
            queue_depth_hwm: registry.gauge(
                "arrayflow_queue_depth_hwm",
                "high-water mark of the analyze queue depth",
            ),
            latency: registry.histogram(
                "arrayflow_request_latency_us",
                "end-to-end request latency (decode through response encode), microseconds",
                &LATENCY_BUCKETS_US,
            ),
            queue_wait: registry.histogram(
                "arrayflow_queue_wait_us",
                "time analyze jobs spent queued before a worker picked them up, microseconds",
                &LATENCY_BUCKETS_US,
            ),
            wasted_passes: registry.histogram(
                "arrayflow_wasted_passes",
                "solver passes completed by a job before it was cancelled or expired",
                &WASTED_PASS_BUCKETS,
            ),
            phase_decode: phase("decode"),
            phase_parse: phase("parse"),
        }
    }
}

impl std::fmt::Debug for Service {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Service")
            .field("config", &self.config)
            .field("stats", &self.stats())
            .finish()
    }
}

impl Service {
    /// Builds the service and spawns its worker pool. When a store is
    /// configured this opens (and crash-recovers) it, wires it under the
    /// engine's cache as the second tier, and warm-starts the cache from
    /// every live record on disk. A store that cannot be opened is an
    /// error, never a panic — the `serve` binary turns it into a
    /// structured one-line diagnostic and a nonzero exit.
    pub fn start(config: ServiceConfig) -> io::Result<Arc<Service>> {
        let registry = Registry::new();
        let mut engine = Engine::with_registry(config.engine.clone(), &registry);
        if let Some(faults) = &config.faults {
            engine.set_fault_surface(Arc::clone(faults));
        }
        let mut tier = None;
        let mut warm_loaded = 0u64;
        let mut replicator = None;
        if let Some(store_config) = &config.store {
            let queue_bound = store_config.writer_queue;
            let store = Arc::new(Store::open_in(store_config.clone(), &registry)?);
            if let Some(faults) = &config.faults {
                store.set_fault_surface(Arc::clone(faults));
            }
            let t = PersistentTier::new_in(Arc::clone(&store), queue_bound, &registry);
            engine.set_second_tier(t.clone());
            warm_loaded = store.for_each_live(|key, report| {
                engine.preload(key, Arc::new(report));
            });
            if let Some(replica_addr) = &config.replicate_to {
                // Tee the writer thread to the designated replica. The
                // replicator full-syncs on every connect, so a replica
                // that comes up late still converges.
                let mut rconfig = ReplicatorConfig::to(replica_addr.clone());
                rconfig.interval = config.replicate_interval;
                rconfig.max_frame_bytes = 64 << 20;
                let r = Replicator::start(Arc::clone(&store), rconfig, &registry);
                t.set_replication_sink(r.clone());
                replicator = Some(r);
            }
            tier = Some(t);
        } else if config.replicate_to.is_some() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "--replicate-to requires a store (--store DIR)",
            ));
        }
        let ins = ServiceInstruments::registered(&registry);
        let svc = Arc::new(Service {
            engine,
            registry,
            tier,
            replicator,
            warm_loaded,
            queue: Mutex::new(VecDeque::new()),
            job_ready: Condvar::new(),
            shutdown: AtomicBool::new(false),
            workers: Mutex::new(Vec::new()),
            supervisor: Mutex::new(None),
            next_trace_id: AtomicU64::new(1),
            ins,
            config,
        });
        let n = svc.config.effective_workers();
        let mut workers = svc.workers.lock().unwrap();
        for _ in 0..n {
            let svc = Arc::clone(&svc);
            workers.push(std::thread::spawn(move || svc.worker_loop()));
        }
        drop(workers);
        {
            let supervisor = {
                let svc = Arc::clone(&svc);
                std::thread::Builder::new()
                    .name("service-supervisor".into())
                    .spawn(move || svc.supervisor_loop())
                    .expect("spawn service supervisor")
            };
            *svc.supervisor.lock().unwrap() = Some(supervisor);
        }
        Ok(svc)
    }

    /// The configuration the service was built with.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// The shared engine (e.g. for a direct in-process baseline).
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// The metrics registry shared by the service, engine, cache, store
    /// and tier — everything one `metrics` scrape covers.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// How many reports the cache was warm-started with from the disk
    /// store at boot (0 without a store).
    pub fn warm_loaded(&self) -> u64 {
        self.warm_loaded
    }

    /// The persistent tier, when a store is configured.
    pub fn tier(&self) -> Option<&Arc<PersistentTier>> {
        self.tier.as_ref()
    }

    /// This node's cluster identity (`--node-id`), when set.
    pub fn node_id(&self) -> Option<&str> {
        self.config.node_id.as_deref()
    }

    /// The store replicator, when `--replicate-to` is configured.
    pub fn replicator(&self) -> Option<&Arc<Replicator>> {
        self.replicator.as_ref()
    }

    /// The `health` verb payload: node identity plus liveness facts the
    /// router's failover probes key on. Answered inline on the transport
    /// thread — a wedged worker pool must not make a healthy node look
    /// dead, and an unhealthy queue shows up in `queued` anyway.
    pub(crate) fn health_json(&self) -> Json {
        Json::Obj(vec![
            ("status".into(), Json::Str("ok".into())),
            (
                "node".into(),
                match &self.config.node_id {
                    Some(id) => Json::Str(id.clone()),
                    None => Json::Null,
                },
            ),
            ("shutting_down".into(), Json::Bool(self.is_shutdown())),
        ])
    }

    /// The full Prometheus exposition, stamped with this node's `node`
    /// label when one is configured.
    pub(crate) fn render_exposition(&self) -> String {
        let snapshot = self.registry.snapshot();
        match &self.config.node_id {
            Some(id) => snapshot.render_prometheus_with(&[("node", id)]),
            None => snapshot.render_prometheus(),
        }
    }

    /// Applies a replication batch to the local store — the replica-side
    /// half of the `replicate` verb. The memo cache warms through the
    /// tier on the first fingerprint probe of each key, so a failover
    /// request reads warm bytes from disk even before memory fills.
    /// Errors are protocol-kind (a corrupt batch) or analysis-kind
    /// (local I/O).
    pub(crate) fn apply_replica_batch(&self, batch: &[u8]) -> Result<Json, ServiceError> {
        let Some(tier) = &self.tier else {
            return Err(ServiceError::new(
                ErrorKind::Protocol,
                "no store configured (start with --store DIR)",
            ));
        };
        let store = tier.store_handle();
        let before = store.len() as u64;
        let applied = store.import_frames(batch).map_err(|e| {
            if e.kind() == io::ErrorKind::InvalidData {
                ServiceError::new(ErrorKind::Protocol, format!("bad replication batch: {e}"))
            } else {
                ServiceError::new(
                    ErrorKind::Analysis,
                    format!("replication append failed: {e}"),
                )
            }
        })?;
        self.registry
            .counter(
                "arrayflow_replica_applied_records_total",
                "replication records applied to the local store",
            )
            .add(applied);
        Ok(Json::Obj(vec![
            ("applied".into(), Json::Num(applied as f64)),
            ("live_before".into(), Json::Num(before as f64)),
            ("live_after".into(), Json::Num(store.len() as f64)),
        ]))
    }

    /// True once shutdown has been requested. Transports stop reading new
    /// frames when they observe this.
    pub fn is_shutdown(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Requests graceful shutdown: no new `analyze` submissions are
    /// accepted, workers drain what is already queued, transports close
    /// after their current frame.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.job_ready.notify_all();
    }

    /// Joins the worker pool. Call after [`Service::shutdown`]; returns
    /// once every queued request has been answered, all workers exited,
    /// and (with a store) every queued append has reached disk.
    pub fn join_workers(&self) {
        // The supervisor goes first so it cannot respawn a worker while
        // the pool drains below.
        if let Some(h) = self.supervisor.lock().unwrap().take() {
            let _ = h.join();
        }
        let handles: Vec<_> = self.workers.lock().unwrap().drain(..).collect();
        for h in handles {
            let _ = h.join();
        }
        if let Some(tier) = &self.tier {
            tier.flush();
        }
        if let Some(replicator) = &self.replicator {
            // The flush barrier above forwarded everything to the
            // replicator; let it ship what it holds, then stop.
            replicator.shutdown();
        }
    }

    /// Records one accepted transport connection.
    pub fn record_connection(&self) {
        self.ins.connections.inc();
    }

    /// Handles one raw frame end-to-end: decode, dispatch, count, encode.
    /// Never panics and never drops a request silently — hostile bytes
    /// come back as structured `protocol` errors. Each frame gets a trace
    /// with per-phase spans; when [`ServiceConfig::slow_log_micros`] is
    /// set, requests over the threshold log the span breakdown to stderr.
    pub fn handle_frame(&self, frame: &[u8]) -> FrameResponse {
        let accepted = Instant::now();
        let trace = Trace::start(self.next_trace_id.fetch_add(1, Ordering::Relaxed));
        let (id, outcome, is_shutdown) = with_current(&trace, || {
            let decoded = {
                let _span = observed_span("decode", &self.ins.phase_decode);
                Request::decode(frame)
            };
            match decoded {
                Err((id, e)) => (id, Err(e), false),
                Ok(req) => {
                    let id = req.id.clone();
                    let is_shutdown = req.verb == Verb::Shutdown;
                    (id, self.dispatch(req, accepted), is_shutdown)
                }
            }
        });
        self.finish_json(&trace, accepted, &id, outcome, is_shutdown)
    }

    /// Counts and encodes one finished JSON request: outcome counters,
    /// the latency histogram, the slow-request log. Shared by the
    /// blocking [`Service::handle_frame`] and the event-driven
    /// [`Service::handle_frame_async`], so both transports feed the same
    /// instruments.
    pub(crate) fn finish_json(
        &self,
        trace: &Arc<Trace>,
        accepted: Instant,
        id: &Json,
        outcome: Result<Json, ServiceError>,
        is_shutdown: bool,
    ) -> FrameResponse {
        let (line, outcome_name, is_shutdown) = match &outcome {
            Ok(result) => {
                self.ins.ok.inc();
                (encode_ok(id, result.clone()), "ok", is_shutdown)
            }
            Err(e) => {
                self.counter_for(e.kind).inc();
                (encode_err(id, e), e.kind.as_str(), false)
            }
        };
        // Cancelled work answered nobody in time: like oversized frames it
        // keeps its own counters and stays out of `requests` and the
        // latency histogram, where a flood of dead requests would otherwise
        // masquerade as a latency regression.
        if !matches!(&outcome, Err(e) if e.kind == ErrorKind::Cancelled) {
            self.observe_request(trace, accepted, outcome_name);
        }
        FrameResponse {
            line,
            shutdown: is_shutdown,
        }
    }

    /// The shared per-request bookkeeping: `requests` counter, latency
    /// histogram, slow-request log.
    pub(crate) fn observe_request(&self, trace: &Arc<Trace>, accepted: Instant, outcome: &str) {
        self.ins.requests.inc();
        let elapsed_us = accepted.elapsed().as_micros() as u64;
        self.ins.latency.observe(elapsed_us);
        if let Some(threshold) = self.config.slow_log_micros {
            if elapsed_us >= threshold {
                eprintln!(
                    "serve: slow-request trace={} outcome={} total_us={} {}",
                    trace.id(),
                    outcome,
                    elapsed_us,
                    trace.breakdown()
                );
            }
        }
    }

    /// The nonblocking counterpart of [`Service::handle_frame`] for the
    /// event-driven server: cheap verbs are answered inline (`respond` is
    /// called before this returns), `analyze` goes through the same
    /// bounded queue and worker pool with `respond` called from the
    /// worker when the job completes. `respond` is called exactly once.
    ///
    /// Deadline semantics differ from the blocking path in one way: the
    /// deadline is enforced by the worker when it picks the job up (and
    /// by the queue bound before that), not by a waiting transport
    /// thread — there is none.
    pub fn handle_frame_async(
        self: &Arc<Self>,
        frame: &[u8],
        respond: Box<dyn FnOnce(FrameResponse) + Send>,
    ) {
        self.handle_frame_async_ctrl(frame, CancelToken::new(), respond)
    }

    /// [`Service::handle_frame_async`] with a caller-owned [`CancelToken`]:
    /// the event server hands each frame its connection's token, so a
    /// teardown cancels everything that connection still has queued or
    /// in flight.
    pub fn handle_frame_async_ctrl(
        self: &Arc<Self>,
        frame: &[u8],
        cancel: CancelToken,
        respond: Box<dyn FnOnce(FrameResponse) + Send>,
    ) {
        let accepted = Instant::now();
        let trace = Trace::start(self.next_trace_id.fetch_add(1, Ordering::Relaxed));
        let decoded = with_current(&trace, || {
            let _span = observed_span("decode", &self.ins.phase_decode);
            Request::decode(frame)
        });
        let req = match decoded {
            Err((id, e)) => {
                respond(self.finish_json(&trace, accepted, &id, Err(e), false));
                return;
            }
            Ok(req) => req,
        };
        let id = req.id.clone();
        if !matches!(
            req.verb,
            Verb::Analyze | Verb::Custom | Verb::Open | Verb::Delta
        ) {
            let is_shutdown = req.verb == Verb::Shutdown;
            let outcome = with_current(&trace, || self.dispatch_cheap(&req));
            respond(self.finish_json(&trace, accepted, &id, outcome, is_shutdown));
            return;
        }
        let deadline = self.effective_deadline(req.deadline_ms);
        let work = self.work_of(req);
        let svc = Arc::clone(self);
        let trace_done = Arc::clone(&trace);
        self.submit_async(
            work,
            accepted,
            deadline,
            cancel,
            trace,
            Box::new(move |outcome| {
                let outcome = outcome.map(|o| o.to_json());
                respond(svc.finish_json(&trace_done, accepted, &id, outcome, false));
            }),
        );
    }

    /// Resolves a request's effective deadline: `min(client budget, the
    /// server's own cap)`. A client can only tighten the deadline, never
    /// extend it; requests carrying a budget are counted so operators can
    /// see propagation working end to end.
    pub(crate) fn effective_deadline(&self, client_ms: Option<u64>) -> Duration {
        match client_ms {
            Some(ms) => {
                self.ins.deadline_propagated.inc();
                self.config.request_timeout.min(Duration::from_millis(ms))
            }
            None => self.config.request_timeout,
        }
    }

    /// Builds (and counts) the response for a frame that exceeded
    /// [`ServiceConfig::max_frame_bytes`]. The transports discard such
    /// frames without materializing them, so this is the one response that
    /// never passes through [`Service::handle_frame`] — it gets its own
    /// counter and deliberately stays out of `requests` and the latency
    /// histogram (no work was timed, so a zero observation would only
    /// skew the distribution).
    pub fn oversized_frame_response(&self) -> String {
        self.ins.oversized_frames.inc();
        encode_err(
            &Json::Null,
            &ServiceError::new(
                ErrorKind::Protocol,
                format!("frame exceeds {} bytes", self.config.max_frame_bytes),
            ),
        )
    }

    /// A fresh per-request trace with a process-unique id.
    pub(crate) fn begin_trace(&self) -> Arc<Trace> {
        Trace::start(self.next_trace_id.fetch_add(1, Ordering::Relaxed))
    }

    /// The service's registered instruments, for sibling transports.
    pub(crate) fn ins(&self) -> &ServiceInstruments {
        &self.ins
    }

    pub(crate) fn counter_for(&self, kind: ErrorKind) -> &Counter {
        match kind {
            ErrorKind::Parse => &self.ins.parse_errors,
            ErrorKind::Analysis => &self.ins.analysis_errors,
            ErrorKind::Timeout => &self.ins.timeouts,
            ErrorKind::Overloaded => &self.ins.overloaded,
            ErrorKind::Protocol => &self.ins.protocol_errors,
            ErrorKind::SessionLost => &self.ins.session_lost,
            ErrorKind::Cancelled => &self.ins.cancelled,
        }
    }

    fn dispatch(&self, req: Request, accepted: Instant) -> Result<Json, ServiceError> {
        match req.verb {
            Verb::Analyze | Verb::Custom | Verb::Open | Verb::Delta => {
                let deadline = self.effective_deadline(req.deadline_ms);
                let work = self.work_of(req);
                self.submit_and_wait(work, accepted, deadline)
                    .map(|o| o.to_json())
            }
            _ => self.dispatch_cheap(&req),
        }
    }

    /// Builds the queued [`Work`] for a solver verb, resolving per-request
    /// fields against the configured defaults. The decode layer guarantees
    /// the per-verb required fields are present.
    pub(crate) fn work_of(&self, req: Request) -> Work {
        match req.verb {
            Verb::Analyze => Work::Analyze {
                program: req.program.expect("decode guarantees program for analyze"),
                problems: req.problems.unwrap_or(self.config.engine.problems),
                distance_bound: req
                    .distance_bound
                    .unwrap_or(self.config.engine.dep_max_distance),
            },
            Verb::Custom => Work::Custom {
                program: req.program.expect("decode guarantees program for custom"),
                spec: req.spec.expect("decode guarantees spec for custom"),
                distance_bound: req
                    .distance_bound
                    .unwrap_or(self.config.engine.dep_max_distance),
            },
            Verb::Open => Work::Open {
                program: req.program.expect("decode guarantees program for open"),
            },
            Verb::Delta => {
                let stmt = req.stmt.expect("decode guarantees stmt for delta");
                Work::Delta {
                    session: req.session.expect("decode guarantees session for delta"),
                    edit: Edit {
                        // An out-of-u32-range id cannot name any statement;
                        // saturating keeps it a clean "no such statement"
                        // edit error instead of a silent wrap onto one.
                        stmt: StmtId(u32::try_from(stmt).unwrap_or(u32::MAX)),
                        text: req.text.expect("decode guarantees text for delta"),
                    },
                }
            }
            _ => unreachable!("only solver verbs carry queued work"),
        }
    }

    /// Every verb that answers without touching the worker pool.
    /// The solver verbs must not come through here.
    fn dispatch_cheap(&self, req: &Request) -> Result<Json, ServiceError> {
        match req.verb {
            Verb::Ping => Ok(Json::Str("pong".into())),
            Verb::Health => Ok(self.health_json()),
            Verb::Stats => Ok(self.stats_json()),
            Verb::Metrics => Ok(self.metrics_json()),
            Verb::Compact => self.compact_store(),
            Verb::Shutdown => {
                self.shutdown();
                Ok(Json::Str("shutting down".into()))
            }
            Verb::Analyze | Verb::Custom | Verb::Open | Verb::Delta => {
                unreachable!("solver verbs are dispatched through the worker pool")
            }
        }
    }

    /// The `compact` verb: flushes pending appends, rewrites live records
    /// into fresh segments, and reports what was reclaimed.
    pub(crate) fn compact_store(&self) -> Result<Json, ServiceError> {
        let Some(tier) = &self.tier else {
            return Err(ServiceError::new(
                ErrorKind::Protocol,
                "no store configured (start with --store DIR)",
            ));
        };
        // Flush first so records still queued for the writer thread are
        // on disk and survive into the compacted generation.
        tier.flush();
        let report = tier.store_handle().compact().map_err(|e| {
            ServiceError::new(ErrorKind::Analysis, format!("compaction failed: {e}"))
        })?;
        Ok(Json::Obj(vec![
            ("live_records".into(), Json::Num(report.live_records as f64)),
            ("dropped".into(), Json::Num(report.dropped as f64)),
            ("bytes_before".into(), Json::Num(report.bytes_before as f64)),
            ("bytes_after".into(), Json::Num(report.bytes_after as f64)),
        ]))
    }

    fn submit_and_wait(
        &self,
        work: Work,
        accepted: Instant,
        deadline: Duration,
    ) -> Result<JobOutput, ServiceError> {
        let trace = arrayflow_obs::trace::current().expect("handle_frame installed a trace");

        let cancel = CancelToken::new();
        let (tx, rx) = mpsc::channel();
        self.enqueue_job(
            work,
            accepted,
            deadline,
            cancel.clone(),
            trace,
            Box::new(move |outcome| {
                // The waiter may have timed out and gone; that is fine.
                let _ = tx.send(outcome);
            }),
        )
        .map_err(|(e, _reply)| e)?;

        // The deadline is measured from frame acceptance, not from
        // enqueue, so decode time cannot silently extend the budget.
        let remaining = deadline.saturating_sub(accepted.elapsed());
        if remaining.is_zero() {
            // The budget was gone before we could wait. A worker will
            // shed the queued job, but from the blocking caller's view
            // this is a plain deadline miss — answer `timeout` without
            // racing the worker's `cancelled` reply for the channel.
            cancel.cancel();
            return Err(ServiceError::new(
                ErrorKind::Timeout,
                format!("deadline of {} ms exceeded", deadline.as_millis()),
            ));
        }
        match rx.recv_timeout(remaining) {
            Ok(outcome) => outcome,
            Err(mpsc::RecvTimeoutError::Timeout) => {
                // Nobody is waiting for this answer anymore: flag the job
                // so a worker sheds it at dequeue (or mid-solve) instead
                // of finishing work whose reply lands in a dead channel.
                cancel.cancel();
                Err(ServiceError::new(
                    ErrorKind::Timeout,
                    format!("deadline of {} ms exceeded", deadline.as_millis()),
                ))
            }
            // Workers always reply before exiting (the queue is drained on
            // shutdown), so disconnection means the pool is gone entirely.
            Err(mpsc::RecvTimeoutError::Disconnected) => Err(ServiceError::new(
                ErrorKind::Overloaded,
                "service is shutting down",
            )),
        }
    }

    /// Pushes a job onto the bounded queue. On `Ok` the `reply` closure is
    /// guaranteed to be invoked exactly once by a worker; on rejection
    /// (`Overloaded`: queue full or service stopping) the closure is
    /// handed back un-invoked along with the error, so the caller decides
    /// how to deliver the rejection.
    fn enqueue_job(
        &self,
        work: Work,
        accepted: Instant,
        deadline: Duration,
        cancel: CancelToken,
        trace: Arc<Trace>,
        reply: Reply,
    ) -> Result<(), (ServiceError, Reply)> {
        {
            let mut q = self.queue.lock().unwrap();
            if self.is_shutdown() {
                return Err((
                    ServiceError::new(ErrorKind::Overloaded, "service is shutting down"),
                    reply,
                ));
            }
            if q.len() >= self.config.queue_capacity {
                return Err((
                    ServiceError::new(
                        ErrorKind::Overloaded,
                        format!("queue full ({} in flight)", q.len()),
                    ),
                    reply,
                ));
            }
            q.push_back(Job {
                work,
                accepted,
                enqueued: Instant::now(),
                deadline,
                cancel,
                trace,
                reply,
            });
            self.ins.queue_depth_hwm.set_max(q.len() as u64);
        }
        self.job_ready.notify_one();
        Ok(())
    }

    /// Fire-and-forget job submission for the event-driven server: no
    /// thread blocks waiting, so the deadline is enforced only by the
    /// worker when it dequeues the job. `reply` is invoked exactly once —
    /// inline (before this returns) when the queue rejects the job, from
    /// a worker otherwise.
    pub(crate) fn submit_async(
        &self,
        work: Work,
        accepted: Instant,
        deadline: Duration,
        cancel: CancelToken,
        trace: Arc<Trace>,
        reply: Reply,
    ) {
        if let Err((e, reply)) = self.enqueue_job(work, accepted, deadline, cancel, trace, reply) {
            reply(Err(e));
        }
    }

    fn worker_loop(self: Arc<Self>) {
        loop {
            // Worker-crash seam, consulted between jobs so an injected
            // death never takes a claimed job with it: the job stays
            // queued for a surviving (or respawned) worker.
            if let Some(faults) = &self.config.faults {
                if faults.worker_exit() {
                    eprintln!("serve: worker-exit injected=true");
                    return;
                }
            }
            let job = {
                let mut q = self.queue.lock().unwrap();
                loop {
                    if let Some(job) = q.pop_front() {
                        break Some(job);
                    }
                    if self.is_shutdown() {
                        break None;
                    }
                    q = self.job_ready.wait(q).unwrap();
                }
            };
            let Some(job) = job else { return };
            // Queue wait ends now: record it as both a histogram
            // observation and a span on the request's trace (the span's
            // start is back-dated to the enqueue instant).
            let wait_us = job.enqueued.elapsed().as_micros() as u64;
            self.ins.queue_wait.observe(wait_us);
            let now_us = job.trace.elapsed_us();
            job.trace
                .record("queue_wait", now_us.saturating_sub(wait_us), wait_us);
            // Defense in depth under the engine's own panic isolation: a
            // panic anywhere in the job path still answers the waiter
            // (a dropped reply channel would read as a pool shutdown).
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                with_current(&job.trace, || self.run_job(&job))
            }))
            .unwrap_or_else(|payload| {
                Err(ServiceError::new(
                    ErrorKind::Analysis,
                    format!(
                        "internal: worker panicked: {}",
                        panic_message(payload.as_ref())
                    ),
                ))
            });
            (job.reply)(outcome);
        }
    }

    /// Replaces dead workers. Workers only exit on their own for two
    /// reasons — shutdown, or a crash (today reachable only through the
    /// `worker_exit` fault seam; the job path is panic-isolated) — so the
    /// supervisor polls cheaply and respawns until shutdown, keeping the
    /// pool at full strength no matter how many workers chaos kills.
    fn supervisor_loop(self: Arc<Self>) {
        while !self.is_shutdown() {
            std::thread::sleep(Duration::from_millis(20));
            let mut workers = self.workers.lock().unwrap();
            let mut i = 0;
            while i < workers.len() {
                if workers[i].is_finished() && !self.is_shutdown() {
                    let _ = workers.swap_remove(i).join();
                    self.ins.worker_restarts.inc();
                    eprintln!(
                        "serve: worker-restart total={} pool={}",
                        self.ins.worker_restarts.get(),
                        workers.len() + 1
                    );
                    let svc = Arc::clone(&self);
                    workers.push(std::thread::spawn(move || svc.worker_loop()));
                } else {
                    i += 1;
                }
            }
        }
    }

    /// Counts one abandoned job (reason + wasted-work histogram) and
    /// builds the `cancelled` response. `passes` is the solver work the
    /// job burned before the stop landed — 0 for jobs shed at dequeue.
    fn shed_job(&self, job: &Job, passes: u64, when: &str) -> ServiceError {
        // A marker on the trace timeline pins down *where* the request
        // died in the slow-request log's breakdown.
        if let Some(trace) = arrayflow_obs::trace::current() {
            trace.mark("shed");
        }
        let reason = if job.cancel.is_cancelled() {
            self.ins.cancelled_disconnect.inc();
            "request abandoned"
        } else {
            self.ins.cancelled_expired.inc();
            "deadline budget exhausted"
        };
        self.ins.wasted_passes.observe(passes);
        ServiceError::new(
            ErrorKind::Cancelled,
            format!(
                "{reason} {when} (budget {} ms, {passes} solver passes wasted)",
                job.deadline.as_millis()
            ),
        )
    }

    fn run_job(&self, job: &Job) -> Result<JobOutput, ServiceError> {
        // Dequeue-time shedding: a job whose client is gone or whose
        // budget drained while it sat queued is dropped for the cost of
        // two loads — the metastable-failure amplifier (a queue full of
        // dead work keeping workers busy) never gets started.
        if job.cancel.is_cancelled() || job.accepted.elapsed() >= job.deadline {
            return Err(self.shed_job(job, 0, "while queued"));
        }
        // In-flight cancellation: the solver polls this between iteration
        // passes, so once the connection drops or the budget runs out the
        // job costs at most one further pass.
        let stop_check = {
            let cancel = job.cancel.clone();
            let accepted = job.accepted;
            let deadline = job.deadline;
            move || cancel.is_cancelled() || accepted.elapsed() >= deadline
        };
        let should_stop: Option<arrayflow_engine::StopCheck<'_>> = Some(&stop_check);
        let parse = |source: &str| {
            let _span = observed_span("parse", &self.ins.phase_parse);
            parse_program_bytes(source.as_bytes())
                .map_err(|e| ServiceError::new(ErrorKind::Parse, e.to_string()))
        };
        match &job.work {
            Work::Analyze {
                program,
                problems,
                distance_bound,
            } => {
                let program = parse(program)?;
                let result = self.engine.analyze_with_ctrl(
                    0,
                    &program,
                    *problems,
                    *distance_bound,
                    should_stop,
                );
                if let Some(e) = &result.error {
                    if let Some(passes) = e.wasted_passes() {
                        return Err(self.shed_job(job, passes, "mid-analysis"));
                    }
                    return Err(ServiceError::new(ErrorKind::Analysis, e.to_string()));
                }
                Ok(JobOutput::Analyze(result))
            }
            Work::Custom {
                program,
                spec,
                distance_bound,
            } => {
                let program = parse(program)?;
                let result = self.engine.analyze_custom_ctrl(
                    0,
                    &program,
                    *spec,
                    *distance_bound,
                    should_stop,
                );
                if let Some(e) = &result.error {
                    if let Some(passes) = e.wasted_passes() {
                        return Err(self.shed_job(job, passes, "mid-analysis"));
                    }
                    return Err(ServiceError::new(ErrorKind::Analysis, e.to_string()));
                }
                Ok(JobOutput::Analyze(result))
            }
            Work::Open { program } => {
                let program = parse(program)?;
                let (session, report) = self
                    .engine
                    .open_session_ctrl(&program, should_stop)
                    .map_err(|e| match e.wasted_passes() {
                        Some(passes) => self.shed_job(job, passes, "mid-analysis"),
                        None => ServiceError::new(ErrorKind::Analysis, e.to_string()),
                    })?;
                Ok(JobOutput::Session(session, report))
            }
            Work::Delta { session, edit } => {
                // Rejected edits are analysis-kind errors (the frame was
                // well-formed, the request could not be satisfied); a
                // session the node does not hold — expired here, or never
                // replicated to a failed-over replica — is the typed
                // `session_lost`, telling the client to re-open and
                // replay rather than treat it as an analysis failure.
                let delta = self
                    .engine
                    .analyze_delta_ctrl(*session, edit, should_stop)
                    .map_err(|e| {
                        if let Some(passes) = e.wasted_passes() {
                            return self.shed_job(job, passes, "mid-analysis");
                        }
                        let kind = match &e {
                            arrayflow_engine::AnalysisError::SessionLost(_) => {
                                ErrorKind::SessionLost
                            }
                            _ => ErrorKind::Analysis,
                        };
                        ServiceError::new(kind, e.to_string())
                    })?;
                Ok(JobOutput::Delta(delta))
            }
        }
    }

    /// Snapshot of the service counters.
    pub fn stats(&self) -> ServiceStats {
        let buckets = |h: &Histogram| {
            let snap = h.snapshot();
            let mut out = [0u64; LATENCY_BUCKETS_US.len() + 1];
            for (slot, b) in out.iter_mut().zip(&snap.buckets) {
                *slot = *b;
            }
            out
        };
        ServiceStats {
            connections: self.ins.connections.get(),
            requests: self.ins.requests.get(),
            worker_restarts: self.ins.worker_restarts.get(),
            ok: self.ins.ok.get(),
            parse_errors: self.ins.parse_errors.get(),
            analysis_errors: self.ins.analysis_errors.get(),
            timeouts: self.ins.timeouts.get(),
            overloaded: self.ins.overloaded.get(),
            protocol_errors: self.ins.protocol_errors.get(),
            session_lost: self.ins.session_lost.get(),
            cancelled: self.ins.cancelled.get(),
            cancelled_disconnect: self.ins.cancelled_disconnect.get(),
            cancelled_expired: self.ins.cancelled_expired.get(),
            deadline_propagated: self.ins.deadline_propagated.get(),
            idle_disconnects: self.ins.idle_disconnects.get(),
            oversized_frames: self.ins.oversized_frames.get(),
            queue_depth_hwm: self.ins.queue_depth_hwm.get() as usize,
            latency: buckets(&self.ins.latency),
            queue_wait: buckets(&self.ins.queue_wait),
        }
    }

    /// Snapshot of the shared engine's statistics.
    pub fn engine_stats(&self) -> EngineStats {
        self.engine.stats()
    }

    /// The `stats` verb payload: engine and cache one-liners (their
    /// `Display` impls) plus the structured service counters.
    pub(crate) fn stats_json(&self) -> Json {
        let e = self.engine_stats();
        let s = self.stats();
        let errors = Json::Obj(vec![
            ("parse".into(), Json::Num(s.parse_errors as f64)),
            ("analysis".into(), Json::Num(s.analysis_errors as f64)),
            ("timeout".into(), Json::Num(s.timeouts as f64)),
            ("overloaded".into(), Json::Num(s.overloaded as f64)),
            ("protocol".into(), Json::Num(s.protocol_errors as f64)),
            ("session_lost".into(), Json::Num(s.session_lost as f64)),
            ("cancelled".into(), Json::Num(s.cancelled as f64)),
        ]);
        let hist_obj = |buckets: &[u64; LATENCY_BUCKETS_US.len() + 1]| {
            let mut members = Vec::new();
            for (i, &edge) in LATENCY_BUCKETS_US.iter().enumerate() {
                members.push((format!("le_{edge}us"), Json::Num(buckets[i] as f64)));
            }
            members.push((
                "gt_1000000us".into(),
                Json::Num(buckets[LATENCY_BUCKETS_US.len()] as f64),
            ));
            Json::Obj(members)
        };
        let latency = hist_obj(&s.latency);
        let queue_wait = hist_obj(&s.queue_wait);
        let mut members = vec![
            ("engine".into(), Json::Str(e.to_string())),
            ("cache".into(), Json::Str(e.cache.to_string())),
        ];
        if let Some(tier) = &self.tier {
            let st = tier.store_stats();
            let tt = tier.stats();
            members.push((
                "store".into(),
                Json::Obj(vec![
                    ("records".into(), Json::Num(st.records as f64)),
                    ("segments".into(), Json::Num(st.segments as f64)),
                    ("bytes".into(), Json::Num(st.bytes as f64)),
                    ("disk_hits".into(), Json::Num(st.disk_hits as f64)),
                    ("disk_misses".into(), Json::Num(st.disk_misses as f64)),
                    ("read_errors".into(), Json::Num(st.read_errors as f64)),
                    ("appends".into(), Json::Num(st.appends as f64)),
                    (
                        "recovery_skipped".into(),
                        Json::Num(st.recovery_skipped as f64),
                    ),
                    ("compactions".into(), Json::Num(st.compactions as f64)),
                    ("queued_appends".into(), Json::Num(tt.queued_appends as f64)),
                    (
                        "dropped_appends".into(),
                        Json::Num(tt.dropped_appends as f64),
                    ),
                    (
                        "written_appends".into(),
                        Json::Num(tt.written_appends as f64),
                    ),
                    ("failed_appends".into(), Json::Num(tt.failed_appends as f64)),
                    (
                        "breaker_state".into(),
                        Json::Str(tier.breaker_state().as_str().into()),
                    ),
                    ("breaker_trips".into(), Json::Num(tt.breaker_trips as f64)),
                    (
                        "breaker_dropped_appends".into(),
                        Json::Num(tt.breaker_dropped_appends as f64),
                    ),
                    ("warm_loaded".into(), Json::Num(self.warm_loaded as f64)),
                ]),
            ));
        }
        let ss = self.engine.session_stats();
        members.push((
            "sessions".into(),
            Json::Obj(vec![
                ("open".into(), Json::Num(ss.open as f64)),
                ("opened_total".into(), Json::Num(ss.opened_total as f64)),
                (
                    "evicted_capacity".into(),
                    Json::Num(ss.evicted_capacity as f64),
                ),
                ("expired_ttl".into(), Json::Num(ss.expired_ttl as f64)),
                ("deltas_total".into(), Json::Num(ss.deltas_total as f64)),
                (
                    "delta_fallbacks".into(),
                    Json::Num(ss.delta_fallbacks as f64),
                ),
            ]),
        ));
        members.extend([(
            "service".into(),
            Json::Obj(vec![
                ("connections".into(), Json::Num(s.connections as f64)),
                ("requests".into(), Json::Num(s.requests as f64)),
                ("ok".into(), Json::Num(s.ok as f64)),
                ("errors".into(), errors),
                (
                    "oversized_frames".into(),
                    Json::Num(s.oversized_frames as f64),
                ),
                (
                    "cancelled_jobs".into(),
                    Json::Obj(vec![
                        (
                            "disconnect".into(),
                            Json::Num(s.cancelled_disconnect as f64),
                        ),
                        ("expired".into(), Json::Num(s.cancelled_expired as f64)),
                    ]),
                ),
                (
                    "deadline_propagated".into(),
                    Json::Num(s.deadline_propagated as f64),
                ),
                (
                    "idle_disconnects".into(),
                    Json::Num(s.idle_disconnects as f64),
                ),
                (
                    "queue_depth_hwm".into(),
                    Json::Num(s.queue_depth_hwm as f64),
                ),
                (
                    "worker_restarts".into(),
                    Json::Num(s.worker_restarts as f64),
                ),
                ("latency".into(), latency),
                ("queue_wait".into(), queue_wait),
            ]),
        )]);
        Json::Obj(members)
    }

    /// The `metrics` verb payload: every registered metric as structured
    /// JSON plus the full Prometheus text exposition, so scrapers can use
    /// whichever form they prefer.
    fn metrics_json(&self) -> Json {
        let snapshot = self.registry.snapshot();
        let metrics = snapshot
            .metrics
            .iter()
            .map(|m| {
                let labels = m
                    .labels
                    .iter()
                    .map(|(k, v)| (k.clone(), Json::Str(v.clone())))
                    .collect();
                let mut members = vec![
                    ("name".into(), Json::Str(m.name.clone())),
                    ("type".into(), Json::Str(m.value.type_name().into())),
                    ("labels".into(), Json::Obj(labels)),
                ];
                match &m.value {
                    MetricValue::Counter(v) | MetricValue::Gauge(v) => {
                        members.push(("value".into(), Json::Num(*v as f64)));
                    }
                    MetricValue::Histogram(h) => {
                        members.push(("histogram".into(), histogram_json(h)));
                    }
                }
                Json::Obj(members)
            })
            .collect();
        Json::Obj(vec![
            ("metrics".into(), Json::Arr(metrics)),
            ("prometheus".into(), Json::Str(self.render_exposition())),
        ])
    }
}

/// Renders a histogram snapshot as `{edges, buckets, count, sum}` (bucket
/// counts are per-bucket, not cumulative; `buckets` has one final
/// unbounded slot beyond `edges`).
fn histogram_json(h: &HistogramSnapshot) -> Json {
    Json::Obj(vec![
        (
            "edges".into(),
            Json::Arr(h.edges.iter().map(|&e| Json::Num(e as f64)).collect()),
        ),
        (
            "buckets".into(),
            Json::Arr(h.buckets.iter().map(|&b| Json::Num(b as f64)).collect()),
        ),
        ("count".into(), Json::Num(h.count as f64)),
        ("sum".into(), Json::Num(h.sum as f64)),
    ])
}

impl Drop for Service {
    fn drop(&mut self) {
        // Defensive: a service dropped without an explicit shutdown still
        // stops its workers (they hold Arc<Service>, so by the time Drop
        // runs they have already exited — this is for the join handles).
        self.shutdown.store(true, Ordering::SeqCst);
        self.job_ready.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn start_small() -> Arc<Service> {
        Service::start(ServiceConfig {
            workers: 2,
            ..ServiceConfig::default()
        })
        .expect("no store configured, start cannot fail")
    }

    #[test]
    fn ping_and_analyze_roundtrip() {
        let svc = start_small();
        let r = svc.handle_frame(br#"{"id": 1, "verb": "ping"}"#);
        assert_eq!(r.line, r#"{"id":1,"ok":true,"result":"pong"}"#);
        let r = svc.handle_frame(
            br#"{"id": 2, "verb": "analyze", "program": "do i = 1, 9 A[i+2] := A[i]; end"}"#,
        );
        assert!(r.line.contains(r#""ok":true"#), "{}", r.line);
        assert!(r.line.contains("reuse"), "{}", r.line);
        let s = svc.stats();
        assert_eq!((s.requests, s.ok), (2, 2));
        svc.shutdown();
        svc.join_workers();
    }

    #[test]
    fn error_taxonomy_is_counted() {
        let svc = start_small();
        // protocol: malformed JSON
        let r = svc.handle_frame(b"} not json");
        assert!(r.line.contains(r#""kind":"protocol""#), "{}", r.line);
        // protocol: unknown verb
        let r = svc.handle_frame(br#"{"verb": "frobnicate"}"#);
        assert!(r.line.contains("unknown verb"), "{}", r.line);
        // parse: bad DSL
        let r = svc.handle_frame(br#"{"verb": "analyze", "program": "do do do"}"#);
        assert!(r.line.contains(r#""kind":"parse""#), "{}", r.line);
        let s = svc.stats();
        assert_eq!(s.protocol_errors, 2);
        assert_eq!(s.parse_errors, 1);
        assert_eq!(s.errors(), 3);
        assert_eq!(s.requests, 3);
        svc.shutdown();
        svc.join_workers();
    }

    #[test]
    fn zero_deadline_times_out() {
        let svc = Service::start(ServiceConfig {
            workers: 1,
            request_timeout: Duration::ZERO,
            ..ServiceConfig::default()
        })
        .unwrap();
        let r = svc.handle_frame(br#"{"id": 9, "verb": "analyze", "program": "x := 1;"}"#);
        assert!(r.line.contains(r#""kind":"timeout""#), "{}", r.line);
        assert_eq!(svc.stats().timeouts, 1);
        svc.shutdown();
        svc.join_workers();
    }

    #[test]
    fn shutdown_verb_reports_and_flags() {
        let svc = start_small();
        let r = svc.handle_frame(br#"{"id": 1, "verb": "shutdown"}"#);
        assert!(r.shutdown);
        assert!(r.line.contains("shutting down"), "{}", r.line);
        assert!(svc.is_shutdown());
        // Post-shutdown analyze is rejected as overloaded.
        let r = svc.handle_frame(br#"{"id": 2, "verb": "analyze", "program": "x := 1;"}"#);
        assert!(r.line.contains(r#""kind":"overloaded""#), "{}", r.line);
        svc.join_workers();
    }

    #[test]
    fn compact_without_store_is_a_protocol_error() {
        let svc = start_small();
        let r = svc.handle_frame(br#"{"id": 1, "verb": "compact"}"#);
        assert!(r.line.contains(r#""kind":"protocol""#), "{}", r.line);
        assert!(r.line.contains("no store configured"), "{}", r.line);
        svc.shutdown();
        svc.join_workers();
    }

    #[test]
    fn store_backed_service_persists_and_warm_starts() {
        let dir = std::env::temp_dir().join(format!("afsvc-store-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let config = || ServiceConfig {
            workers: 2,
            store: Some(arrayflow_store::StoreConfig::at(&dir)),
            ..ServiceConfig::default()
        };
        let frame =
            br#"{"id": 1, "verb": "analyze", "program": "do i = 1, 9 A[i+2] := A[i]; end"}"#;

        let svc = Service::start(config()).unwrap();
        assert_eq!(svc.warm_loaded(), 0);
        let first = svc.handle_frame(frame);
        assert!(first.line.contains(r#""ok":true"#), "{}", first.line);
        // stats carries a structured store section.
        let stats = svc.handle_frame(br#"{"id": 2, "verb": "stats"}"#);
        assert!(stats.line.contains(r#""store":{"#), "{}", stats.line);
        assert!(stats.line.contains(r#""warm_loaded":0"#), "{}", stats.line);
        // compact succeeds (flushes the writer first).
        let c = svc.handle_frame(br#"{"id": 3, "verb": "compact"}"#);
        assert!(c.line.contains(r#""live_records":1"#), "{}", c.line);
        svc.shutdown();
        svc.join_workers();
        drop(svc);

        // A fresh service over the same directory warm-starts and answers
        // the same program with byte-identical reports without re-solving
        // (the per-request stats legitimately differ: hit vs miss).
        let svc = Service::start(config()).unwrap();
        assert_eq!(svc.warm_loaded(), 1);
        let again = svc.handle_frame(frame);
        let loops = |line: &str| {
            let start = line.find(r#""loops":"#).unwrap();
            let end = line.find(r#","error":"#).unwrap();
            line[start..end].to_string()
        };
        assert_eq!(loops(&first.line), loops(&again.line));
        assert_eq!(svc.engine_stats().cache.misses, 0);
        svc.shutdown();
        svc.join_workers();
        drop(svc);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A fault surface that kills exactly one worker, at its first seam
    /// check.
    #[derive(Debug, Default)]
    struct ExitOnce(AtomicBool);

    impl FaultSurface for ExitOnce {
        fn worker_exit(&self) -> bool {
            !self.0.swap(true, Ordering::SeqCst)
        }
    }

    #[test]
    fn supervisor_replaces_dead_workers() {
        let svc = Service::start(ServiceConfig {
            workers: 1,
            faults: Some(Arc::new(ExitOnce::default())),
            ..ServiceConfig::default()
        })
        .unwrap();
        // The lone worker dies at its first seam check. Wait for the
        // supervisor to notice and respawn it.
        let deadline = Instant::now() + Duration::from_secs(5);
        while svc.stats().worker_restarts == 0 {
            assert!(Instant::now() < deadline, "supervisor never respawned");
            std::thread::sleep(Duration::from_millis(5));
        }
        // The replacement worker serves requests normally.
        let r = svc.handle_frame(
            br#"{"id": 1, "verb": "analyze", "program": "do i = 1, 9 A[i+2] := A[i]; end"}"#,
        );
        assert!(r.line.contains(r#""ok":true"#), "{}", r.line);
        assert_eq!(svc.stats().worker_restarts, 1);
        // stats carries the restart count.
        let s = svc.handle_frame(br#"{"id": 2, "verb": "stats"}"#);
        assert!(s.line.contains(r#""worker_restarts":1"#), "{}", s.line);
        svc.shutdown();
        svc.join_workers();
    }

    #[test]
    fn injected_solver_panic_is_a_framed_analysis_error() {
        use arrayflow_resilience::FaultPlan;
        let svc = Service::start(ServiceConfig {
            workers: 2,
            faults: Some(Arc::new(FaultPlan::parse("solver_panic=100%").unwrap())),
            ..ServiceConfig::default()
        })
        .unwrap();
        let r = svc.handle_frame(
            br#"{"id": 1, "verb": "analyze", "program": "do i = 1, 9 A[i+2] := A[i]; end"}"#,
        );
        assert!(r.line.contains(r#""kind":"analysis""#), "{}", r.line);
        assert!(r.line.contains("injected solver fault"), "{}", r.line);
        // The pool survives: another request is answered (with the same
        // injected failure), not dropped.
        let r = svc.handle_frame(
            br#"{"id": 2, "verb": "analyze", "program": "do i = 1, 9 A[i+1] := A[i]; end"}"#,
        );
        assert!(r.line.contains(r#""kind":"analysis""#), "{}", r.line);
        assert_eq!(svc.stats().analysis_errors, 2);
        svc.shutdown();
        svc.join_workers();
    }

    /// The acceptance bar for the `custom` verb: a wire spec equivalent to
    /// a canned instance must produce a byte-identical report to the
    /// built-in verb (the engine folds such specs onto the canned cache
    /// key, so this holds by construction — but the wire layer could still
    /// break it).
    #[test]
    fn custom_verb_matches_builtin_reports_byte_for_byte() {
        let svc = start_small();
        let program = "do i = 1, 9 A[i+2] := A[i]; end";
        let loops = |line: &str| {
            let start = line.find(r#""loops":"#).unwrap();
            let end = line.find(r#","error":"#).unwrap();
            line[start..end].to_string()
        };
        for (spec, problem) in [
            (r#"{"gen": ["defs"], "kill": ["defs"]}"#, "reaching"),
            (
                r#"{"gen": ["defs", "uses"], "kill": ["defs"]}"#,
                "available",
            ),
            (
                r#"{"gen": ["defs"], "kill": ["uses"], "direction": "backward"}"#,
                "busy",
            ),
            (
                r#"{"gen": ["defs", "uses"], "kill": ["defs"], "mode": "may"}"#,
                "reaching_refs",
            ),
        ] {
            let canned = svc.handle_frame(
                format!(
                    r#"{{"verb": "analyze", "program": "{program}", "problems": ["{problem}"]}}"#
                )
                .as_bytes(),
            );
            let custom = svc.handle_frame(
                format!(r#"{{"verb": "custom", "program": "{program}", "spec": {spec}}}"#)
                    .as_bytes(),
            );
            assert!(canned.line.contains(r#""ok":true"#), "{}", canned.line);
            assert!(custom.line.contains(r#""ok":true"#), "{}", custom.line);
            assert_eq!(loops(&canned.line), loops(&custom.line), "spec {spec}");
        }
        svc.shutdown();
        svc.join_workers();
    }

    #[test]
    fn custom_verb_solves_non_canned_problems() {
        let svc = start_small();
        // Live array elements: G = uses, K = defs, backward, may — the
        // canonical problem the canned quartet does not cover.
        let r = svc.handle_frame(
            br#"{"id": 1, "verb": "custom", "program": "do i = 1, 9 A[i+2] := A[i]; end",
                 "spec": {"gen": ["uses"], "kill": ["defs"],
                          "direction": "backward", "mode": "may"}}"#,
        );
        assert!(r.line.contains(r#""ok":true"#), "{}", r.line);
        assert!(r.line.contains("custom spec=gu-kd-bwd-may"), "{}", r.line);
        // Same program, same spec again: a cache hit, identical bytes.
        let again = svc.handle_frame(
            br#"{"id": 2, "verb": "custom", "program": "do i = 1, 9 A[i+2] := A[i]; end",
                 "spec": {"gen": ["uses"], "kill": ["defs"],
                          "direction": "backward", "mode": "may"}}"#,
        );
        let loops = |line: &str| {
            let start = line.find(r#""loops":"#).unwrap();
            let end = line.find(r#","error":"#).unwrap();
            line[start..end].to_string()
        };
        assert_eq!(loops(&r.line), loops(&again.line));
        assert_eq!(svc.engine_stats().cache.hits, 1);
        // A different spec over the same program is a distinct cache key.
        let other = svc.handle_frame(
            br#"{"id": 3, "verb": "custom", "program": "do i = 1, 9 A[i+2] := A[i]; end",
                 "spec": {"gen": ["uses"], "kill": ["defs"], "direction": "backward"}}"#,
        );
        assert!(
            other.line.contains("custom spec=gu-kd-bwd-must"),
            "{}",
            other.line
        );
        assert_ne!(loops(&r.line), loops(&other.line));
        assert_eq!(svc.engine_stats().cache.misses, 2);
        svc.shutdown();
        svc.join_workers();
    }

    #[test]
    fn per_request_problem_selection_hits_distinct_cache_entries() {
        let svc = start_small();
        let frame = |id: u32, problems: &str| {
            format!(
                r#"{{"id": {id}, "verb": "analyze", "program": "do i = 1, 9 A[i+2] := A[i]; end", "problems": {problems}}}"#
            )
        };
        let r1 = svc.handle_frame(frame(1, r#"["available"]"#).as_bytes());
        let r2 = svc.handle_frame(frame(2, r#"["busy"]"#).as_bytes());
        assert!(r1.line.contains("reuse"), "{}", r1.line);
        assert!(!r2.line.contains("reuse"), "{}", r2.line);
        // Distinct problem sets are distinct cache keys: two misses.
        assert_eq!(svc.engine_stats().cache.misses, 2);
        svc.shutdown();
        svc.join_workers();
    }
}
