//! Transports: a TCP listener (thread-per-connection) and a stdio loop,
//! both speaking the newline-framed protocol of [`crate::proto`] against
//! one shared [`Service`].
//!
//! Framing is resilient by construction: lines longer than the configured
//! maximum are discarded (bounded memory) and answered with a `protocol`
//! error, after which the connection keeps working; reads use a short
//! timeout so connection threads observe shutdown promptly; and a final
//! unterminated line at EOF still gets a response.

use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::Arc;
use std::time::Duration;

use crate::service::{Service, ServiceConfig};

/// How long a blocked read waits before re-checking the shutdown flag.
const READ_POLL: Duration = Duration::from_millis(50);

/// What [`FrameReader::next_frame`] produced.
#[derive(Debug, PartialEq, Eq)]
pub enum Frame {
    /// A complete line; the payload is in the reader's buffer.
    Complete,
    /// A line longer than the maximum was discarded in full.
    Oversized,
}

/// Incremental newline framing over any [`BufRead`], with a hard size cap.
///
/// Oversized lines are discarded chunk-by-chunk — the frame never
/// materializes in memory — and reported as [`Frame::Oversized`] once
/// their terminating newline (or EOF) is reached, so the stream stays in
/// sync and the connection stays usable.
pub struct FrameReader<R> {
    inner: R,
    max: usize,
    buf: Vec<u8>,
    discarding: bool,
    // The buffer holds a delivered frame (clear it on the next call) as
    // opposed to a partial line awaiting more input after a read timeout.
    delivered: bool,
}

impl<R: BufRead> FrameReader<R> {
    /// Wraps `inner`, capping accepted lines at `max` bytes.
    pub fn new(inner: R, max: usize) -> Self {
        Self {
            inner,
            max,
            buf: Vec::new(),
            discarding: false,
            delivered: false,
        }
    }

    /// The payload of the last [`Frame::Complete`].
    pub fn frame(&self) -> &[u8] {
        &self.buf
    }

    /// Reads until a frame completes, EOF (`Ok(None)`), or an I/O error.
    /// Timeout-flavored errors (`WouldBlock`/`TimedOut`) surface to the
    /// caller with all partial state preserved — call again to resume.
    pub fn next_frame(&mut self) -> io::Result<Option<Frame>> {
        if self.delivered {
            self.buf.clear();
            self.delivered = false;
        }
        loop {
            let chunk = match self.inner.fill_buf() {
                Ok(chunk) => chunk,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            };
            if chunk.is_empty() {
                // EOF. A pending oversized or partial final line still
                // yields one last frame; the next call reports EOF.
                if self.discarding {
                    self.discarding = false;
                    return Ok(Some(Frame::Oversized));
                }
                if !self.buf.is_empty() {
                    self.delivered = true;
                    return Ok(Some(Frame::Complete));
                }
                return Ok(None);
            }
            match chunk.iter().position(|&b| b == b'\n') {
                Some(nl) => {
                    let oversized = self.discarding || self.buf.len() + nl > self.max;
                    if !oversized {
                        self.buf.extend_from_slice(&chunk[..nl]);
                    }
                    self.inner.consume(nl + 1);
                    if oversized {
                        self.discarding = false;
                        self.buf.clear();
                        return Ok(Some(Frame::Oversized));
                    }
                    self.delivered = true;
                    return Ok(Some(Frame::Complete));
                }
                None => {
                    let len = chunk.len();
                    if !self.discarding {
                        if self.buf.len() + len > self.max {
                            self.discarding = true;
                            self.buf.clear();
                        } else {
                            self.buf.extend_from_slice(chunk);
                        }
                    }
                    self.inner.consume(len);
                }
            }
        }
    }
}

fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// Serves one TCP connection until EOF, error, or service shutdown.
fn handle_connection(stream: TcpStream, service: Arc<Service>) -> io::Result<()> {
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(READ_POLL))?;
    let reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    let mut frames = FrameReader::new(reader, service.config().max_frame_bytes);
    loop {
        match frames.next_frame() {
            Ok(Some(Frame::Complete)) => {
                let resp = service.handle_frame(frames.frame());
                writer.write_all(resp.line.as_bytes())?;
                writer.write_all(b"\n")?;
                writer.flush()?;
                if resp.shutdown {
                    return Ok(());
                }
            }
            Ok(Some(Frame::Oversized)) => {
                let line = service.oversized_frame_response();
                writer.write_all(line.as_bytes())?;
                writer.write_all(b"\n")?;
                writer.flush()?;
            }
            Ok(None) => return Ok(()),
            Err(e) if is_timeout(&e) => {
                // Idle (or slow) connection: poll the shutdown flag. A
                // partially read frame stays buffered in the FrameReader.
                if service.is_shutdown() {
                    return Ok(());
                }
            }
            Err(_) => return Ok(()), // peer reset — nothing left to say
        }
    }
}

/// A TCP front-end over a [`Service`].
///
/// ```no_run
/// use arrayflow_service::{Server, ServiceConfig};
///
/// let server = Server::bind("127.0.0.1:7433", ServiceConfig::default()).unwrap();
/// eprintln!("listening on {}", server.local_addr().unwrap());
/// server.run().unwrap(); // blocks until a client sends `shutdown`
/// ```
pub struct Server {
    service: Arc<Service>,
    listener: TcpListener,
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts the
    /// service worker pool (opening and recovering the report store when
    /// one is configured). The listener does not accept until
    /// [`Server::run`].
    pub fn bind(addr: impl ToSocketAddrs, config: ServiceConfig) -> io::Result<Server> {
        Self::attach(addr, Service::start(config)?)
    }

    /// Binds `addr` in front of an already-started service. Lets callers
    /// (like the `serve` binary) distinguish a store-open failure from a
    /// bind failure.
    pub fn attach(addr: impl ToSocketAddrs, service: Arc<Service>) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        Ok(Server { service, listener })
    }

    /// The bound address (useful with ephemeral ports).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A handle to the shared service, e.g. to call
    /// [`Service::shutdown`] programmatically or read statistics.
    pub fn service(&self) -> Arc<Service> {
        Arc::clone(&self.service)
    }

    /// Accepts connections until shutdown, then drains: stops accepting,
    /// joins every connection thread (each finishes its in-flight frame),
    /// and joins the worker pool (which answers everything still queued).
    pub fn run(self) -> io::Result<()> {
        self.listener.set_nonblocking(true)?;
        let mut connections: Vec<std::thread::JoinHandle<()>> = Vec::new();
        while !self.service.is_shutdown() {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    self.service.record_connection();
                    let service = Arc::clone(&self.service);
                    connections.push(std::thread::spawn(move || {
                        let _ = handle_connection(stream, service);
                    }));
                }
                Err(e) if is_timeout(&e) => {
                    std::thread::sleep(Duration::from_millis(5));
                    // Reap finished connection threads so long-lived
                    // servers do not accumulate handles.
                    connections.retain(|h| !h.is_finished());
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        for h in connections {
            let _ = h.join();
        }
        self.service.join_workers();
        Ok(())
    }
}

/// Serves the protocol over stdin/stdout (pipe mode) until EOF or a
/// `shutdown` request, then drains the worker pool. Counts as one
/// connection in the statistics.
pub fn run_stdio(service: Arc<Service>) -> io::Result<()> {
    service.record_connection();
    let stdin = io::stdin();
    let stdout = io::stdout();
    let mut writer = BufWriter::new(stdout.lock());
    let mut frames = FrameReader::new(stdin.lock(), service.config().max_frame_bytes);
    loop {
        match frames.next_frame()? {
            Some(Frame::Complete) => {
                let resp = service.handle_frame(frames.frame());
                writer.write_all(resp.line.as_bytes())?;
                writer.write_all(b"\n")?;
                writer.flush()?;
                if resp.shutdown {
                    break;
                }
            }
            Some(Frame::Oversized) => {
                let line = service.oversized_frame_response();
                writer.write_all(line.as_bytes())?;
                writer.write_all(b"\n")?;
                writer.flush()?;
            }
            None => break,
        }
    }
    service.shutdown();
    service.join_workers();
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_reader_splits_lines() {
        let data: &[u8] = b"alpha\nbeta\n\ngamma"; // incl. empty + unterminated
        let mut fr = FrameReader::new(data, 64);
        assert_eq!(fr.next_frame().unwrap(), Some(Frame::Complete));
        assert_eq!(fr.frame(), b"alpha");
        assert_eq!(fr.next_frame().unwrap(), Some(Frame::Complete));
        assert_eq!(fr.frame(), b"beta");
        assert_eq!(fr.next_frame().unwrap(), Some(Frame::Complete));
        assert_eq!(fr.frame(), b"");
        assert_eq!(fr.next_frame().unwrap(), Some(Frame::Complete));
        assert_eq!(fr.frame(), b"gamma");
        assert_eq!(fr.next_frame().unwrap(), None);
    }

    #[test]
    fn frame_reader_discards_oversized_and_resyncs() {
        let mut data = vec![b'x'; 1000];
        data.push(b'\n');
        data.extend_from_slice(b"ok\n");
        let mut fr = FrameReader::new(&data[..], 16);
        assert_eq!(fr.next_frame().unwrap(), Some(Frame::Oversized));
        assert_eq!(fr.next_frame().unwrap(), Some(Frame::Complete));
        assert_eq!(fr.frame(), b"ok");
        assert_eq!(fr.next_frame().unwrap(), None);
    }

    #[test]
    fn frame_reader_bounds_memory_on_endless_line() {
        // 1 MiB of newline-free bytes against a 16-byte cap: the buffer
        // never grows past one BufRead chunk.
        let data = vec![b'y'; 1 << 20];
        let mut fr = FrameReader::new(&data[..], 16);
        assert_eq!(fr.next_frame().unwrap(), Some(Frame::Oversized));
        assert!(fr.buf.capacity() <= 64 * 1024);
        assert_eq!(fr.next_frame().unwrap(), None);
    }

    #[test]
    fn frame_reader_exact_boundary() {
        let mut fr = FrameReader::new(&b"1234\n12345\n"[..], 4);
        assert_eq!(fr.next_frame().unwrap(), Some(Frame::Complete));
        assert_eq!(fr.frame(), b"1234");
        assert_eq!(fr.next_frame().unwrap(), Some(Frame::Oversized));
        assert_eq!(fr.next_frame().unwrap(), None);
    }
}
