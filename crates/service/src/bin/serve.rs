//! The `serve` binary: the analysis service on TCP or stdio.
//!
//! ```text
//! serve [--listen ADDR] [--stdio] [--io event|threads] [--proto auto|json]
//!       [--workers N] [--engine-workers N]
//!       [--queue N] [--timeout-ms N] [--idle-timeout-ms N] [--max-frame BYTES]
//!       [--cache-capacity N] [--distance-bound N]
//!       [--session-capacity N] [--session-ttl-ms N]
//!       [--store DIR] [--store-segment-bytes N] [--store-queue N]
//!       [--store-breaker-threshold N] [--store-breaker-cooldown-ms N]
//!       [--slow-log MICROS] [--fault-plan SPEC]
//!       [--node-id ID] [--replicate-to ADDR] [--replicate-interval-ms N]
//!       [--router NODES] [--probe-interval-ms N] [--vnodes N]
//! ```
//!
//! Cluster mode: `--router NODES` (comma-separated `addr` or `id=addr`
//! entries) turns this process into the coordinator — it owns no engine
//! or store, consistent-hashes each analyze's canonical fingerprint
//! across the nodes, fails over to a shard's designated replica, and
//! merges `stats`/`metrics` cluster-wide. On a node, `--node-id` labels
//! every Prometheus series with `node="ID"`, and `--replicate-to ADDR`
//! (requires `--store`) ships the segment log to the named peer so it can
//! serve this node's reports warm after a failover.
//!
//! `--io event` (the default on unix) runs one `poll(2)` event loop
//! multiplexing every connection onto the worker pool; `--io threads`
//! keeps the thread-per-connection listener. `--proto auto` (default)
//! sniffs each connection's first bytes — `AFWIRE01` magic selects the
//! binary protocol, anything else newline-JSON; `--proto json` pins the
//! legacy JSON protocol. The threaded listener is JSON-only.
//!
//! Defaults: listen on 127.0.0.1:7433, one service worker and one engine
//! worker per hardware thread, 256-deep queue, 5000 ms deadline, 1 MiB
//! frames. On the event loop, `--idle-timeout-ms` (default 60000; 0
//! disables) reaps connections that make no read progress and are owed
//! nothing — the slow-loris guard. Clients may send a `deadline_ms`
//! budget (JSON field or binary frame prefix); the effective deadline is
//! the smaller of that budget and `--timeout-ms`, and expired or
//! abandoned jobs are shed mid-analysis instead of running to
//! completion. With `--stdio` the protocol runs over stdin/stdout instead
//! (one request per line; diagnostics go to stderr). With `--store DIR`
//! reports persist to a crash-safe segment log in `DIR`: the cache is
//! warm-started from it on boot and fresh results are appended
//! asynchronously, so a restarted server answers previously seen loops
//! without re-analyzing them. Interactive sessions (the `open`/`delta`
//! verbs) are bounded by `--session-capacity` (default 64, LRU evicted)
//! and `--session-ttl-ms` (default 600000; 0 disables the TTL). With `--slow-log MICROS` every request at
//! or over the threshold logs one structured line to stderr with its
//! trace id and per-phase span breakdown (`--slow-log 0` logs every
//! request). The `metrics` verb returns every registered metric as JSON
//! plus a Prometheus text exposition.
//!
//! Fault tolerance: after `--store-breaker-threshold` consecutive failed
//! appends (default 8) the store's write path trips a circuit breaker and
//! the cache degrades to memory-only; a half-open probe retries every
//! `--store-breaker-cooldown-ms` (default 5000). `--fault-plan SPEC`
//! installs a seeded, deterministic fault plan for chaos drills — e.g.
//! `seed=42,solver_panic=10%,store_io=5%,store_io_first=20,latency_us=500,worker_exit=1%`
//! injects solver panics, store I/O errors and worker crashes that the
//! isolation/supervision/breaker machinery must contain. Never set it in
//! production; without the flag every seam is a single branch.

use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use arrayflow_cluster::Topology;
use arrayflow_resilience::FaultPlan;
use arrayflow_service::{run_stdio, RouterConfig, RouterServer, Server, Service, ServiceConfig};
use arrayflow_store::StoreConfig;

#[derive(Clone, Copy, PartialEq, Eq)]
enum IoModel {
    Event,
    Threads,
}

struct Args {
    listen: String,
    stdio: bool,
    io: IoModel,
    proto_json_only: bool,
    config: ServiceConfig,
    router_nodes: Option<String>,
    probe_interval: Duration,
    vnodes: usize,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        listen: "127.0.0.1:7433".to_string(),
        stdio: false,
        io: if cfg!(unix) {
            IoModel::Event
        } else {
            IoModel::Threads
        },
        proto_json_only: false,
        config: ServiceConfig::default(),
        router_nodes: None,
        probe_interval: Duration::from_millis(500),
        vnodes: 0,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--listen" => args.listen = value("--listen")?,
            "--stdio" => args.stdio = true,
            "--io" => {
                args.io = match value("--io")?.as_str() {
                    "event" => {
                        if !cfg!(unix) {
                            return Err("--io event requires unix (poll)".to_string());
                        }
                        IoModel::Event
                    }
                    "threads" => IoModel::Threads,
                    other => return Err(format!("unknown io model `{other}` (event|threads)")),
                }
            }
            "--proto" => {
                args.proto_json_only = match value("--proto")?.as_str() {
                    "auto" => false,
                    "json" => true,
                    other => return Err(format!("unknown protocol `{other}` (auto|json)")),
                }
            }
            "--workers" => args.config.workers = parse(&value("--workers")?)?,
            "--engine-workers" => args.config.engine.workers = parse(&value("--engine-workers")?)?,
            "--queue" => args.config.queue_capacity = parse(&value("--queue")?)?,
            "--timeout-ms" => {
                args.config.request_timeout = Duration::from_millis(parse(&value("--timeout-ms")?)?)
            }
            "--idle-timeout-ms" => {
                args.config.idle_timeout =
                    Duration::from_millis(parse(&value("--idle-timeout-ms")?)?)
            }
            "--max-frame" => args.config.max_frame_bytes = parse(&value("--max-frame")?)?,
            "--cache-capacity" => {
                args.config.engine.cache_capacity = parse(&value("--cache-capacity")?)?
            }
            "--distance-bound" => {
                args.config.engine.dep_max_distance = parse(&value("--distance-bound")?)?
            }
            "--session-capacity" => {
                args.config.engine.session_capacity = parse(&value("--session-capacity")?)?
            }
            "--session-ttl-ms" => {
                args.config.engine.session_ttl_ms = parse(&value("--session-ttl-ms")?)?
            }
            "--store" => {
                let dir = value("--store")?;
                args.config.store = Some(match args.config.store.take() {
                    Some(mut sc) => {
                        sc.dir = dir.into();
                        sc
                    }
                    None => StoreConfig::at(dir),
                });
            }
            "--store-segment-bytes" => {
                let bytes = parse(&value("--store-segment-bytes")?)?;
                store_config(&mut args.config)?.segment_bytes = bytes;
            }
            "--store-queue" => {
                let depth = parse(&value("--store-queue")?)?;
                store_config(&mut args.config)?.writer_queue = depth;
            }
            "--store-breaker-threshold" => {
                let n = parse(&value("--store-breaker-threshold")?)?;
                store_config(&mut args.config)?.breaker_threshold = n;
            }
            "--store-breaker-cooldown-ms" => {
                let ms: u64 = parse(&value("--store-breaker-cooldown-ms")?)?;
                store_config(&mut args.config)?.breaker_cooldown = Duration::from_millis(ms);
            }
            "--slow-log" => args.config.slow_log_micros = Some(parse(&value("--slow-log")?)?),
            "--node-id" => args.config.node_id = Some(value("--node-id")?),
            "--replicate-to" => args.config.replicate_to = Some(value("--replicate-to")?),
            "--replicate-interval-ms" => {
                args.config.replicate_interval =
                    Duration::from_millis(parse(&value("--replicate-interval-ms")?)?)
            }
            "--router" => args.router_nodes = Some(value("--router")?),
            "--probe-interval-ms" => {
                args.probe_interval = Duration::from_millis(parse(&value("--probe-interval-ms")?)?)
            }
            "--vnodes" => args.vnodes = parse(&value("--vnodes")?)?,
            "--fault-plan" => {
                let spec = value("--fault-plan")?;
                let plan = FaultPlan::parse(&spec)
                    .map_err(|e| format!("invalid --fault-plan `{spec}`: {e}"))?;
                eprintln!("serve: fault-plan active: {plan}");
                args.config.faults = Some(Arc::new(plan));
            }
            "--help" | "-h" => {
                println!(
                    "serve [--listen ADDR] [--stdio] [--io event|threads] [--proto auto|json] \
                     [--workers N] [--engine-workers N] \
                     [--queue N] [--timeout-ms N] [--idle-timeout-ms N] [--max-frame BYTES] \
                     [--cache-capacity N] \
                     [--distance-bound N] [--session-capacity N] [--session-ttl-ms N] \
                     [--store DIR] [--store-segment-bytes N] \
                     [--store-queue N] [--store-breaker-threshold N] \
                     [--store-breaker-cooldown-ms N] [--slow-log MICROS] [--fault-plan SPEC] \
                     [--node-id ID] [--replicate-to ADDR] [--replicate-interval-ms N] \
                     [--router NODES] [--probe-interval-ms N] [--vnodes N]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag `{other}` (try --help)")),
        }
    }
    Ok(args)
}

fn parse<T: std::str::FromStr>(s: &str) -> Result<T, String> {
    s.parse().map_err(|_| format!("invalid value `{s}`"))
}

fn store_config(config: &mut ServiceConfig) -> Result<&mut StoreConfig, String> {
    config
        .store
        .as_mut()
        .ok_or_else(|| "pass --store DIR before store tuning flags".to_string())
}

/// Binds and runs the selected listener. The outer `Err` is a bind
/// failure; the inner result is the server's run outcome.
fn run_listener(
    args: &Args,
    service: std::sync::Arc<Service>,
) -> std::io::Result<std::io::Result<()>> {
    match args.io {
        #[cfg(unix)]
        IoModel::Event => {
            use arrayflow_service::{EventServer, ProtoMode};
            let server = EventServer::bind(args.listen.as_str(), service)?;
            announce(&server.local_addr(), &args.listen, "event loop");
            let mode = if args.proto_json_only {
                ProtoMode::Json
            } else {
                ProtoMode::Auto
            };
            Ok(server.run(mode))
        }
        #[cfg(not(unix))]
        IoModel::Event => unreachable!("--io event rejected at parse time off unix"),
        IoModel::Threads => {
            if !args.proto_json_only {
                eprintln!("serve: note: the threaded listener speaks JSON only");
            }
            let server = Server::attach(args.listen.as_str(), service)?;
            announce(&server.local_addr(), &args.listen, "thread per connection");
            Ok(server.run())
        }
    }
}

// The `listening on ADDR` line is parsed by tooling (tests spawn serve
// on port 0 and scrape the real address), so the io model gets its own
// line instead of a suffix.
fn announce(addr: &std::io::Result<std::net::SocketAddr>, fallback: &str, model: &str) {
    eprintln!("serve: io model: {model}");
    match addr {
        Ok(addr) => eprintln!("serve: listening on {addr}"),
        Err(_) => eprintln!("serve: listening on {fallback}"),
    }
}

/// Router mode: no engine, no store — bind, announce, route.
fn run_router(args: &Args) -> ExitCode {
    let spec = args.router_nodes.as_deref().expect("router mode checked");
    let topology = match Topology::parse(spec, args.vnodes) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("serve: invalid --router `{spec}`: {e}");
            return ExitCode::from(2);
        }
    };
    eprintln!(
        "serve: router over {} node(s): {}",
        topology.len(),
        topology
            .nodes()
            .iter()
            .map(|n| n.id.as_str())
            .collect::<Vec<_>>()
            .join(", ")
    );
    let mut config = RouterConfig::new(topology);
    config.probe_interval = args.probe_interval;
    config.request_timeout = args.config.request_timeout.max(Duration::from_secs(1));
    let server = match RouterServer::bind(args.listen.as_str(), config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("serve: error: cannot bind {}: {e}", args.listen);
            return ExitCode::FAILURE;
        }
    };
    announce(&server.local_addr(), &args.listen, "router");
    match server.run() {
        Ok(()) => {
            eprintln!("serve: drained and stopped");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("serve: {e}");
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("serve: {e}");
            return ExitCode::from(2);
        }
    };
    if args.router_nodes.is_some() {
        if args.stdio || args.config.store.is_some() || args.config.replicate_to.is_some() {
            eprintln!("serve: --router excludes --stdio, --store and --replicate-to");
            return ExitCode::from(2);
        }
        return run_router(&args);
    }
    let has_store = args.config.store.is_some();
    let report_store = |svc: &Service| {
        if has_store {
            eprintln!("serve: store warm-started {} report(s)", svc.warm_loaded());
        }
    };
    // Starting the service opens (and crash-recovers) the report store;
    // failure is a structured one-line diagnostic and a nonzero exit,
    // never a panic.
    let service = match Service::start(args.config.clone()) {
        Ok(service) => service,
        Err(e) => {
            eprintln!("serve: error: cannot open report store: {e}");
            return ExitCode::FAILURE;
        }
    };
    report_store(&service);
    if let Some(addr) = &args.config.replicate_to {
        eprintln!("serve: replicating store to {addr}");
    }
    let result = if args.stdio {
        eprintln!("serve: stdio mode (one JSON request per line)");
        run_stdio(service)
    } else {
        match run_listener(&args, service) {
            Ok(result) => result,
            Err(e) => {
                eprintln!("serve: error: cannot bind {}: {e}", args.listen);
                return ExitCode::FAILURE;
            }
        }
    };
    match result {
        Ok(()) => {
            eprintln!("serve: drained and stopped");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("serve: {e}");
            ExitCode::FAILURE
        }
    }
}
