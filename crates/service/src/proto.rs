//! The wire protocol: newline-framed JSON requests and responses.
//!
//! One request per line, one response line per request, in order:
//!
//! ```text
//! → {"id": 1, "verb": "analyze", "program": "do i = 1, 9 A[i+2] := A[i]; end"}
//! ← {"id": 1, "ok": true, "result": {"loops": [...], "stats": {...}}}
//! → {"id": 2, "verb": "nope"}
//! ← {"id": 2, "ok": false, "error": {"kind": "protocol", "message": "unknown verb `nope`"}}
//! ```
//!
//! Requests carry `id` (any JSON value, echoed back verbatim so clients
//! can pipeline), `verb` (`analyze` | `custom` | `open` | `delta` |
//! `stats` | `metrics` | `ping` | `health` | `compact` | `shutdown`), and
//! for `analyze`/`open`: `program` (DSL text), optional `problems` (array
//! of instance names; default all) and optional `distance_bound` (default
//! from the server config). `custom` carries `program` plus a `spec`
//! object naming a user-defined (G, K) problem:
//!
//! ```text
//! {"verb": "custom", "program": "...",
//!  "spec": {"gen": ["uses"], "kill": ["defs"],
//!           "direction": "backward", "mode": "may"}}
//! ```
//!
//! `delta` carries `session` (the id `open`
//! returned), `fingerprint` (the session's current base fingerprint, hex —
//! the cluster router's shard key), `stmt` (the statement id to replace)
//! and `text` (replacement source). Errors come back structured, never as
//! a dropped connection: [`ErrorKind`] is the taxonomy.

use std::fmt;

use arrayflow_engine::{
    AnalysisReport, BatchResult, CustomSpec, DeltaReport, Direction, Mode, ProblemSet,
};

use crate::json::Json;

/// What a request asks the service to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verb {
    /// Parse `program` and analyze every loop.
    Analyze,
    /// Parse `program` and solve a user-specified (G, K) problem over
    /// every loop: the request's `spec` object picks which site roles
    /// generate and kill, the direction, and the confluence mode.
    Custom,
    /// Open an incremental analysis session over `program`: full
    /// analysis now, converged lattice state retained for `delta`.
    Open,
    /// Apply one statement replacement to an open session and
    /// re-converge from the cached fixed point.
    Delta,
    /// Report engine + service statistics.
    Stats,
    /// Report every registered metric: structured JSON plus the
    /// Prometheus text exposition.
    Metrics,
    /// Liveness check; echoes `"pong"`.
    Ping,
    /// Node health + identity: `{"status": "ok", "node": ..., "shutting_down": ...}`.
    /// The cluster router's failover probe.
    Health,
    /// Compact the persistent report store (requires `--store`).
    Compact,
    /// Begin graceful shutdown (drain in-flight work, then exit).
    Shutdown,
}

impl Verb {
    fn parse(s: &str) -> Option<Verb> {
        match s {
            "analyze" => Some(Verb::Analyze),
            "custom" => Some(Verb::Custom),
            "open" => Some(Verb::Open),
            "delta" => Some(Verb::Delta),
            "stats" => Some(Verb::Stats),
            "metrics" => Some(Verb::Metrics),
            "ping" => Some(Verb::Ping),
            "health" => Some(Verb::Health),
            "compact" => Some(Verb::Compact),
            "shutdown" => Some(Verb::Shutdown),
            _ => None,
        }
    }
}

/// The failure classes a response can carry. Everything the server
/// can get wrong maps onto exactly one of these, so clients can switch on
/// `error.kind` without string-matching messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// The DSL program did not parse (invalid UTF-8 included).
    Parse,
    /// The program parsed but a loop could not be analyzed.
    Analysis,
    /// The request missed its deadline (queued too long or analysis ran
    /// past the per-request budget).
    Timeout,
    /// The bounded in-flight queue was full (or the service is shutting
    /// down); back off and retry.
    Overloaded,
    /// The frame itself was unusable: malformed JSON, oversized frame,
    /// unknown verb, missing/mistyped fields.
    Protocol,
    /// The session named by a `delta` no longer exists on the node that
    /// answered — typically because the cluster failed the request over to
    /// a replica after the primary (which held the in-memory session) went
    /// down. Unlike a plain `analysis` error, this one is retryable at the
    /// protocol level: re-`open` the program and replay the edits.
    SessionLost,
    /// The request was abandoned before its work completed: either the
    /// owning connection dropped (nobody is waiting for the answer) or
    /// the client's deadline budget expired mid-analysis. Not retryable —
    /// a fresh request with a fresh budget is the only sensible follow-up.
    Cancelled,
}

impl ErrorKind {
    /// The wire name of this kind.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorKind::Parse => "parse",
            ErrorKind::Analysis => "analysis",
            ErrorKind::Timeout => "timeout",
            ErrorKind::Overloaded => "overloaded",
            ErrorKind::Protocol => "protocol",
            ErrorKind::SessionLost => "session_lost",
            ErrorKind::Cancelled => "cancelled",
        }
    }

    /// Inverse of [`as_str`](ErrorKind::as_str): decodes the wire name a
    /// response carries in `error.kind`. `None` for unknown names, so a
    /// newer server's kinds degrade gracefully at older clients.
    pub fn from_wire(name: &str) -> Option<ErrorKind> {
        match name {
            "parse" => Some(ErrorKind::Parse),
            "analysis" => Some(ErrorKind::Analysis),
            "timeout" => Some(ErrorKind::Timeout),
            "overloaded" => Some(ErrorKind::Overloaded),
            "protocol" => Some(ErrorKind::Protocol),
            "session_lost" => Some(ErrorKind::SessionLost),
            "cancelled" => Some(ErrorKind::Cancelled),
            _ => None,
        }
    }
}

impl fmt::Display for ErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A structured service error: taxonomy kind plus human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceError {
    /// Which failure class.
    pub kind: ErrorKind,
    /// Details for humans; not part of the stable protocol.
    pub message: String,
}

impl ServiceError {
    /// Convenience constructor.
    pub fn new(kind: ErrorKind, message: impl Into<String>) -> Self {
        Self {
            kind,
            message: message.into(),
        }
    }
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.kind, self.message)
    }
}

impl std::error::Error for ServiceError {}

/// A decoded request.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Client-chosen correlation id, echoed back verbatim (any JSON value;
    /// `null` when absent).
    pub id: Json,
    /// The operation.
    pub verb: Verb,
    /// DSL program text (required for `analyze` and `open`).
    pub program: Option<String>,
    /// Problem selection (default: all four instances).
    pub problems: Option<ProblemSet>,
    /// User-specified (G, K) problem spec (required for `custom`).
    pub spec: Option<CustomSpec>,
    /// Dependence distance bound (default: server config).
    pub distance_bound: Option<u64>,
    /// Session id from a prior `open` (required for `delta`).
    pub session: Option<u64>,
    /// The session's base fingerprint as returned by `open` (required for
    /// `delta`): 32 hex characters, exactly as responses render it. The
    /// cluster router hashes it to pin the whole session to one shard; a
    /// single node ignores it.
    pub fingerprint: Option<[u8; 16]>,
    /// Statement id to replace (required for `delta`).
    pub stmt: Option<u64>,
    /// Replacement statement source (required for `delta`).
    pub text: Option<String>,
    /// Client deadline budget in milliseconds, optional on any verb and
    /// ignored by servers predating it (unknown JSON fields are skipped).
    /// Clamped at decode to [`arrayflow_wire::proto::MAX_DEADLINE_MS`];
    /// the server then enforces `min(budget, its own cap)`. Zero means
    /// "already expired" — the request is shed before any work.
    pub deadline_ms: Option<u64>,
}

impl Request {
    /// Decodes a request from one JSON frame. The returned error pairs the
    /// [`ServiceError`] with whatever `id` could be recovered, so the
    /// response still correlates.
    pub fn decode(frame: &[u8]) -> Result<Request, (Json, ServiceError)> {
        let v = Json::parse(frame).map_err(|e| {
            (
                Json::Null,
                ServiceError::new(ErrorKind::Protocol, e.to_string()),
            )
        })?;
        let id = v.get("id").cloned().unwrap_or(Json::Null);
        let fail = |msg: String| (id.clone(), ServiceError::new(ErrorKind::Protocol, msg));

        if !matches!(v, Json::Obj(_)) {
            return Err(fail("request must be a JSON object".into()));
        }
        let verb_str = v
            .get("verb")
            .and_then(Json::as_str)
            .ok_or_else(|| fail("missing or non-string `verb`".into()))?;
        let verb =
            Verb::parse(verb_str).ok_or_else(|| fail(format!("unknown verb `{verb_str}`")))?;

        let program = match v.get("program") {
            None | Some(Json::Null) => None,
            Some(Json::Str(s)) => Some(s.clone()),
            Some(_) => return Err(fail("`program` must be a string".into())),
        };
        if verb == Verb::Analyze && program.is_none() {
            return Err(fail("`analyze` requires a `program` string".into()));
        }
        if verb == Verb::Custom && program.is_none() {
            return Err(fail("`custom` requires a `program` string".into()));
        }
        if verb == Verb::Open && program.is_none() {
            return Err(fail("`open` requires a `program` string".into()));
        }

        let problems = match v.get("problems") {
            None | Some(Json::Null) => None,
            Some(Json::Arr(items)) => {
                let mut set = ProblemSet {
                    reaching: false,
                    available: false,
                    busy: false,
                    reaching_refs: false,
                };
                for item in items {
                    match item.as_str() {
                        Some("reaching") => set.reaching = true,
                        Some("available") => set.available = true,
                        Some("busy") => set.busy = true,
                        Some("reaching_refs") => set.reaching_refs = true,
                        Some(other) => return Err(fail(format!("unknown problem `{other}`"))),
                        None => return Err(fail("`problems` entries must be strings".into())),
                    }
                }
                Some(set)
            }
            Some(_) => return Err(fail("`problems` must be an array of names".into())),
        };

        let distance_bound =
            match v.get("distance_bound") {
                None | Some(Json::Null) => None,
                Some(n) => Some(n.as_u64().ok_or_else(|| {
                    fail("`distance_bound` must be a non-negative integer".into())
                })?),
            };

        let spec = match v.get("spec") {
            None | Some(Json::Null) => None,
            Some(s @ Json::Obj(_)) => Some(parse_custom_spec(s).map_err(&fail)?),
            Some(_) => return Err(fail("`spec` must be an object".into())),
        };
        if verb == Verb::Custom {
            if spec.is_none() {
                return Err(fail("`custom` requires a `spec` object".into()));
            }
            // Custom problems come from untrusted callers experimenting
            // with the framework; bound the distance lattice they can ask
            // for instead of letting a huge bound grind the solver.
            if let Some(d) = distance_bound {
                if d > CustomSpec::MAX_DISTANCE_BOUND {
                    return Err(fail(format!(
                        "`distance_bound` must be at most {}",
                        CustomSpec::MAX_DISTANCE_BOUND
                    )));
                }
            }
        }

        let uint_field = |name: &str| -> Result<Option<u64>, (Json, ServiceError)> {
            match v.get(name) {
                None | Some(Json::Null) => Ok(None),
                Some(n) => Ok(Some(n.as_u64().ok_or_else(|| {
                    fail(format!("`{name}` must be a non-negative integer"))
                })?)),
            }
        };
        let session = uint_field("session")?;
        let stmt = uint_field("stmt")?;
        let deadline_ms =
            uint_field("deadline_ms")?.map(|ms| ms.min(arrayflow_wire::proto::MAX_DEADLINE_MS));
        let text = match v.get("text") {
            None | Some(Json::Null) => None,
            Some(Json::Str(s)) => Some(s.clone()),
            Some(_) => return Err(fail("`text` must be a string".into())),
        };
        let fingerprint = match v.get("fingerprint") {
            None | Some(Json::Null) => None,
            Some(Json::Str(s)) => Some(
                parse_fingerprint_hex(s)
                    .ok_or_else(|| fail("`fingerprint` must be 32 hex characters".into()))?,
            ),
            Some(_) => return Err(fail("`fingerprint` must be a hex string".into())),
        };
        if verb == Verb::Delta {
            for (field, present) in [
                ("session", session.is_some()),
                ("fingerprint", fingerprint.is_some()),
                ("stmt", stmt.is_some()),
                ("text", text.is_some()),
            ] {
                if !present {
                    return Err(fail(format!("`delta` requires a `{field}` field")));
                }
            }
        }

        Ok(Request {
            id,
            verb,
            program,
            problems,
            spec,
            distance_bound,
            session,
            fingerprint,
            stmt,
            text,
            deadline_ms,
        })
    }
}

/// Parses and validates a `spec` object into a [`CustomSpec`]. Rejects
/// unknown members, unknown site roles, oversized role arrays, empty G
/// (a problem that generates nothing is always a client mistake) and
/// mistyped `direction`/`mode` — with a message naming the offending
/// field, never a panic.
fn parse_custom_spec(v: &Json) -> Result<CustomSpec, String> {
    if let Json::Obj(members) = v {
        for (k, _) in members {
            if !matches!(k.as_str(), "gen" | "kill" | "direction" | "mode") {
                return Err(format!(
                    "unknown `spec` member `{k}` (expected gen, kill, direction, mode)"
                ));
            }
        }
    }
    let roles = |name: &str| -> Result<(bool, bool), String> {
        match v.get(name) {
            None | Some(Json::Null) => Ok((false, false)),
            Some(Json::Arr(items)) => {
                if items.len() > 2 {
                    return Err(format!("`spec.{name}` lists more than the two site roles"));
                }
                let (mut defs, mut uses) = (false, false);
                for item in items {
                    match item.as_str() {
                        Some("defs") => defs = true,
                        Some("uses") => uses = true,
                        Some(other) => {
                            return Err(format!(
                                "unknown site role `{other}` in `spec.{name}` \
                                 (expected \"defs\" or \"uses\")"
                            ))
                        }
                        None => return Err(format!("`spec.{name}` entries must be strings")),
                    }
                }
                Ok((defs, uses))
            }
            Some(_) => Err(format!("`spec.{name}` must be an array of site roles")),
        }
    };
    let (gen_defs, gen_uses) = roles("gen")?;
    let (kill_defs, kill_uses) = roles("kill")?;
    if !gen_defs && !gen_uses {
        return Err("`spec.gen` must name at least one site role".into());
    }
    let direction = match v.get("direction").map(Json::as_str) {
        None | Some(Some("forward")) => Direction::Forward,
        Some(Some("backward")) => Direction::Backward,
        _ => return Err("`spec.direction` must be \"forward\" or \"backward\"".into()),
    };
    let mode = match v.get("mode").map(Json::as_str) {
        None | Some(Some("must")) => Mode::Must,
        Some(Some("may")) => Mode::May,
        _ => return Err("`spec.mode` must be \"must\" or \"may\"".into()),
    };
    Ok(CustomSpec {
        gen_defs,
        gen_uses,
        kill_defs,
        kill_uses,
        direction,
        mode,
    })
}

/// Parses the 32-hex-char fingerprint rendering
/// ([`arrayflow_ir::Fingerprint`]'s `Display`) back to its wire bytes
/// (little-endian `u128`, matching the binary protocol's layout).
pub fn parse_fingerprint_hex(s: &str) -> Option<[u8; 16]> {
    if s.len() != 32 || !s.bytes().all(|b| b.is_ascii_hexdigit()) {
        return None;
    }
    let value = u128::from_str_radix(s, 16).ok()?;
    Some(value.to_le_bytes())
}

/// Encodes a success response line (without trailing newline).
pub fn encode_ok(id: &Json, result: Json) -> String {
    Json::Obj(vec![
        ("id".into(), id.clone()),
        ("ok".into(), Json::Bool(true)),
        ("result".into(), result),
    ])
    .to_string()
}

/// Encodes an error response line (without trailing newline).
pub fn encode_err(id: &Json, err: &ServiceError) -> String {
    Json::Obj(vec![
        ("id".into(), id.clone()),
        ("ok".into(), Json::Bool(false)),
        (
            "error".into(),
            Json::Obj(vec![
                ("kind".into(), Json::Str(err.kind.as_str().into())),
                ("message".into(), Json::Str(err.message.clone())),
            ]),
        ),
    ])
    .to_string()
}

/// Renders one [`BatchResult`] as the `analyze` result object. The
/// per-loop `report` strings are exactly
/// [`arrayflow_engine::AnalysisReport::render`] — byte-identical to what a
/// direct in-process `Engine` call produces, which the integration tests
/// assert.
pub fn analyze_result_json(r: &BatchResult) -> Json {
    let loops = r
        .loops
        .iter()
        .map(|l| {
            Json::Obj(vec![
                ("fingerprint".into(), Json::Str(l.fingerprint.to_string())),
                ("report".into(), Json::Str(l.report.render())),
            ])
        })
        .collect();
    let mut members = vec![("loops".into(), Json::Arr(loops))];
    members.push((
        "error".into(),
        match &r.error {
            Some(e) => Json::Str(e.to_string()),
            None => Json::Null,
        },
    ));
    members.push((
        "stats".into(),
        Json::Obj(vec![
            ("cache_hits".into(), Json::Num(r.stats.cache_hits as f64)),
            (
                "cache_misses".into(),
                Json::Num(r.stats.cache_misses as f64),
            ),
            (
                "solver_passes".into(),
                Json::Num(r.stats.solver_passes as f64),
            ),
            ("node_visits".into(), Json::Num(r.stats.node_visits as f64)),
        ]),
    ));
    Json::Obj(members)
}

/// Renders an `open` result: the new session id, the loop's canonical
/// fingerprint (the `delta` routing key), and the rendered initial report.
pub fn session_result_json(session: u64, report: &AnalysisReport) -> Json {
    Json::Obj(vec![
        ("session".into(), Json::Num(session as f64)),
        (
            "fingerprint".into(),
            Json::Str(report.fingerprint.to_string()),
        ),
        ("report".into(), Json::Str(report.render())),
    ])
}

/// Renders a `delta` result: the session, the canonical fingerprint of
/// the loop *after* the edit (probe the fingerprint-first analyze path
/// with it), the re-analyzed report, and how the re-convergence went
/// (fast path vs full fallback, columns re-solved). Requests keep routing
/// by the fingerprint `open` returned — that is the session's shard key
/// for its whole lifetime.
pub fn delta_result_json(d: &DeltaReport) -> Json {
    Json::Obj(vec![
        ("session".into(), Json::Num(d.session as f64)),
        ("fingerprint".into(), Json::Str(d.fingerprint.to_string())),
        ("report".into(), Json::Str(d.report.render())),
        ("fallback".into(), Json::Bool(d.fallback)),
        ("dirty_columns".into(), Json::Num(d.dirty_columns as f64)),
        ("total_columns".into(), Json::Num(d.total_columns as f64)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decodes_minimal_analyze() {
        let r = Request::decode(br#"{"id": 3, "verb": "analyze", "program": "x := 1;"}"#).unwrap();
        assert_eq!(r.id, Json::Num(3.0));
        assert_eq!(r.verb, Verb::Analyze);
        assert_eq!(r.program.as_deref(), Some("x := 1;"));
        assert_eq!(r.problems, None);
        assert_eq!(r.distance_bound, None);
    }

    #[test]
    fn decodes_problem_selection() {
        let r = Request::decode(
            br#"{"verb": "analyze", "program": "x := 1;", "problems": ["available", "busy"], "distance_bound": 4}"#,
        )
        .unwrap();
        let p = r.problems.unwrap();
        assert!(!p.reaching && p.available && p.busy && !p.reaching_refs);
        assert_eq!(r.distance_bound, Some(4));
        assert_eq!(r.id, Json::Null);
    }

    #[test]
    fn rejects_bad_shapes_with_recovered_id() {
        let (id, e) = Request::decode(br#"{"id": "q7", "verb": "nope"}"#).unwrap_err();
        assert_eq!(id.as_str(), Some("q7"));
        assert_eq!(e.kind, ErrorKind::Protocol);
        assert!(e.message.contains("unknown verb"));

        let (_, e) = Request::decode(br#"{"id": 1, "verb": "analyze"}"#).unwrap_err();
        assert!(e.message.contains("requires a `program`"));

        let (id, e) = Request::decode(b"not json at all").unwrap_err();
        assert_eq!(id, Json::Null);
        assert_eq!(e.kind, ErrorKind::Protocol);
    }

    #[test]
    fn decodes_open_and_delta() {
        let r = Request::decode(br#"{"id": 1, "verb": "open", "program": "x := 1;"}"#).unwrap();
        assert_eq!(r.verb, Verb::Open);
        assert_eq!(r.program.as_deref(), Some("x := 1;"));

        let fp = "000102030405060708090a0b0c0d0e0f";
        let frame = format!(
            r#"{{"id": 2, "verb": "delta", "session": 7, "fingerprint": "{fp}", "stmt": 3, "text": "A[i] := 1;"}}"#
        );
        let r = Request::decode(frame.as_bytes()).unwrap();
        assert_eq!(r.verb, Verb::Delta);
        assert_eq!(r.session, Some(7));
        assert_eq!(r.stmt, Some(3));
        assert_eq!(r.text.as_deref(), Some("A[i] := 1;"));
        // Display renders the u128 big-endian-first as hex; wire bytes are
        // the little-endian u128 layout, so the round trip must agree with
        // Fingerprint's own rendering.
        let fp_bytes = r.fingerprint.unwrap();
        let rendered = arrayflow_ir::Fingerprint(u128::from_le_bytes(fp_bytes)).to_string();
        assert_eq!(rendered, fp);
    }

    #[test]
    fn rejects_incomplete_delta_and_bad_fingerprints() {
        let (_, e) = Request::decode(br#"{"verb": "delta", "session": 1}"#).unwrap_err();
        assert_eq!(e.kind, ErrorKind::Protocol);
        assert!(e.message.contains("requires a"), "{}", e.message);

        let (_, e) = Request::decode(br#"{"verb": "open"}"#).unwrap_err();
        assert!(e.message.contains("requires a `program`"), "{}", e.message);

        let (_, e) =
            Request::decode(br#"{"verb": "delta", "session": 1, "fingerprint": "xyz", "stmt": 0, "text": "x := 1;"}"#)
                .unwrap_err();
        assert!(e.message.contains("32 hex"), "{}", e.message);

        assert_eq!(parse_fingerprint_hex("0"), None);
        assert_eq!(parse_fingerprint_hex(&"f".repeat(32)), Some([0xff; 16]));
    }

    #[test]
    fn decodes_custom_spec() {
        let r = Request::decode(
            br#"{"id": 4, "verb": "custom", "program": "x := 1;",
                 "spec": {"gen": ["uses"], "kill": ["defs"],
                          "direction": "backward", "mode": "may"}}"#,
        )
        .unwrap();
        assert_eq!(r.verb, Verb::Custom);
        let spec = r.spec.unwrap();
        assert!(!spec.gen_defs && spec.gen_uses && spec.kill_defs && !spec.kill_uses);
        assert_eq!(spec.direction, Direction::Backward);
        assert_eq!(spec.mode, Mode::May);
        assert_eq!(spec.label(), "gu-kd-bwd-may");

        // direction/mode default to forward/must; kill may be absent.
        let r = Request::decode(
            br#"{"verb": "custom", "program": "x := 1;", "spec": {"gen": ["defs", "uses"]}}"#,
        )
        .unwrap();
        let spec = r.spec.unwrap();
        assert!(spec.gen_defs && spec.gen_uses && !spec.kill_defs && !spec.kill_uses);
        assert_eq!(spec.direction, Direction::Forward);
        assert_eq!(spec.mode, Mode::Must);
    }

    #[test]
    fn rejects_hostile_custom_specs() {
        let err = |frame: &[u8]| Request::decode(frame).unwrap_err().1;

        let e = err(br#"{"verb": "custom", "program": "x := 1;"}"#);
        assert_eq!(e.kind, ErrorKind::Protocol);
        assert!(e.message.contains("requires a `spec`"), "{}", e.message);

        let e = err(br#"{"verb": "custom", "spec": {"gen": ["defs"]}}"#);
        assert!(e.message.contains("requires a `program`"), "{}", e.message);

        // Empty G: contradictory (nothing generates).
        let e =
            err(br#"{"verb": "custom", "program": "x;", "spec": {"gen": [], "kill": ["defs"]}}"#);
        assert!(
            e.message.contains("at least one site role"),
            "{}",
            e.message
        );
        let e = err(br#"{"verb": "custom", "program": "x;", "spec": {"kill": ["defs"]}}"#);
        assert!(
            e.message.contains("at least one site role"),
            "{}",
            e.message
        );

        // Unknown roles, members, shapes.
        let e = err(br#"{"verb": "custom", "program": "x;", "spec": {"gen": ["stores"]}}"#);
        assert!(e.message.contains("unknown site role"), "{}", e.message);
        let e =
            err(br#"{"verb": "custom", "program": "x;", "spec": {"gen": ["defs"], "bogus": 1}}"#);
        assert!(e.message.contains("unknown `spec` member"), "{}", e.message);
        let e = err(br#"{"verb": "custom", "program": "x;", "spec": {"gen": "defs"}}"#);
        assert!(e.message.contains("array of site roles"), "{}", e.message);
        let e = err(br#"{"verb": "custom", "program": "x;", "spec": 7}"#);
        assert!(e.message.contains("must be an object"), "{}", e.message);

        // Oversized role array.
        let e =
            err(br#"{"verb": "custom", "program": "x;", "spec": {"gen": ["defs","defs","defs"]}}"#);
        assert!(e.message.contains("more than the two"), "{}", e.message);

        // Bad direction / mode.
        let e = err(
            br#"{"verb": "custom", "program": "x;", "spec": {"gen": ["defs"], "direction": "up"}}"#,
        );
        assert!(e.message.contains("forward"), "{}", e.message);
        let e =
            err(br#"{"verb": "custom", "program": "x;", "spec": {"gen": ["defs"], "mode": 3}}"#);
        assert!(e.message.contains("must"), "{}", e.message);

        // Distance bound beyond the custom-path ceiling.
        let frame = format!(
            r#"{{"verb": "custom", "program": "x;", "spec": {{"gen": ["defs"]}}, "distance_bound": {}}}"#,
            CustomSpec::MAX_DISTANCE_BOUND + 1
        );
        let e = err(frame.as_bytes());
        assert!(e.message.contains("at most"), "{}", e.message);
    }

    #[test]
    fn decodes_and_clamps_deadline_ms() {
        let r =
            Request::decode(br#"{"verb": "analyze", "program": "x := 1;", "deadline_ms": 250}"#)
                .unwrap();
        assert_eq!(r.deadline_ms, Some(250));

        // Absent or null: no budget.
        let r = Request::decode(br#"{"verb": "ping"}"#).unwrap();
        assert_eq!(r.deadline_ms, None);
        let r = Request::decode(br#"{"verb": "ping", "deadline_ms": null}"#).unwrap();
        assert_eq!(r.deadline_ms, None);

        // Zero is preserved (already expired), absurd values are clamped.
        let r = Request::decode(br#"{"verb": "ping", "deadline_ms": 0}"#).unwrap();
        assert_eq!(r.deadline_ms, Some(0));
        let r = Request::decode(br#"{"verb": "ping", "deadline_ms": 99999999999999}"#).unwrap();
        assert_eq!(r.deadline_ms, Some(arrayflow_wire::proto::MAX_DEADLINE_MS));

        // Mistyped budgets are protocol errors, not panics.
        for frame in [
            br#"{"verb": "ping", "deadline_ms": -5}"#.as_slice(),
            br#"{"verb": "ping", "deadline_ms": 1.5}"#.as_slice(),
            br#"{"verb": "ping", "deadline_ms": "soon"}"#.as_slice(),
        ] {
            let (_, e) = Request::decode(frame).unwrap_err();
            assert_eq!(e.kind, ErrorKind::Protocol);
            assert!(e.message.contains("deadline_ms"), "{}", e.message);
        }
    }

    #[test]
    fn cancelled_round_trips_on_the_wire() {
        assert_eq!(ErrorKind::Cancelled.as_str(), "cancelled");
        assert_eq!(
            ErrorKind::from_wire("cancelled"),
            Some(ErrorKind::Cancelled)
        );
    }

    #[test]
    fn session_lost_round_trips_on_the_wire() {
        assert_eq!(ErrorKind::SessionLost.as_str(), "session_lost");
        assert_eq!(
            ErrorKind::from_wire("session_lost"),
            Some(ErrorKind::SessionLost)
        );
        // Unknown kinds still degrade gracefully.
        assert_eq!(ErrorKind::from_wire("future_kind"), None);
    }

    #[test]
    fn encodes_responses() {
        let ok = encode_ok(&Json::Num(1.0), Json::Str("pong".into()));
        assert_eq!(ok, r#"{"id":1,"ok":true,"result":"pong"}"#);
        let err = encode_err(
            &Json::Null,
            &ServiceError::new(ErrorKind::Overloaded, "queue full"),
        );
        assert_eq!(
            err,
            r#"{"id":null,"ok":false,"error":{"kind":"overloaded","message":"queue full"}}"#
        );
    }
}
