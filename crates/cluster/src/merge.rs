//! Merging per-node Prometheus expositions into one document.
//!
//! Nodes stamp their own series with a `node` label
//! ([`arrayflow_obs::MetricsSnapshot::render_prometheus_with`] via
//! `serve --node-id`), so cross-node merging never needs to *add*
//! numbers — every series is already distinct. What the router must do
//! is structural: group families across documents, emit one
//! `# HELP`/`# TYPE` header per family (Prometheus rejects duplicate
//! headers), keep families name-sorted like the single-node render, and
//! defensively stamp `node="<id>"` onto any series a node forgot to
//! label.

use std::collections::BTreeMap;

/// Merges per-node exposition documents into one. `parts` pairs each
/// node id with the text it served for `metrics`; unlabeled series get
/// `node="<id>"` injected so the merged document never collides.
pub fn merge_expositions(parts: &[(&str, &str)]) -> String {
    struct Family {
        help: String,
        type_line: String,
        series: Vec<String>,
    }
    let mut families: BTreeMap<String, Family> = BTreeMap::new();
    for (node, text) in parts {
        for line in text.lines() {
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix("# HELP ") {
                let name = rest.split_whitespace().next().unwrap_or("").to_string();
                families.entry(name).or_insert_with(|| Family {
                    help: line.to_string(),
                    type_line: String::new(),
                    series: Vec::new(),
                });
            } else if let Some(rest) = line.strip_prefix("# TYPE ") {
                let name = rest.split_whitespace().next().unwrap_or("");
                if let Some(f) = families.get_mut(name) {
                    if f.type_line.is_empty() {
                        f.type_line = line.to_string();
                    }
                }
            } else if !line.starts_with('#') {
                let labeled = ensure_node_label(line, node);
                // Series name may carry a histogram suffix; find its
                // family by longest matching registered name.
                let series_name = line.split(['{', ' ']).next().unwrap_or("").to_string();
                let family = family_of(&families, &series_name);
                families
                    .entry(family)
                    .or_insert_with(|| Family {
                        help: String::new(),
                        type_line: String::new(),
                        series: Vec::new(),
                    })
                    .series
                    .push(labeled);
            }
        }
    }
    let mut out = String::new();
    for (_, f) in families {
        if !f.help.is_empty() {
            out.push_str(&f.help);
            out.push('\n');
        }
        if !f.type_line.is_empty() {
            out.push_str(&f.type_line);
            out.push('\n');
        }
        for s in f.series {
            out.push_str(&s);
            out.push('\n');
        }
    }
    out
}

/// The family a series line belongs to: its own name, or the name minus
/// a histogram suffix when that bare family is registered.
fn family_of<T>(families: &BTreeMap<String, T>, series_name: &str) -> String {
    if families.contains_key(series_name) {
        return series_name.to_string();
    }
    for suffix in ["_bucket", "_sum", "_count"] {
        if let Some(stripped) = series_name.strip_suffix(suffix) {
            if families.contains_key(stripped) {
                return stripped.to_string();
            }
        }
    }
    series_name.to_string()
}

/// Stamps `node="<id>"` onto a series line that lacks a `node` label.
fn ensure_node_label(line: &str, node: &str) -> String {
    match line.find('{') {
        Some(open) => {
            // Labeled series: check the label section for an existing
            // node label before the closing brace.
            let close = line.rfind('}').unwrap_or(line.len());
            let labels = &line[open + 1..close];
            if labels.starts_with("node=\"") || labels.contains(",node=\"") {
                line.to_string()
            } else {
                format!("{}{{node=\"{node}\",{}", &line[..open], &line[open + 1..])
            }
        }
        None => match line.find(' ') {
            Some(sp) => format!("{}{{node=\"{node}\"}}{}", &line[..sp], &line[sp..]),
            None => line.to_string(),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arrayflow_obs::Registry;

    #[test]
    fn merge_keeps_one_header_and_all_series() {
        let make = |node: &str, v: u64| {
            let r = Registry::new();
            r.counter("af_x_total", "x things").add(v);
            r.snapshot().render_prometheus_with(&[("node", node)])
        };
        let a = make("a", 3);
        let b = make("b", 5);
        let merged = merge_expositions(&[("a", &a), ("b", &b)]);
        assert_eq!(merged.matches("# HELP af_x_total").count(), 1, "{merged}");
        assert_eq!(merged.matches("# TYPE af_x_total").count(), 1, "{merged}");
        assert!(merged.contains("af_x_total{node=\"a\"} 3"), "{merged}");
        assert!(merged.contains("af_x_total{node=\"b\"} 5"), "{merged}");
    }

    #[test]
    fn unlabeled_series_get_stamped() {
        let r = Registry::new();
        r.counter("bare_total", "no labels").inc();
        r.counter_with("lbl_total", "labeled", &[("k", "v")]).inc();
        let text = r.snapshot().render_prometheus();
        let merged = merge_expositions(&[("n7", &text)]);
        assert!(merged.contains("bare_total{node=\"n7\"} 1"), "{merged}");
        assert!(
            merged.contains("lbl_total{node=\"n7\",k=\"v\"} 1"),
            "{merged}"
        );
    }

    #[test]
    fn histogram_suffixes_stay_with_their_family() {
        let r = Registry::new();
        let h = r.histogram_with("lat_us", "latency", &[], &[10, 100]);
        h.observe(5);
        let text = r.snapshot().render_prometheus_with(&[("node", "a")]);
        let merged = merge_expositions(&[("a", &text)]);
        // Headers once, then bucket/sum/count series under the family.
        assert_eq!(merged.matches("# TYPE lat_us histogram").count(), 1);
        let type_pos = merged.find("# TYPE lat_us").unwrap();
        let bucket_pos = merged.find("lat_us_bucket").unwrap();
        assert!(bucket_pos > type_pos, "{merged}");
        assert!(merged.contains("lat_us_count{node=\"a\"} 1"), "{merged}");
    }
}
