#![warn(missing_docs)]
//! # arrayflow-cluster
//!
//! The scale-out layer: everything a sharded multi-node deployment of
//! the analysis service needs that is *not* connection handling (the
//! router itself lives in `arrayflow-service`, which owns the sockets
//! and protocols).
//!
//! The design center is the canonical 128-bit alpha-renamed loop
//! fingerprint: because it names the *work* rather than the request,
//! consistent-hashing it across nodes multiplies aggregate cache
//! capacity — every alpha-equivalent submission from any client lands on
//! the same node's memo cache and segment log — instead of diluting it
//! the way random load-balancing would.
//!
//! * [`ring`] — the consistent-hash [`Ring`]: name-seeded virtual
//!   nodes, `O(log n)` lookups, ≈ `1/N` key movement on membership
//!   change.
//! * [`topology`] — the ordered node list + ring ([`Topology`]), and
//!   the replica relation: node `i` replicates to node `(i + 1) % n`.
//! * [`replicate`] — the [`Replicator`]: a
//!   [`ReplicationSink`](arrayflow_store::ReplicationSink) teeing the
//!   store writer thread's successful appends to the designated replica
//!   as `replicate` wire frames, with a full live-set sync on every
//!   (re)connect so dropped batches are always re-covered.
//! * [`merge`] — cross-node Prometheus exposition merging with per-node
//!   `node` labels.

pub mod merge;
pub mod replicate;
pub mod ring;
pub mod topology;

pub use merge::merge_expositions;
pub use replicate::{Replicator, ReplicatorConfig, ReplicatorStats};
pub use ring::{Ring, DEFAULT_VNODES};
pub use topology::{NodeSpec, Topology};
