//! The [`Replicator`]: ships a node's store to its designated replica.
//!
//! Installed as the [`ReplicationSink`] of the node's
//! [`PersistentTier`](arrayflow_store::PersistentTier), it is the tee on
//! the store's writer thread: every record that reaches the local
//! segment log is queued here, and a dedicated shipping thread sends
//! queued records to the replica as `replicate` wire frames — store-codec
//! record frames, byte-identical to the local log's — on a fixed
//! interval or sooner when a flush barrier passes.
//!
//! **Losing a batch is safe.** Records are appended locally *before*
//! they are queued here, and every (re)connect starts with a full
//! [`Store::export_live`] sync; an incremental batch lost to a broken
//! connection is re-covered by the next sync, and the replica's
//! [`Store::import_frames`] dedupes by live key. The queue is bounded:
//! overflow drops the record (counted), never blocks the writer thread.

use std::io::Write;
use std::net::TcpStream;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use arrayflow_engine::{AnalysisReport, CacheKey};
use arrayflow_obs::{Counter, Registry};
use arrayflow_resilience::Backoff;
use arrayflow_store::segment::frame_record;
use arrayflow_store::{encode_record, Record, ReplicationSink, Store};
use arrayflow_wire::encode_frame;
use arrayflow_wire::frame::read_frame;
use arrayflow_wire::proto::{Request, Response};

/// Replicator tuning.
#[derive(Debug, Clone)]
pub struct ReplicatorConfig {
    /// Replica's dial address (`serve --replicate-to` value).
    pub replica_addr: String,
    /// Ship interval: queued records wait at most this long (a flush
    /// barrier ships them sooner).
    pub interval: Duration,
    /// Queue bound in records; overflow is dropped and counted.
    pub max_buffer: usize,
    /// Cap on a single replicate frame's payload.
    pub max_frame_bytes: usize,
    /// Deadline on each replicate round trip (ack read and frame
    /// write). A wedged replica costs at most this long per attempt
    /// instead of hanging the ship thread indefinitely.
    pub request_timeout: Duration,
}

impl ReplicatorConfig {
    /// Defaults: 250 ms interval, 4096-record buffer, 64 MiB frames,
    /// 10 s round-trip deadline.
    pub fn to(replica_addr: impl Into<String>) -> Self {
        ReplicatorConfig {
            replica_addr: replica_addr.into(),
            interval: Duration::from_millis(250),
            max_buffer: 4096,
            max_frame_bytes: 64 << 20,
            request_timeout: Duration::from_secs(10),
        }
    }
}

/// Replicator counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplicatorStats {
    /// Records shipped in incremental batches.
    pub shipped_records: u64,
    /// Incremental batches acknowledged by the replica.
    pub batches: u64,
    /// Full-store syncs completed (one per successful connect).
    pub syncs: u64,
    /// Records dropped to queue overflow.
    pub dropped: u64,
    /// Connection attempts that failed or broke mid-ship.
    pub errors: u64,
}

#[derive(Default)]
struct Queue {
    pending: Vec<(CacheKey, Arc<AnalysisReport>)>,
    barrier: bool,
    shutdown: bool,
}

#[derive(Clone)]
struct ReplicatorInstruments {
    shipped: Counter,
    batches: Counter,
    syncs: Counter,
    dropped: Counter,
    errors: Counter,
}

impl ReplicatorInstruments {
    fn registered(registry: &Registry) -> Self {
        Self {
            shipped: registry.counter(
                "arrayflow_replica_shipped_records_total",
                "records shipped to the replica in incremental batches",
            ),
            batches: registry.counter(
                "arrayflow_replica_batches_total",
                "incremental replication batches acknowledged by the replica",
            ),
            syncs: registry.counter(
                "arrayflow_replica_syncs_total",
                "full-store syncs completed (one per successful connect)",
            ),
            dropped: registry.counter(
                "arrayflow_replica_dropped_records_total",
                "records dropped because the replication queue was full",
            ),
            errors: registry.counter(
                "arrayflow_replica_errors_total",
                "replication connects or ships that failed",
            ),
        }
    }
}

/// Ships the local store to one replica. See the module docs for the
/// delivery contract.
pub struct Replicator {
    queue: Mutex<Queue>,
    cv: Condvar,
    shipper: Mutex<Option<JoinHandle<()>>>,
    max_buffer: usize,
    ins: ReplicatorInstruments,
}

impl Replicator {
    /// Starts the shipping thread and returns the sink to install with
    /// [`PersistentTier::set_replication_sink`]. Instruments land on
    /// `registry`.
    ///
    /// [`PersistentTier::set_replication_sink`]:
    ///     arrayflow_store::PersistentTier::set_replication_sink
    pub fn start(
        store: Arc<Store>,
        config: ReplicatorConfig,
        registry: &Registry,
    ) -> Arc<Replicator> {
        let ins = ReplicatorInstruments::registered(registry);
        let replicator = Arc::new(Replicator {
            queue: Mutex::new(Queue::default()),
            cv: Condvar::new(),
            shipper: Mutex::new(None),
            max_buffer: config.max_buffer.max(1),
            ins: ins.clone(),
        });
        let worker = Arc::clone(&replicator);
        let handle = std::thread::Builder::new()
            .name("replica-shipper".into())
            .spawn(move || worker.run(store, config))
            .expect("spawn replica shipper thread");
        *replicator.shipper.lock().unwrap() = Some(handle);
        replicator
    }

    /// Counter snapshot.
    pub fn stats(&self) -> ReplicatorStats {
        ReplicatorStats {
            shipped_records: self.ins.shipped.get(),
            batches: self.ins.batches.get(),
            syncs: self.ins.syncs.get(),
            dropped: self.ins.dropped.get(),
            errors: self.ins.errors.get(),
        }
    }

    /// Signals the shipper to drain and exit, then joins it. Idempotent.
    pub fn shutdown(&self) {
        {
            let mut q = self.queue.lock().unwrap();
            q.shutdown = true;
            self.cv.notify_all();
        }
        if let Some(handle) = self.shipper.lock().unwrap().take() {
            let _ = handle.join();
        }
    }

    fn run(&self, store: Arc<Store>, config: ReplicatorConfig) {
        let mut conn: Option<TcpStream> = None;
        let mut backoff = Backoff::new(Duration::from_millis(50), Duration::from_secs(2));
        let mut next_id = 1u64;
        loop {
            // Wait for work: records, a barrier, shutdown, or the tick.
            let (batch, shutdown) = {
                let mut q = self.queue.lock().unwrap();
                while q.pending.is_empty() && !q.barrier && !q.shutdown {
                    let (guard, timeout) = self.cv.wait_timeout(q, config.interval).unwrap();
                    q = guard;
                    if timeout.timed_out() {
                        break;
                    }
                }
                q.barrier = false;
                (std::mem::take(&mut q.pending), q.shutdown)
            };

            if conn.is_none() && (!batch.is_empty() || !shutdown) {
                // (Re)connect, full-sync the live set, then resume
                // incremental shipping. An unreachable replica backs off
                // without ever touching the analysis path.
                match self.connect_and_sync(&store, &config, &mut next_id) {
                    Some(stream) => {
                        conn = Some(stream);
                        backoff.reset();
                    }
                    None => {
                        if shutdown {
                            return;
                        }
                        std::thread::sleep(backoff.next_delay());
                        // Anything batched is covered by the sync that
                        // will run when the connect finally succeeds.
                        continue;
                    }
                }
            }

            if !batch.is_empty() {
                if let Some(stream) = conn.as_mut() {
                    let mut bytes = Vec::new();
                    for (key, report) in &batch {
                        let payload = encode_record(&Record::Put {
                            key: *key,
                            report: Box::new((**report).clone()),
                        });
                        bytes.extend_from_slice(&frame_record(&payload));
                    }
                    if self.ship(stream, &config, &mut next_id, bytes) {
                        self.ins.shipped.add(batch.len() as u64);
                        self.ins.batches.inc();
                    } else {
                        // Broken pipe: drop the connection; the records
                        // are already in the local log and the next
                        // connect's full sync re-covers them.
                        conn = None;
                    }
                }
            }

            if shutdown {
                return;
            }
        }
    }

    /// Dials the replica and ships the full live set. Returns the
    /// connection on success.
    fn connect_and_sync(
        &self,
        store: &Store,
        config: &ReplicatorConfig,
        next_id: &mut u64,
    ) -> Option<TcpStream> {
        let mut stream = match TcpStream::connect(&config.replica_addr) {
            Ok(s) => s,
            Err(_) => {
                self.ins.errors.inc();
                return None;
            }
        };
        let _ = stream.set_nodelay(true);
        let _ = stream.set_read_timeout(Some(config.request_timeout));
        let _ = stream.set_write_timeout(Some(config.request_timeout));
        let batch = store.export_live();
        if self.ship(&mut stream, config, next_id, batch) {
            self.ins.syncs.inc();
            Some(stream)
        } else {
            None
        }
    }

    /// Sends one replicate frame and waits for the ack. `true` on a
    /// well-formed OK response.
    fn ship(
        &self,
        stream: &mut TcpStream,
        config: &ReplicatorConfig,
        next_id: &mut u64,
        batch: Vec<u8>,
    ) -> bool {
        let id = *next_id;
        *next_id += 1;
        let req = Request::Replicate { id, batch };
        let frame = encode_frame(req.tag(), &req.encode_payload());
        if stream.write_all(&frame).is_err() {
            self.ins.errors.inc();
            return false;
        }
        match read_frame(stream, config.max_frame_bytes) {
            Ok((tag, payload)) => match Response::decode(tag, &payload) {
                Ok(Response::Text { id: rid, .. }) if rid == id => true,
                _ => {
                    self.ins.errors.inc();
                    false
                }
            },
            Err(_) => {
                self.ins.errors.inc();
                false
            }
        }
    }
}

impl Drop for Replicator {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl ReplicationSink for Replicator {
    fn record(&self, key: &CacheKey, report: &Arc<AnalysisReport>) {
        let mut q = self.queue.lock().unwrap();
        if q.shutdown {
            return;
        }
        if q.pending.len() >= self.max_buffer {
            self.ins.dropped.inc();
            return;
        }
        q.pending.push((*key, Arc::clone(report)));
        self.cv.notify_all();
    }

    fn barrier(&self) {
        let mut q = self.queue.lock().unwrap();
        q.barrier = true;
        self.cv.notify_all();
    }
}
