//! The consistent-hash ring: canonical fingerprints → node slots.
//!
//! Each node contributes `vnodes` points on a `u64` ring, derived from a
//! stable hash of its *name* (not its position in the node list), so:
//!
//! * every router instance — and every release — builds the identical
//!   ring from the identical node list;
//! * adding or removing one node moves only the keys whose successor
//!   point belonged to that node, ≈ `1/N` of the keyspace, because the
//!   other nodes' points don't depend on the departed node at all.
//!
//! A key is placed by [`arrayflow_engine::fingerprint_route_hash`] — the
//! same folding the memo cache's sharding contract uses — then routed to
//! the node owning the first ring point at or clockwise of the key's
//! hash. With a few hundred virtual nodes per node the keyspace split is
//! within a few percent of uniform (see the balance tests).

use arrayflow_engine::fingerprint_route_hash;
use arrayflow_ir::Fingerprint;

/// Default virtual nodes per node: enough for a max/min shard-load ratio
/// comfortably under 1.3 at up to 16 nodes, cheap to build and search.
pub const DEFAULT_VNODES: usize = 256;

/// FNV-1a 64-bit over a byte string — the stable node-name hash seeding
/// each node's vnode points.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// splitmix64 finalizer: spreads a node-name seed plus vnode counter
/// into uniformly distributed ring points.
fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A consistent-hash ring over node slots `0..n`.
#[derive(Debug, Clone)]
pub struct Ring {
    /// `(point, slot)` sorted by point; binary-searched on lookup.
    points: Vec<(u64, u32)>,
    nodes: usize,
}

impl Ring {
    /// Builds the ring: `vnodes` points per node name. Node *names*
    /// seed the points, node *positions* are what lookups return, so
    /// callers index their own node table with the result.
    ///
    /// Panics if `node_names` is empty or `vnodes` is zero.
    pub fn build(node_names: &[impl AsRef<str>], vnodes: usize) -> Ring {
        assert!(!node_names.is_empty(), "ring needs at least one node");
        assert!(vnodes > 0, "ring needs at least one vnode per node");
        let mut points = Vec::with_capacity(node_names.len() * vnodes);
        for (slot, name) in node_names.iter().enumerate() {
            let seed = fnv1a(name.as_ref().as_bytes());
            for v in 0..vnodes as u64 {
                points.push((splitmix(seed ^ splitmix(v)), slot as u32));
            }
        }
        points.sort_unstable();
        // Identical names would alias every point; identical *points*
        // across distinct names are astronomically unlikely but resolved
        // deterministically by the slot tiebreak in the sort above.
        Ring {
            points,
            nodes: node_names.len(),
        }
    }

    /// Number of nodes the ring was built over.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// The node slot owning hash `h`: the first point at or clockwise of
    /// `h`, wrapping at the top of the `u64` space.
    pub fn node_for_hash(&self, h: u64) -> usize {
        let i = self.points.partition_point(|&(p, _)| p < h);
        let (_, slot) = self.points[if i == self.points.len() { 0 } else { i }];
        slot as usize
    }

    /// The node slot owning a canonical fingerprint (little-endian
    /// bytes, as they travel on the wire).
    pub fn node_for_fingerprint(&self, fingerprint: [u8; 16]) -> usize {
        self.node_for_hash(fingerprint_route_hash(Fingerprint(u128::from_le_bytes(
            fingerprint,
        ))))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("node-{i}")).collect()
    }

    /// 10k pseudo-random fingerprints from the same splitmix family the
    /// workloads crate uses.
    fn sample_fingerprints(n: usize) -> Vec<[u8; 16]> {
        let mut out = Vec::with_capacity(n);
        let mut s = 0xA076_1D64_78BD_642Fu64;
        for _ in 0..n {
            s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let lo = splitmix(s);
            let hi = splitmix(s ^ 0x5851_F42D_4C95_7F2D);
            out.push((((hi as u128) << 64) | lo as u128).to_le_bytes());
        }
        out
    }

    #[test]
    fn lookup_is_deterministic_and_in_range() {
        let ring = Ring::build(&names(5), DEFAULT_VNODES);
        let ring2 = Ring::build(&names(5), DEFAULT_VNODES);
        for fp in sample_fingerprints(1000) {
            let a = ring.node_for_fingerprint(fp);
            assert!(a < 5);
            assert_eq!(a, ring2.node_for_fingerprint(fp));
        }
    }

    #[test]
    fn balance_within_ratio_for_2_to_16_nodes() {
        // Acceptance: max/min shard load ratio ≤ 1.3 on 10k fingerprints.
        let fps = sample_fingerprints(10_000);
        for n in 2..=16 {
            let ring = Ring::build(&names(n), DEFAULT_VNODES);
            let mut loads = vec![0u64; n];
            for &fp in &fps {
                loads[ring.node_for_fingerprint(fp)] += 1;
            }
            let max = *loads.iter().max().unwrap() as f64;
            let min = *loads.iter().min().unwrap() as f64;
            assert!(min > 0.0, "empty shard at n={n}: {loads:?}");
            assert!(
                max / min <= 1.3,
                "imbalance at n={n}: ratio={:.3} loads={loads:?}",
                max / min
            );
        }
    }

    #[test]
    fn node_add_and_remove_move_few_keys() {
        // Acceptance: ≤ 1/N + ε of keys move when one node joins or
        // leaves an N-node ring.
        let fps = sample_fingerprints(10_000);
        for n in [2usize, 4, 8, 15] {
            let before = Ring::build(&names(n), DEFAULT_VNODES);
            // Add one node.
            let grown = Ring::build(&names(n + 1), DEFAULT_VNODES);
            let moved_add = fps
                .iter()
                .filter(|&&fp| before.node_for_fingerprint(fp) != grown.node_for_fingerprint(fp))
                .count() as f64
                / fps.len() as f64;
            let bound_add = 1.0 / (n + 1) as f64 + 0.03;
            assert!(
                moved_add <= bound_add,
                "add at n={n}: moved {moved_add:.3} > {bound_add:.3}"
            );
            // Every moved key must land on the new node (nothing
            // reshuffles between survivors).
            for &fp in &fps {
                let (a, b) = (
                    before.node_for_fingerprint(fp),
                    grown.node_for_fingerprint(fp),
                );
                if a != b {
                    assert_eq!(b, n, "key moved between surviving nodes");
                }
            }
            // Remove the last node (same pair, other direction): only the
            // removed node's keys move.
            for &fp in &fps {
                let (a, b) = (
                    grown.node_for_fingerprint(fp),
                    before.node_for_fingerprint(fp),
                );
                if a != b {
                    assert_eq!(a, n, "removal moved a surviving node's key");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn empty_ring_panics() {
        let _ = Ring::build(&Vec::<String>::new(), 8);
    }
}
