//! Cluster topology: the ordered node list, the ring built over it, and
//! the replica relation.
//!
//! Replicas are **per-node, not per-key**: node `i`'s designated replica
//! is node `(i + 1) % n` in list order. That keeps the replication
//! fan-out one stream per node — each node ships its whole segment log
//! to exactly one peer (`serve --replicate-to`) — and lets the router
//! know statically where a dead node's warm copy lives. (A per-key
//! ring-successor scheme would scatter one node's records across every
//! peer and need a replication connection per key range.)

use crate::ring::{Ring, DEFAULT_VNODES};

/// One node: a stable identity (the `node` metrics label, the health
/// verb's reply) plus its dial address.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeSpec {
    /// Stable node id — seeds the node's ring points.
    pub id: String,
    /// `host:port` to dial.
    pub addr: String,
}

/// The router's static view of the cluster.
#[derive(Debug, Clone)]
pub struct Topology {
    nodes: Vec<NodeSpec>,
    ring: Ring,
}

impl Topology {
    /// Builds a topology over `nodes` with `vnodes` ring points each.
    ///
    /// Panics if `nodes` is empty (the ring does).
    pub fn new(nodes: Vec<NodeSpec>, vnodes: usize) -> Topology {
        let ids: Vec<&str> = nodes.iter().map(|n| n.id.as_str()).collect();
        let ring = Ring::build(&ids, vnodes);
        Topology { nodes, ring }
    }

    /// Parses a `--router` node list: comma-separated entries, each
    /// either `addr` (id defaults to the address) or `id=addr`.
    /// Duplicate ids are rejected — they would alias every ring point.
    pub fn parse(spec: &str, vnodes: usize) -> Result<Topology, String> {
        let mut nodes = Vec::new();
        for entry in spec.split(',') {
            let entry = entry.trim();
            if entry.is_empty() {
                continue;
            }
            let (id, addr) = match entry.split_once('=') {
                Some((id, addr)) => (id.trim(), addr.trim()),
                None => (entry, entry),
            };
            if id.is_empty() || addr.is_empty() {
                return Err(format!("bad node entry {entry:?} (want addr or id=addr)"));
            }
            if nodes.iter().any(|n: &NodeSpec| n.id == id) {
                return Err(format!("duplicate node id {id:?}"));
            }
            nodes.push(NodeSpec {
                id: id.to_string(),
                addr: addr.to_string(),
            });
        }
        if nodes.is_empty() {
            return Err("empty node list".into());
        }
        Ok(Topology::new(
            nodes,
            if vnodes == 0 { DEFAULT_VNODES } else { vnodes },
        ))
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True for a (degenerate) routerless topology — never constructed,
    /// but the clippy-idiomatic companion of [`Topology::len`].
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The node at `slot`.
    pub fn node(&self, slot: usize) -> &NodeSpec {
        &self.nodes[slot]
    }

    /// All nodes, in slot order.
    pub fn nodes(&self) -> &[NodeSpec] {
        &self.nodes
    }

    /// The ring the topology routes with.
    pub fn ring(&self) -> &Ring {
        &self.ring
    }

    /// The primary slot for a canonical fingerprint.
    pub fn primary_for(&self, fingerprint: [u8; 16]) -> usize {
        self.ring.node_for_fingerprint(fingerprint)
    }

    /// The designated replica of `slot`: the next node in list order.
    /// Equals `slot` in a single-node topology — i.e. no replica.
    pub fn replica_of(&self, slot: usize) -> usize {
        (slot + 1) % self.nodes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_plain_addresses() {
        let t = Topology::parse("127.0.0.1:7001, 127.0.0.1:7002", 0).unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.node(0).id, "127.0.0.1:7001");
        assert_eq!(t.node(0).addr, "127.0.0.1:7001");
        assert_eq!(t.replica_of(0), 1);
        assert_eq!(t.replica_of(1), 0);
    }

    #[test]
    fn parse_named_nodes() {
        let t = Topology::parse("a=127.0.0.1:7001,b=127.0.0.1:7002,c=127.0.0.1:7003", 64).unwrap();
        assert_eq!(t.len(), 3);
        assert_eq!(t.node(1).id, "b");
        assert_eq!(t.node(1).addr, "127.0.0.1:7002");
        assert_eq!(t.replica_of(2), 0);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Topology::parse("", 0).is_err());
        assert!(Topology::parse(" , ,", 0).is_err());
        assert!(Topology::parse("a=,b=x", 0).is_err());
        assert!(Topology::parse("a=x,a=y", 0).is_err());
    }

    #[test]
    fn single_node_replica_is_self() {
        let t = Topology::parse("only=127.0.0.1:7001", 0).unwrap();
        assert_eq!(t.replica_of(0), 0);
        assert_eq!(t.primary_for([7; 16]), 0);
    }

    #[test]
    fn routing_is_stable_under_renames_of_others() {
        // A node keeps its keys when an unrelated node is renamed only if
        // names seed the ring — position must not matter.
        let base = Topology::parse("a=1,b=2,c=3", 128).unwrap();
        let reordered = Topology::parse("c=3,a=1,b=2", 128).unwrap();
        for i in 0..1000u128 {
            let fp = (i * 0x9E37_79B9_7F4A_7C15).to_le_bytes();
            let p1 = &base.node(base.primary_for(fp)).id;
            let p2 = &reordered.node(reordered.primary_for(fp)).id;
            assert_eq!(p1, p2, "fingerprint {i} routed to different node ids");
        }
    }
}
