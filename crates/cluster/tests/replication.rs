//! End-to-end replicator drill against a fake replica: a TCP listener
//! that speaks just enough of the wire protocol to accept `replicate`
//! frames and apply them to its own store.

use std::io::Write;
use std::net::TcpListener;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use arrayflow_cluster::{Replicator, ReplicatorConfig};
use arrayflow_engine::{AnalysisReport, CacheKey, ProblemSet};
use arrayflow_ir::Fingerprint;
use arrayflow_obs::Registry;
use arrayflow_store::{ReplicationSink, Store, StoreConfig};
use arrayflow_wire::encode_frame;
use arrayflow_wire::frame::read_frame;
use arrayflow_wire::proto::{Request, Response};

static DIR_SEQ: AtomicU32 = AtomicU32::new(0);

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        let n = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!("afclu-{tag}-{}-{n}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        TempDir(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn key(fp: u128) -> CacheKey {
    CacheKey {
        fingerprint: Fingerprint(fp),
        problems: ProblemSet::ALL,
        dep_max_distance: 8,
        custom: None,
    }
}

fn report(fp: u128, sites: usize) -> AnalysisReport {
    AnalysisReport {
        fingerprint: Fingerprint(fp),
        problems: ProblemSet::ALL,
        dep_max_distance: 8,
        nodes: 10,
        sites,
        reaching_stats: None,
        available_stats: None,
        busy_stats: None,
        reaching_refs_stats: None,
        reuses: Vec::new(),
        redundant_stores: Vec::new(),
        dependences: Vec::new(),
        custom: None,
    }
}

/// A minimal replica: accepts connections forever, applies every
/// replicate batch to `dst`, acks each with a text response.
fn spawn_fake_replica(dst: Arc<Store>) -> String {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    std::thread::spawn(move || {
        for stream in listener.incoming() {
            let Ok(mut stream) = stream else { continue };
            let dst = Arc::clone(&dst);
            std::thread::spawn(move || loop {
                let Ok((tag, payload)) = read_frame(&mut stream, 64 << 20) else {
                    return;
                };
                let Ok(Request::Replicate { id, batch }) = Request::decode(tag, &payload) else {
                    return;
                };
                let applied = dst.import_frames(&batch).unwrap();
                let resp = Response::Text {
                    id,
                    text: format!("{{\"applied\":{applied}}}"),
                };
                let frame = encode_frame(resp.tag(), &resp.encode_payload());
                if stream.write_all(&frame).is_err() {
                    return;
                }
            });
        }
    });
    addr
}

fn wait_for(deadline: Duration, mut cond: impl FnMut() -> bool) -> bool {
    let start = Instant::now();
    while start.elapsed() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    cond()
}

#[test]
fn replicator_ships_existing_and_incremental_records() {
    let src_dir = TempDir::new("repl-src");
    let dst_dir = TempDir::new("repl-dst");
    let src = Arc::new(Store::open(StoreConfig::at(&src_dir.0)).unwrap());
    let dst = Arc::new(Store::open(StoreConfig::at(&dst_dir.0)).unwrap());

    // Records present before the replicator starts: covered by the
    // connect-time full sync.
    for i in 0..3u128 {
        src.put(key(i), report(i, 1)).unwrap();
    }

    let addr = spawn_fake_replica(Arc::clone(&dst));
    let registry = Registry::new();
    let mut config = ReplicatorConfig::to(&addr);
    config.interval = Duration::from_millis(20);
    let replicator = Replicator::start(Arc::clone(&src), config, &registry);

    assert!(
        wait_for(Duration::from_secs(30), || dst.len() == 3),
        "full sync never arrived: dst has {} records",
        dst.len()
    );

    // Incremental path: records offered through the sink (as the tier's
    // writer thread would) after local append.
    for i in 3..8u128 {
        src.put(key(i), report(i, 2)).unwrap();
        replicator.record(&key(i), &Arc::new(report(i, 2)));
    }
    replicator.barrier();

    assert!(
        wait_for(Duration::from_secs(30), || dst.len() == 8),
        "incremental batch never arrived: dst has {} records",
        dst.len()
    );
    for i in 0..8u128 {
        assert_eq!(dst.get(&key(i)), src.get(&key(i)), "key {i}");
    }
    let stats = replicator.stats();
    assert!(stats.syncs >= 1, "{stats:?}");
    assert!(stats.shipped_records >= 5, "{stats:?}");
    replicator.shutdown();
}

#[test]
fn replicator_survives_replica_coming_up_late() {
    let src_dir = TempDir::new("repl-late-src");
    let dst_dir = TempDir::new("repl-late-dst");
    let src = Arc::new(Store::open(StoreConfig::at(&src_dir.0)).unwrap());
    let dst = Arc::new(Store::open(StoreConfig::at(&dst_dir.0)).unwrap());
    src.put(key(1), report(1, 1)).unwrap();

    // Reserve an address, start the replicator against it while nothing
    // is listening, then bring the replica up.
    let placeholder = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = placeholder.local_addr().unwrap().to_string();
    drop(placeholder);

    let registry = Registry::new();
    let mut config = ReplicatorConfig::to(&addr);
    config.interval = Duration::from_millis(20);
    let replicator = Replicator::start(Arc::clone(&src), config, &registry);
    assert!(
        wait_for(Duration::from_secs(30), || replicator.stats().errors > 0),
        "no connect attempts recorded"
    );
    assert_eq!(dst.len(), 0);

    // Replica appears at the same address; the next backoff round should
    // connect and full-sync.
    let listener = TcpListener::bind(&addr).expect("rebind placeholder address");
    let dst2 = Arc::clone(&dst);
    std::thread::spawn(move || {
        for stream in listener.incoming() {
            let Ok(mut stream) = stream else { continue };
            let dst = Arc::clone(&dst2);
            while let Ok((tag, payload)) = read_frame(&mut stream, 64 << 20) {
                let Ok(Request::Replicate { id, batch }) = Request::decode(tag, &payload) else {
                    break;
                };
                let _ = dst.import_frames(&batch);
                let resp = Response::Text {
                    id,
                    text: "{}".into(),
                };
                let frame = encode_frame(resp.tag(), &resp.encode_payload());
                if stream.write_all(&frame).is_err() {
                    break;
                }
            }
        }
    });

    assert!(
        wait_for(Duration::from_secs(30), || dst.len() == 1),
        "sync after late start never arrived"
    );
    replicator.shutdown();
}
