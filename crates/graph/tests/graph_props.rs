//! Structural properties of loop flow graphs, checked on parsed loops of
//! varying shape: reverse postorder is a topological order of the acyclic
//! body, and the `precedes` bitsets agree with explicit path search.

use arrayflow_graph::{build_loop_graph, LoopGraph, NodeId};
use arrayflow_ir::parse_program;

fn graphs() -> Vec<(String, LoopGraph)> {
    let sources = [
        "do i = 1, 10 A[i] := A[i-1]; end",
        "do i = 1, 10
           A[i+2] := A[i] * 2;
           if A[i] == 0 then A[i] := B[i-1]; end
           B[i] := A[i+1];
         end",
        "do i = 1, 10
           if x > 0 then
             A[i] := 1;
             if y > 0 then B[i] := 2; else B[i] := 3; end
           else
             A[i] := 4;
           end
           C[i] := A[i] + B[i];
         end",
        "do i = 1, 10
           if x > 0 then end
           if y > 0 then A[i] := 1; end
           do j = 1, 5 B[j] := A[i]; end
           A[i+1] := B[1];
         end",
        "do i = 1, 10
           if a > 0 then
             if b > 0 then
               if c > 0 then X[i] := 1; end
             end
           end
           X[i+1] := X[i];
         end",
    ];
    sources
        .iter()
        .map(|src| {
            let p = parse_program(src).unwrap();
            (src.to_string(), build_loop_graph(p.sole_loop().unwrap()))
        })
        .collect()
}

#[test]
fn rpo_is_a_topological_order() {
    for (src, g) in graphs() {
        let mut pos = vec![usize::MAX; g.len()];
        for (k, &n) in g.rpo().iter().enumerate() {
            pos[n.index()] = k;
        }
        assert!(
            pos.iter().all(|&p| p != usize::MAX),
            "{src}: rpo covers all"
        );
        for n in g.node_ids() {
            for &s in g.succs(n) {
                assert!(
                    pos[n.index()] < pos[s.index()],
                    "{src}: edge {n} -> {s} violates topological order"
                );
            }
        }
    }
}

#[test]
fn precedes_agrees_with_path_search() {
    fn reachable(g: &LoopGraph, from: NodeId, to: NodeId) -> bool {
        let mut stack = g.succs(from).to_vec();
        let mut seen = vec![false; g.len()];
        while let Some(n) = stack.pop() {
            if n == to {
                return true;
            }
            if !std::mem::replace(&mut seen[n.index()], true) {
                stack.extend_from_slice(g.succs(n));
            }
        }
        false
    }
    for (src, g) in graphs() {
        for a in g.node_ids() {
            for b in g.node_ids() {
                assert_eq!(
                    g.precedes(a, b),
                    reachable(&g, a, b),
                    "{src}: precedes({a}, {b}) mismatch"
                );
            }
        }
    }
}

#[test]
fn entry_dominates_and_exit_postdominates() {
    for (src, g) in graphs() {
        for n in g.node_ids() {
            if n != g.entry() {
                assert!(g.precedes(g.entry(), n), "{src}: entry reaches {n}");
            }
            if n != g.exit() {
                assert!(g.precedes(n, g.exit()), "{src}: {n} reaches exit");
            }
        }
        assert!(!g.precedes(g.exit(), g.entry()), "{src}: body is acyclic");
    }
}

#[test]
fn preds_and_succs_are_inverse() {
    for (src, g) in graphs() {
        for n in g.node_ids() {
            for &s in g.succs(n) {
                assert!(g.preds(s).contains(&n), "{src}: {n}->{s} missing pred");
            }
            for &p in g.preds(n) {
                assert!(g.succs(p).contains(&n), "{src}: {p}->{n} missing succ");
            }
        }
    }
}
