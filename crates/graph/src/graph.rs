//! The loop flow graph structure and its traversal orders.

use arrayflow_ir::stmt::{Assign, StmtId};
use arrayflow_ir::{Stmt, SymbolTable, VarId};

use crate::node::{ref_sites_of, Node, NodeId, NodeKind};

/// An acyclic single-entry/single-exit flow graph for one loop body, plus
/// the implicit back edge `exit → entry` representing the transfer to the
/// next iteration.
#[derive(Debug, Clone)]
pub struct LoopGraph {
    /// Induction variable of the loop this graph represents.
    pub iv: VarId,
    /// Compile-time upper bound `UB`, when known.
    pub ub: Option<i64>,
    nodes: Vec<Node>,
    succs: Vec<Vec<NodeId>>,
    preds: Vec<Vec<NodeId>>,
    entry: NodeId,
    exit: NodeId,
    rpo: Vec<NodeId>,
    /// `reach[a]` is a bitset over nodes: bit `b` set iff there is a
    /// non-empty intra-iteration path `a →⁺ b`.
    reach: Vec<Vec<u64>>,
}

impl LoopGraph {
    /// Assembles a graph from raw parts. Used by the builder; `succs` must
    /// describe an acyclic graph where every node reaches `exit`.
    pub(crate) fn from_parts(
        iv: VarId,
        ub: Option<i64>,
        nodes: Vec<Node>,
        succs: Vec<Vec<NodeId>>,
        entry: NodeId,
        exit: NodeId,
    ) -> Self {
        let n = nodes.len();
        let mut preds = vec![Vec::new(); n];
        for (a, ss) in succs.iter().enumerate() {
            for &b in ss {
                preds[b.index()].push(NodeId(a as u32));
            }
        }
        let mut g = Self {
            iv,
            ub,
            nodes,
            succs,
            preds,
            entry,
            exit,
            rpo: Vec::new(),
            reach: Vec::new(),
        };
        g.rpo = g.compute_rpo();
        g.reach = g.compute_reachability();
        g
    }

    /// Number of nodes (including entry and exit).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the graph has no nodes (never the case for built graphs).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The virtual entry node.
    pub fn entry(&self) -> NodeId {
        self.entry
    }

    /// The `exit` node carrying `i := i + 1`.
    pub fn exit(&self) -> NodeId {
        self.exit
    }

    /// Immutable access to a node.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// All node ids in storage order.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// Successors along intra-iteration edges.
    pub fn succs(&self, id: NodeId) -> &[NodeId] {
        &self.succs[id.index()]
    }

    /// Predecessors along intra-iteration edges.
    pub fn preds(&self, id: NodeId) -> &[NodeId] {
        &self.preds[id.index()]
    }

    /// Reverse postorder over the acyclic body (entry first, exit last).
    /// This is the visit order that gives the paper's pass bounds.
    pub fn rpo(&self) -> &[NodeId] {
        &self.rpo
    }

    /// True if there is a non-empty intra-iteration path `a →⁺ b`.
    ///
    /// This realizes the paper's `pr(d, n)` predicate: `pr = 0` iff the
    /// node containing reference `d` *precedes* `n` within the iteration.
    pub fn precedes(&self, a: NodeId, b: NodeId) -> bool {
        let w = b.index() / 64;
        let bit = 1u64 << (b.index() % 64);
        self.reach[a.index()][w] & bit != 0
    }

    fn compute_rpo(&self) -> Vec<NodeId> {
        let n = self.nodes.len();
        let mut state = vec![0u8; n]; // 0 = unvisited, 1 = in progress, 2 = done
        let mut postorder = Vec::with_capacity(n);
        // Iterative DFS from entry.
        let mut stack: Vec<(NodeId, usize)> = vec![(self.entry, 0)];
        state[self.entry.index()] = 1;
        while let Some(&mut (node, ref mut next)) = stack.last_mut() {
            let succs = &self.succs[node.index()];
            if *next < succs.len() {
                let s = succs[*next];
                *next += 1;
                match state[s.index()] {
                    0 => {
                        state[s.index()] = 1;
                        stack.push((s, 0));
                    }
                    1 => panic!("loop flow graph must be acyclic (cycle through {s})"),
                    _ => {}
                }
            } else {
                state[node.index()] = 2;
                postorder.push(node);
                stack.pop();
            }
        }
        postorder.reverse();
        assert_eq!(postorder.len(), n, "all nodes must be reachable from entry");
        postorder
    }

    fn compute_reachability(&self) -> Vec<Vec<u64>> {
        let n = self.nodes.len();
        let words = n.div_ceil(64);
        let mut reach = vec![vec![0u64; words]; n];
        // Process in reverse RPO (children before parents in the DAG).
        for &node in self.rpo.clone().iter().rev() {
            let mut acc = vec![0u64; words];
            for &s in &self.succs[node.index()] {
                acc[s.index() / 64] |= 1 << (s.index() % 64);
                for (w, v) in reach[s.index()].iter().enumerate() {
                    acc[w] |= v;
                }
            }
            reach[node.index()] = acc;
        }
        reach
    }

    /// Renders the graph in Graphviz dot format (for debugging).
    pub fn to_dot(&self, symbols: &SymbolTable) -> String {
        use std::fmt::Write;
        let mut out = String::from("digraph loop {\n  rankdir=TB;\n");
        for id in self.node_ids() {
            let label = self.node(id).label(symbols).replace('"', "'");
            let _ = writeln!(out, "  {id} [label=\"{id}: {label}\"];");
        }
        for id in self.node_ids() {
            for &s in self.succs(id) {
                let _ = writeln!(out, "  {id} -> {s};");
            }
        }
        let _ = writeln!(out, "  {} -> {} [style=dashed];", self.exit, self.entry);
        out.push_str("}\n");
        out
    }

    /// The node carrying the assignment with statement id `stmt`, if any.
    pub fn assign_node(&self, stmt: StmtId) -> Option<NodeId> {
        self.node_ids().find(
            |&id| matches!(&self.node(id).kind, NodeKind::Assign { stmt: s, .. } if *s == stmt),
        )
    }

    /// Replaces the assignment carried by node `id` in place, recomputing
    /// the node's reference sites from the new statement.
    ///
    /// Swapping one assignment for another touches neither the edge set
    /// nor the node count, so reverse postorder and the reachability
    /// bitsets stay valid — this is what makes single-statement edits
    /// cheap for the incremental analysis engine.
    ///
    /// # Panics
    ///
    /// Panics if node `id` does not carry an assignment.
    pub fn replace_assign(&mut self, id: NodeId, assign: Assign) {
        let node = &mut self.nodes[id.index()];
        assert!(
            matches!(node.kind, NodeKind::Assign { .. }),
            "replace_assign target {id} is not an assignment node"
        );
        node.refs = ref_sites_of(&Stmt::Assign(assign.clone()));
        node.kind = NodeKind::Assign {
            stmt: assign.id,
            assign,
        };
    }

    /// The statement-bearing nodes (everything except entry/test/exit),
    /// in reverse postorder — the "N statements" of the paper's complexity
    /// discussion.
    pub fn stmt_nodes(&self) -> Vec<NodeId> {
        self.rpo
            .iter()
            .copied()
            .filter(|&id| {
                matches!(
                    self.node(id).kind,
                    NodeKind::Assign { .. } | NodeKind::Summary { .. }
                )
            })
            .collect()
    }
}
