//! Graph nodes.

use arrayflow_ir::stmt::StmtId;
use arrayflow_ir::{ArrayRef, Cond, Loop, Stmt, VarId};

/// Index of a node within its [`crate::LoopGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The index as a usize.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// One array reference occurring in a node, with its role.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RefSite {
    /// The textual reference.
    pub aref: ArrayRef,
    /// True if this site *writes* the element (an assignment destination).
    pub is_def: bool,
    /// The assignment this site belongs to, when it belongs to one (test
    /// nodes have uses but no statement id; summary nodes carry the inner
    /// statement's id).
    pub stmt: Option<StmtId>,
}

/// What a node represents.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeKind {
    /// Virtual entry point of the loop body (no statement; identity flow
    /// function). Exists so the body has a unique entry even when it starts
    /// with a conditional.
    Entry,
    /// An assignment statement.
    Assign {
        /// Stable id of the assignment in the program.
        stmt: StmtId,
        /// The statement itself (cloned from the IR).
        assign: arrayflow_ir::stmt::Assign,
    },
    /// The evaluation of an `if` condition. Array reads in the condition are
    /// uses at this node; the node has two successors (then / join-or-else).
    Test {
        /// The branch condition.
        cond: Cond,
    },
    /// A nested loop that has already been analyzed and is represented
    /// summarily (paper §3.2): it may generate references subscripted by the
    /// *outer* induction variable and conservatively kills everything it
    /// writes.
    Summary {
        /// The nested loop (cloned from the IR).
        inner: Loop,
    },
    /// The loop exit node holding `i := i + 1`; its flow function is the
    /// distance increment `x⁺⁺`.
    Exit,
}

/// A node of the loop flow graph.
#[derive(Debug, Clone)]
pub struct Node {
    /// What the node represents.
    pub kind: NodeKind,
    /// Array reference sites occurring in the node, in evaluation order
    /// (uses before the def for an assignment).
    pub refs: Vec<RefSite>,
}

impl Node {
    /// Definition sites in this node.
    pub fn defs(&self) -> impl Iterator<Item = &RefSite> {
        self.refs.iter().filter(|r| r.is_def)
    }

    /// Use sites in this node.
    pub fn uses(&self) -> impl Iterator<Item = &RefSite> {
        self.refs.iter().filter(|r| !r.is_def)
    }

    /// True for the `exit` node.
    pub fn is_exit(&self) -> bool {
        matches!(self.kind, NodeKind::Exit)
    }

    /// True for summary nodes.
    pub fn is_summary(&self) -> bool {
        matches!(self.kind, NodeKind::Summary { .. })
    }

    /// A short human-readable label (used by the dot renderer and traces).
    pub fn label(&self, symbols: &arrayflow_ir::SymbolTable) -> String {
        match &self.kind {
            NodeKind::Entry => "entry".to_string(),
            NodeKind::Assign { assign, .. } => {
                let mut s = String::new();
                match &assign.lhs {
                    arrayflow_ir::LValue::Scalar(v) => s.push_str(symbols.var_name(*v)),
                    arrayflow_ir::LValue::Elem(r) => {
                        s.push_str(&arrayflow_ir::pretty::ref_to_string(symbols, r))
                    }
                }
                s.push_str(" := ");
                s.push_str(&arrayflow_ir::pretty::expr_to_string(symbols, &assign.rhs));
                s
            }
            NodeKind::Test { cond } => {
                format!(
                    "if {} ⋈ {}",
                    arrayflow_ir::pretty::expr_to_string(symbols, &cond.lhs),
                    arrayflow_ir::pretty::expr_to_string(symbols, &cond.rhs)
                )
            }
            NodeKind::Summary { inner } => {
                format!("do {} = …", symbols.var_name(inner.iv))
            }
            NodeKind::Exit => "exit".to_string(),
        }
    }
}

/// The induction variable a graph was built for, together with its bound.
#[derive(Debug, Clone)]
pub struct LoopContext {
    /// Basic induction variable of the analyzed loop.
    pub iv: VarId,
    /// Upper bound `UB` if known at compile time.
    pub ub: Option<i64>,
}

/// Extracts every (use, def) reference site of a statement, in evaluation
/// order: RHS uses, LHS subscript uses, then the LHS def.
pub fn ref_sites_of(stmt: &Stmt) -> Vec<RefSite> {
    let mut out = Vec::new();
    if let Stmt::Assign(a) = stmt {
        for u in arrayflow_ir::visit::assign_uses(a) {
            out.push(RefSite {
                aref: u.clone(),
                is_def: false,
                stmt: Some(a.id),
            });
        }
        if let Some(d) = arrayflow_ir::visit::assign_def(a) {
            out.push(RefSite {
                aref: d.clone(),
                is_def: true,
                stmt: Some(a.id),
            });
        }
    }
    out
}
