#![warn(missing_docs)]
//! Loop flow graphs.
//!
//! The framework operates on a *loop flow graph* `FG = (N, E)` representing
//! the body of a single loop (paper §3): nodes are statements or summary
//! nodes (for nested loops, which have been analyzed already and replaced),
//! plus a distinguished `exit` node holding the induction variable increment
//! `i := i + 1`. The graph is acyclic — the iteration-to-iteration back edge
//! `exit → entry` is implicit and handled by the solver.
//!
//! This crate builds such graphs from `arrayflow-ir` loops, computes the
//! reverse postorder in which the solver visits nodes, and answers the
//! *intra-iteration precedence* queries (`pr(d, n)` in the paper) that the
//! preserve functions need.

pub mod build;
pub mod graph;
pub mod node;

pub use build::build_loop_graph;
pub use graph::LoopGraph;
pub use node::{ref_sites_of, Node, NodeId, NodeKind, RefSite};
