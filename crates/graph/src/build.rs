//! Construction of loop flow graphs from IR loops.

use arrayflow_ir::visit::array_uses_in_expr;
use arrayflow_ir::{Block, Loop, Stmt};

use crate::graph::LoopGraph;
use crate::node::{ref_sites_of, Node, NodeId, NodeKind, RefSite};

/// Builds the loop flow graph for `l`.
///
/// Nested loops become [`NodeKind::Summary`] nodes (the hierarchical scheme
/// of paper §3.2: innermost loops are analyzed first and then replaced).
/// Conditionals contribute a [`NodeKind::Test`] node whose successors are the
/// two branches; branches re-join at the following statement. A virtual
/// [`NodeKind::Entry`] node guarantees a unique entry and the final
/// [`NodeKind::Exit`] node represents `i := i + 1`.
///
/// # Example
///
/// ```
/// let p = arrayflow_ir::parse_program(
///     "do i = 1, 100
///        if A[i] > 0 then A[i] := A[i-1]; end
///      end").unwrap();
/// let g = arrayflow_graph::build_loop_graph(p.sole_loop().unwrap());
/// assert_eq!(g.len(), 4); // entry, test, assign, exit
/// assert_eq!(g.rpo().first(), Some(&g.entry()));
/// assert_eq!(g.rpo().last(), Some(&g.exit()));
/// ```
pub fn build_loop_graph(l: &Loop) -> LoopGraph {
    let mut b = Builder::default();
    let entry = b.push(Node {
        kind: NodeKind::Entry,
        refs: Vec::new(),
    });
    let frontier = b.add_block(&l.body, vec![entry]);
    let exit = b.push(Node {
        kind: NodeKind::Exit,
        refs: Vec::new(),
    });
    for f in frontier {
        b.edge(f, exit);
    }
    LoopGraph::from_parts(l.iv, l.upper.as_const(), b.nodes, b.succs, entry, exit)
}

#[derive(Default)]
struct Builder {
    nodes: Vec<Node>,
    succs: Vec<Vec<NodeId>>,
}

impl Builder {
    fn push(&mut self, node: Node) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(node);
        self.succs.push(Vec::new());
        id
    }

    fn edge(&mut self, from: NodeId, to: NodeId) {
        if !self.succs[from.index()].contains(&to) {
            self.succs[from.index()].push(to);
        }
    }

    /// Adds a block's statements; `frontier` is the set of dangling exits of
    /// the preceding code. Returns the new frontier.
    fn add_block(&mut self, block: &Block, mut frontier: Vec<NodeId>) -> Vec<NodeId> {
        for stmt in block {
            frontier = self.add_stmt(stmt, frontier);
        }
        frontier
    }

    fn add_stmt(&mut self, stmt: &Stmt, frontier: Vec<NodeId>) -> Vec<NodeId> {
        match stmt {
            Stmt::Assign(_) => {
                let node = self.push(Node {
                    kind: match stmt {
                        Stmt::Assign(a) => NodeKind::Assign {
                            stmt: a.id,
                            assign: a.clone(),
                        },
                        _ => unreachable!(),
                    },
                    refs: ref_sites_of(stmt),
                });
                for f in frontier {
                    self.edge(f, node);
                }
                vec![node]
            }
            Stmt::If {
                cond,
                then_blk,
                else_blk,
            } => {
                let mut refs = Vec::new();
                let mut uses = Vec::new();
                array_uses_in_expr(&cond.lhs, &mut uses);
                array_uses_in_expr(&cond.rhs, &mut uses);
                for u in uses {
                    refs.push(RefSite {
                        aref: u.clone(),
                        is_def: false,
                        stmt: None,
                    });
                }
                let test = self.push(Node {
                    kind: NodeKind::Test { cond: cond.clone() },
                    refs,
                });
                for f in frontier {
                    self.edge(f, test);
                }
                let mut out = self.add_block(then_blk, vec![test]);
                if else_blk.is_empty() {
                    // Fall-through edge around the then-branch.
                    if !out.contains(&test) {
                        out.push(test);
                    }
                } else {
                    let else_out = self.add_block(else_blk, vec![test]);
                    for e in else_out {
                        if !out.contains(&e) {
                            out.push(e);
                        }
                    }
                }
                out
            }
            Stmt::Do(inner) => {
                let node = self.push(Node {
                    kind: NodeKind::Summary {
                        inner: inner.clone(),
                    },
                    refs: collect_all_refs(&inner.body),
                });
                for f in frontier {
                    self.edge(f, node);
                }
                vec![node]
            }
        }
    }
}

/// Every reference site inside a block, recursing into nested structure.
/// Used to populate summary nodes.
pub fn collect_all_refs(block: &Block) -> Vec<RefSite> {
    let mut out = Vec::new();
    fn walk(block: &Block, out: &mut Vec<RefSite>) {
        for stmt in block {
            match stmt {
                Stmt::Assign(_) => out.extend(ref_sites_of(stmt)),
                Stmt::If {
                    cond,
                    then_blk,
                    else_blk,
                } => {
                    let mut uses = Vec::new();
                    array_uses_in_expr(&cond.lhs, &mut uses);
                    array_uses_in_expr(&cond.rhs, &mut uses);
                    for u in uses {
                        out.push(RefSite {
                            aref: u.clone(),
                            is_def: false,
                            stmt: None,
                        });
                    }
                    walk(then_blk, out);
                    walk(else_blk, out);
                }
                Stmt::Do(l) => walk(&l.body, out),
            }
        }
    }
    walk(block, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use arrayflow_ir::parse_program;

    fn fig1() -> arrayflow_ir::Program {
        parse_program(
            "do i = 1, UB
               C[i+2] := C[i] * 2;
               B[2*i] := C[i] + x;
               if C[i] == 0 then C[i] := B[i-1]; end
               B[i] := C[i+1];
             end",
        )
        .unwrap()
    }

    #[test]
    fn fig1_graph_shape() {
        let p = fig1();
        let g = build_loop_graph(p.sole_loop().unwrap());
        // entry, 2 assigns, test, guarded assign, final assign, exit
        assert_eq!(g.len(), 7);
        assert_eq!(g.rpo().len(), 7);
        assert_eq!(*g.rpo().first().unwrap(), g.entry());
        assert_eq!(*g.rpo().last().unwrap(), g.exit());
        // The test node has two successors: guarded assign and join.
        let test = g
            .node_ids()
            .find(|&id| matches!(g.node(id).kind, NodeKind::Test { .. }))
            .unwrap();
        assert_eq!(g.succs(test).len(), 2);
        // exit has no intra-iteration successors.
        assert!(g.succs(g.exit()).is_empty());
    }

    #[test]
    fn precedence_is_strict_and_transitive() {
        let p = fig1();
        let g = build_loop_graph(p.sole_loop().unwrap());
        let stmts = g.stmt_nodes();
        let first = stmts[0];
        let last = *stmts.last().unwrap();
        assert!(g.precedes(first, last));
        assert!(!g.precedes(last, first));
        assert!(!g.precedes(first, first), "precedence is strict");
        assert!(g.precedes(g.entry(), g.exit()));
    }

    #[test]
    fn if_else_joins() {
        let p = parse_program(
            "do i = 1, 10
               if x == 0 then A[i] := 1; else A[i] := 2; end
               B[i] := A[i];
             end",
        )
        .unwrap();
        let g = build_loop_graph(p.sole_loop().unwrap());
        // entry, test, 2 branch assigns, join assign, exit
        assert_eq!(g.len(), 6);
        let join = g
            .stmt_nodes()
            .into_iter()
            .find(|&id| {
                matches!(&g.node(id).kind, NodeKind::Assign { assign, .. }
                    if matches!(&assign.lhs, arrayflow_ir::LValue::Elem(r)
                        if p.array_name(r.array) == "B"))
            })
            .unwrap();
        assert_eq!(g.preds(join).len(), 2);
    }

    #[test]
    fn empty_then_branch_falls_through() {
        let p = parse_program(
            "do i = 1, 10
               if x == 0 then end
               A[i] := 1;
             end",
        )
        .unwrap();
        let g = build_loop_graph(p.sole_loop().unwrap());
        // entry, test, assign, exit — the test flows straight to the assign.
        assert_eq!(g.len(), 4);
    }

    #[test]
    fn nested_loop_becomes_summary() {
        let p = parse_program(
            "do j = 1, 10
               A[j] := 0;
               do i = 1, 5
                 B[i] := A[j] + 1;
               end
             end",
        )
        .unwrap();
        let g = build_loop_graph(p.sole_loop().unwrap());
        let summary = g
            .node_ids()
            .find(|&id| g.node(id).is_summary())
            .expect("summary node");
        let n = g.node(summary);
        assert_eq!(n.defs().count(), 1); // B[i]
        assert_eq!(n.uses().count(), 1); // A[j]
    }

    #[test]
    fn condition_reads_are_uses() {
        let p = fig1();
        let g = build_loop_graph(p.sole_loop().unwrap());
        let test = g
            .node_ids()
            .find(|&id| matches!(g.node(id).kind, NodeKind::Test { .. }))
            .unwrap();
        assert_eq!(g.node(test).uses().count(), 1); // C[i]
        assert_eq!(g.node(test).defs().count(), 0);
    }

    #[test]
    fn ub_is_captured_when_constant() {
        let p = parse_program("do i = 1, 64 A[i] := 0; end").unwrap();
        let g = build_loop_graph(p.sole_loop().unwrap());
        assert_eq!(g.ub, Some(64));
        let p2 = fig1();
        let g2 = build_loop_graph(p2.sole_loop().unwrap());
        assert_eq!(g2.ub, None);
    }

    #[test]
    fn dot_output_mentions_every_node() {
        let p = fig1();
        let g = build_loop_graph(p.sole_loop().unwrap());
        let dot = g.to_dot(&p.symbols);
        for id in g.node_ids() {
            assert!(dot.contains(&format!("{id} [label=")), "{dot}");
        }
        assert!(dot.contains("style=dashed"));
    }
}
