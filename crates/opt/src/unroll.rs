//! Controlled loop unrolling (paper §4.3).
//!
//! Unrolling uncovers fine-grained parallelism across iterations, but only
//! when loop-carried dependences do not re-serialize the larger body. The
//! controller *predicts* the unrolled critical path `l_unroll` from the
//! δ-reaching-references solution — which supplies every loop-carried
//! dependence with its distance — without constructing the unrolled body,
//! and unrolls incrementally while the predicted path stays under a
//! threshold `τ` with `l ≤ l_unroll ≤ 2·l` per doubling. For validation,
//! [`unroll`] really performs the transformation so the prediction can be
//! compared against a from-scratch analysis of the unrolled loop.

use std::collections::HashMap;

use arrayflow_analyses::{analyze_loop, AnalyzeError, Dep, LoopAnalysis};
use arrayflow_ir::stmt::StmtId;
use arrayflow_ir::{Expr, Loop, LoopBound, Program, Stmt};

/// The dependence graph of one loop body, with nodes identified by
/// assignment statement and edges carrying iteration distances.
#[derive(Debug, Clone)]
pub struct DepGraph {
    /// Statement ids in textual order.
    pub stmts: Vec<StmtId>,
    /// Edges `(src, dst, distance)` over indices into `stmts`.
    pub edges: Vec<(usize, usize, u64)>,
}

/// Builds the body dependence graph from the analysis (distances up to
/// `max_distance`).
pub fn dep_graph(analysis: &LoopAnalysis, max_distance: u64) -> DepGraph {
    let mut stmts: Vec<StmtId> = Vec::new();
    let mut index: HashMap<StmtId, usize> = HashMap::new();
    for site in &analysis.sites {
        if let Some(s) = site.stmt {
            if !site.in_summary && !index.contains_key(&s) {
                index.insert(s, stmts.len());
                stmts.push(s);
            }
        }
    }
    let mut edges = Vec::new();
    for Dep {
        src_site,
        dst_site,
        distance,
        ..
    } in analysis.dependences(max_distance)
    {
        let (Some(ss), Some(ds)) = (analysis.sites[src_site].stmt, analysis.sites[dst_site].stmt)
        else {
            continue;
        };
        if let (Some(&a), Some(&b)) = (index.get(&ss), index.get(&ds)) {
            if a == b && distance == 0 {
                continue;
            }
            edges.push((a, b, distance));
        }
    }
    edges.sort_unstable();
    edges.dedup();
    DepGraph { stmts, edges }
}

impl DepGraph {
    /// Length (in statements) of the critical path of a body unrolled
    /// `factor` times: longest chain in the graph with one node per
    /// (statement, copy) and an edge `(s, k) → (t, k + δ)` per dependence
    /// of distance `δ < factor`.
    ///
    /// With `factor = 1` this is the critical path `l` of the original
    /// body; §4.3's bound `l ≤ l_unroll ≤ 2·l` is asserted in tests.
    pub fn critical_path(&self, factor: u64) -> usize {
        let n = self.stmts.len();
        if n == 0 {
            return 0;
        }
        let f = factor as usize;
        // Longest path over the DAG; nodes in (copy, textual) order are
        // topologically sorted because distance-0 edges respect textual
        // order and carried edges move to later copies.
        let mut longest = vec![1usize; n * f];
        for k in 0..f {
            for &(a, b, d) in &self.edges {
                let kd = k + d as usize;
                if kd >= f {
                    continue;
                }
                if d == 0 && b <= a {
                    continue; // defensive: only forward intra-copy edges
                }
                let (src, dst) = (k * n + a, kd * n + b);
                if longest[src] + 1 > longest[dst] {
                    longest[dst] = longest[src] + 1;
                }
            }
        }
        // Process copies in order; within a copy, edges must be relaxed in
        // topological (textual) order — redo passes until stable for the
        // rare distance-0 chains spanning several statements.
        let mut changed = true;
        while changed {
            changed = false;
            for k in 0..f {
                for &(a, b, d) in &self.edges {
                    let kd = k + d as usize;
                    if kd >= f || (d == 0 && b <= a) {
                        continue;
                    }
                    let (src, dst) = (k * n + a, kd * n + b);
                    if longest[src] + 1 > longest[dst] {
                        longest[dst] = longest[src] + 1;
                        changed = true;
                    }
                }
            }
        }
        longest.into_iter().max().unwrap_or(0)
    }
}

/// Errors from [`unroll`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UnrollError {
    /// Factor must be at least 1.
    BadFactor,
    /// The program body is not a single normalized loop.
    NotASingleLoop,
}

impl std::fmt::Display for UnrollError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UnrollError::BadFactor => write!(f, "unroll factor must be ≥ 1"),
            UnrollError::NotASingleLoop => write!(f, "program body is not a single do-loop"),
        }
    }
}

impl std::error::Error for UnrollError {}

/// Unrolls the program's single loop by `factor`:
///
/// ```text
/// do i' = 1, UB/f            -- f copies of the body, i = f·(i'−1)+k
/// end
/// do i = (UB/f)·f + 1, UB    -- remainder iterations
/// end
/// ```
///
/// Works for symbolic `UB` as well (bounds become expressions).
///
/// # Errors
///
/// See [`UnrollError`].
pub fn unroll(program: &Program, factor: u64) -> Result<Program, UnrollError> {
    if factor == 0 {
        return Err(UnrollError::BadFactor);
    }
    let mut out = program.clone();
    let l = out.sole_loop().ok_or(UnrollError::NotASingleLoop)?.clone();
    if !l.is_normalized() {
        return Err(UnrollError::NotASingleLoop);
    }
    if factor == 1 {
        return Ok(out);
    }
    let f = factor as i64;
    let ub = l.upper.to_expr();

    let new_iv = out.symbols.fresh_var(&format!("{}_u", program.name(l.iv)));
    let mut unrolled_body = Vec::new();
    for k in 0..f {
        // i = f·(i'−1) + 1 + k = f·i' − (f − 1 − k)
        let replacement = Expr::sub(
            Expr::mul(Expr::Const(f), Expr::Scalar(new_iv)),
            Expr::Const(f - 1 - k),
        );
        let mut copy = l.body.clone();
        substitute_block(&mut copy, l.iv, &replacement);
        unrolled_body.append(&mut copy);
    }
    let main = Loop {
        iv: new_iv,
        lower: LoopBound::Const(1),
        upper: match l.upper.as_const() {
            Some(u) => LoopBound::Const(u / f),
            None => LoopBound::Expr(Expr::bin(
                arrayflow_ir::BinOp::Div,
                ub.clone(),
                Expr::Const(f),
            )),
        },
        step: 1,
        body: unrolled_body,
    };
    let remainder = Loop {
        iv: l.iv,
        lower: match l.upper.as_const() {
            Some(u) => LoopBound::Expr(Expr::Const((u / f) * f + 1)),
            None => LoopBound::Expr(Expr::add(
                Expr::mul(
                    Expr::bin(arrayflow_ir::BinOp::Div, ub.clone(), Expr::Const(f)),
                    Expr::Const(f),
                ),
                Expr::Const(1),
            )),
        },
        upper: l.upper.clone(),
        step: 1,
        body: l.body.clone(),
    };
    out.body = vec![Stmt::Do(main), Stmt::Do(remainder)];
    out.renumber();
    Ok(out)
}

fn substitute_block(block: &mut Vec<Stmt>, iv: arrayflow_ir::VarId, replacement: &Expr) {
    for stmt in block {
        match stmt {
            Stmt::Assign(a) => {
                a.rhs = a.rhs.substitute_scalar(iv, replacement);
                if let arrayflow_ir::LValue::Elem(r) = &mut a.lhs {
                    for s in &mut r.subs {
                        *s = s.substitute_scalar(iv, replacement);
                    }
                }
            }
            Stmt::If {
                cond,
                then_blk,
                else_blk,
            } => {
                cond.lhs = cond.lhs.substitute_scalar(iv, replacement);
                cond.rhs = cond.rhs.substitute_scalar(iv, replacement);
                substitute_block(then_blk, iv, replacement);
                substitute_block(else_blk, iv, replacement);
            }
            Stmt::Do(inner) => substitute_block(&mut inner.body, iv, replacement),
        }
    }
}

/// One step of the controller's history.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnrollStep {
    /// Factor evaluated.
    pub factor: u64,
    /// Predicted critical path of the unrolled body.
    pub predicted_path: usize,
}

/// Result of [`controlled_unroll`].
#[derive(Debug, Clone)]
pub struct ControlledUnroll {
    /// The chosen factor (1 = leave the loop alone).
    pub factor: u64,
    /// Critical path of the original body.
    pub base_path: usize,
    /// Evaluated candidates.
    pub history: Vec<UnrollStep>,
    /// The transformed program at the chosen factor.
    pub program: Program,
}

/// Controller parameters.
#[derive(Debug, Clone, Copy)]
pub struct UnrollConfig {
    /// Unrolling at factor `f` is accepted while
    /// `l_unroll(f) ≤ τ · f · l / 2` … concretely: while each doubling adds
    /// less than `threshold × l` to the path (the paper's τ with
    /// `1 ≤ τ < 2` per step). Typical value 1.5.
    pub threshold: f64,
    /// Upper bound on the factor.
    pub max_factor: u64,
}

impl Default for UnrollConfig {
    fn default() -> Self {
        Self {
            threshold: 1.5,
            max_factor: 8,
        }
    }
}

/// Incrementally decides an unroll factor from dependence-distance
/// information (§4.3) and applies it.
///
/// # Errors
///
/// Propagates analysis and transformation failures.
pub fn controlled_unroll(
    program: &Program,
    config: &UnrollConfig,
) -> Result<ControlledUnroll, AnalyzeError> {
    let analysis = analyze_loop(program)?;
    let g = dep_graph(&analysis, config.max_factor);
    let base = g.critical_path(1);
    let mut history = Vec::new();
    let mut chosen = 1;
    let mut f = 2;
    while f <= config.max_factor {
        let predicted = g.critical_path(f);
        history.push(UnrollStep {
            factor: f,
            predicted_path: predicted,
        });
        // Accept while the path grows slower than the threshold allows:
        // predicted ≤ τ · (f/prev_f) share — concretely compare against the
        // serial worst case 2·l per doubling.
        let limit = (config.threshold * base as f64 * (f as f64 / 2.0)).max(base as f64);
        if (predicted as f64) <= limit {
            chosen = f;
        } else {
            break;
        }
        f *= 2;
    }
    let program = unroll(program, chosen).unwrap_or_else(|_| program.clone());
    Ok(ControlledUnroll {
        factor: chosen,
        base_path: base,
        history,
        program,
    })
}
