//! Redundant load elimination / scalar replacement (paper §4.2.2, Fig. 7).
//!
//! Every guaranteed reuse found by the δ-available analysis is realized at
//! the source level by a chain of scalar temporaries — the IR-level
//! counterpart of a register pipeline:
//!
//! ```text
//! t₁ := A[f(0)]; …                       (pre-loop initialization)
//! do i = 1, UB
//!   t₀ := rhs; A[f(i)] := t₀;            (generating definition)
//!   … t_δ …                              (reuse point, was A[f(i−δ)])
//!   t_δ := t_{δ−1}; …                    (chain shift, end of body)
//! end
//! ```
//!
//! A generating *use* instead loads once into `t₀`. The transformation is
//! semantics-preserving by construction of the must-analysis: a reuse is
//! only reported when the generator's value reaches the use on **all**
//! paths, which also implies the generator executes unconditionally when
//! δ ≥ 1.

use std::collections::HashMap;

use arrayflow_analyses::{analyze_loop, best_reuse, AnalyzeError, LoopAnalysis, Reuse};
use arrayflow_ir::stmt::Assign;
use arrayflow_ir::stmt::StmtId;
use arrayflow_ir::{ArrayRef, Block, Expr, LValue, Program, Stmt, VarId};

/// Outcome of [`eliminate_redundant_loads`].
#[derive(Debug, Clone)]
pub struct LoadElim {
    /// The transformed program.
    pub program: Program,
    /// Number of array reads replaced by temporaries.
    pub replaced_uses: usize,
    /// Number of temporary chains introduced.
    pub chains: usize,
}

/// Plans and applies scalar replacement on a single-loop program.
///
/// # Errors
///
/// Propagates [`AnalyzeError`] from the analysis phase.
pub fn eliminate_redundant_loads(program: &Program) -> Result<LoadElim, AnalyzeError> {
    let analysis = analyze_loop(program)?;
    Ok(apply(program, &analysis))
}

struct Chain {
    gen_site: usize,
    temps: Vec<VarId>, // temps[j] = t_j
    reuses: Vec<Reuse>,
}

/// Applies scalar replacement given a completed analysis.
pub fn apply(program: &Program, analysis: &LoopAnalysis) -> LoadElim {
    let mut out = program.clone();
    let reuses = analysis.reuse_pairs();

    // One provider per use; group by generator.
    let mut per_gen: std::collections::BTreeMap<usize, Vec<Reuse>> = Default::default();
    let mut seen = std::collections::HashSet::new();
    for r in &reuses {
        if seen.insert(r.use_site) {
            if let Some(best) = best_reuse(&reuses, r.use_site) {
                per_gen.entry(best.gen_site).or_default().push(best.clone());
            }
        }
    }

    let mut chains = Vec::new();
    for (gen_site, rs) in per_gen {
        let site = &analysis.sites[gen_site];
        let usable = site.stmt.is_some()
            && !site.in_summary
            && site
                .sub
                .as_ref()
                .is_some_and(|s| s.coef.as_constant().is_some() && s.rest.as_constant().is_some())
            && rs.iter().all(|r| {
                analysis.sites[r.use_site].stmt.is_some() && !analysis.sites[r.use_site].in_summary
            });
        if !usable {
            continue;
        }
        let delta0 = rs.iter().map(|r| r.distance).max().unwrap_or(0) as usize;
        let base = analysis
            .site_text(gen_site)
            .replace(['[', ']', ' ', '+', '-', '*'], "_");
        let temps: Vec<VarId> = (0..=delta0)
            .map(|j| out.symbols.fresh_var(&format!("t_{base}_{j}")))
            .collect();
        chains.push(Chain {
            gen_site,
            temps,
            reuses: rs,
        });
    }

    if chains.is_empty() {
        return LoadElim {
            program: out,
            replaced_uses: 0,
            chains: 0,
        };
    }

    // Index the rewrites by statement.
    // use replacement: (stmt, textual ref) → temp
    let mut use_rewrites: HashMap<(StmtId, ArrayRef), VarId> = HashMap::new();
    // generator handling: stmt → (chain idx)
    let mut def_gens: HashMap<StmtId, usize> = HashMap::new();
    let mut use_gens: HashMap<StmtId, Vec<usize>> = HashMap::new();
    let mut replaced = 0usize;
    for (k, chain) in chains.iter().enumerate() {
        let gsite = &analysis.sites[chain.gen_site];
        let gstmt = gsite.stmt.expect("filtered");
        if gsite.is_def {
            def_gens.insert(gstmt, k);
        } else {
            use_gens.entry(gstmt).or_default().push(k);
        }
        for r in &chain.reuses {
            let usite = &analysis.sites[r.use_site];
            use_rewrites.insert(
                (usite.stmt.expect("filtered"), usite.aref.clone()),
                chain.temps[r.distance as usize],
            );
            replaced += 1;
        }
    }

    // The analysis facts hold only after δ₀ start-up iterations (paper
    // §3.2): peel the first P = max δ₀ iterations to run unchanged, then
    // initialize each temporary chain from memory — must-availability
    // guarantees the elements are still intact at that point — and enter
    // the rewritten steady-state loop at iteration P + 1.
    let peel = chains
        .iter()
        .map(|c| c.temps.len() as i64 - 1)
        .max()
        .unwrap_or(0);
    let original_body;
    let loop_iv;
    let upper;
    {
        let l = out.sole_loop_mut().expect("analyzed as a single loop");
        original_body = l.body.clone();
        loop_iv = l.iv;
        upper = l.upper.clone();
        let mut body = std::mem::take(&mut l.body);
        body = rewrite_block(body, &use_rewrites, &def_gens, &use_gens, &chains, analysis);
        // Chain shifts at the end of the body.
        for chain in &chains {
            for j in (1..chain.temps.len()).rev() {
                body.push(Stmt::Assign(Assign::new(
                    LValue::Scalar(chain.temps[j]),
                    Expr::Scalar(chain.temps[j - 1]),
                )));
            }
        }
        l.body = body;
        if peel > 0 {
            l.lower = arrayflow_ir::LoopBound::Const(peel + 1);
        }
    }

    let mut pre: Vec<Stmt> = Vec::new();
    if peel > 0 {
        // Peeled prologue: `do i = 1, min(P, UB)` — realized with an
        // `if i <= UB` guard when the bound is symbolic.
        let prologue_body = match upper.as_const() {
            Some(_) => original_body,
            None => vec![Stmt::If {
                cond: arrayflow_ir::Cond::new(
                    Expr::Scalar(loop_iv),
                    arrayflow_ir::RelOp::Le,
                    upper.to_expr(),
                ),
                then_blk: original_body,
                else_blk: Vec::new(),
            }],
        };
        let prologue_ub = match upper.as_const() {
            Some(u) => u.min(peel),
            None => peel,
        };
        pre.push(Stmt::Do(arrayflow_ir::Loop {
            iv: loop_iv,
            lower: arrayflow_ir::LoopBound::Const(1),
            upper: arrayflow_ir::LoopBound::Const(prologue_ub),
            step: 1,
            body: prologue_body,
        }));
    }
    // Chain initialization: t_j := A[f(P + 1 − j)].
    for chain in &chains {
        let gsite = &analysis.sites[chain.gen_site];
        let sub = gsite.sub.as_ref().expect("filtered");
        let a = sub.coef.as_constant().expect("filtered");
        let b = sub.rest.as_constant().expect("filtered");
        for (j, &t) in chain.temps.iter().enumerate().skip(1) {
            let elem = a * (peel + 1 - j as i64) + b;
            pre.push(Stmt::Assign(Assign::new(
                LValue::Scalar(t),
                Expr::Elem(ArrayRef::new(gsite.aref.array, Expr::Const(elem))),
            )));
        }
    }
    let mut body = std::mem::take(&mut out.body);
    pre.append(&mut body);
    out.body = pre;
    out.renumber();

    LoadElim {
        program: out,
        replaced_uses: replaced,
        chains: chains.len(),
    }
}

fn rewrite_block(
    block: Block,
    use_rewrites: &HashMap<(StmtId, ArrayRef), VarId>,
    def_gens: &HashMap<StmtId, usize>,
    use_gens: &HashMap<StmtId, Vec<usize>>,
    chains: &[Chain],
    analysis: &LoopAnalysis,
) -> Block {
    let mut out = Vec::new();
    for stmt in block {
        match stmt {
            Stmt::Assign(mut a) => {
                let id = a.id;
                // Replace reuse-point reads with temporaries.
                a.rhs = replace_uses(&a.rhs, id, use_rewrites);
                if let LValue::Elem(r) = &mut a.lhs {
                    for s in &mut r.subs {
                        *s = replace_uses(s, id, use_rewrites);
                    }
                }
                // A generating use loads once into t₀ before the statement.
                if let Some(ks) = use_gens.get(&id) {
                    for &k in ks {
                        let chain = &chains[k];
                        let gref = analysis.sites[chain.gen_site].aref.clone();
                        out.push(Stmt::Assign(Assign::new(
                            LValue::Scalar(chain.temps[0]),
                            Expr::Elem(gref.clone()),
                        )));
                        a.rhs = substitute_ref(&a.rhs, &gref, chain.temps[0]);
                        if let LValue::Elem(r) = &mut a.lhs {
                            for s in &mut r.subs {
                                *s = substitute_ref(s, &gref, chain.temps[0]);
                            }
                        }
                    }
                }
                // A generating definition stores through t₀.
                if let Some(&k) = def_gens.get(&id) {
                    let chain = &chains[k];
                    let t0 = chain.temps[0];
                    let rhs = std::mem::replace(&mut a.rhs, Expr::Scalar(t0));
                    out.push(Stmt::Assign(Assign::new(LValue::Scalar(t0), rhs)));
                }
                out.push(Stmt::Assign(a));
            }
            Stmt::If {
                cond,
                then_blk,
                else_blk,
            } => {
                out.push(Stmt::If {
                    cond,
                    then_blk: rewrite_block(
                        then_blk,
                        use_rewrites,
                        def_gens,
                        use_gens,
                        chains,
                        analysis,
                    ),
                    else_blk: rewrite_block(
                        else_blk,
                        use_rewrites,
                        def_gens,
                        use_gens,
                        chains,
                        analysis,
                    ),
                });
            }
            Stmt::Do(l) => out.push(Stmt::Do(l)),
        }
    }
    out
}

fn replace_uses(e: &Expr, stmt: StmtId, rewrites: &HashMap<(StmtId, ArrayRef), VarId>) -> Expr {
    match e {
        Expr::Elem(r) => {
            if let Some(&t) = rewrites.get(&(stmt, r.clone())) {
                return Expr::Scalar(t);
            }
            Expr::Elem(ArrayRef {
                array: r.array,
                subs: r
                    .subs
                    .iter()
                    .map(|s| replace_uses(s, stmt, rewrites))
                    .collect(),
            })
        }
        Expr::Bin(op, l, r) => Expr::bin(
            *op,
            replace_uses(l, stmt, rewrites),
            replace_uses(r, stmt, rewrites),
        ),
        _ => e.clone(),
    }
}

fn substitute_ref(e: &Expr, target: &ArrayRef, temp: VarId) -> Expr {
    match e {
        Expr::Elem(r) if r == target => Expr::Scalar(temp),
        Expr::Elem(r) => Expr::Elem(ArrayRef {
            array: r.array,
            subs: r
                .subs
                .iter()
                .map(|s| substitute_ref(s, target, temp))
                .collect(),
        }),
        Expr::Bin(op, l, r) => Expr::bin(
            *op,
            substitute_ref(l, target, temp),
            substitute_ref(r, target, temp),
        ),
        _ => e.clone(),
    }
}
