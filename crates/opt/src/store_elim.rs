//! Redundant store elimination (paper §4.2.1, Fig. 6).
//!
//! A store that is δ-redundant is overwritten — without an intervening
//! read — by another store δ iterations later on every path, so it can be
//! removed from all but the final δ iterations. The transformation removes
//! the store from the main loop and *unpeels* the final δ iterations into
//! an epilogue loop that still contains it. Stores that are dead within
//! their own iteration (δ = 0) are removed outright.

use arrayflow_analyses::{analyze_loop, AnalyzeError, LoopAnalysis};
use arrayflow_ir::stmt::StmtId;
use arrayflow_ir::{Block, Expr, Loop, LoopBound, Program, Stmt};

/// Outcome of [`eliminate_redundant_stores`].
#[derive(Debug, Clone)]
pub struct StoreElim {
    /// The transformed program.
    pub program: Program,
    /// Statement ids of the stores removed from the main loop.
    pub removed: Vec<StmtId>,
    /// Iterations unpeeled into the epilogue (the largest redundancy
    /// distance applied; 0 when only dead stores were removed).
    pub unpeeled: u64,
}

/// Detects and removes redundant stores in a single-loop program.
///
/// Cross-iteration redundancies (δ ≥ 1) are applied only when the trip
/// count is a compile-time constant greater than δ, so the epilogue bounds
/// are exact; a store whose right-hand side contains a division is left
/// alone (removing it could suppress a division-by-zero fault).
///
/// # Errors
///
/// Propagates [`AnalyzeError`] from the analysis phase.
pub fn eliminate_redundant_stores(program: &Program) -> Result<StoreElim, AnalyzeError> {
    let analysis = analyze_loop(program)?;
    Ok(apply(program, &analysis))
}

/// Applies the transformation given a completed analysis.
pub fn apply(program: &Program, analysis: &LoopAnalysis) -> StoreElim {
    let mut out = program.clone();
    let ub = analysis.graph.ub;

    let mut dead: Vec<StmtId> = Vec::new(); // δ = 0
    let mut peeled: Vec<(StmtId, u64)> = Vec::new(); // δ ≥ 1
    for r in analysis.redundant_stores() {
        let Some(stmt) = r.stmt else { continue };
        let site = &analysis.sites[r.store_site];
        if site.in_summary || has_div(&assign_rhs(program, stmt)) {
            continue;
        }
        if r.distance == 0 {
            dead.push(stmt);
        } else if ub.is_some_and(|u| u > r.distance as i64) {
            peeled.push((stmt, r.distance));
        }
    }
    dead.sort();
    dead.dedup();
    peeled.sort();
    peeled.dedup_by_key(|(s, _)| *s);
    // A store that is both dead and peelable only needs the cheaper removal.
    peeled.retain(|(s, _)| !dead.contains(s));

    if dead.is_empty() && peeled.is_empty() {
        return StoreElim {
            program: out,
            removed: Vec::new(),
            unpeeled: 0,
        };
    }

    let delta_max = peeled.iter().map(|&(_, d)| d).max().unwrap_or(0);
    let mut removed: Vec<StmtId> = dead.clone();
    removed.extend(peeled.iter().map(|&(s, _)| s));

    let l = out.sole_loop_mut().expect("analyzed as a single loop");
    let epilogue = if delta_max > 0 {
        let ub = ub.expect("checked above");
        // Main loop runs 1 … UB − δmax; epilogue UB − δmax + 1 … UB with
        // the original body (minus the always-dead stores).
        let mut epi_body = l.body.clone();
        remove_stmts(&mut epi_body, &dead);
        l.upper = LoopBound::Const(ub - delta_max as i64);
        Some(Stmt::Do(Loop {
            iv: l.iv,
            lower: LoopBound::Expr(Expr::Const(ub - delta_max as i64 + 1)),
            upper: LoopBound::Const(ub),
            step: 1,
            body: epi_body,
        }))
    } else {
        None
    };
    remove_stmts(&mut l.body, &removed);
    if let Some(epi) = epilogue {
        out.body.push(epi);
    }
    out.renumber();

    StoreElim {
        program: out,
        removed,
        unpeeled: delta_max,
    }
}

fn assign_rhs(program: &Program, id: StmtId) -> Expr {
    let mut found = Expr::Const(0);
    arrayflow_ir::visit::for_each_assign(&program.body, &mut |a| {
        if a.id == id {
            found = a.rhs.clone();
        }
    });
    found
}

fn has_div(e: &Expr) -> bool {
    match e {
        Expr::Const(_) | Expr::Scalar(_) => false,
        Expr::Elem(r) => r.subs.iter().any(has_div),
        Expr::Bin(op, l, r) => matches!(op, arrayflow_ir::BinOp::Div) || has_div(l) || has_div(r),
    }
}

fn remove_stmts(block: &mut Block, ids: &[StmtId]) {
    block.retain_mut(|stmt| match stmt {
        Stmt::Assign(a) => !ids.contains(&a.id),
        Stmt::If {
            then_blk, else_blk, ..
        } => {
            remove_stmts(then_blk, ids);
            remove_stmts(else_blk, ids);
            // Keep the conditional even if it became empty: its condition
            // has no side effects, but an empty if is harmless and keeps
            // the transformation simple to reason about.
            true
        }
        Stmt::Do(l) => {
            remove_stmts(&mut l.body, ids);
            true
        }
    });
}
