//! Register pipelining (paper §4.1).
//!
//! The allocation pipeline follows the paper's four phases:
//!
//! 1. **Live range analysis** — live ranges of subscripted variables come
//!    from the δ-available instance (each generating reference with its
//!    guaranteed reuse points and maximal distance `δ₀`); scalar live
//!    ranges are the classical kind.
//! 2. **IRIG construction** — scalar and subscripted ranges in one
//!    *integrated register interference graph*.
//! 3. **Multi-coloring** — priority-based coloring generalized so a node
//!    consumes `depth(l)` colors: `depth = 1` for scalars,
//!    `depth = δ₀ + 1` for subscripted ranges (§4.1.2/§4.1.3). The
//!    priority is the savings/cost ratio
//!    `P(l) = (access(l) − 1)·Cm / (|l|·depth(l))`.
//! 4. **Code generation** — the chosen ranges become a
//!    [`PipelinePlan`] consumed by `arrayflow_machine::compile_with`
//!    (§4.1.4: preamble loads, stage reads at reuse points, pipeline
//!    progression moves).

use std::collections::{BTreeMap, BTreeSet};

use arrayflow_analyses::{best_reuse, LoopAnalysis, Reuse};
use arrayflow_ir::VarId;
use arrayflow_machine::{PipeRange, PipelinePlan, ReusePoint};

/// What a live range holds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RangeKind {
    /// A scalar variable (depth 1).
    Scalar(VarId),
    /// A subscripted live range: the generating reference (by site index)
    /// plus its reuse points.
    Pipe {
        /// Site index of the generator.
        gen_site: usize,
        /// The reuses served, in site-index form.
        reuses: Vec<Reuse>,
    },
}

/// A node of the integrated register interference graph.
#[derive(Debug, Clone)]
pub struct LiveRange {
    /// Payload.
    pub kind: RangeKind,
    /// Registers this range needs (`depth(l)`).
    pub depth: usize,
    /// Number of access points (generation + reuses for pipes, occurrence
    /// count for scalars).
    pub accesses: usize,
    /// Length of the range in statements (`|l|`).
    pub len: usize,
    /// The savings/cost priority `P(l)`.
    pub priority: f64,
}

/// The integrated register interference graph (§4.1.2).
#[derive(Debug, Clone, Default)]
pub struct Irig {
    /// Nodes.
    pub ranges: Vec<LiveRange>,
    /// Adjacency: `adj[k]` lists the neighbors of range `k`.
    pub adj: Vec<Vec<usize>>,
}

impl Irig {
    /// True if range `n` is *unconstrained*: it and all its neighbors can
    /// always be colored (`depth(n) + Σ depth(m) ≤ k`, §4.1.3).
    pub fn is_unconstrained(&self, n: usize, k: usize) -> bool {
        let total: usize = self.ranges[n].depth
            + self.adj[n]
                .iter()
                .map(|&m| self.ranges[m].depth)
                .sum::<usize>();
        total <= k
    }
}

/// The outcome of register allocation.
#[derive(Debug, Clone)]
pub struct Allocation {
    /// The interference graph that was colored.
    pub irig: Irig,
    /// Indices of ranges that received registers, in coloring order.
    pub colored: Vec<usize>,
    /// Indices of ranges that did not fit.
    pub spilled: Vec<usize>,
    /// Registers consumed by the colored ranges.
    pub registers_used: usize,
    /// The machine-level plan for the pipelined ranges that were colored.
    pub plan: PipelinePlan,
}

/// Tuning knobs for the allocator.
#[derive(Debug, Clone, Copy)]
pub struct PipelineConfig {
    /// Available registers `k`.
    pub registers: usize,
    /// Average memory load cost (`Cm` in the priority function).
    pub load_cost: f64,
    /// Per-iteration cost of one pipeline progression move, charged against
    /// the savings (§4.1.4 discusses this overhead; set 0 to ignore).
    pub move_cost: f64,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        Self {
            registers: 16,
            load_cost: 4.0,
            move_cost: 1.0,
        }
    }
}

/// Builds subscripted live ranges from the analysis: one candidate per
/// generating reference that provides at least one reuse (phase 1).
pub fn live_ranges(analysis: &LoopAnalysis, config: &PipelineConfig) -> Irig {
    let reuses = analysis.reuse_pairs();
    let n_stmts = analysis.graph.stmt_nodes().len().max(1);

    // Serve each use by its best provider only.
    let mut chosen: Vec<Reuse> = Vec::new();
    let mut seen_uses = BTreeSet::new();
    for r in &reuses {
        if seen_uses.insert(r.use_site) {
            if let Some(best) = best_reuse(&reuses, r.use_site) {
                chosen.push(best.clone());
            }
        }
    }

    // Group by generator site.
    let mut by_gen: BTreeMap<usize, Vec<Reuse>> = BTreeMap::new();
    for r in chosen {
        by_gen.entry(r.gen_site).or_default().push(r);
    }

    let mut irig = Irig::default();
    for (gen_site, reuses) in by_gen {
        let site = &analysis.sites[gen_site];
        // The plan needs a concrete integer subscript and a real statement.
        let ok = site.stmt.is_some()
            && !site.in_summary
            && site
                .sub
                .as_ref()
                .is_some_and(|s| s.coef.as_constant().is_some() && s.rest.as_constant().is_some())
            && reuses
                .iter()
                .all(|r| analysis.sites[r.use_site].stmt.is_some());
        if !ok {
            continue;
        }
        let delta0 = reuses.iter().map(|r| r.distance).max().unwrap_or(0);
        let depth = delta0 as usize + 1;
        let accesses = reuses.len() + 1;
        let len = n_stmts;
        // Savings: each reuse avoids a load; progression moves cost
        // (depth − 1) per iteration.
        let savings =
            (accesses - 1) as f64 * config.load_cost - (depth - 1) as f64 * config.move_cost;
        let priority = savings / (len as f64 * depth as f64);
        irig.ranges.push(LiveRange {
            kind: RangeKind::Pipe { gen_site, reuses },
            depth,
            accesses,
            len,
            priority,
        });
    }

    // Scalar live ranges from conventional liveness (§4.1.1 phase (i)):
    // real spans and access counts, so short-lived temporaries do not
    // interfere with each other.
    let n_pipes = irig.ranges.len();
    let scalar_ranges = arrayflow_analyses::scalar_live_ranges(&analysis.graph);
    let mut scalar_meta = Vec::new();
    for sr in scalar_ranges {
        if sr.is_empty() {
            continue;
        }
        let accesses = sr.accesses;
        let len = sr.len();
        irig.ranges.push(LiveRange {
            kind: RangeKind::Scalar(sr.var),
            depth: 1,
            accesses,
            len,
            priority: (accesses.saturating_sub(1)) as f64 * config.load_cost / len as f64,
        });
        scalar_meta.push(sr);
    }

    // Interference: pipeline ranges span the whole loop (they live across
    // the back edge), so they interfere with every other range; scalar
    // ranges interfere only where their live spans overlap.
    let n = irig.ranges.len();
    irig.adj = vec![Vec::new(); n];
    for a in 0..n {
        for b in (a + 1)..n {
            let interferes = if a < n_pipes || b < n_pipes {
                true
            } else {
                scalar_meta[a - n_pipes].interferes(&scalar_meta[b - n_pipes])
            };
            if interferes {
                irig.adj[a].push(b);
                irig.adj[b].push(a);
            }
        }
    }
    irig
}

/// Multi-colors the IRIG by priority (§4.1.3) and emits the plan (§4.1.4).
pub fn allocate(analysis: &LoopAnalysis, config: &PipelineConfig) -> Allocation {
    let irig = live_ranges(analysis, config);
    // Reserve one register for the induction variable.
    let k = config.registers.saturating_sub(1);

    // Postpone unconstrained nodes (they can always be colored), color the
    // constrained ones by priority, then the unconstrained ones.
    let mut order: Vec<usize> = (0..irig.ranges.len()).collect();
    order.sort_by(|&a, &b| {
        let ua = irig.is_unconstrained(a, k);
        let ub = irig.is_unconstrained(b, k);
        ua.cmp(&ub) // constrained (false) first
            .then(
                irig.ranges[b]
                    .priority
                    .partial_cmp(&irig.ranges[a].priority)
                    .unwrap_or(std::cmp::Ordering::Equal),
            )
    });

    let mut used = 0usize;
    let mut colored = Vec::new();
    let mut spilled = Vec::new();
    for idx in order {
        let r = &irig.ranges[idx];
        let beneficial = r.priority > 0.0 || matches!(r.kind, RangeKind::Scalar(_));
        if beneficial && used + r.depth <= k {
            used += r.depth;
            colored.push(idx);
        } else {
            spilled.push(idx);
        }
    }

    // Emit the plan for the colored pipeline ranges.
    let mut plan = PipelinePlan {
        iv: Some(analysis.graph.iv),
        ranges: Vec::new(),
    };
    // Two sites can be textually identical (same stmt, same reference);
    // the code generator identifies generators textually, so only one
    // range per textual generator may be emitted.
    let mut seen_gens: BTreeSet<(arrayflow_ir::stmt::StmtId, String)> = BTreeSet::new();
    for &idx in &colored {
        let RangeKind::Pipe { gen_site, reuses } = &irig.ranges[idx].kind else {
            continue;
        };
        let site = &analysis.sites[*gen_site];
        if !seen_gens.insert((
            site.stmt.expect("checked in live_ranges"),
            analysis.site_text(*gen_site),
        )) {
            continue;
        }
        let sub = site.sub.as_ref().expect("checked in live_ranges");
        plan.ranges.push(PipeRange {
            array: site.aref.array,
            gen_stmt: site.stmt.expect("checked in live_ranges"),
            gen_ref: site.aref.clone(),
            gen_is_def: site.is_def,
            gen_a: sub.coef.as_constant().expect("checked"),
            gen_b: sub.rest.as_constant().expect("checked"),
            depth: irig.ranges[idx].depth,
            reuse_points: reuses
                .iter()
                .map(|r| ReusePoint {
                    stmt: analysis.sites[r.use_site].stmt.expect("checked"),
                    aref: analysis.sites[r.use_site].aref.clone(),
                    distance: r.distance,
                })
                .collect(),
        });
    }

    Allocation {
        irig,
        colored,
        spilled,
        registers_used: used + 1, // + the reserved iv register
        plan,
    }
}

/// Predicts the total cycles saved by executing `plan` instead of
/// conventional code for `ub` iterations under `cost` — the quantity the
/// §4.1.2 priority function estimates per live range. Per steady-state
/// iteration a range saves one load per reuse point and pays `depth − 1`
/// progression moves plus, for definition generators, one stage-feed move;
/// the peeled start-up iterations save nothing.
pub fn predicted_cycle_savings(
    plan: &PipelinePlan,
    ub: i64,
    cost: &arrayflow_machine::CostModel,
) -> i64 {
    let peel = plan
        .ranges
        .iter()
        .map(|r| r.depth as i64 - 1)
        .max()
        .unwrap_or(0);
    let steady = (ub - peel).max(0);
    plan.ranges
        .iter()
        .map(|r| {
            let saved = r.reuse_points.len() as i64 * cost.load as i64;
            // A use-kind generator that is itself another range's reuse
            // point is fed by a register forward instead of its load.
            let chained = !r.gen_is_def
                && plan.ranges.iter().any(|other| {
                    other
                        .reuse_points
                        .iter()
                        .any(|rp| rp.stmt == r.gen_stmt && rp.aref == r.gen_ref)
                });
            let moves = (r.depth as i64 - 1 + i64::from(r.gen_is_def) + i64::from(chained))
                * cost.mov as i64;
            (saved - moves) * steady
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use arrayflow_analyses::analyze_loop;
    use arrayflow_ir::parse_program;

    fn irig_of(src: &str) -> (arrayflow_ir::Program, Irig) {
        let p = parse_program(src).unwrap();
        let a = analyze_loop(&p).unwrap();
        let irig = live_ranges(&a, &PipelineConfig::default());
        (p, irig)
    }

    #[test]
    fn irig_mixes_scalar_and_pipe_ranges() {
        let (_, irig) = irig_of(
            "do i = 1, 100
               t := A[i] * 2;
               A[i+1] := t + s;
             end",
        );
        let pipes = irig
            .ranges
            .iter()
            .filter(|r| matches!(r.kind, RangeKind::Pipe { .. }))
            .count();
        let scalars = irig
            .ranges
            .iter()
            .filter(|r| matches!(r.kind, RangeKind::Scalar(_)))
            .count();
        assert!(pipes >= 1, "{:?}", irig.ranges);
        assert!(scalars >= 2, "t and s: {:?}", irig.ranges);
    }

    #[test]
    fn non_overlapping_scalars_do_not_interfere() {
        let (p, irig) = irig_of(
            "do i = 1, 100
               t := A[i] * 2;
               B[i] := t + 1;
               u := B[i];
               C[i] := u;
             end",
        );
        let idx = |name: &str| {
            let v = p.symbols.lookup_var(name).unwrap();
            irig.ranges
                .iter()
                .position(|r| matches!(r.kind, RangeKind::Scalar(x) if x == v))
                .unwrap()
        };
        let (t, u) = (idx("t"), idx("u"));
        assert!(!irig.adj[t].contains(&u), "t and u never live together");
    }

    #[test]
    fn pipe_depth_and_priority() {
        let (_, irig) = irig_of("do i = 1, 100 A[i+3] := A[i] + 1; end");
        let pipe = irig
            .ranges
            .iter()
            .find(|r| matches!(r.kind, RangeKind::Pipe { .. }))
            .unwrap();
        assert_eq!(pipe.depth, 4, "δ₀ + 1");
        assert_eq!(pipe.accesses, 2);
        // savings = 1·Cm − 3·moves = 1 → positive but small.
        assert!(pipe.priority > 0.0);
    }

    #[test]
    fn unconstrained_rule_counts_neighbor_depths() {
        let (_, irig) = irig_of("do i = 1, 100 A[i+2] := A[i] + x; end");
        // With plenty of registers everything is unconstrained.
        for k in 0..irig.ranges.len() {
            assert!(irig.is_unconstrained(k, 64));
        }
        // With too few, the pipeline node is constrained.
        let pipe = irig
            .ranges
            .iter()
            .position(|r| matches!(r.kind, RangeKind::Pipe { .. }))
            .unwrap();
        assert!(!irig.is_unconstrained(pipe, 2));
    }

    #[test]
    fn allocation_prefers_higher_priority_under_pressure() {
        // Two pipelines, room for only one (plus scalars): the shallower,
        // higher-priority one must win.
        let p = parse_program(
            "do i = 1, 100
               A[i+1] := A[i] + 1;
               B[i+5] := B[i] + 2;
             end",
        )
        .unwrap();
        let a = analyze_loop(&p).unwrap();
        let alloc = allocate(
            &a,
            &PipelineConfig {
                registers: 4, // 1 iv + 3 free: only the depth-2 pipe fits
                ..PipelineConfig::default()
            },
        );
        assert_eq!(alloc.plan.ranges.len(), 1, "{:?}", alloc.plan.ranges);
        assert_eq!(alloc.plan.ranges[0].depth, 2, "the A pipeline wins");
    }
}
