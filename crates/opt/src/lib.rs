#![warn(missing_docs)]
//! Loop optimizations driven by array reference data flow analysis
//! (paper §4).
//!
//! * [`pipeline`] — register pipelining: live ranges of subscripted
//!   variables, the integrated register interference graph (IRIG),
//!   priority-based multi-coloring, and emission of a machine-level
//!   [`arrayflow_machine::PipelinePlan`] (§4.1);
//! * [`load_elim`] — redundant load elimination / scalar replacement with
//!   temporary chains (§4.2.2, Fig. 7);
//! * [`store_elim`] — redundant store elimination with loop unpeeling
//!   (§4.2.1, Fig. 6);
//! * [`mod@unroll`] — controlled loop unrolling from dependence distances
//!   (§4.3).
//!
//! All transformations are validated against the reference interpreter —
//! see the crate's integration tests.

pub mod load_elim;
pub mod pipeline;
pub mod store_elim;
pub mod unroll;

pub use load_elim::{eliminate_redundant_loads, LoadElim};
pub use pipeline::{allocate, live_ranges, Allocation, Irig, LiveRange, PipelineConfig, RangeKind};
pub use store_elim::{eliminate_redundant_stores, StoreElim};
pub use unroll::{
    controlled_unroll, dep_graph, unroll, ControlledUnroll, DepGraph, UnrollConfig, UnrollError,
    UnrollStep,
};
